// The paper's §4.3 Example 2 / Figure 4, dressed as a production cell.
//
// Four devices cooperate in a manufacturing CA action A1 (cell control).
// A robot, a press and a belt additionally run a nested action A2
// (workpiece hand-off), inside which the robot and the press run A3
// (grip alignment). The press is *belated* for A3.
//
// Two faults hit at once: the supervisor (in A1) detects a safety
// violation (E1) while the robot (in A3) detects a grip slip (E2). The
// outer resolution supersedes the inner one: A3 and A2 are aborted
// innermost-first via abortion handlers — the robot's A2 abortion handler
// signals jam_exception (E3) — and A1 resolves {safety_violation,
// jam_exception} to their covering cell_fault, handled by all four devices.
#include <cstdio>

#include "caa/world.h"

using namespace caa;
using action::EnterConfig;
using action::uniform_handlers;

int main() {
  WorldConfig wc;
  wc.trace = true;
  World world(wc);
  auto& supervisor = world.add_participant("supervisor");
  auto& robot = world.add_participant("robot");
  auto& press = world.add_participant("press");
  auto& belt = world.add_participant("belt");

  // A1: cell control. E1 and E3 live under a common covering fault.
  ex::ExceptionTree t1;
  const ExceptionId cell_fault = t1.declare("cell_fault");
  t1.declare("safety_violation", cell_fault);   // E1
  const ExceptionId jam = t1.declare("jam_exception", cell_fault);  // E3
  const auto& d1 = world.actions().declare("A1_cell_control", std::move(t1));

  ex::ExceptionTree t2;
  t2.declare("handoff_timeout");
  const auto& d2 = world.actions().declare("A2_handoff", std::move(t2));

  ex::ExceptionTree t3;
  t3.declare("grip_slip");  // E2
  const auto& d3 = world.actions().declare("A3_grip_align", std::move(t3));

  const auto& a1 = world.actions().create_instance(
      d1, {supervisor.id(), robot.id(), press.id(), belt.id()});
  const auto& a2 = world.actions().create_instance(
      d2, {robot.id(), press.id(), belt.id()}, a1.instance);
  const auto& a3 =
      world.actions().create_instance(d3, {robot.id(), press.id()},
                                      a2.instance);

  auto a1_config = [&](const char* who) {
    return EnterConfig::with(
               uniform_handlers(d1.tree(), ex::HandlerResult::recovered(400)))
        .on_handler([who, &d1](ExceptionId resolved) {
          std::printf("  %s: A1 handler for '%s'\n", who,
                      d1.tree().name_of(resolved).c_str());
        })
        .build();
  };
  supervisor.enter(a1.instance, a1_config("supervisor"));
  robot.enter(a1.instance, a1_config("robot"));
  press.enter(a1.instance, a1_config("press"));
  belt.enter(a1.instance, a1_config("belt"));

  auto a2_config = [&](const char* who, bool signals_jam) {
    return EnterConfig::with(
               uniform_handlers(d2.tree(), ex::HandlerResult::recovered(100)))
        .abortion([who, signals_jam, jam] {
          std::printf("  %s: aborting A2 hand-off%s\n", who,
                      signals_jam ? " -> signalling jam_exception" : "");
          return signals_jam ? ex::AbortResult::signalling(jam, 150)
                             : ex::AbortResult::none(150);
        })
        .build();
  };
  robot.enter(a2.instance, a2_config("robot", /*signals_jam=*/true));
  press.enter(a2.instance, a2_config("press", false));
  belt.enter(a2.instance, a2_config("belt", false));

  auto a3_config = [&](const char* who) {
    return EnterConfig::with(
               uniform_handlers(d3.tree(), ex::HandlerResult::recovered(100)))
        .abortion([who] {
          std::printf("  %s: aborting A3 grip alignment\n", who);
          return ex::AbortResult::none(100);
        })
        .build();
  };
  robot.enter(a3.instance, a3_config("robot"));
  // The press is belated for A3: it only tries to enter after the faults.

  world.at(1000, [&] {
    std::printf("t=1000: supervisor raises safety_violation in A1;\n"
                "        robot raises grip_slip in A3 — concurrently\n");
    supervisor.raise("safety_violation");
    robot.raise("grip_slip");
  });
  world.at(1150, [&] {
    const bool entered = press.enter(a3.instance, a3_config("press"));
    std::printf("t=1150: press tries to enter A3: %s\n",
                entered ? "entered" : "refused (belated, A3 aborted)");
  });

  world.run();

  std::printf("\nrobot abortion order: ");
  for (const auto& a : robot.aborts()) {
    std::printf("%s ", a.instance == a3.instance ? "A3" : "A2");
  }
  std::printf("(innermost first)\n");
  std::printf("resolution messages: %lld\n",
              static_cast<long long>(world.metrics().resolution_messages()));
  std::printf("everyone clear of all actions: %s\n",
              (!supervisor.in_action() && !robot.in_action() &&
               !press.in_action() && !belt.in_action())
                  ? "yes"
                  : "no");
  return 0;
}
