// Quickstart: the paper's §4.3 Example 1 in ~60 lines.
//
// Three objects cooperate inside one CA action. Two of them raise
// different exceptions concurrently; the resolution algorithm finds the
// exception covering both, and every participant runs the handler for it.
//
//   $ ./quickstart
#include <cstdio>

#include "caa/world.h"

using namespace caa;
using action::EnterConfig;
using action::uniform_handlers;

int main() {
  WorldConfig wc;
  wc.observe = true;  // record spans + per-round tables for the report below
  World world(wc);

  // One participating object per node — a genuinely distributed action.
  auto& o1 = world.add_participant("O1");
  auto& o2 = world.add_participant("O2");
  auto& o3 = world.add_participant("O3");

  // Declare the action and its exception tree (§3.2): exceptions are
  // "classes declared by subtyping"; a parent's handler covers children.
  ex::ExceptionTree tree;
  const ExceptionId sensor = tree.declare("sensor_fault");
  tree.declare("pressure_sensor_fault", sensor);
  tree.declare("thermo_sensor_fault", sensor);
  const auto& decl = world.actions().declare("MonitorAction", std::move(tree));
  const auto& a1 =
      world.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});

  // Every participant installs a handler for EVERY declared exception
  // (the paper's completeness requirement, §3.3).
  auto config_for = [&](const char* who) {
    return EnterConfig::with(
               uniform_handlers(decl.tree(), ex::HandlerResult::recovered(200)))
        .on_handler([who, &decl](ExceptionId resolved) {
          std::printf("  %s: handling '%s'\n", who,
                      decl.tree().name_of(resolved).c_str());
        })
        .build();
  };
  o1.enter(a1.instance, config_for("O1"));
  o2.enter(a1.instance, config_for("O2"));
  o3.enter(a1.instance, config_for("O3"));

  // Two exceptions are raised concurrently in different objects.
  world.at(1000, [&] {
    std::printf("t=1000: O1 raises pressure_sensor_fault\n");
    o1.raise("pressure_sensor_fault");
  });
  world.at(1000, [&] {
    std::printf("t=1000: O2 raises thermo_sensor_fault\n");
    o2.raise("thermo_sensor_fault");
  });

  world.run();

  std::printf("\nresolution messages exchanged: %lld "
              "(paper formula (N-1)(2P+1) = %d)\n",
              static_cast<long long>(world.metrics().resolution_messages()),
              (3 - 1) * (2 * 2 + 1));
  std::printf("all objects left the action: %s\n",
              (!o1.in_action() && !o2.in_action() && !o3.in_action())
                  ? "yes"
                  : "no");

  // The observability layer saw the whole run: per-round protocol tables
  // (the §4.4 accounting) and a Chrome-trace timeline of spans.
  std::printf("\n%s", world.run_report().c_str());
  if (world.write_chrome_trace("quickstart_trace.json")) {
    std::printf("\nwrote quickstart_trace.json — open in chrome://tracing\n");
  }
  return 0;
}
