// Crash-tolerant CA action (the §4.4/§4.5 extensions end-to-end).
//
// Four plant controllers cooperate in a long-running "regulate" action.
// Heartbeat monitors watch every node. When one controller's node dies:
//   1. monitors on the surviving nodes detect the silence,
//   2. each survivor excludes the dead member (ACK/barrier accounting,
//      leader re-election if needed),
//   3. the survivors raise the configured crash exception, resolve it
//      (with a committee of 2 resolvers, so even the designated resolver
//      dying could not wedge the protocol), and run coordinated
//      "degraded-mode" handlers.
#include <cstdio>

#include "caa/world.h"
#include "rt/heartbeat.h"

using namespace caa;
using action::EnterConfig;
using action::Participant;

int main() {
  World world;
  constexpr int kN = 4;
  std::vector<Participant*> controllers;
  std::vector<std::unique_ptr<rt::HeartbeatMonitor>> monitors;
  std::vector<NodeId> nodes;
  std::vector<ObjectId> ids;
  for (int i = 0; i < kN; ++i) {
    const NodeId node = world.add_node();
    nodes.push_back(node);
    controllers.push_back(
        &world.add_participant("ctrl" + std::to_string(i + 1), node));
    ids.push_back(controllers.back()->id());
    monitors.push_back(std::make_unique<rt::HeartbeatMonitor>());
    world.attach(*monitors.back(), "hb" + std::to_string(i + 1), node);
  }

  ex::ExceptionTree tree;
  tree.declare("sensor_glitch");
  const ExceptionId crash = tree.declare("controller_lost");
  const auto& decl = world.actions().declare("regulate", std::move(tree));
  const auto& inst = world.actions().create_instance(decl, ids);

  bool degraded = false;
  for (int i = 0; i < kN; ++i) {
    ex::HandlerTable handlers;
    handlers.set(crash, [&, i](ExceptionId) {
      std::printf("  ctrl%d: entering degraded mode (load redistributed)\n",
                  i + 1);
      degraded = true;
      return ex::HandlerResult::recovered(300);
    });
    handlers.fill_defaults(decl.tree(), [](ExceptionId) {
      return ex::HandlerResult::recovered(100);
    });
    const EnterConfig config =
        EnterConfig::with(std::move(handlers))
            .on_peer_crash(crash)
            .committee(2);  // tolerate loss of the chosen resolver
    if (!controllers[i]->enter(inst.instance, config)) std::abort();
  }

  // Monitors: full mesh, mapped back to the co-located participant.
  for (int i = 0; i < kN; ++i) {
    std::vector<ObjectId> peers;
    for (int j = 0; j < kN; ++j) {
      if (j != i) peers.push_back(monitors[j]->id());
    }
    rt::HeartbeatMonitor::Config config;
    config.interval = 500;
    config.timeout = 2500;
    config.on_crash = [&, i](ObjectId peer_monitor) {
      for (int j = 0; j < kN; ++j) {
        if (monitors[j]->id() == peer_monitor) {
          std::printf("  hb%d: controller %d is silent -> reporting crash\n",
                      i + 1, j + 1);
          controllers[i]->notify_peer_crashed(controllers[j]->id());
        }
      }
    };
    monitors[i]->start(peers, config);
  }

  world.at(5000, [&] {
    std::printf("t=5000: node of ctrl4 loses power\n");
    world.network().set_node_up(nodes[3], false);
  });

  world.simulator().run_until(60000);
  for (auto& m : monitors) m->stop();
  world.run();

  std::printf("\ndegraded mode engaged: %s\n", degraded ? "YES" : "no");
  int cleared = 0;
  for (int i = 0; i < kN - 1; ++i) {
    cleared += controllers[i]->in_action() ? 0 : 1;
  }
  std::printf("survivors that completed the action: %d/3\n", cleared);
  std::printf("resolution messages: %lld (crash suspicion count: %lld)\n",
              static_cast<long long>(world.metrics().resolution_messages()),
              static_cast<long long>(
                  world.metrics().value("rt.crash_suspicions")));
  return 0;
}
