// Figure 2 end-to-end: a CA action over external atomic objects with both
// recovery styles.
//
// Two branch servers host atomic accounts. A "transfer" CA action moves
// money between them under the action's associated transaction (§3.1):
// start on entry, commit on success, abort on failure.
//
//   Run 1 (forward recovery, Fig. 2a): the transfer mis-posts; an
//   exception is raised; the resolved handler REPAIRS the accounts to the
//   intended state and the transaction COMMITS.
//
//   Run 2 (backward recovery, Fig. 2b): the attempt fails its acceptance
//   test; the transaction is ABORTED (before-images restored) and the
//   action retries a clean attempt, which commits.
#include <cstdio>

#include "caa/world.h"
#include "txn/atomic_object.h"
#include "txn/txn_manager.h"

using namespace caa;
using action::EnterConfig;
using action::uniform_handlers;

namespace {

void run(bool forward) {
  std::printf("\n--- %s recovery ---\n", forward ? "forward" : "backward");
  World world;
  auto& teller = world.add_participant("teller");
  auto& auditor = world.add_participant("auditor");
  txn::AtomicObjectHost branch_a, branch_b;
  txn::TxnClient client;
  world.attach(branch_a, "branchA", world.add_node());
  world.attach(branch_b, "branchB", world.add_node());
  world.attach(client, "client", world.add_node());
  branch_a.put_initial("alice", 1000);
  branch_b.put_initial("bob", 250);

  ex::ExceptionTree tree;
  tree.declare("misposted_transfer");
  const auto& decl = world.actions().declare("Transfer", std::move(tree));
  const auto& inst =
      world.actions().create_instance(decl, {teller.id(), auditor.id()});

  TxnId txn;
  ex::HandlerTable teller_handlers =
      uniform_handlers(decl.tree(), ex::HandlerResult::recovered(1500));
  if (forward) {
    teller_handlers.set(
        decl.tree().find("misposted_transfer"), [&](ExceptionId) {
          std::printf("  teller: handler repairs the mis-posted amounts "
                      "in-place\n");
          client.write(txn, branch_a.id(), "alice", 900, [](Status) {});
          client.write(txn, branch_b.id(), "bob", 350, [](Status) {});
          return ex::HandlerResult::recovered(1500);
        });
  }
  const EnterConfig teller_config =
      EnterConfig::with(std::move(teller_handlers))
          .retries(3)
          .body([&, forward](std::uint32_t attempt) {
            std::printf("  teller: attempt %u — transfer 100 alice -> bob "
                        "under a fresh transaction\n", attempt);
            txn = client.begin();
            const bool faulty = attempt == 0;  // first attempt mis-posts
            client.add(txn, branch_a.id(), "alice", -100,
                       [&, faulty](auto r) {
              if (!r.is_ok()) return;
              client.add(txn, branch_b.id(), "bob", faulty ? 10 : 100,
                         [&, faulty](auto r2) {
                if (!r2.is_ok()) return;
                if (faulty && forward) {
                  std::printf("  teller: detects the mis-post, raises "
                              "misposted_transfer\n");
                  teller.raise("misposted_transfer");
                } else if (faulty) {
                  std::printf("  teller: acceptance test fails -> backward "
                              "recovery\n");
                  teller.complete(false);
                } else {
                  teller.complete(true);
                }
              });
            });
          })
          .on_commit([&] {
            std::printf("  action committed -> transaction commits (2PC)\n");
            client.commit(txn, [](Status) {});
          })
          .on_abort([&] {
            if (client.active(txn)) {
              std::printf("  attempt failed -> transaction aborts, "
                          "before-images restored\n");
              client.abort(txn, [](Status) {});
            }
          });

  const EnterConfig auditor_config =
      EnterConfig::with(
          uniform_handlers(decl.tree(), ex::HandlerResult::recovered(1500)))
          .body([&auditor](std::uint32_t) { auditor.complete(); });

  teller.enter(inst.instance, teller_config);
  auditor.enter(inst.instance, auditor_config);
  world.run();

  std::printf("  final: alice=%lld bob=%lld (expected 900 / 350), "
              "txn commits=%lld aborts=%lld\n",
              static_cast<long long>(*branch_a.peek("alice")),
              static_cast<long long>(*branch_b.peek("bob")),
              static_cast<long long>(client.commits()),
              static_cast<long long>(client.aborts()));
}

}  // namespace

int main() {
  std::printf("Figure 2: exception handling with external atomic objects\n");
  run(/*forward=*/true);
  run(/*forward=*/false);
  return 0;
}
