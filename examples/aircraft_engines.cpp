// The paper's running example (§3.2): the engine-loss exception hierarchy.
//
//   class universal_exception {}
//   class emergency_engine_loss_exception : universal_exception {}
//   class left_engine_exception  : emergency_engine_loss_exception {}
//   class right_engine_exception : emergency_engine_loss_exception {}
//
// A twin-engine flight-control CA action runs three objects: left-engine
// controller, right-engine controller and an autopilot. Correlated damage
// (e.g. a bird strike) makes BOTH engine controllers raise at once. The
// resolution must not handle the two single-engine exceptions in
// isolation — it finds the covering emergency_engine_loss_exception, whose
// handler flies the "total engine loss" procedure in every object.
#include <cstdio>

#include "caa/world.h"

using namespace caa;
using action::EnterConfig;

namespace {

struct EngineState {
  double thrust = 1.0;
  bool shut_down = false;
};

}  // namespace

int main() {
  World world;
  auto& left = world.add_participant("left_engine");
  auto& right = world.add_participant("right_engine");
  auto& autopilot = world.add_participant("autopilot");

  ex::ExceptionTree tree;
  const ExceptionId emergency = tree.declare("emergency_engine_loss_exception");
  const ExceptionId left_loss = tree.declare("left_engine_exception", emergency);
  const ExceptionId right_loss =
      tree.declare("right_engine_exception", emergency);
  const auto& decl = world.actions().declare("FlightControl", std::move(tree));
  const auto& flight = world.actions().create_instance(
      decl, {left.id(), right.id(), autopilot.id()});

  EngineState left_state, right_state;
  bool glide_mode = false;

  auto enter = [&](action::Participant& p, const char* who,
                   EngineState* engine) {
    // Specific handlers: losing ONE engine is survivable — trim thrust on
    // the other side; losing BOTH engages glide mode everywhere.
    ex::HandlerTable handlers;
    handlers.set(left_loss, [&, who, engine](ExceptionId) {
      if (engine == &right_state) engine->thrust = 1.2;  // compensate
      std::printf("  %s: single-engine procedure (left out)\n", who);
      return ex::HandlerResult::recovered(300);
    });
    handlers.set(right_loss, [&, who, engine](ExceptionId) {
      if (engine == &left_state) engine->thrust = 1.2;
      std::printf("  %s: single-engine procedure (right out)\n", who);
      return ex::HandlerResult::recovered(300);
    });
    handlers.set(emergency, [&, who](ExceptionId) {
      glide_mode = true;
      std::printf("  %s: TOTAL ENGINE LOSS — glide procedure\n", who);
      return ex::HandlerResult::recovered(500);
    });
    handlers.fill_defaults(decl.tree(), [who](ExceptionId) {
      std::printf("  %s: generic emergency handler\n", who);
      return ex::HandlerResult::recovered(100);
    });
    if (!p.enter(flight.instance, EnterConfig::with(std::move(handlers)))) {
      std::abort();
    }
  };
  enter(left, "left_engine", &left_state);
  enter(right, "right_engine", &right_state);
  enter(autopilot, "autopilot", nullptr);

  // A correlated fault (the paper's motivation §3.2: "several errors
  // occurring concurrently in different objects can be the symptoms of a
  // different, more serious fault").
  world.at(2000, [&] {
    std::printf("t=2000: bird strike — both engine controllers detect "
                "flame-out\n");
    left_state.shut_down = true;
    right_state.shut_down = true;
    left.raise("left_engine_exception");
    right.raise("right_engine_exception");
  });

  world.run();

  std::printf("\nglide mode engaged: %s (handling the two exceptions "
              "separately would have\nmerely trimmed thrust on both sides "
              "— the resolution tree caught the real fault)\n",
              glide_mode ? "YES" : "no");
  std::printf("resolution messages: %lld\n",
              static_cast<long long>(world.metrics().resolution_messages()));
  return 0;
}
