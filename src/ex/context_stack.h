// Nested exception contexts — the SA stack of §4.1.
//
// Entering a CA action pushes a context (the action's exception tree, this
// participant's handler table for it, the action's communication group);
// leaving or aborting pops it. The stack order *is* the nesting order used
// for innermost-first abortion.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ex/handler_table.h"
#include "net/group.h"
#include "util/ids.h"

namespace caa::ex {

/// Result of running an abortion handler: optionally signals one exception
/// to the containing action (§4.1 allows at most one, and only from the
/// directly nested action).
struct AbortResult {
  ExceptionId signal;      // invalid => nothing signalled
  sim::Time duration = 0;  // simulated execution time

  static AbortResult none(sim::Time duration = 0) {
    return AbortResult{ExceptionId::invalid(), duration};
  }
  static AbortResult signalling(ExceptionId e, sim::Time duration = 0) {
    return AbortResult{e, duration};
  }
};

using AbortionHandler = std::function<AbortResult()>;

/// One entry of the SA stack: everything a participant needs while inside
/// one (possibly nested) CA action.
struct Context {
  ActionInstanceId instance;
  ActionId action;
  GroupId group;
  const ExceptionTree* tree = nullptr;
  const HandlerTable* handlers = nullptr;
  AbortionHandler abortion_handler;
};

class ContextStack {
 public:
  void push(Context context);
  Context pop();

  [[nodiscard]] bool empty() const { return contexts_.empty(); }
  [[nodiscard]] std::size_t size() const { return contexts_.size(); }

  /// Innermost (active) context — §4.1's "active CA action".
  [[nodiscard]] const Context& active() const;
  [[nodiscard]] Context& active();

  /// 0-based depth of `instance` in the stack, outermost first; nullopt when
  /// the participant is not inside that instance.
  [[nodiscard]] std::optional<std::size_t> depth_of(
      ActionInstanceId instance) const;

  [[nodiscard]] bool contains(ActionInstanceId instance) const {
    return depth_of(instance).has_value();
  }

  /// True iff the active action is strictly deeper than `instance` — i.e.
  /// this participant "is in an action nested within" it (§4.2 trigger for
  /// HaveNested).
  [[nodiscard]] bool nested_below(ActionInstanceId instance) const;

  [[nodiscard]] const Context& at(std::size_t depth) const;

 private:
  std::vector<Context> contexts_;  // outermost at index 0
};

}  // namespace caa::ex
