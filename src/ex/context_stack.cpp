#include "ex/context_stack.h"

#include "util/check.h"

namespace caa::ex {

void ContextStack::push(Context context) {
  CAA_CHECK_MSG(context.instance.valid(), "push(): invalid instance");
  CAA_CHECK_MSG(context.tree != nullptr, "push(): missing exception tree");
  CAA_CHECK_MSG(!contains(context.instance), "push(): re-entering instance");
  contexts_.push_back(std::move(context));
}

Context ContextStack::pop() {
  CAA_CHECK_MSG(!contexts_.empty(), "pop(): empty context stack");
  Context top = std::move(contexts_.back());
  contexts_.pop_back();
  return top;
}

const Context& ContextStack::active() const {
  CAA_CHECK_MSG(!contexts_.empty(), "active(): empty context stack");
  return contexts_.back();
}

Context& ContextStack::active() {
  CAA_CHECK_MSG(!contexts_.empty(), "active(): empty context stack");
  return contexts_.back();
}

std::optional<std::size_t> ContextStack::depth_of(
    ActionInstanceId instance) const {
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i].instance == instance) return i;
  }
  return std::nullopt;
}

bool ContextStack::nested_below(ActionInstanceId instance) const {
  auto depth = depth_of(instance);
  if (!depth.has_value()) return false;
  return *depth + 1 < contexts_.size();
}

const Context& ContextStack::at(std::size_t depth) const {
  CAA_CHECK_MSG(depth < contexts_.size(), "at(): bad depth");
  return contexts_[depth];
}

}  // namespace caa::ex
