#include "ex/handler_table.h"

#include "util/check.h"

namespace caa::ex {

void HandlerTable::set(ExceptionId id, Handler handler) {
  CAA_CHECK_MSG(id.valid(), "set(): invalid exception id");
  CAA_CHECK_MSG(static_cast<bool>(handler), "set(): empty handler");
  handlers_[id] = std::move(handler);
}

void HandlerTable::fill_defaults(const ExceptionTree& tree,
                                 const Handler& handler) {
  for (std::uint32_t i = 0; i < tree.size(); ++i) {
    const ExceptionId id(i);
    if (!handlers_.contains(id)) handlers_.emplace(id, handler);
  }
}

void HandlerTable::set_default(Handler handler) {
  CAA_CHECK_MSG(static_cast<bool>(handler), "set_default(): empty handler");
  default_ = std::move(handler);
}

bool HandlerTable::has(ExceptionId id) const {
  return handlers_.contains(id) || static_cast<bool>(default_);
}

const Handler& HandlerTable::get(ExceptionId id) const {
  auto it = handlers_.find(id);
  if (it != handlers_.end()) return it->second;
  CAA_CHECK_MSG(static_cast<bool>(default_), "no handler for exception");
  return default_;
}

ExceptionId HandlerTable::nearest_handled(const ExceptionTree& tree,
                                          ExceptionId id) const {
  ExceptionId cursor = id;
  while (true) {
    if (has(cursor)) return cursor;
    if (cursor == tree.root()) return ExceptionId::invalid();
    cursor = tree.parent(cursor);
  }
}

bool HandlerTable::is_complete_for(const ExceptionTree& tree) const {
  if (default_) return true;
  for (std::uint32_t i = 0; i < tree.size(); ++i) {
    if (!handlers_.contains(ExceptionId(i))) return false;
  }
  return true;
}

}  // namespace caa::ex
