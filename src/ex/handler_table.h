// Per-participant exception handler tables.
//
// §3.3: unlike the CR scheme, our model requires every participating object
// to provide handlers for *all* exceptions declared in an action — this is
// what eliminates the repeated re-raising ("third source" of exceptions) and
// the domino effect. is_complete_for() enforces that requirement at action
// entry. A reduced table (partial coverage) is still expressible because the
// CR baseline needs it.
#pragma once

#include <functional>
#include <unordered_map>

#include "ex/exception_tree.h"
#include "sim/event_queue.h"

namespace caa::ex {

/// What a handler achieved, reported after it ran.
enum class HandlerOutcome : std::uint8_t {
  kRecovered,  // forward recovery succeeded; action can continue/complete
  kSignal,     // recovery failed; signal `signal` to the containing action
};

struct HandlerResult {
  HandlerOutcome outcome = HandlerOutcome::kRecovered;
  ExceptionId signal;       // valid iff outcome == kSignal
  sim::Time duration = 0;   // simulated execution time of the handler body

  static HandlerResult recovered(sim::Time duration = 0) {
    return HandlerResult{HandlerOutcome::kRecovered, ExceptionId::invalid(),
                         duration};
  }
  static HandlerResult signalling(ExceptionId e, sim::Time duration = 0) {
    return HandlerResult{HandlerOutcome::kSignal, e, duration};
  }
};

/// A handler body: receives the resolved exception it is being invoked for.
using Handler = std::function<HandlerResult(ExceptionId resolved)>;

class HandlerTable {
 public:
  /// Installs `handler` for exception `id`, replacing any previous one.
  void set(ExceptionId id, Handler handler);

  /// Installs one handler for every exception in `tree` that has no handler
  /// yet (the "default handler" mentioned in §3.3). Materializes one map
  /// entry per exception; prefer set_default() when the same handler should
  /// back the whole tree.
  void fill_defaults(const ExceptionTree& tree, const Handler& handler);

  /// Installs `handler` as the fallback for every exception without an
  /// explicit set() entry. Equivalent coverage to fill_defaults() over any
  /// tree, but stored as a single callable — a uniform table costs one
  /// std::function instead of one map node per declared exception, which
  /// keeps per-participant table copies and teardown O(overrides).
  void set_default(Handler handler);

  [[nodiscard]] bool has(ExceptionId id) const;

  /// Exact lookup; contract violation if absent (participants of an action
  /// are validated up front with is_complete_for()).
  [[nodiscard]] const Handler& get(ExceptionId id) const;

  /// CR-style lookup: the nearest ancestor-or-self of `id` (per `tree`)
  /// that has a handler; invalid id if none up to and including the root.
  [[nodiscard]] ExceptionId nearest_handled(const ExceptionTree& tree,
                                            ExceptionId id) const;

  /// True iff every exception declared in `tree` has a handler.
  [[nodiscard]] bool is_complete_for(const ExceptionTree& tree) const;

  /// Number of explicit set()/fill_defaults() entries; a set_default()
  /// fallback is not counted.
  [[nodiscard]] std::size_t size() const { return handlers_.size(); }

 private:
  std::unordered_map<ExceptionId, Handler> handlers_;
  Handler default_;  // fallback when no explicit entry exists
};

}  // namespace caa::ex
