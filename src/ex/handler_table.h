// Per-participant exception handler tables.
//
// §3.3: unlike the CR scheme, our model requires every participating object
// to provide handlers for *all* exceptions declared in an action — this is
// what eliminates the repeated re-raising ("third source" of exceptions) and
// the domino effect. is_complete_for() enforces that requirement at action
// entry. A reduced table (partial coverage) is still expressible because the
// CR baseline needs it.
#pragma once

#include <functional>
#include <unordered_map>

#include "ex/exception_tree.h"
#include "sim/event_queue.h"

namespace caa::ex {

/// What a handler achieved, reported after it ran.
enum class HandlerOutcome : std::uint8_t {
  kRecovered,  // forward recovery succeeded; action can continue/complete
  kSignal,     // recovery failed; signal `signal` to the containing action
};

struct HandlerResult {
  HandlerOutcome outcome = HandlerOutcome::kRecovered;
  ExceptionId signal;       // valid iff outcome == kSignal
  sim::Time duration = 0;   // simulated execution time of the handler body

  static HandlerResult recovered(sim::Time duration = 0) {
    return HandlerResult{HandlerOutcome::kRecovered, ExceptionId::invalid(),
                         duration};
  }
  static HandlerResult signalling(ExceptionId e, sim::Time duration = 0) {
    return HandlerResult{HandlerOutcome::kSignal, e, duration};
  }
};

/// A handler body: receives the resolved exception it is being invoked for.
using Handler = std::function<HandlerResult(ExceptionId resolved)>;

class HandlerTable {
 public:
  /// Installs `handler` for exception `id`, replacing any previous one.
  void set(ExceptionId id, Handler handler);

  /// Installs one handler for every exception in `tree` that has no handler
  /// yet (the "default handler" mentioned in §3.3).
  void fill_defaults(const ExceptionTree& tree, const Handler& handler);

  [[nodiscard]] bool has(ExceptionId id) const;

  /// Exact lookup; contract violation if absent (participants of an action
  /// are validated up front with is_complete_for()).
  [[nodiscard]] const Handler& get(ExceptionId id) const;

  /// CR-style lookup: the nearest ancestor-or-self of `id` (per `tree`)
  /// that has a handler; invalid id if none up to and including the root.
  [[nodiscard]] ExceptionId nearest_handled(const ExceptionTree& tree,
                                            ExceptionId id) const;

  /// True iff every exception declared in `tree` has a handler.
  [[nodiscard]] bool is_complete_for(const ExceptionTree& tree) const;

  [[nodiscard]] std::size_t size() const { return handlers_.size(); }

 private:
  std::unordered_map<ExceptionId, Handler> handlers_;
};

}  // namespace caa::ex
