#include "ex/local_context.h"

#include "util/check.h"

namespace caa::ex {

void LocalContextRunner::enter_context(std::string name, Model model) {
  contexts_.push_back(Context{std::move(name), model, {}});
}

void LocalContextRunner::attach(ExceptionId exception, LocalHandler handler) {
  CAA_CHECK_MSG(!contexts_.empty(), "attach(): no open context");
  CAA_CHECK_MSG(tree_.contains(exception), "attach(): unknown exception");
  CAA_CHECK_MSG(static_cast<bool>(handler), "attach(): empty handler");
  contexts_.back().handlers.emplace_back(exception, std::move(handler));
}

void LocalContextRunner::leave_context() {
  CAA_CHECK_MSG(!contexts_.empty(), "leave_context(): no open context");
  contexts_.pop_back();
}

const std::string& LocalContextRunner::current() const {
  CAA_CHECK_MSG(!contexts_.empty(), "current(): no open context");
  return contexts_.back().name;
}

const std::pair<ExceptionId, LocalHandler>* LocalContextRunner::lookup(
    const Context& context, ExceptionId exception) const {
  // Exact and covering lookup: walk from the raised exception towards the
  // root; the first ancestor with an attached handler wins (§2.1: "a higher
  // exception has a handler which is intended to handle any lower level
  // exception").
  ExceptionId cursor = exception;
  while (true) {
    for (const auto& entry : context.handlers) {
      if (entry.first == cursor) return &entry;
    }
    if (cursor == tree_.root()) return nullptr;
    cursor = tree_.parent(cursor);
  }
}

LocalContextRunner::RaiseResult LocalContextRunner::raise(
    ExceptionId exception) {
  CAA_CHECK_MSG(tree_.contains(exception), "raise(): unknown exception");
  RaiseResult result;
  while (!contexts_.empty()) {
    Context& context = contexts_.back();
    const auto* entry = lookup(context, exception);
    if (entry != nullptr) {
      const LocalOutcome outcome = entry->second(exception);
      if (outcome == LocalOutcome::kHandled) {
        result.handled = true;
        result.context = context.name;
        result.handler_for = entry->first;
        if (context.model == Model::kResumption) {
          // Resumption: the context survives; execution continues after
          // the raise point.
          result.resumed = true;
        } else {
          // Termination: the handler completes this block; the block is
          // closed and control continues in the enclosing context.
          result.unwound.push_back(context.name);
          contexts_.pop_back();
        }
        return result;
      }
      // Handler ran but could not recover: propagate (§2.1 "or it is not
      // able to recover the program").
    }
    result.unwound.push_back(context.name);
    contexts_.pop_back();
  }
  return result;  // handled == false: the whole activity failed
}

}  // namespace caa::ex
