// The exception (resolution) tree of §3.2.
//
// All exceptions of a CA action are structured into a tree rooted at the
// universal exception; a higher exception's handler is able to handle any
// lower one. Resolving a set of concurrently raised exceptions means finding
// the lowest exception that covers them all — the lowest common ancestor.
//
// Trees are declared statically (one per action declaration), are immutable
// after freezing, and are shared by value-semantics handle by every
// participant ("each participating object ... has the same resolution tree",
// §4.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/intern.h"

namespace caa::ex {

class ExceptionTree {
 public:
  /// Creates a tree containing only the root, named `root_name`
  /// (the paper's `universal_exception`).
  explicit ExceptionTree(std::string_view root_name = "universal_exception");

  /// Declares a new exception class under `parent`. Mirrors subclassing:
  ///   class left_engine_exception : emergency_engine_loss_exception {}
  /// Returns the new exception's id. Names must be unique.
  ExceptionId declare(std::string_view name, ExceptionId parent);

  /// Declares directly under the root.
  ExceptionId declare(std::string_view name);

  /// Freezes the tree; declare() afterwards is a contract violation.
  /// Participants only ever see frozen trees.
  void freeze() { frozen_ = true; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  [[nodiscard]] ExceptionId root() const { return ExceptionId(0); }
  [[nodiscard]] std::size_t size() const { return parents_.size(); }
  [[nodiscard]] bool contains(ExceptionId id) const {
    return id.valid() && id.value() < parents_.size();
  }

  [[nodiscard]] ExceptionId parent(ExceptionId id) const;
  [[nodiscard]] std::uint32_t depth(ExceptionId id) const;
  [[nodiscard]] const std::string& name_of(ExceptionId id) const;

  /// Id of a declared name, or ExceptionId::invalid().
  [[nodiscard]] ExceptionId find(std::string_view name) const;

  /// True iff `ancestor` covers `descendant` (ancestor-or-self on the path
  /// to the root). The root covers everything.
  [[nodiscard]] bool covers(ExceptionId ancestor, ExceptionId descendant) const;

  /// The resolution operation of §3.2: the lowest exception whose handler
  /// covers every exception in `raised`. For an empty set returns invalid.
  [[nodiscard]] ExceptionId resolve(std::span<const ExceptionId> raised) const;

  /// Lowest common ancestor of two exceptions.
  [[nodiscard]] ExceptionId lca(ExceptionId a, ExceptionId b) const;

  /// All ancestors of `id` from itself up to the root (inclusive).
  [[nodiscard]] std::vector<ExceptionId> path_to_root(ExceptionId id) const;

  /// Structural fingerprint (names + parent links). §4.1 requires every
  /// participant of an action to hold "the same resolution tree"; in a real
  /// deployment with separately compiled objects, entry-time fingerprint
  /// comparison catches declaration drift.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  InternPool names_;
  std::vector<ExceptionId> parents_;  // index = id; root's parent = itself
  std::vector<std::uint32_t> depths_;
  bool frozen_ = false;
};

/// Convenience builders for the tree shapes used in tests and benches.
namespace shapes {
/// A directed chain e1 -> e2 -> ... -> eN under the root (§3.3's adversarial
/// shape for the CR algorithm).
ExceptionTree chain(std::size_t n);
/// A perfectly balanced binary tree with `levels` levels below the root.
ExceptionTree balanced_binary(std::size_t levels);
/// N leaves directly under the root.
ExceptionTree star(std::size_t n);
}  // namespace shapes

}  // namespace caa::ex
