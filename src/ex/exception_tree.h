// The exception (resolution) tree of §3.2.
//
// All exceptions of a CA action are structured into a tree rooted at the
// universal exception; a higher exception's handler is able to handle any
// lower one. Resolving a set of concurrently raised exceptions means finding
// the lowest exception that covers them all — the lowest common ancestor.
//
// Trees are declared statically (one per action declaration), are immutable
// after freezing, and are shared by value-semantics handle by every
// participant ("each participating object ... has the same resolution tree",
// §4.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/intern.h"

namespace caa::ex {

class ExceptionTree {
 public:
  /// Creates a tree containing only the root, named `root_name`
  /// (the paper's `universal_exception`).
  explicit ExceptionTree(std::string_view root_name = "universal_exception");

  /// Declares a new exception class under `parent`. Mirrors subclassing:
  ///   class left_engine_exception : emergency_engine_loss_exception {}
  /// Returns the new exception's id. Names must be unique.
  ExceptionId declare(std::string_view name, ExceptionId parent);

  /// Declares directly under the root.
  ExceptionId declare(std::string_view name);

  /// Freezes the tree; declare() afterwards is a contract violation.
  /// Participants only ever see frozen trees. Freezing also precomputes the
  /// join lattice (universal-cover bits) used by coordination avoidance.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_; }

  [[nodiscard]] ExceptionId root() const { return ExceptionId(0); }
  [[nodiscard]] std::size_t size() const { return parents_.size(); }
  [[nodiscard]] bool contains(ExceptionId id) const {
    return id.valid() && id.value() < parents_.size();
  }

  [[nodiscard]] ExceptionId parent(ExceptionId id) const;
  [[nodiscard]] std::uint32_t depth(ExceptionId id) const;
  [[nodiscard]] const std::string& name_of(ExceptionId id) const;

  /// Id of a declared name, or ExceptionId::invalid().
  [[nodiscard]] ExceptionId find(std::string_view name) const;

  /// True iff `ancestor` covers `descendant` (ancestor-or-self on the path
  /// to the root). The root covers everything.
  [[nodiscard]] bool covers(ExceptionId ancestor, ExceptionId descendant) const;

  /// The resolution operation of §3.2: the lowest exception whose handler
  /// covers every exception in `raised`. For an empty set returns invalid.
  [[nodiscard]] ExceptionId resolve(std::span<const ExceptionId> raised) const;

  /// Lowest common ancestor of two exceptions.
  [[nodiscard]] ExceptionId lca(ExceptionId a, ExceptionId b) const;

  /// All ancestors of `id` from itself up to the root (inclusive).
  [[nodiscard]] std::vector<ExceptionId> path_to_root(ExceptionId id) const;

  // ---- Join lattice (coordination avoidance; ROADMAP item 3) ------------
  //
  // The §3.2 resolve() operation is a fold of lca() — a join in the lattice
  // the tree induces. The lattice view adds two things on top of the raw
  // walks: a memo cache so repeated joins of the same pair are O(1), and a
  // per-node "universal cover" bit marking subtrees where ANY concurrent
  // pair of raises joins to the same ancestor, which is what lets a raise be
  // classified as commutative without seeing the rest of the raise set.

  /// One memoized join. Entries are allocated once per distinct pair and
  /// never move, so repeated lookups return pointer-identical results.
  struct JoinEntry {
    ExceptionId cover;
  };

  /// Memoized lca(a, b). The first call for a pair computes and caches; all
  /// later calls (either argument order) return the same cached entry.
  const JoinEntry& join(ExceptionId a, ExceptionId b) const;

  /// True when any concurrent pair of distinct raises drawn from `id`'s
  /// subtree joins to `id` itself — i.e. the subtree has depth <= 1 below
  /// `id`. Universality is downward-closed along ancestor chains. Frozen
  /// trees only.
  [[nodiscard]] bool universal(ExceptionId id) const;

  /// The outermost (closest to the root) universal ancestor-or-self of
  /// `id`, or invalid when `id` itself is not universal (its subtree is
  /// deep, so no single cover bounds an arbitrary concurrent raise set).
  /// Frozen trees only; O(1).
  [[nodiscard]] ExceptionId universal_cover(ExceptionId id) const;

  /// Join-memo accounting, for the resolve.lattice_* observability counters.
  [[nodiscard]] std::uint64_t join_hits() const { return join_hits_; }
  [[nodiscard]] std::uint64_t join_misses() const { return join_misses_; }

  /// Structural fingerprint (names + parent links). §4.1 requires every
  /// participant of an action to hold "the same resolution tree"; in a real
  /// deployment with separately compiled objects, entry-time fingerprint
  /// comparison catches declaration drift.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  InternPool names_;
  std::vector<ExceptionId> parents_;  // index = id; root's parent = itself
  std::vector<std::uint32_t> depths_;
  bool frozen_ = false;
  // Lattice, computed by freeze(). The memo is lazy: worlds that never
  // resolve pay nothing beyond the O(n) bit pass.
  std::vector<std::uint8_t> universal_;       // subtree depth <= 1
  std::vector<ExceptionId> universal_cover_;  // outermost universal ancestor
  mutable std::unordered_map<std::uint64_t, JoinEntry> join_memo_;
  mutable std::uint64_t join_hits_ = 0;
  mutable std::uint64_t join_misses_ = 0;
};

/// Convenience builders for the tree shapes used in tests and benches.
namespace shapes {
/// A directed chain e1 -> e2 -> ... -> eN under the root (§3.3's adversarial
/// shape for the CR algorithm).
ExceptionTree chain(std::size_t n);
/// A perfectly balanced binary tree with `levels` levels below the root.
ExceptionTree balanced_binary(std::size_t levels);
/// N leaves directly under the root.
ExceptionTree star(std::size_t n);
}  // namespace shapes

}  // namespace caa::ex
