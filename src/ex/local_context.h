// Local (intra-object) exception contexts and propagation — the §2.1/§2.3
// machinery that the distributed scheme builds upon.
//
// "Exception contexts (i.e. regions in which the same exceptions are
// treated in the same way) have to be declared. Very often they are blocks
// or procedure bodies. ... If the handler for the raised exception does not
// exist in the context or it is not able to recover the program, then the
// exception is propagated" — through the chain of nested blocks / calls.
//
// Supports both models of §2.1:
//   * termination — the handler completes the block; execution continues
//     after it (the model CA actions adhere to, §3.1);
//   * resumption  — the handler repairs state and execution resumes at the
//     operation following the raise point.
//
// This is a *local* runner: no messages, one object. The distributed layer
// (caa::Participant) uses the same HandlerTable/ExceptionTree vocabulary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ex/exception_tree.h"
#include "ex/handler_table.h"

namespace caa::ex {

enum class Model : std::uint8_t { kTermination, kResumption };

/// What a local handler decided.
enum class LocalOutcome : std::uint8_t {
  kHandled,     // recovered (terminates or resumes per the context's model)
  kPropagate,   // could not recover: propagate to the enclosing context
};

using LocalHandler = std::function<LocalOutcome(ExceptionId raised)>;

/// A stack of nested local exception contexts for one thread of control.
class LocalContextRunner {
 public:
  explicit LocalContextRunner(const ExceptionTree& tree) : tree_(tree) {}

  /// Enters a context (block / method body / object scope, §2.3).
  /// `handlers` maps exception -> handler; lookup walks the tree upward
  /// (a handler for an ancestor covers descendants).
  void enter_context(std::string name, Model model = Model::kTermination);

  /// Attaches a handler for `exception` to the CURRENT context.
  void attach(ExceptionId exception, LocalHandler handler);

  /// Leaves the current context normally.
  void leave_context();

  /// Result of raising locally.
  struct RaiseResult {
    bool handled = false;            // a handler recovered
    bool resumed = false;            // true under the resumption model
    std::string context;             // context whose handler ran
    ExceptionId handler_for;         // the (possibly covering) handler key
    std::vector<std::string> unwound;  // contexts terminated on the way
  };

  /// Raises `exception` in the current context; searches this context's
  /// handlers (exact, then covering ancestors), then propagates outward,
  /// terminating contexts on the way (termination model) until a handler
  /// recovers. If nothing recovers, handled=false and ALL contexts are
  /// unwound — the caller must treat it as a failure of the whole activity.
  RaiseResult raise(ExceptionId exception);

  [[nodiscard]] std::size_t depth() const { return contexts_.size(); }
  [[nodiscard]] const std::string& current() const;

 private:
  struct Context {
    std::string name;
    Model model;
    std::vector<std::pair<ExceptionId, LocalHandler>> handlers;
  };

  /// Best handler in `context` for `exception`: exact match or the nearest
  /// covering ancestor attached there.
  [[nodiscard]] const std::pair<ExceptionId, LocalHandler>* lookup(
      const Context& context, ExceptionId exception) const;

  const ExceptionTree& tree_;
  std::vector<Context> contexts_;
};

}  // namespace caa::ex
