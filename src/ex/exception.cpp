#include "ex/exception.h"

#include "ex/exception_tree.h"

namespace caa::ex {

/// Human-readable description, for traces and logs.
std::string describe(const Exception& e, const ExceptionTree& tree) {
  std::string out = tree.contains(e.id) ? tree.name_of(e.id) : "<unknown>";
  out += " raised by O";
  out += std::to_string(e.raised_by.value());
  if (!e.message.empty()) {
    out += ": ";
    out += e.message;
  }
  return out;
}

}  // namespace caa::ex
