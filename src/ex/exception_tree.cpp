#include "ex/exception_tree.h"

#include <algorithm>

#include "util/check.h"

namespace caa::ex {

ExceptionTree::ExceptionTree(std::string_view root_name) {
  const auto idx = names_.intern(root_name);
  CAA_CHECK(idx == 0);
  parents_.push_back(ExceptionId(0));  // root is its own parent
  depths_.push_back(0);
}

ExceptionId ExceptionTree::declare(std::string_view name, ExceptionId parent) {
  CAA_CHECK_MSG(!frozen_, "declare() on a frozen tree");
  CAA_CHECK_MSG(contains(parent), "declare(): unknown parent");
  CAA_CHECK_MSG(names_.find(name) == InternPool::kNotFound,
                "declare(): duplicate exception name");
  const auto idx = names_.intern(name);
  CAA_CHECK(idx == parents_.size());
  parents_.push_back(parent);
  depths_.push_back(depths_[parent.value()] + 1);
  return ExceptionId(idx);
}

ExceptionId ExceptionTree::declare(std::string_view name) {
  return declare(name, root());
}

ExceptionId ExceptionTree::parent(ExceptionId id) const {
  CAA_CHECK_MSG(contains(id), "parent(): unknown exception");
  return parents_[id.value()];
}

std::uint32_t ExceptionTree::depth(ExceptionId id) const {
  CAA_CHECK_MSG(contains(id), "depth(): unknown exception");
  return depths_[id.value()];
}

const std::string& ExceptionTree::name_of(ExceptionId id) const {
  CAA_CHECK_MSG(contains(id), "name_of(): unknown exception");
  return names_.name_of(id.value());
}

ExceptionId ExceptionTree::find(std::string_view name) const {
  const auto idx = names_.find(name);
  if (idx == InternPool::kNotFound) return ExceptionId::invalid();
  return ExceptionId(idx);
}

bool ExceptionTree::covers(ExceptionId ancestor, ExceptionId descendant) const {
  CAA_CHECK_MSG(contains(ancestor) && contains(descendant),
                "covers(): unknown exception");
  ExceptionId cursor = descendant;
  while (true) {
    if (cursor == ancestor) return true;
    if (cursor == root()) return false;
    cursor = parents_[cursor.value()];
  }
}

ExceptionId ExceptionTree::lca(ExceptionId a, ExceptionId b) const {
  CAA_CHECK_MSG(contains(a) && contains(b), "lca(): unknown exception");
  // Walk the deeper side up until depths match, then walk both up.
  while (depth(a) > depth(b)) a = parents_[a.value()];
  while (depth(b) > depth(a)) b = parents_[b.value()];
  while (a != b) {
    a = parents_[a.value()];
    b = parents_[b.value()];
  }
  return a;
}

ExceptionId ExceptionTree::resolve(std::span<const ExceptionId> raised) const {
  if (raised.empty()) return ExceptionId::invalid();
  ExceptionId acc = raised.front();
  for (std::size_t i = 1; i < raised.size(); ++i) {
    // Through the join memo: committees re-resolve overlapping raise sets
    // round after round, so the fold is O(1) per pair after the first round.
    acc = frozen_ ? join(acc, raised[i]).cover : lca(acc, raised[i]);
  }
  return acc;
}

void ExceptionTree::freeze() {
  if (frozen_) return;
  frozen_ = true;
  // Universal-cover bits: a node is universal iff nothing in its subtree is
  // at distance >= 2, i.e. none of its children has children of its own.
  // Having a descendant at distance >= 2 implies one at distance exactly 2,
  // so marking every node's grandparent non-universal covers all ancestors
  // transitively (an ancestor above a non-universal node is non-universal).
  universal_.assign(parents_.size(), 1);
  for (std::uint32_t i = 0; i < parents_.size(); ++i) {
    if (depths_[i] < 2) continue;
    universal_[parents_[parents_[i].value()].value()] = 0;
  }
  // Outermost universal ancestor-or-self. Universality is downward-closed
  // along ancestor chains, so walking up stops at the first non-universal.
  universal_cover_.assign(parents_.size(), ExceptionId::invalid());
  for (std::uint32_t i = 0; i < parents_.size(); ++i) {
    const ExceptionId id{i};
    if (universal_[i] == 0) continue;  // self not universal: no cover
    ExceptionId best = id;
    ExceptionId cursor = id;
    while (cursor != root()) {
      cursor = parents_[cursor.value()];
      if (universal_[cursor.value()] == 0) break;
      best = cursor;
    }
    universal_cover_[i] = best;
  }
}

const ExceptionTree::JoinEntry& ExceptionTree::join(ExceptionId a,
                                                    ExceptionId b) const {
  CAA_CHECK_MSG(contains(a) && contains(b), "join(): unknown exception");
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  const std::uint64_t key = (hi << 32) | lo;
  if (const auto it = join_memo_.find(key); it != join_memo_.end()) {
    ++join_hits_;
    return it->second;
  }
  ++join_misses_;
  return join_memo_.emplace(key, JoinEntry{lca(a, b)}).first->second;
}

bool ExceptionTree::universal(ExceptionId id) const {
  CAA_CHECK_MSG(frozen_, "universal(): lattice needs a frozen tree");
  CAA_CHECK_MSG(contains(id), "universal(): unknown exception");
  return universal_[id.value()] != 0;
}

ExceptionId ExceptionTree::universal_cover(ExceptionId id) const {
  CAA_CHECK_MSG(frozen_, "universal_cover(): lattice needs a frozen tree");
  CAA_CHECK_MSG(contains(id), "universal_cover(): unknown exception");
  return universal_cover_[id.value()];
}

std::vector<ExceptionId> ExceptionTree::path_to_root(ExceptionId id) const {
  CAA_CHECK_MSG(contains(id), "path_to_root(): unknown exception");
  std::vector<ExceptionId> path;
  ExceptionId cursor = id;
  while (true) {
    path.push_back(cursor);
    if (cursor == root()) break;
    cursor = parents_[cursor.value()];
  }
  return path;
}

std::uint64_t ExceptionTree::fingerprint() const {
  // FNV-1a over (name, parent) pairs in declaration order.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::uint32_t i = 0; i < parents_.size(); ++i) {
    for (char c : names_.name_of(i)) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    mix(parents_[i].value());
  }
  return h;
}

namespace shapes {

ExceptionTree chain(std::size_t n) {
  ExceptionTree tree;
  ExceptionId parent = tree.root();
  for (std::size_t i = 1; i <= n; ++i) {
    // e1 is the highest (closest to the root); eN the lowest, matching the
    // §3.3 example where raising e8 chains upward to e7, e6, ...
    parent = tree.declare("e" + std::to_string(i), parent);
  }
  tree.freeze();
  return tree;
}

ExceptionTree balanced_binary(std::size_t levels) {
  ExceptionTree tree;
  std::vector<ExceptionId> frontier{tree.root()};
  std::size_t next_label = 1;
  for (std::size_t level = 0; level < levels; ++level) {
    std::vector<ExceptionId> next;
    next.reserve(frontier.size() * 2);
    for (ExceptionId p : frontier) {
      next.push_back(tree.declare("b" + std::to_string(next_label++), p));
      next.push_back(tree.declare("b" + std::to_string(next_label++), p));
    }
    frontier = std::move(next);
  }
  tree.freeze();
  return tree;
}

ExceptionTree star(std::size_t n) {
  ExceptionTree tree;
  for (std::size_t i = 1; i <= n; ++i) {
    tree.declare("s" + std::to_string(i));
  }
  tree.freeze();
  return tree;
}

}  // namespace shapes

}  // namespace caa::ex
