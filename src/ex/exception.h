// Exception values.
//
// In the paper exceptions are classes arranged in a hierarchy (§3.2); at run
// time what travels between objects is a compact description: which declared
// exception class was raised, by whom, and in which action instance. The
// class hierarchy itself lives in ExceptionTree.
#pragma once

#include <string>

#include "util/ids.h"

namespace caa::ex {

class ExceptionTree;

/// One raised exception occurrence — an entry of the LE list of §4.1.
struct Exception {
  ExceptionId id;                 // which declared exception class
  ObjectId raised_by;             // the participating object that raised it
  ActionInstanceId in_instance;   // the action instance it was raised in
  std::string message;            // free-form diagnostic (not used by the
                                  // protocol; carried for operators)

  friend bool operator==(const Exception& a, const Exception& b) {
    return a.id == b.id && a.raised_by == b.raised_by &&
           a.in_instance == b.in_instance;
  }
};

/// Human-readable description, for traces and logs.
std::string describe(const Exception& e, const ExceptionTree& tree);

}  // namespace caa::ex
