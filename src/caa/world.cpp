#include "caa/world.h"

#include <exception>
#include <fstream>

#include "obs/causal.h"
#include "obs/chrome_trace.h"
#include "obs/report.h"
#include "util/check.h"

namespace caa {

World::World(WorldConfig config)
    : config_(config),
      network_(simulator_, config.seed),
      actions_(groups_) {
  actions_.set_overlay_defaults(config_.overlay);
  actions_.set_exit_defaults(config_.exit_protocol);
  actions_.set_exit_gc(config_.exit_gc);
  actions_.set_resolve_avoidance(config_.resolve_avoidance);
  actions_.set_avoidance_probe_delay(config_.avoidance_probe_delay);
  actions_.set_debug_bugs(config_.debug_bugs);
  network_.set_default_link(config_.link);
  network_.set_managed(config_.managed_network);
  trace_.enable(config_.trace);
  simulator_.obs().set_enabled(config_.observe);
  obs::FlightRecorder& recorder = simulator_.obs().recorder();
  recorder.set_enabled(config_.flight_recorder);
  if (config_.flight_recorder_capacity !=
      obs::FlightRecorder::kDefaultCapacity) {
    recorder.set_capacity(config_.flight_recorder_capacity);
  }
  // Register as the thread's active recorder so an armed crash context
  // (run/campaign.cpp) or a tripped CAA_CHECK can dump this world's ring.
  prev_recorder_ = obs::FlightRecorder::bind_thread_active(&recorder);
  CAA_CHECK_MSG(config_.link.drop_probability == 0.0 ||
                    config_.reliable_transport,
                "lossy links require the reliable transport");
  if (config_.telemetry.window > 0) {
    simulator_.obs().timeseries().arm(config_.telemetry);
  }
  if (config_.watchdog_deadline > 0) {
    simulator_.obs().watchdog().arm(
        config_.watchdog_deadline,
        [this](std::uint64_t scope, obs::WatchdogReport& report) {
          // Prefer the member with the most concrete view: one that names
          // peers it is waiting on; otherwise the first that still holds
          // the scope open.
          bool found = false;
          for (const auto& p : participants_) {
            obs::WatchdogReport view;
            if (!p->describe_scope(ActionInstanceId(scope), view)) continue;
            view.scope_name += " @ " + p->name();
            if (!found || (report.awaited.empty() && !view.awaited.empty())) {
              report.scope_name = view.scope_name;
              report.phase = view.phase;
              report.awaited = view.awaited;
              report.detail = view.detail;
              found = true;
            }
          }
        });
  }
  // The up-transition of a node is its restart signal: a fail-stop crash
  // wiped the node's volatile state, so its participants must abandon their
  // open contexts before processing any new traffic.
  network_.set_node_hook([this](NodeId node, bool up) {
    if (up) {
      on_node_restarted(node);
    } else if (simulator_.obs().watchdog().armed()) {
      // A fail-stop crash releases the victims' watchdog holds: the
      // survivors exclude them and can finish without them, so their open
      // scopes must not read as stalls.
      for (const auto& p : participants_) {
        if (p->runtime().node() == node) p->wd_release_open_scopes();
      }
    }
  });
}

World::~World() {
  // Dying by stack unwinding (the world's job threw) with a crash context
  // armed: this is the last moment the ring exists, so dump it here; the
  // campaign's catch block picks the path up for the failure report.
  if (std::uncaught_exceptions() > 0 && obs::FlightRecorder::crash_dump_armed() &&
      obs::FlightRecorder::thread_active() == &simulator_.obs().recorder()) {
    obs::FlightRecorder::dump_thread_active();
  }
  obs::FlightRecorder::bind_thread_active(prev_recorder_);
}

void World::on_node_restarted(NodeId node) {
  // Survivors that had not yet detected the crash learn of it now (the call
  // is idempotent, so nodes already notified by a heartbeat monitor or a
  // fault plan pay nothing); only then do the restarted node's participants
  // abandon the action state the crash wiped. Restarted objects stay
  // excluded from the resolutions they crashed out of — they may only enter
  // *new* action instances (Participant::on_restarted).
  for (const auto& victim : participants_) {
    if (victim->runtime().node() != node) continue;
    for (const auto& peer : participants_) {
      const NodeId peer_node = peer->runtime().node();
      if (peer_node == node || !network_.node_up(peer_node)) continue;
      peer->notify_peer_crashed(victim->id());
    }
  }
  for (const auto& victim : participants_) {
    if (victim->runtime().node() == node) victim->on_restarted();
  }
  // Re-admit the restarted objects: peers stop filtering their messages and
  // count them as regular members of instances created from now on (their
  // exclusion from in-flight resolutions is already locked into the
  // per-instance engines).
  for (const auto& victim : participants_) {
    if (victim->runtime().node() != node) continue;
    for (const auto& peer : participants_) {
      const NodeId peer_node = peer->runtime().node();
      if (peer_node == node || !network_.node_up(peer_node)) continue;
      peer->notify_peer_restarted(victim->id());
      // Symmetric reconciliation: while this node was down it missed any
      // restart of `peer`, whose messages it would otherwise keep dropping.
      victim->notify_peer_restarted(peer->id());
    }
  }
}

bool World::write_recorder_dump(const std::string& path,
                                std::uint64_t world_index) {
  return recorder().dump_to_file(path, config_.seed, world_index);
}

std::string World::critical_path_report() {
  std::string out;
  for (const obs::CriticalPath& path :
       obs::critical_paths(recorder().snapshot())) {
    out += obs::format_path(path);
  }
  return out;
}

NodeId World::add_node() {
  const NodeId node(next_node_++);
  network_.add_node(node);
  std::unique_ptr<net::Transport> transport;
  if (config_.reliable_transport) {
    transport = std::make_unique<net::ReliableTransport>(network_, node,
                                                         config_.reliable);
  } else {
    transport = std::make_unique<net::DirectTransport>(network_, node);
  }
  auto runtime = std::make_unique<rt::Runtime>(simulator_, directory_, node,
                                               std::move(transport));
  runtime->set_trace(&trace_);
  runtimes_.push_back(std::move(runtime));
  return node;
}

rt::Runtime& World::runtime(NodeId node) {
  CAA_CHECK_MSG(node.value() < runtimes_.size(), "unknown node");
  return *runtimes_[node.value()];
}

action::Participant& World::add_participant(const std::string& name) {
  return add_participant(name, add_node());
}

action::Participant& World::add_participant(const std::string& name,
                                            NodeId node) {
  auto participant = std::make_unique<action::Participant>(actions_);
  runtime(node).attach(*participant, name);
  participant->set_failure_sink(
      [this](ActionInstanceId instance, ExceptionId signal) {
        failures_.push_back(Failure{instance, signal});
      });
  participants_.push_back(std::move(participant));
  if (simulator_.obs().enabled()) {
    simulator_.obs().tracer().set_track_name(
        participants_.back()->id().value(), name);
  }
  return *participants_.back();
}

ObjectId World::attach(rt::ManagedObject& object, std::string name,
                       NodeId node) {
  const ObjectId oid = runtime(node).attach(object, name);
  if (simulator_.obs().enabled()) {
    simulator_.obs().tracer().set_track_name(oid.value(), std::move(name));
  }
  return oid;
}

void World::at(sim::Time t, std::function<void()> fn) {
  simulator_.schedule_at(t, std::move(fn));
}

std::size_t World::run(std::size_t max_events) {
  const std::size_t fired = simulator_.run_to_quiescence(max_events);
  // Quiescence with open scopes is a stall by definition: no event will
  // ever progress them, so diagnose without waiting out the deadline.
  simulator_.obs().watchdog().finish(simulator_.now());
  return fired;
}

bool World::write_timeseries_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << simulator_.obs().timeseries().table().to_json();
  return static_cast<bool>(out);
}

std::string World::chrome_trace() const {
  return obs::chrome_trace_json(simulator_.obs().tracer());
}

bool World::write_chrome_trace(const std::string& path) const {
  return obs::write_chrome_trace(simulator_.obs().tracer(), path);
}

std::string World::run_report() const {
  return obs::run_report(
      metrics(), [this](ActionInstanceId instance) -> std::string {
        if (!actions_.known(instance)) return {};
        return actions_.info(instance).decl->name() + " #" +
               std::to_string(instance.value());
      });
}

}  // namespace caa
