#include "caa/action_decl.h"

#include "util/check.h"

namespace caa::action {

ActionDecl::ActionDecl(ActionId id, std::string name, ex::ExceptionTree tree)
    : id_(id), name_(std::move(name)), tree_(std::move(tree)) {
  CAA_CHECK_MSG(id_.valid(), "action declaration needs a valid id");
  tree_.freeze();
}

}  // namespace caa::action
