// Static declaration of a CA action (§3.1).
//
// "The exceptions that can be raised within a CA action are declared
// together with the action declaration" — a declaration owns the action's
// exception (resolution) tree, frozen before use, plus the declared role
// count. Instances (runtime executions, including nested ones and retries)
// are created from declarations by the ActionManager.
#pragma once

#include <memory>
#include <string>

#include "ex/exception_tree.h"
#include "util/ids.h"

namespace caa::action {

class ActionDecl {
 public:
  ActionDecl(ActionId id, std::string name, ex::ExceptionTree tree);

  [[nodiscard]] ActionId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ex::ExceptionTree& tree() const { return tree_; }

 private:
  ActionId id_;
  std::string name_;
  ex::ExceptionTree tree_;
};

}  // namespace caa::action
