// Action declaration registry and instance factory (§4: "a (centralized or
// decentralized) manager of CA actions").
//
// The manager is pure bookkeeping: it assigns globally unique instance ids
// and records membership; all synchronization (entry buffering, exit
// barrier, resolution) is performed by the participants themselves with
// messages, as in the paper's decentralized reading.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "caa/action_instance.h"
#include "net/group.h"

namespace caa::action {

/// Test-only switches that re-introduce protocol bugs fixed by the chaos
/// campaigns (PR 5), each behind its own flag. The systematic explorer
/// (src/explore/) asserts it rediscovers both deterministically — the
/// planted-bug gate that proves exhaustive exploration actually bites.
/// Never set outside tests.
struct DebugBugs {
  /// Committee exclusion divergence: skip the crash-sync barrier and keep
  /// crashed raisers in the local exception lists, so survivors that heard
  /// different subsets of a dead peer's raises resolve different covers.
  bool exclusion_divergence = false;
  /// Lost final Leave: drop belated ActionDone messages addressed to a dead
  /// scope instead of replaying the recorded final Leave, so a member that
  /// missed the Leave when the exit leader crashed re-announces forever.
  bool lost_final_leave = false;
};

class ActionManager {
 public:
  explicit ActionManager(net::GroupDirectory& groups) : groups_(groups) {}

  /// Declares a new action type with its exception tree (frozen here).
  const ActionDecl& declare(std::string name, ex::ExceptionTree tree);

  [[nodiscard]] const ActionDecl* find(std::string_view name) const;

  /// Creates a runtime instance over `members` (any order; sorted here).
  /// `parent` is the containing instance for a nested action, or invalid.
  /// Nested members must be a subset of the parent's members — checked.
  const InstanceInfo& create_instance(const ActionDecl& decl,
                                      std::vector<ObjectId> members,
                                      ActionInstanceId parent =
                                          ActionInstanceId::invalid());

  [[nodiscard]] const InstanceInfo& info(ActionInstanceId instance) const;
  [[nodiscard]] bool known(ActionInstanceId instance) const {
    return instances_.contains(instance);
  }

  /// Overlay dissemination defaults stamped onto every instance created
  /// afterwards (see WorldConfig::overlay).
  void set_overlay_defaults(const overlay::OverlayParams& params) {
    overlay_defaults_ = params;
  }
  [[nodiscard]] const overlay::OverlayParams& overlay_defaults() const {
    return overlay_defaults_;
  }

  /// Exit-protocol default stamped onto every instance created afterwards
  /// (see WorldConfig::exit_protocol).
  void set_exit_defaults(exit::ExitKind kind) { exit_default_ = kind; }
  [[nodiscard]] exit::ExitKind exit_defaults() const { return exit_default_; }

  /// When on, participants ACK applied final Leaves so the per-scope leave
  /// records can be garbage-collected (see WorldConfig::exit_gc).
  void set_exit_gc(bool on) { exit_gc_ = on; }
  [[nodiscard]] bool exit_gc() const { return exit_gc_; }

  /// Coordination-avoidance default stamped onto every instance created
  /// afterwards (see WorldConfig::resolve_avoidance).
  void set_resolve_avoidance(bool on) { resolve_avoidance_ = on; }
  [[nodiscard]] bool resolve_avoidance() const { return resolve_avoidance_; }

  /// Census probe delay stamped onto every instance created afterwards
  /// (see WorldConfig::avoidance_probe_delay).
  void set_avoidance_probe_delay(sim::Time delay) {
    avoidance_probe_delay_ = delay;
  }

  /// Test-only planted-bug switches (see DebugBugs / WorldConfig).
  void set_debug_bugs(const DebugBugs& bugs) { debug_bugs_ = bugs; }
  [[nodiscard]] const DebugBugs& debug_bugs() const { return debug_bugs_; }

 private:
  net::GroupDirectory& groups_;
  overlay::OverlayParams overlay_defaults_;
  exit::ExitKind exit_default_ = exit::ExitKind::kBarrier;
  bool exit_gc_ = false;
  bool resolve_avoidance_ = false;
  sim::Time avoidance_probe_delay_ = 250;
  DebugBugs debug_bugs_;
  std::vector<std::unique_ptr<ActionDecl>> decls_;
  std::unordered_map<ActionInstanceId, std::unique_ptr<InstanceInfo>>
      instances_;
  std::uint64_t next_instance_ = 1;
  std::uint32_t next_action_ = 1;
};

}  // namespace caa::action
