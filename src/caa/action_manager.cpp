#include "caa/action_manager.h"

#include <algorithm>

#include "util/check.h"

namespace caa::action {

const ActionDecl& ActionManager::declare(std::string name,
                                         ex::ExceptionTree tree) {
  CAA_CHECK_MSG(find(name) == nullptr, "duplicate action name");
  decls_.push_back(std::make_unique<ActionDecl>(
      ActionId(next_action_++), std::move(name), std::move(tree)));
  return *decls_.back();
}

const ActionDecl* ActionManager::find(std::string_view name) const {
  for (const auto& d : decls_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

const InstanceInfo& ActionManager::create_instance(const ActionDecl& decl,
                                                   std::vector<ObjectId>
                                                       members,
                                                   ActionInstanceId parent) {
  CAA_CHECK_MSG(!members.empty(), "instance needs members");
  std::sort(members.begin(), members.end());
  CAA_CHECK_MSG(std::adjacent_find(members.begin(), members.end()) ==
                    members.end(),
                "duplicate instance member");
  if (parent.valid()) {
    const InstanceInfo& p = info(parent);
    for (ObjectId m : members) {
      CAA_CHECK_MSG(p.is_member(m),
                    "nested action member not in containing action (§3.1)");
    }
  }
  auto inst = std::make_unique<InstanceInfo>();
  inst->instance = ActionInstanceId(next_instance_++);
  inst->decl = &decl;
  inst->members = std::move(members);
  inst->parent = parent;
  inst->group = groups_.create(inst->members);  // closed group per §4.5
  inst->overlay = overlay_defaults_;
  inst->use_tree = overlay_defaults_.tree_for(inst->members.size());
  inst->exit = exit_default_;
  inst->resolve_avoidance = resolve_avoidance_;
  inst->avoidance_probe_delay = avoidance_probe_delay_;
  const InstanceInfo& ref = *inst;
  instances_.emplace(inst->instance, std::move(inst));
  return ref;
}

const InstanceInfo& ActionManager::info(ActionInstanceId instance) const {
  auto it = instances_.find(instance);
  CAA_CHECK_MSG(it != instances_.end(), "unknown action instance");
  return *it->second;
}

}  // namespace caa::action
