// A CA-action participant: the paper's "participating object".
//
// A Participant is a distributed object that can enter (possibly nested) CA
// action instances, raise exceptions, run the §4.2 resolution protocol with
// its peers, abort nested action chains innermost-first via abortion
// handlers, perform forward recovery (handlers) and backward recovery
// (checkpoint restore + retry), and synchronize exit through a leader-based
// barrier.
//
// Implementation notes relative to the paper's pseudo-code:
//  * SA_i is `contexts_` (an ex::ContextStack); LE/LO/LP live inside one
//    resolve::ResolverCore per context per resolution round.
//  * Rounds: the paper's "wait until all exception messages are handled" and
//    list-emptying are made precise by tagging every protocol message with a
//    round number. Stale-round Exception/NestedCompleted messages are still
//    acknowledged (their senders need the ACKs to reach Ready) but not
//    recorded; future-round messages are buffered.
//  * Belated participants: messages scoped to an instance this object has
//    not entered are buffered and replayed on entry ("process messages
//    having arrived"); HaveNested(O_j) purges buffered messages from O_j
//    ("clean up messages related to nested actions"); aborted instances are
//    tombstoned and their late messages dropped.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "caa/action_manager.h"
#include "ex/context_stack.h"
#include "exit/exit_protocol.h"
#include "exit/leave_log.h"
#include "obs/watchdog.h"
#include "overlay/disseminator.h"
#include "resolve/avoidance.h"
#include "resolve/resolver_core.h"
#include "rt/managed_object.h"

namespace caa::action {

/// Per-entry configuration: how this participant behaves inside one action.
struct EnterConfig {
  /// Handlers for the action's declared exceptions. The paper requires a
  /// handler for every declared exception (§3.3); enter() enforces it.
  /// Use uniform_handlers() or HandlerTable::fill_defaults() to build.
  ex::HandlerTable handlers;

  /// Abortion handler (§4.1). Default: succeeds instantly, signals nothing.
  ex::AbortionHandler abortion_handler;

  /// Optional body, run (via a zero-delay event) on entry and again on each
  /// backward-recovery attempt; receives the attempt number (0-based).
  std::function<void(std::uint32_t attempt)> body;

  /// Local acceptance test, evaluated at complete(); default: accept.
  std::function<bool()> acceptance;

  /// Backward recovery hooks (§2.2 conversation semantics).
  std::function<void()> save_checkpoint;
  std::function<void()> restore_checkpoint;

  /// Failure exception signalled to the containing action when attempts are
  /// exhausted after acceptance failures. Must belong to the *containing*
  /// action's tree. Invalid + outermost => reported via the failure sink.
  ExceptionId failure_signal;

  /// Max attempts including the first (>= 1). Attempts beyond the first are
  /// backward recovery retries ("alternates").
  std::uint32_t max_attempts = 1;

  /// Simulated time consumed before a resolved handler's body starts.
  sim::Time handler_dispatch_delay = 0;

  /// Observation hooks (tests, examples, benches).
  std::function<void(ExceptionId resolved)> on_handler;
  std::function<void(LeaveOutcome, ExceptionId signal)> on_leave;

  /// Transaction integration: invoked on the leader when the instance
  /// commits / is aborted-or-restored-or-signalled.
  std::function<void()> on_commit;
  std::function<void()> on_abort;

  // ---- Crash-tolerance extension (fail-stop; §4.4) --------------------

  /// Number of top-ranked live raisers that resolve and commit. 1 (the
  /// default) is the paper's base algorithm; k > 1 tolerates k-1 resolver
  /// crashes at a constant-factor message cost.
  std::uint32_t resolver_committee = 1;

  /// When valid: raised in this action if a member crashes while this
  /// participant is still working — turning peer failure into forward
  /// recovery among the survivors.
  ExceptionId crash_exception;

  // ---- Coordination avoidance (src/resolve/avoidance.h) ---------------

  /// Overrides the commutative-exception fast path for this entry. Unset
  /// (the default) inherits the instance's stamped selection
  /// (WorldConfig.resolve_avoidance). A member with it off still answers
  /// census probes — the override only gates *initiating* fast raises.
  std::optional<bool> resolve_avoidance;

  // ---- Exit-protocol seam (src/exit/) ---------------------------------

  /// Overrides the exit/commit protocol for this entry. Unset (the default)
  /// inherits the instance's stamped selection (WorldConfig.exit_protocol).
  /// Every member of a committee must end up with the same protocol.
  std::optional<exit::ExitKind> exit_protocol;

  /// Test hook: builds the exit protocol instead of make_exit_protocol().
  /// Lets tests interpose a fake/instrumented ExitProtocol at the seam.
  std::function<std::unique_ptr<exit::ExitProtocol>(
      exit::ExitHost&, const InstanceInfo&)>
      exit_factory;

  class Builder;
  /// Starts a fluent build from the mandatory handler table:
  ///   EnterConfig::with(handlers).body(...).acceptance(...).retries(3, f)
  /// The result converts to EnterConfig wherever one is expected; invalid
  /// combinations are rejected by enter()'s validation.
  static Builder with(ex::HandlerTable handlers);
};

/// Chainable constructor for EnterConfig. Every method sets one field and
/// returns the builder, so entry configuration reads as one expression
/// instead of a 12-field aggregate fill.
class EnterConfig::Builder {
 public:
  explicit Builder(ex::HandlerTable handlers) {
    config_.handlers = std::move(handlers);
  }

  Builder& abortion(ex::AbortionHandler handler) {
    config_.abortion_handler = std::move(handler);
    return *this;
  }
  Builder& body(std::function<void(std::uint32_t attempt)> fn) {
    config_.body = std::move(fn);
    return *this;
  }
  Builder& acceptance(std::function<bool()> test) {
    config_.acceptance = std::move(test);
    return *this;
  }
  Builder& checkpoints(std::function<void()> save,
                       std::function<void()> restore) {
    config_.save_checkpoint = std::move(save);
    config_.restore_checkpoint = std::move(restore);
    return *this;
  }
  /// Backward recovery: `attempts` tries in total (>= 1); when exhausted,
  /// `failure_signal` (if valid) is signalled to the containing action.
  Builder& retries(std::uint32_t attempts,
                   ExceptionId failure_signal = ExceptionId::invalid()) {
    config_.max_attempts = attempts;
    config_.failure_signal = failure_signal;
    return *this;
  }
  Builder& handler_delay(sim::Time delay) {
    config_.handler_dispatch_delay = delay;
    return *this;
  }
  Builder& on_handler(std::function<void(ExceptionId)> fn) {
    config_.on_handler = std::move(fn);
    return *this;
  }
  Builder& on_leave(std::function<void(LeaveOutcome, ExceptionId)> fn) {
    config_.on_leave = std::move(fn);
    return *this;
  }
  Builder& on_commit(std::function<void()> fn) {
    config_.on_commit = std::move(fn);
    return *this;
  }
  Builder& on_abort(std::function<void()> fn) {
    config_.on_abort = std::move(fn);
    return *this;
  }
  Builder& committee(std::uint32_t resolvers) {
    config_.resolver_committee = resolvers;
    return *this;
  }
  Builder& on_peer_crash(ExceptionId exception) {
    config_.crash_exception = exception;
    return *this;
  }
  Builder& resolve_avoidance(bool on) {
    config_.resolve_avoidance = on;
    return *this;
  }
  Builder& exit_protocol(exit::ExitKind kind) {
    config_.exit_protocol = kind;
    return *this;
  }
  Builder& exit_factory(
      std::function<std::unique_ptr<exit::ExitProtocol>(
          exit::ExitHost&, const InstanceInfo&)>
          factory) {
    config_.exit_factory = std::move(factory);
    return *this;
  }

  [[nodiscard]] EnterConfig build() const& { return config_; }
  [[nodiscard]] EnterConfig build() && { return std::move(config_); }
  operator EnterConfig() const& { return config_; }        // NOLINT
  operator EnterConfig() && { return std::move(config_); }  // NOLINT

 private:
  EnterConfig config_;
};

inline EnterConfig::Builder EnterConfig::with(ex::HandlerTable handlers) {
  return Builder(std::move(handlers));
}

/// Builds a handler table with `result` for every exception in `tree`.
ex::HandlerTable uniform_handlers(const ex::ExceptionTree& tree,
                                  ex::HandlerResult result);

/// A record of one handled (resolved) exception, for assertions.
struct HandledRecord {
  ActionInstanceId instance;
  std::uint32_t round = 0;  // round that was resolved
  ExceptionId resolved;
  sim::Time at = 0;
};

/// A record of one executed abortion handler.
struct AbortRecord {
  ActionInstanceId instance;
  ExceptionId signalled;  // invalid if none
  sim::Time at = 0;
};

class Participant : public rt::ManagedObject, private exit::ExitHost {
 public:
  explicit Participant(ActionManager& manager) : manager_(manager) {}

  // ---- Scenario-facing API -------------------------------------------

  /// Enters an action instance (asynchronous entry, §4.1). Returns false —
  /// modelling a belated participant that "will never be able to enter" —
  /// when a resolution or abortion is already in progress at this object.
  bool enter(ActionInstanceId instance, EnterConfig config);

  /// Raises a declared exception in the active action. If this object is no
  /// longer Normal (already suspended/exceptional) the raise is superseded
  /// and ignored, mirroring an interrupted application (counted under
  /// caa.raise_superseded).
  void raise(ExceptionId exception, std::string message = {});
  void raise(std::string_view exception_name, std::string message = {});

  /// Declares this participant's part of the active action finished.
  /// `acceptance_ok` is AND-ed with the configured acceptance test. Ignored
  /// (superseded) when a resolution is in progress.
  void complete(bool acceptance_ok = true);

  // ---- Introspection ----------------------------------------------------

  [[nodiscard]] bool in_action() const { return !contexts_.empty(); }
  [[nodiscard]] ActionInstanceId active_instance() const;
  [[nodiscard]] std::size_t nesting_depth() const { return contexts_.size(); }
  [[nodiscard]] resolve::ResolverCore::State resolver_state() const;

  /// True when this participant has finished its part of the active action
  /// and is waiting at the acceptance line (it can no longer raise).
  [[nodiscard]] bool at_acceptance_line() const;
  [[nodiscard]] std::uint32_t round_of(ActionInstanceId instance) const;
  [[nodiscard]] std::uint32_t attempt_of(ActionInstanceId instance) const;

  [[nodiscard]] const std::vector<HandledRecord>& handled() const {
    return handled_;
  }
  /// Test-only: plants a handled record as if a commit had been applied.
  /// Exists so the invariant oracle's agreement check can be exercised on a
  /// minimal divergence without reproducing a full protocol bug.
  void debug_inject_handled(const HandledRecord& record) {
    handled_.push_back(record);
  }
  [[nodiscard]] const std::vector<AbortRecord>& aborts() const {
    return aborts_;
  }

  /// Invoked (on the leader) when an outermost action fails terminally.
  void set_failure_sink(
      std::function<void(ActionInstanceId, ExceptionId)> sink) {
    failure_sink_ = std::move(sink);
  }

  /// Crash-tolerance extension: informs this participant that `peer` has
  /// crashed (fail-stop). Typically driven by an rt::HeartbeatMonitor. The
  /// peer stops counting towards ACKs, nested completions and exit
  /// barriers; if it was the exit-barrier leader, leadership moves to the
  /// next live member and pending Dones are re-sent; if crash_exception is
  /// configured and this participant is still working, it is raised.
  void notify_peer_crashed(ObjectId peer);

  /// Crash-tolerance extension: informs this participant that a previously
  /// crashed `peer` restarted. The peer stays excluded from the instances
  /// it crashed out of (their engines remember), but its messages are
  /// accepted again and it counts as a regular member of *new* instances.
  void notify_peer_restarted(ObjectId peer);

  /// Crash-tolerance extension, restart side: invoked (by the World's node
  /// hook) when this participant's node comes back up after a crash. A
  /// fail-stop crash loses all volatile action state, so every open context
  /// is abandoned innermost-first (tombstoned like an abort — counted under
  /// caa.restart_abandoned) and buffered belated messages are discarded.
  /// The restarted object may enter *new* action instances afterwards;
  /// rejoining the instances it crashed out of is not supported (survivors
  /// have excluded it).
  void on_restarted();

  /// Scopes this participant abandoned in on_restarted(): a commit it
  /// applied before the crash is volatile state the survivors can never
  /// learn, so per-scope agreement checks (fault::Oracle) skip these.
  [[nodiscard]] const std::set<ActionInstanceId>& abandoned_scopes() const {
    return abandoned_;
  }

  /// This participant's overlay dissemination engine (tree-mode scopes only;
  /// exposed for tests asserting tree determinism and healing).
  [[nodiscard]] const overlay::Disseminator& overlay() const {
    return overlay_;
  }

  /// Final-Leave records of exited scopes (replayed to members whose Leave
  /// copy was lost; GC'd by LeaveAcks when WorldConfig.exit_gc is on).
  /// Exposed for the retained-records gauge and tests.
  [[nodiscard]] const exit::LeaveLog& leave_log() const { return leave_log_; }

  /// The exit protocol currently driving `scope` at this participant, or
  /// nullptr when the scope is not open here (introspection for tests).
  [[nodiscard]] const exit::ExitProtocol* exit_protocol_of(
      ActionInstanceId scope) const;

  /// Liveness introspection (obs::Watchdog describer): fills `report` with
  /// this participant's view of `scope` — the stage it believes the scope
  /// is in (resolution state, avoidance census, exit protocol, handler) and
  /// the peers it is waiting to hear from. Returns false when the scope is
  /// not open here.
  bool describe_scope(ActionInstanceId scope,
                      obs::WatchdogReport& report) const;

  /// Fail-stop crash of this participant's node (World's down-hook): its
  /// open scopes must not pin the liveness watchdog — the survivors exclude
  /// it and can finish without it. Idempotent; the holds re-arm after
  /// on_restarted() for instances entered post-restart.
  void wd_release_open_scopes();

  // ---- rt::ManagedObject --------------------------------------------------

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

 private:
  struct RawMsg {
    ObjectId from;
    net::MsgKind kind;
    net::Bytes payload;
  };

  /// Dynamic per-context state (the static part lives in ex::Context).
  struct Dyn {
    const InstanceInfo* info = nullptr;
    EnterConfig config;
    std::unique_ptr<resolve::ResolverCore> engine;
    std::uint32_t round = 0;
    std::uint32_t attempt = 0;
    bool aborting = false;   // part of an abort chain in progress
    bool done_sent = false;  // waiting at the acceptance line (§2.2): this
                             // participant's part of the attempt is finished
                             // and it can no longer raise or re-complete
    bool handling = false;   // a resolved handler has taken over this
                             // participant's duties (termination model,
                             // §3.1): no raises, entries or completions
                             // from the superseded body until the handler
                             // completes the action
    std::set<ObjectId> excluded;  // crashed members (extension)
    // The pluggable exit/commit protocol driving this scope's exit
    // (src/exit/): owns the Done collection state that used to be inlined
    // here. Created in enter(), retired (not destroyed) at pop_context.
    std::unique_ptr<exit::ExitProtocol> exit;
    // Coordination-avoidance coordinator (src/resolve/avoidance.h).
    // Created lazily on the first fast raise OR the first incoming
    // kFastCover, so members whose per-entry override disables initiation
    // still answer the census.
    std::unique_ptr<resolve::AvoidanceCoordinator> avoidance;
    // CrashSync barrier (extension): the result of this participant's most
    // recent finished round, advertised to survivors so a resolution the
    // crashed resolver committed is not lost with it.
    std::optional<resolve::CommitMsg> last_commit;
    // Members whose CrashSync status has not been heard yet; while
    // non-empty the engine's commit gate stays on.
    std::set<ObjectId> sync_waiting;
    // A raise_from_suspended promotion deferred until the barrier drains
    // (the sync may surface a commit that makes promotion unnecessary).
    bool promote_pending = false;
    // When this participant raised (explicitly or by promotion): start of
    // the "resolve.latency" histogram sample taken when its round finishes.
    // Unconditional (not obs-gated) so campaign percentile rows exist for
    // un-observed worlds; histograms never feed behaviour checksums.
    sim::Time raise_time = -1;
    // Structured-trace spans (valid only while observability is enabled):
    // the action's lifetime at this participant, the acceptance-line wait,
    // and the currently running resolved handler.
    obs::SpanId action_span = obs::SpanId::invalid();
    obs::SpanId barrier_span = obs::SpanId::invalid();
    obs::SpanId handler_span = obs::SpanId::invalid();
    std::vector<RawMsg> future;  // messages for rounds we have not reached
  };

  // Routing.
  void route_resolution(ObjectId from, net::MsgKind kind,
                        const net::Bytes& payload);
  void deliver_to_engine(Dyn& dyn, bool scope_is_active, ObjectId from,
                         net::MsgKind kind, const net::Bytes& payload);
  void on_exit_msg(ObjectId from, net::MsgKind kind,
                   const net::Bytes& payload);
  void on_leave_ack(ObjectId from, const net::Bytes& payload);
  void on_leave_msg(const net::Bytes& payload);
  void on_crash_sync(ObjectId from, const net::Bytes& payload);
  void on_fast_cover(ObjectId from, const net::Bytes& payload);
  void ack_stale(ObjectId from, net::MsgKind kind, ActionInstanceId scope,
                 std::uint32_t round);
  void drain_future(ActionInstanceId scope);
  void drain_pending(ActionInstanceId scope);
  void purge_pending_from(ObjectId peer);

  // Resolution plumbing.
  resolve::ResolverCore::Hooks make_hooks(ActionInstanceId scope);
  /// The scope's avoidance coordinator, created on first use (every member
  /// must handle census traffic regardless of its own initiation override).
  resolve::AvoidanceCoordinator& ensure_avoidance(Dyn& dyn,
                                                  ActionInstanceId scope);
  void multicast(const InstanceInfo& info, net::MsgKind kind,
                 const net::Bytes& payload);

  // Overlay dissemination (tree-mode scopes; src/overlay/).
  void ensure_overlay(const InstanceInfo& info);
  void on_relay(ObjectId from, const net::Bytes& payload);
  void on_round_finished(ActionInstanceId scope, ExceptionId resolved,
                         ObjectId resolver);
  void invoke_handler(ActionInstanceId scope, ExceptionId resolved,
                      std::uint32_t resolved_round);

  // CrashSync barrier (extension; see notify_peer_crashed): after excluding
  // a crashed member from `scope`, push our resolution status to every
  // remaining live member and gate new commits until all have answered.
  void begin_crash_sync(ActionInstanceId scope, Dyn& dyn, ObjectId crashed);
  void crash_sync_heard(ActionInstanceId scope, Dyn& dyn, ObjectId from);
  [[nodiscard]] resolve::CrashSyncMsg sync_status(
      const Dyn& dyn, ActionInstanceId scope, ObjectId crashed,
      resolve::CrashSyncMsg::Phase phase) const;
  /// Runs a deferred suspended-survivor promotion once its preconditions
  /// settle (barrier drained, abortion finished); clears the flag if they
  /// no longer hold (e.g. the sync delivered a commit or a live raiser).
  void maybe_promote(ActionInstanceId scope);

  // Abortion of nested chains (innermost-first, §4.1). A running chain can
  // be *retargeted* to an outer action when an outer resolution supersedes
  // the one that started the abortion (§3.3 point 4).
  struct AbortChain {
    ActionInstanceId target;
    std::function<void(ExceptionId)> done;
  };
  void abort_chain_until(ActionInstanceId scope,
                         std::function<void(ExceptionId)> done);
  void abort_step();

  // Exit (delegated to the scope's pluggable exit::ExitProtocol).
  void complete_internal(ActionInstanceId scope, bool ok, ExceptionId signal);
  void apply_leave(const LeaveMsg& m);
  void record_leave(const Dyn& dyn, const LeaveMsg& m);
  void pop_context(ActionInstanceId scope, bool dead);

  // ---- exit::ExitHost (the seam the exit protocols talk back through) ----
  [[nodiscard]] ObjectId exit_self() const override;
  [[nodiscard]] std::uint32_t exit_round(ActionInstanceId scope)
      const override;
  [[nodiscard]] const std::set<ObjectId>& exit_excluded(ActionInstanceId
                                                            scope)
      const override;
  [[nodiscard]] bool exit_aborting(ActionInstanceId scope) const override;
  [[nodiscard]] bool exit_resolution_idle(ActionInstanceId scope)
      const override;
  void exit_unicast(ActionInstanceId scope, ObjectId to, net::MsgKind kind,
                    net::Bytes payload) override;
  void exit_unicast_many(ActionInstanceId scope,
                         const std::vector<ObjectId>& targets,
                         net::MsgKind kind,
                         const net::Bytes& payload) override;
  void exit_multicast(ActionInstanceId scope, net::MsgKind kind,
                      const net::Bytes& payload) override;
  void exit_announce_live(ActionInstanceId scope, net::MsgKind kind,
                          const net::Bytes& payload) override;
  [[nodiscard]] LeaveMsg exit_decide(ActionInstanceId scope,
                                     std::uint32_t round,
                                     const std::vector<DoneMsg>& dones)
      override;
  void exit_deliver_leave(const LeaveMsg& m) override;
  void exit_trace(std::string_view event, std::string detail) override;

  // Helpers.
  [[nodiscard]] std::unique_ptr<resolve::ResolverCore> make_engine(
      Dyn& dyn, ActionInstanceId scope);
  [[nodiscard]] ObjectId live_leader(const Dyn& dyn) const;
  [[nodiscard]] Dyn* find_dyn(ActionInstanceId scope);
  [[nodiscard]] const Dyn& dyn_of(ActionInstanceId scope) const;
  [[nodiscard]] bool is_live(ActionInstanceId scope) const;
  void run_guarded(ActionInstanceId scope, sim::Time delay,
                   std::function<void()> fn);
  void trace(std::string_view event, std::string detail = {});
  /// The observability hub when attached AND enabled, else nullptr — the
  /// one branch every instrumentation site pays.
  [[nodiscard]] obs::Observability* observing() const;

  // Health gauges + liveness watchdog (src/obs/). Gauge pushes recompute
  // this participant's contribution and push the delta; watchdog notes are
  // one-compare no-ops while disarmed and compile out entirely under
  // CAA_OBS_DISABLED. None of these touch counters or schedule events, so
  // behaviour checksums are unaffected.
  void sync_caa_health();
  void wd_open(ActionInstanceId scope);
  void wd_progress(ActionInstanceId scope);
  void wd_closed(ActionInstanceId scope);

  ActionManager& manager_;
  ex::ContextStack contexts_;
  std::map<ActionInstanceId, Dyn> dyn_;
  std::map<ActionInstanceId, std::vector<RawMsg>> pending_;  // belated
  std::set<ActionInstanceId> dead_;
  std::set<ActionInstanceId> abandoned_;  // scopes wiped by our own restarts
  // Final Leave of every scope this participant exited through an exit
  // protocol. A member whose Leave copy died with the old leader re-sends
  // its Done/vote on re-election; the recipient may have left already, so
  // it answers from this record instead of dropping the message (the sender
  // is released by the same outcome everyone else applied). With
  // WorldConfig.exit_gc the records are ACK-collected (exit/leave_log.h).
  exit::LeaveLog leave_log_;
  // Exit protocols whose scope tore down while their frames may still be on
  // the stack (the decide path ends in exit_deliver_leave, which pops the
  // context). Retired here instead of destroyed; swept at the next quiet
  // entry into this participant.
  std::vector<std::unique_ptr<exit::ExitProtocol>> retired_exits_;
  std::set<ObjectId> crashed_;  // peers known to have crashed (extension)
  overlay::Disseminator overlay_;  // relay engine for tree-mode scopes
  bool overlay_ready_ = false;     // configure() ran (identity bound)
  std::optional<AbortChain> abort_chain_;
  std::vector<HandledRecord> handled_;
  std::vector<AbortRecord> aborts_;
  std::function<void(ActionInstanceId, ExceptionId)> failure_sink_;
  // Last-pushed health-gauge contributions (delta tracking).
  std::int64_t scopes_gauge_ = 0;
  std::int64_t exit_barrier_gauge_ = 0;
  std::int64_t exit_paxos_gauge_ = 0;
  // Watchdog holds already released by a crash (wd_release_open_scopes):
  // the restart's pop_context must not double-release them.
  bool wd_released_ = false;
};

}  // namespace caa::action
