// Runtime action instances and the entry/exit coordination messages.
//
// An InstanceInfo is the immutable description every participant receives
// when it enters one execution of a CA action: the instance id (globally
// unique — nested actions and retries get fresh ids), the declaration, the
// sorted member list (the §4.1 ordering), the designated leader (smallest
// member id; used only for exit synchronization, not for resolution), and
// the parent instance for nesting.
#pragma once

#include <vector>

#include "caa/action_decl.h"
#include "exit/exit_kind.h"
#include "net/message.h"
#include "overlay/params.h"
#include "sim/event_queue.h"
#include "util/ids.h"
#include "util/status.h"

namespace caa::action {

struct InstanceInfo {
  ActionInstanceId instance;
  const ActionDecl* decl = nullptr;
  std::vector<ObjectId> members;  // sorted
  GroupId group;                  // closed communication group (§4.5)
  ActionInstanceId parent;        // invalid for an outermost action

  /// Overlay dissemination decision, stamped at create_instance from the
  /// manager's defaults so every member derives the identical relay tree
  /// from this shared record (src/overlay/).
  bool use_tree = false;
  overlay::OverlayParams overlay;

  /// Exit/commit protocol every member of this instance synchronizes its
  /// exit through, stamped at create_instance from the manager's defaults
  /// (WorldConfig.exit_protocol); a participant's EnterConfig may override
  /// its own selection. All members must agree — mixed selections within
  /// one committee are a scenario bug.
  exit::ExitKind exit = exit::ExitKind::kBarrier;

  /// Coordination avoidance for this instance's resolutions, stamped at
  /// create_instance from the manager's defaults (WorldConfig.
  /// resolve_avoidance); a participant's EnterConfig may override its own
  /// selection — a member with it off simply answers census probes and
  /// never initiates fast rounds.
  bool resolve_avoidance = false;

  /// Census probe delay for this instance's fast rounds (see
  /// WorldConfig::avoidance_probe_delay).
  sim::Time avoidance_probe_delay = 250;

  [[nodiscard]] ObjectId leader() const { return members.front(); }
  [[nodiscard]] bool is_member(ObjectId o) const;
  [[nodiscard]] bool is_outermost() const { return !parent.valid(); }
};

/// Exit-barrier outcome decided by the leader.
enum class LeaveOutcome : std::uint8_t {
  kCommitted = 0,  // all participants done and accepted: action succeeds
  kSignalled = 1,  // handlers failed: signal an exception to the container
  kRestored = 2,   // acceptance test failed: backward recovery, new attempt
};

/// Participant -> leader: "my part is finished".
/// `ok=false` means the local acceptance test failed (requests backward
/// recovery); `signal` (when valid) means this participant's handler asked
/// to signal that exception to the containing action.
struct DoneMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;  // resolution-round/attempt tag (see Participant)
  ObjectId sender;
  bool ok = true;
  ExceptionId signal;
};

/// Leader -> all members: the exit decision.
struct LeaveMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  LeaveOutcome outcome = LeaveOutcome::kCommitted;
  ExceptionId signal;        // valid iff outcome == kSignalled
  std::uint32_t attempt = 0; // next attempt number for kRestored
};

net::Bytes encode(const DoneMsg& m);
net::Bytes encode(const LeaveMsg& m);
Result<DoneMsg> decode_done(const net::Bytes& bytes);
Result<LeaveMsg> decode_leave(const net::Bytes& bytes);

}  // namespace caa::action
