#include "caa/action_instance.h"

#include <algorithm>

#include "net/wire.h"

namespace caa::action {

bool InstanceInfo::is_member(ObjectId o) const {
  return std::binary_search(members.begin(), members.end(), o);
}

net::Bytes encode(const DoneMsg& m) {
  net::WireWriter w;
  w.u64(m.scope.value());
  w.u32(m.round);
  w.u32(m.sender.value());
  w.boolean(m.ok);
  w.u32(m.signal.value());
  return std::move(w).take();
}

net::Bytes encode(const LeaveMsg& m) {
  net::WireWriter w;
  w.u64(m.scope.value());
  w.u32(m.round);
  w.u8(static_cast<std::uint8_t>(m.outcome));
  w.u32(m.signal.value());
  w.u32(m.attempt);
  return std::move(w).take();
}

Result<DoneMsg> decode_done(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto scope = r.u64();
  if (!scope.is_ok()) return scope.status();
  auto round = r.u32();
  if (!round.is_ok()) return round.status();
  auto sender = r.u32();
  if (!sender.is_ok()) return sender.status();
  auto ok = r.boolean();
  if (!ok.is_ok()) return ok.status();
  auto signal = r.u32();
  if (!signal.is_ok()) return signal.status();
  return DoneMsg{ActionInstanceId(scope.value()), round.value(),
                 ObjectId(sender.value()), ok.value(),
                 ExceptionId(signal.value())};
}

Result<LeaveMsg> decode_leave(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto scope = r.u64();
  if (!scope.is_ok()) return scope.status();
  auto round = r.u32();
  if (!round.is_ok()) return round.status();
  auto outcome = r.u8();
  if (!outcome.is_ok()) return outcome.status();
  if (outcome.value() > 2) return Status::invalid_argument("bad outcome");
  auto signal = r.u32();
  if (!signal.is_ok()) return signal.status();
  auto attempt = r.u32();
  if (!attempt.is_ok()) return attempt.status();
  return LeaveMsg{ActionInstanceId(scope.value()), round.value(),
                  static_cast<LeaveOutcome>(outcome.value()),
                  ExceptionId(signal.value()), attempt.value()};
}

}  // namespace caa::action
