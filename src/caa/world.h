// World: one self-contained simulated distributed system.
//
// Owns the simulator, network, name service, group directory, action
// manager, per-node runtimes and participants. Tests, benchmarks and
// examples build scenarios against this facade:
//
//   World w;
//   auto& o1 = w.add_participant("O1");
//   auto& o2 = w.add_participant("O2");
//   const auto& decl = w.actions().declare("A1", make_tree());
//   const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
//   o1.enter(a1.instance, cfg1); o2.enter(a1.instance, cfg2);
//   w.at(1000, [&] { o1.raise("e1"); });
//   w.run();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "caa/action_manager.h"
#include "caa/participant.h"
#include "net/group.h"
#include "net/network.h"
#include "net/reliable_link.h"
#include "overlay/params.h"
#include "rt/runtime.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace caa {

struct WorldConfig {
  net::LinkParams link = net::LinkParams::ideal();
  std::uint64_t seed = 42;
  /// Use the reliable (retransmitting) transport instead of the direct one.
  /// Required when `link` has non-zero loss.
  bool reliable_transport = false;
  net::ReliableTransport::Options reliable;
  /// Record flat protocol narratives in trace() (tests assert on them).
  bool trace = false;
  /// Enable structured observability: spans (action / round / abort /
  /// barrier / txn), per-round protocol tallies, histograms. Off by
  /// default — disabled runs record nothing and pay one branch per site.
  bool observe = false;
  /// Keep the causal flight recorder running (obs/flight_recorder.h). On by
  /// default: it is the always-on black box, allocation-free after its one
  /// ring reservation, and never touches behaviour checksums.
  bool flight_recorder = true;
  /// Ring capacity in records when the recorder is on.
  std::size_t flight_recorder_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Overlay dissemination defaults stamped onto every action instance
  /// (src/overlay/). The kAuto default keeps every committee below
  /// tree_threshold on the paper's flat all-to-all protocol.
  overlay::OverlayParams overlay;
  /// Exit/commit protocol stamped onto every action instance (src/exit/):
  /// the paper's leader barrier, or Gray & Lamport's non-blocking Paxos
  /// Commit. Per-entry override: EnterConfig::Builder::exit_protocol().
  exit::ExitKind exit_protocol = exit::ExitKind::kBarrier;
  /// Coordination avoidance (src/resolve/avoidance.h): commutative raise
  /// rounds — every concurrent raise provably joins to one universal cover
  /// in the exception tree — are decided by a leader census over kFastCover
  /// messages and commit with zero Exception/ACK round-trips, falling back
  /// to the paper's full exchange on any conflict, crash, or busy member.
  /// Resolved checksums are identical either way. Per-entry override:
  /// EnterConfig::Builder::resolve_avoidance().
  bool resolve_avoidance = false;
  /// How long a census leader lets reports land before probing silent
  /// members, in simulated ticks. An efficiency knob only (correctness
  /// never depends on it): the default clears one LinkParams::latency_base
  /// + jitter hop, so §4.4-style simultaneous raises all report before the
  /// probe fires and the probe becomes a no-op. Tree-mode scopes should
  /// budget extra relay hops.
  sim::Time avoidance_probe_delay = 250;
  /// Garbage-collect per-scope final-Leave records once every committee
  /// member has ACKed its Leave. Adds one LeaveAck broadcast per member per
  /// exited scope, so it is off by default (existing worlds stay
  /// message-for-message identical); chaos campaigns turn it on.
  bool exit_gc = false;
  /// Virtual-time telemetry (src/obs/timeseries.h): window > 0 arms the
  /// sampler, which snapshots counter/histogram deltas and health-gauge
  /// levels every `telemetry.window` ticks. Sampling is passive (no events
  /// scheduled, no counters written), so behaviour checksums are identical
  /// with it on or off.
  obs::TimeSeriesConfig telemetry;
  /// Liveness watchdog (src/obs/watchdog.h): > 0 arms stall detection — a
  /// scope with no progress for this many virtual ticks (or still open at
  /// quiescence) is diagnosed with phase, awaited members and a causal
  /// tail. Same zero-perturbation contract as the sampler.
  sim::Time watchdog_deadline = 0;
  /// Managed network delivery (net::Network::set_managed): send() parks
  /// packets for an external scheduler instead of sampling latency/faults.
  /// Only the systematic explorer (src/explore/) sets this.
  bool managed_network = false;
  /// Test-only planted protocol bugs (action::DebugBugs). Never set outside
  /// the explorer's planted-bug gates.
  action::DebugBugs debug_bugs;
};

class World {
 public:
  explicit World(WorldConfig config = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] rt::Directory& directory() { return directory_; }
  [[nodiscard]] net::GroupDirectory& groups() { return groups_; }
  [[nodiscard]] action::ActionManager& actions() { return actions_; }
  [[nodiscard]] sim::TraceLog& trace() { return trace_; }

  // ---- Observability / accounting -------------------------------------
  // One facade for everything measured: message tallies by kind, typed
  // counters, histograms, per-action per-round protocol tables (§4.4),
  // structured spans, and the exporters over them.

  [[nodiscard]] obs::Metrics& metrics() { return simulator_.obs().metrics(); }
  [[nodiscard]] const obs::Metrics& metrics() const {
    return simulator_.obs().metrics();
  }
  [[nodiscard]] obs::Observability& observability() {
    return simulator_.obs();
  }
  [[nodiscard]] obs::Tracer& tracer() { return simulator_.obs().tracer(); }

  /// Chrome trace-event JSON of every span/instant recorded so far; load in
  /// chrome://tracing or Perfetto. Deterministic for a given seed.
  [[nodiscard]] std::string chrome_trace() const;
  /// Writes chrome_trace() to `path`. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Plain-text per-action, per-round protocol message report (the §4.4
  /// tables for this run), with action names resolved.
  [[nodiscard]] std::string run_report() const;

  /// The world's causal flight recorder (black box).
  [[nodiscard]] obs::FlightRecorder& recorder() {
    return simulator_.obs().recorder();
  }

  /// The virtual-time sampler (armed iff WorldConfig.telemetry.window > 0).
  [[nodiscard]] obs::TimeSeries& timeseries() {
    return simulator_.obs().timeseries();
  }
  /// The liveness watchdog (armed iff WorldConfig.watchdog_deadline > 0).
  [[nodiscard]] obs::Watchdog& watchdog() {
    return simulator_.obs().watchdog();
  }
  /// The sampler's window table (closed windows + open partial window).
  [[nodiscard]] obs::TimeSeriesTable timeseries_table() const {
    return simulator_.obs().timeseries().table();
  }
  /// Writes timeseries_table().to_json() to `path` (caa-report input).
  /// Returns false on I/O failure.
  bool write_timeseries_json(const std::string& path) const;
  /// Writes the recorder's binary dump (decodable by tools/caa-inspect) to
  /// `path`, stamped with this world's seed and `world_index`. Returns
  /// false on I/O failure.
  bool write_recorder_dump(const std::string& path,
                           std::uint64_t world_index = 0);
  /// Per-(action, round) critical message chains extracted from the
  /// recorder — the §4.4 quantity as a path (obs/causal.h).
  [[nodiscard]] std::string critical_path_report();

  /// Creates a fresh node (own address space) with its runtime.
  NodeId add_node();
  [[nodiscard]] rt::Runtime& runtime(NodeId node);
  /// Nodes created so far (ids are dense: 0 .. node_count()-1).
  [[nodiscard]] std::uint32_t node_count() const { return next_node_; }

  /// Creates a participant on its own fresh node (the common setup: one
  /// object per node, maximizing distribution).
  action::Participant& add_participant(const std::string& name);
  /// Creates a participant on an existing node.
  action::Participant& add_participant(const std::string& name, NodeId node);

  /// Attaches an externally owned object to a node.
  ObjectId attach(rt::ManagedObject& object, std::string name, NodeId node);

  /// All participants created via add_participant, in creation order. The
  /// fault engine and invariant oracles iterate these.
  [[nodiscard]] const std::vector<std::unique_ptr<action::Participant>>&
  participants() const {
    return participants_;
  }

  /// Schedules a scenario step at absolute virtual time `t`.
  void at(sim::Time t, std::function<void()> fn);

  /// Runs the simulation to quiescence; returns events fired.
  std::size_t run(std::size_t max_events = 50'000'000);

  // ---- Failure reporting ----------------------------------------------

  struct Failure {
    ActionInstanceId instance;
    ExceptionId signal;  // may be invalid (generic failure)
  };
  [[nodiscard]] const std::vector<Failure>& failures() const {
    return failures_;
  }

 private:
  void on_node_restarted(NodeId node);

  WorldConfig config_;
  sim::Simulator simulator_;
  net::Network network_;
  rt::Directory directory_;
  net::GroupDirectory groups_;
  action::ActionManager actions_;
  sim::TraceLog trace_;
  std::vector<std::unique_ptr<rt::Runtime>> runtimes_;
  std::vector<std::unique_ptr<action::Participant>> participants_;
  std::vector<Failure> failures_;
  std::uint32_t next_node_ = 0;
  /// Previous thread-active recorder, restored on destruction.
  obs::FlightRecorder* prev_recorder_ = nullptr;
};

}  // namespace caa
