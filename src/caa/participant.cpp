#include "caa/participant.h"

#include <algorithm>

#include "rt/runtime.h"
#include "util/check.h"
#include "util/counters.h"

namespace caa::action {

namespace {
// Accounting handles, interned once per process (hot on the message paths).
const CounterId kCounterRaiseSuperseded = CounterId::of("caa.raise_superseded");
const CounterId kCounterCompleteSuperseded =
    CounterId::of("caa.complete_superseded");
const CounterId kCounterDeadScopeDropped =
    CounterId::of("caa.dead_scope_dropped");
const CounterId kCounterAbortingDropped = CounterId::of("caa.aborting_dropped");
const CounterId kCounterSignalDropped =
    CounterId::of("caa.signal_dropped_resolution_in_progress");
const CounterId kCounterEnterRefusedDead =
    CounterId::of("caa.enter_refused_dead");
const CounterId kCounterEnterRefusedExceptional =
    CounterId::of("caa.enter_refused_exceptional");
const CounterId kCounterUnhandledKind = CounterId::of("caa.unhandled_kind");
const CounterId kCounterStaleRound = CounterId::of("caa.stale_round");
const CounterId kCounterRestartAbandoned =
    CounterId::of("caa.restart_abandoned");
const CounterId kCounterFromCrashedDropped =
    CounterId::of("caa.from_crashed_dropped");
// Leave-record GC accounting (only ever incremented when WorldConfig.exit_gc
// is on, so checksum-pinned worlds never see them).
const CounterId kCounterLeaveRecorded = CounterId::of("exit.leave_recorded");
const CounterId kCounterLeaveCollected = CounterId::of("exit.leave_collected");
}  // namespace

ex::HandlerTable uniform_handlers(const ex::ExceptionTree& tree,
                                  ex::HandlerResult result) {
  (void)tree;  // coverage is tree-independent with a default handler
  ex::HandlerTable table;
  table.set_default([result](ExceptionId) { return result; });
  return table;
}

// ---------------------------------------------------------------------------
// Scenario-facing API
// ---------------------------------------------------------------------------

bool Participant::enter(ActionInstanceId instance, EnterConfig config) {
  retired_exits_.clear();  // no exit-protocol frames on the stack here
  const InstanceInfo& info = manager_.info(instance);
  CAA_CHECK_MSG(info.is_member(id()), "enter(): not a declared member");
  if (dead_.contains(instance)) {
    // The instance was aborted before we managed to enter: we are the
    // paper's belated participant that "will never be able to" enter.
    runtime().simulator().counters().add(kCounterEnterRefusedDead);
    return false;
  }
  if (info.parent.valid() &&
      (contexts_.empty() || contexts_.active().instance != info.parent)) {
    // The containing action is not our active action (it was aborted, or it
    // completed, or we never entered it): entry is impossible — the belated
    // participant "will never be able to enter" (§2.2).
    CAA_CHECK_MSG(dead_.contains(info.parent),
                  "enter(): containing action neither active nor aborted — "
                  "scenario bug");
    runtime().simulator().counters().add(kCounterEnterRefusedDead);
    return false;
  }
  if (!contexts_.empty()) {
    CAA_CHECK_MSG(info.parent == contexts_.active().instance,
                  "enter(): instance is not nested in the active action");
    const Dyn& active_dyn = dyn_.at(contexts_.active().instance);
    if (active_dyn.aborting || active_dyn.done_sent || active_dyn.handling ||
        active_dyn.engine->state() != resolve::ResolverCore::State::kNormal ||
        (active_dyn.avoidance != nullptr && !active_dyn.avoidance->idle())) {
      // Resolution/abortion in progress in the containing action, or this
      // participant already finished its part of it: entry is impossible
      // now (belated participant).
      runtime().simulator().counters().add(kCounterEnterRefusedExceptional);
      return false;
    }
  } else {
    CAA_CHECK_MSG(!info.parent.valid(),
                  "enter(): nested instance entered with no containing "
                  "action on this participant");
  }
  CAA_CHECK_MSG(config.handlers.is_complete_for(info.decl->tree()),
                "enter(): participant must have handlers for ALL declared "
                "exceptions (§3.3)");
  CAA_CHECK_MSG(config.max_attempts >= 1,
                "enter(): max_attempts must be >= 1 (the first attempt "
                "counts)");
  CAA_CHECK_MSG(config.resolver_committee >= 1,
                "enter(): resolver committee needs at least one member");
  if (!config.abortion_handler) {
    config.abortion_handler = [] { return ex::AbortResult::none(); };
  }
  if (config.save_checkpoint) config.save_checkpoint();

  auto [it, inserted] = dyn_.emplace(instance, Dyn{});
  CAA_CHECK_MSG(inserted, "enter(): re-entering an instance");
  Dyn& dyn = it->second;
  dyn.info = &info;
  dyn.config = std::move(config);

  ex::Context context;
  context.instance = instance;
  context.action = info.decl->id();
  context.group = info.group;
  context.tree = &info.decl->tree();
  context.handlers = &dyn.config.handlers;
  context.abortion_handler = dyn.config.abortion_handler;
  contexts_.push(std::move(context));

  // Tree-mode scope: join the relay overlay before any message can flow, so
  // this member relays (and delivers) from the first envelope on.
  if (info.use_tree) ensure_overlay(info);

  dyn.engine = make_engine(dyn, instance);
  dyn.exit = dyn.config.exit_factory
                 ? dyn.config.exit_factory(*this, info)
                 : exit::make_exit_protocol(
                       dyn.config.exit_protocol.value_or(info.exit), *this,
                       info);
  // Entering an action some members already crashed out of: sync with the
  // live members before resolving anything. Their status replies carry any
  // commit of a round this belated entrant missed entirely (its buffered
  // copy, if one was ever sent, is from-crashed traffic and void).
  for (ObjectId member : info.members) {
    if (crashed_.contains(member)) {
      begin_crash_sync(instance, dyn, member);
    }
  }
  trace("enter", info.decl->name());
  if (obs::Observability* o = observing()) {
    dyn.action_span =
        o->tracer().begin(id().value(), "action", info.decl->name(),
                          "instance " + std::to_string(instance.value()));
  }
  sync_caa_health();
  wd_open(instance);

  drain_pending(instance);  // §4.2 "process messages having arrived"

  if (dyn_.contains(instance) && dyn_.at(instance).config.body) {
    run_guarded(instance, 0, [this, instance] {
      Dyn* d = find_dyn(instance);
      if (d != nullptr && d->config.body) d->config.body(d->attempt);
    });
  }
  return true;
}

void Participant::raise(ExceptionId exception, std::string message) {
  CAA_CHECK_MSG(in_action(), "raise(): not inside a CA action");
  Dyn& dyn = dyn_.at(contexts_.active().instance);
  if (dyn.aborting || dyn.done_sent || dyn.handling ||
      dyn.engine->state() != resolve::ResolverCore::State::kNormal) {
    // Superseded: a resolution or handler is in progress, or this
    // participant already finished its part and waits at the acceptance
    // line (a process there raises no further exceptions; errors it detects
    // surface as acceptance failures instead).
    runtime().simulator().counters().add(kCounterRaiseSuperseded);
    return;
  }
  if (dyn.avoidance != nullptr && dyn.avoidance->raise_pending()) {
    // One suppressed raise is already in flight; a second raise from the
    // same object is superseded, mirroring the engine's Exceptional guard.
    runtime().simulator().counters().add(kCounterRaiseSuperseded);
    return;
  }
  dyn.raise_time = now();
  const ActionInstanceId scope = contexts_.active().instance;
  wd_progress(scope);
  if (dyn.config.resolve_avoidance.value_or(dyn.info->resolve_avoidance) &&
      ensure_avoidance(dyn, scope)
          .try_fast_raise(exception, std::move(message))) {
    return;  // suppressed: the census decides; the engine stays Normal
  }
  dyn.engine->raise(exception, std::move(message));
}

void Participant::raise(std::string_view exception_name, std::string message) {
  CAA_CHECK_MSG(in_action(), "raise(): not inside a CA action");
  const ex::ExceptionTree& tree = *contexts_.active().tree;
  const ExceptionId e = tree.find(exception_name);
  CAA_CHECK_MSG(e.valid(), "raise(): exception name not declared");
  raise(e, std::move(message));
}

void Participant::complete(bool acceptance_ok) {
  CAA_CHECK_MSG(in_action(), "complete(): not inside a CA action");
  const ActionInstanceId scope = contexts_.active().instance;
  Dyn& dyn = dyn_.at(scope);
  if (dyn.aborting || dyn.done_sent || dyn.handling ||
      dyn.engine->state() != resolve::ResolverCore::State::kNormal ||
      (dyn.avoidance != nullptr && dyn.avoidance->raise_pending())) {
    // A resolution superseded the normal outcome (the handler will complete
    // the action — termination model, §3.1), or Done was already sent. A
    // suppressed fast raise supersedes exactly like the engine's
    // Exceptional state would have in the full protocol.
    runtime().simulator().counters().add(kCounterCompleteSuperseded);
    return;
  }
  complete_internal(scope, acceptance_ok, ExceptionId::invalid());
}

ActionInstanceId Participant::active_instance() const {
  CAA_CHECK(in_action());
  return contexts_.active().instance;
}

resolve::ResolverCore::State Participant::resolver_state() const {
  CAA_CHECK(in_action());
  return dyn_.at(contexts_.active().instance).engine->state();
}

bool Participant::at_acceptance_line() const {
  CAA_CHECK(in_action());
  return dyn_.at(contexts_.active().instance).done_sent;
}

std::uint32_t Participant::round_of(ActionInstanceId instance) const {
  auto it = dyn_.find(instance);
  CAA_CHECK_MSG(it != dyn_.end(), "round_of(): not entered");
  return it->second.round;
}

std::uint32_t Participant::attempt_of(ActionInstanceId instance) const {
  auto it = dyn_.find(instance);
  CAA_CHECK_MSG(it != dyn_.end(), "attempt_of(): not entered");
  return it->second.attempt;
}

// ---------------------------------------------------------------------------
// Message routing
// ---------------------------------------------------------------------------

void Participant::on_message(ObjectId from, net::MsgKind kind,
                             const net::Bytes& payload) {
  if (!retired_exits_.empty()) retired_exits_.clear();  // quiet entry: sweep
  switch (kind) {
    case net::MsgKind::kException:
    case net::MsgKind::kHaveNested:
    case net::MsgKind::kNestedCompleted:
    case net::MsgKind::kAck:
    case net::MsgKind::kCommit:
      route_resolution(from, kind, payload);
      return;
    case net::MsgKind::kCrashSync:
      on_crash_sync(from, payload);
      return;
    case net::MsgKind::kFastCover:
      on_fast_cover(from, payload);
      return;
    case net::MsgKind::kRelay:
      on_relay(from, payload);
      return;
    case net::MsgKind::kActionDone:
    case net::MsgKind::kPaxosPrepare:
    case net::MsgKind::kPaxosPromise:
    case net::MsgKind::kPaxosVote:
    case net::MsgKind::kPaxosAccepted:
      on_exit_msg(from, kind, payload);
      return;
    case net::MsgKind::kActionLeaveAck:
      on_leave_ack(from, payload);
      return;
    case net::MsgKind::kActionLeave: {
      auto sr = resolve::peek_scope_round(payload);
      if (!sr.is_ok()) return;
      if (dead_.contains(sr.value().scope) ||
          find_dyn(sr.value().scope) == nullptr) {
        runtime().simulator().counters().add(kCounterDeadScopeDropped);
        return;
      }
      on_leave_msg(payload);
      return;
    }
    default:
      runtime().simulator().counters().add(kCounterUnhandledKind);
      return;
  }
}

void Participant::route_resolution(ObjectId from, net::MsgKind kind,
                                   const net::Bytes& payload) {
  if (crashed_.contains(from) &&
      !manager_.debug_bugs().exclusion_divergence) {
    // Fail-stop: a crashed sender's in-flight resolution content is void
    // (ResolverCore::exclude_member expunged its contribution), and it must
    // stay void uniformly — survivors the message reaches and survivors it
    // misses have to compute the same resolution. The planted-bug flag
    // re-opens the PR 5 exclusion-divergence hole by accepting such
    // messages (see action::DebugBugs).
    runtime().simulator().counters().add(kCounterFromCrashedDropped);
    return;
  }
  auto sr_result = resolve::peek_scope_round(payload);
  if (!sr_result.is_ok()) return;  // malformed: never trust the wire
  const auto [scope, round] = sr_result.value();

  if (dead_.contains(scope)) {
    runtime().simulator().counters().add(kCounterDeadScopeDropped);
    return;
  }
  Dyn* dyn = find_dyn(scope);
  if (dyn == nullptr) {
    // Belated: not (yet) entered. Buffer until entry (§4.2 entry rule).
    pending_[scope].push_back(RawMsg{from, kind, payload});
    return;
  }
  if (dyn->aborting) {
    // This context is part of an abort chain: its resolution is being
    // superseded by a containing action's resolution.
    runtime().simulator().counters().add(kCounterAbortingDropped);
    return;
  }
  if (round < dyn->round) {
    ack_stale(from, kind, scope, round);
    return;
  }
  if (round > dyn->round || dyn->engine->round() != dyn->round) {
    // Future round, or the engine for the current round is not installed
    // yet (round bump pending after a finish).
    dyn->future.push_back(RawMsg{from, kind, payload});
    return;
  }
  const bool scope_is_active =
      in_action() && contexts_.active().instance == scope;
  deliver_to_engine(*dyn, scope_is_active, from, kind, payload);
}

void Participant::ack_stale(ObjectId from, net::MsgKind kind,
                            ActionInstanceId scope, std::uint32_t round) {
  // Stale-round Exception / NestedCompleted senders still need their ACKs
  // to reach Ready in the round they are stuck in (§4.2 "wait until all
  // exception messages are handled"). Everything else is dropped.
  if (kind == net::MsgKind::kException ||
      kind == net::MsgKind::kNestedCompleted) {
    const Dyn* dyn = find_dyn(scope);
    if (dyn != nullptr && dyn->info->use_tree) {
      ensure_overlay(*dyn->info);
      overlay_.send_ack(scope, round, from);
    } else {
      send(from, net::MsgKind::kAck,
           resolve::encode(resolve::AckMsg{scope, round, id()}));
    }
    if (obs::Observability* o = observing()) {
      // The engine of `round` is gone; tabulate its stale ACK here so the
      // per-round table still accounts for every protocol send.
      o->metrics().note_protocol_send(scope, round, net::MsgKind::kAck, 1);
    }
  }
  runtime().simulator().counters().add(kCounterStaleRound);
}

void Participant::deliver_to_engine(Dyn& dyn, bool scope_is_active,
                                    ObjectId from, net::MsgKind kind,
                                    const net::Bytes& payload) {
  (void)from;
  wd_progress(dyn.info->instance);
  if (dyn.avoidance != nullptr &&
      (kind == net::MsgKind::kException || kind == net::MsgKind::kHaveNested)) {
    // A non-commuting raise went slow: the full exchange supersedes any fast
    // round. A suppressed raise replays BEFORE the trigger is delivered, so
    // this member's Exception multicast precedes its ACK of the trigger.
    dyn.avoidance->on_slow_traffic();
  }
  resolve::ResolverCore& engine = *dyn.engine;
  const bool trigger_branch =
      !scope_is_active &&
      engine.state() == resolve::ResolverCore::State::kNormal;
  switch (kind) {
    case net::MsgKind::kException: {
      auto m = resolve::decode_exception(payload);
      if (!m.is_ok()) return;
      if (trigger_branch) {
        engine.on_trigger_while_nested(m.value());
      } else {
        engine.on_exception(m.value());
      }
      return;
    }
    case net::MsgKind::kHaveNested: {
      auto m = resolve::decode_have_nested(payload);
      if (!m.is_ok()) return;
      if (trigger_branch) {
        engine.on_trigger_while_nested(m.value());
      } else {
        engine.on_have_nested(m.value());
      }
      return;
    }
    case net::MsgKind::kNestedCompleted: {
      CAA_CHECK_MSG(!trigger_branch,
                    "protocol violation: NestedCompleted cannot be the first "
                    "message of a resolution (FIFO channels)");
      auto m = resolve::decode_nested_completed(payload);
      if (!m.is_ok()) return;
      engine.on_nested_completed(m.value());
      return;
    }
    case net::MsgKind::kAck: {
      auto m = resolve::decode_ack(payload);
      if (!m.is_ok()) return;
      engine.on_ack(m.value());
      return;
    }
    case net::MsgKind::kCommit: {
      CAA_CHECK_MSG(!trigger_branch,
                    "protocol violation: Commit cannot be the first message "
                    "of a resolution");
      auto m = resolve::decode_commit(payload);
      if (!m.is_ok()) return;
      engine.on_commit(m.value());
      return;
    }
    default:
      CAA_CHECK_MSG(false, "unexpected kind in deliver_to_engine");
  }
}

void Participant::drain_future(ActionInstanceId scope) {
  Dyn* dyn = find_dyn(scope);
  if (dyn == nullptr) return;
  std::vector<RawMsg> future = std::move(dyn->future);
  dyn->future.clear();
  for (auto& raw : future) {
    if (raw.kind == net::MsgKind::kFastCover) {
      on_fast_cover(raw.from, raw.payload);
    } else {
      route_resolution(raw.from, raw.kind, raw.payload);
    }
  }
}

void Participant::drain_pending(ActionInstanceId scope) {
  auto it = pending_.find(scope);
  if (it == pending_.end()) return;
  std::vector<RawMsg> msgs = std::move(it->second);
  pending_.erase(it);
  for (auto& raw : msgs) {
    on_message(raw.from, raw.kind, raw.payload);
  }
}

void Participant::purge_pending_from(ObjectId peer) {
  // §4.2 "clean up messages related to nested actions": peer is aborting all
  // its nested actions, so its buffered messages scoped to actions we never
  // entered are void.
  for (auto& [scope, msgs] : pending_) {
    std::erase_if(msgs, [peer](const RawMsg& m) { return m.from == peer; });
  }
}

void Participant::on_fast_cover(ObjectId from, const net::Bytes& payload) {
  if (crashed_.contains(from)) {
    runtime().simulator().counters().add(kCounterFromCrashedDropped);
    return;
  }
  auto decoded = resolve::decode_fast_cover(payload);
  if (!decoded.is_ok()) return;  // malformed: never trust the wire
  const resolve::FastCoverMsg m = decoded.value();
  if (dead_.contains(m.scope)) {
    runtime().simulator().counters().add(kCounterDeadScopeDropped);
    return;
  }
  Dyn* dyn = find_dyn(m.scope);
  if (dyn == nullptr) {
    // Belated: not (yet) entered. Buffer until entry, like any resolution
    // traffic (§4.2 entry rule).
    pending_[m.scope].push_back(RawMsg{from, net::MsgKind::kFastCover,
                                       payload});
    return;
  }
  if (dyn->aborting) {
    runtime().simulator().counters().add(kCounterAbortingDropped);
    return;
  }
  if (m.round < dyn->round) {
    ensure_avoidance(*dyn, m.scope).on_stale(from, m);
    return;
  }
  if (m.round > dyn->round || dyn->engine->round() != dyn->round) {
    dyn->future.push_back(RawMsg{from, net::MsgKind::kFastCover, payload});
    return;
  }
  ensure_avoidance(*dyn, m.scope).on_message(from, m);
}

// ---------------------------------------------------------------------------
// Resolution plumbing
// ---------------------------------------------------------------------------

resolve::AvoidanceCoordinator& Participant::ensure_avoidance(
    Dyn& dyn, ActionInstanceId scope) {
  if (dyn.avoidance != nullptr) return *dyn.avoidance;
  resolve::AvoidanceCoordinator::Hooks hooks;
  hooks.send = [this, scope](ObjectId to, net::Bytes payload) {
    if (const Dyn* d = find_dyn(scope);
        d != nullptr && d->info->use_tree) {
      // Census traffic rides the relay overlay like exit traffic: the
      // leader is the lowest live member — exactly the relay-tree root.
      ensure_overlay(*d->info);
      overlay_.route(scope, to, net::MsgKind::kFastCover, std::move(payload));
      return;
    }
    send(to, net::MsgKind::kFastCover, std::move(payload));
  };
  hooks.multicast = [this, scope](const net::Bytes& payload) {
    Dyn* d = find_dyn(scope);
    CAA_CHECK(d != nullptr);
    multicast(*d->info, net::MsgKind::kFastCover, payload);
  };
  hooks.round = [this, scope] {
    const Dyn* d = find_dyn(scope);
    CAA_CHECK(d != nullptr);
    return d->round;
  };
  hooks.live_leader = [this, scope] {
    const Dyn* d = find_dyn(scope);
    CAA_CHECK(d != nullptr);
    return live_leader(*d);
  };
  hooks.engine_normal = [this, scope] {
    const Dyn* d = find_dyn(scope);
    return d != nullptr &&
           d->engine->state() == resolve::ResolverCore::State::kNormal;
  };
  hooks.answer_idle = [this, scope] {
    const Dyn* d = find_dyn(scope);
    if (d == nullptr || d->aborting || d->done_sent || d->handling) {
      return false;
    }
    if (!d->excluded.empty()) return false;
    // The scope must be this participant's active context: a nested child
    // in flight needs the HaveNested/abortion machinery the census skips.
    if (!in_action() || contexts_.active().instance != scope) return false;
    return d->engine->state() == resolve::ResolverCore::State::kNormal;
  };
  hooks.apply_fast_commit = [this, scope](const resolve::CommitMsg& m) {
    Dyn* d = find_dyn(scope);
    CAA_CHECK(d != nullptr);
    d->engine->apply_fast_commit(m);
  };
  hooks.apply_synced_commit = [this, scope](const resolve::CommitMsg& m) {
    Dyn* d = find_dyn(scope);
    CAA_CHECK(d != nullptr);
    d->engine->apply_synced_commit(m);
  };
  hooks.replay_raise = [this, scope](ExceptionId e, std::string msg) {
    Dyn* d = find_dyn(scope);
    if (d == nullptr || d->aborting ||
        d->engine->state() != resolve::ResolverCore::State::kNormal) {
      return;  // superseded meanwhile; the coordinator counted it stale
    }
    // raise_time keeps the original raise's timestamp: the fallback's
    // latency sample spans suppression AND the full exchange.
    d->engine->raise(e, std::move(msg));
  };
  hooks.schedule = [this, scope](sim::Time delay, std::function<void()> fn) {
    run_guarded(scope, delay, std::move(fn));
  };
  hooks.trace = [this](std::string_view event, std::string detail) {
    trace(event, std::move(detail));
  };
  dyn.avoidance = std::make_unique<resolve::AvoidanceCoordinator>(
      id(), &dyn.info->members, &dyn.excluded, &dyn.info->decl->tree(), scope,
      dyn.info->avoidance_probe_delay, std::move(hooks),
      &runtime().simulator().counters(),
      &runtime().simulator().obs().health());
  return *dyn.avoidance;
}

resolve::ResolverCore::Hooks Participant::make_hooks(ActionInstanceId scope) {
  resolve::ResolverCore::Hooks hooks;
  hooks.multicast = [this, scope](net::MsgKind kind, net::Bytes payload) {
    Dyn* dyn = find_dyn(scope);
    CAA_CHECK(dyn != nullptr);
    multicast(*dyn->info, kind, payload);
  };
  hooks.send = [this, scope](ObjectId to, net::MsgKind kind,
                             net::Bytes payload) {
    // The engine's only unicast is the ACK; in tree mode it joins the
    // hierarchical tally aggregated towards the raiser instead of going
    // direct (peek recovers the round the engine stamped on it).
    if (kind == net::MsgKind::kAck) {
      if (const Dyn* dyn = find_dyn(scope);
          dyn != nullptr && dyn->info->use_tree) {
        if (const auto sr = resolve::peek_scope_round(payload); sr.is_ok()) {
          ensure_overlay(*dyn->info);
          overlay_.send_ack(scope, sr.value().round, to);
          return;
        }
      }
    }
    send(to, kind, std::move(payload));
  };
  hooks.abort_nested = [this, scope](std::function<void(ExceptionId)> done) {
    abort_chain_until(scope, std::move(done));
  };
  hooks.start_handler = [this, scope](ExceptionId resolved,
                                      ObjectId resolver) {
    on_round_finished(scope, resolved, resolver);
  };
  hooks.purge_nested_from = [this](ObjectId peer) {
    purge_pending_from(peer);
  };
  hooks.trace = [this](std::string_view event, std::string detail) {
    trace(event, std::move(detail));
  };
  hooks.trace_enabled = [this] {
    return attached() && runtime().trace().enabled();
  };
  if (attached()) {
    hooks.obs = &runtime().simulator().obs();
    hooks.obs_track = id().value();
  }
  return hooks;
}

void Participant::multicast(const InstanceInfo& info, net::MsgKind kind,
                            const net::Bytes& payload) {
  if (info.use_tree) {
    // Tree-mode dissemination: hand the message to the overlay once; the
    // relay tree fans it out in O(N·k) envelopes instead of N-1 sends.
    ensure_overlay(info);
    overlay_.flood(info.instance, kind, payload);
    return;
  }
  for (ObjectId member : info.members) {
    if (member == id()) continue;
    // Pooled copy per recipient: the fan-out reuses recycled payload
    // buffers instead of heap-allocating one per member.
    send(member, kind, net::BytesPool::local().copy_of(payload));
  }
}

// ---------------------------------------------------------------------------
// Overlay dissemination (tree-mode scopes)
// ---------------------------------------------------------------------------

void Participant::ensure_overlay(const InstanceInfo& info) {
  CAA_CHECK_MSG(info.use_tree, "ensure_overlay: scope is flat");
  if (!overlay_ready_) {
    overlay::Disseminator::Hooks hooks;
    hooks.send_envelope = [this](ObjectId to, net::Bytes payload) {
      send(to, net::MsgKind::kRelay, std::move(payload));
    };
    // Relayed deliveries re-enter on_message under the *origin*, so every
    // existing rule — crashed-sender filtering, belated buffering, round
    // routing, dead-scope Leave replay — applies to tree traffic unchanged.
    hooks.deliver = [this](ActionInstanceId scope, ObjectId origin,
                           net::MsgKind kind, const net::Bytes& payload) {
      (void)scope;
      on_message(origin, kind, payload);
    };
    hooks.deliver_ack = [this](ActionInstanceId scope, std::uint32_t round,
                               ObjectId acker) {
      on_message(acker, net::MsgKind::kAck,
                 resolve::encode(resolve::AckMsg{scope, round, acker}));
    };
    hooks.schedule = [this](sim::Time delay, std::function<void()> fn) {
      schedule_after(delay, std::move(fn));
    };
    overlay_.configure(id(), std::move(hooks),
                       &runtime().simulator().counters(),
                       &runtime().simulator().obs().health());
    overlay_ready_ = true;
  }
  overlay_.register_scope(info.instance, info.members, info.overlay, crashed_);
}

void Participant::on_relay(ObjectId from, const net::Bytes& payload) {
  const auto scope = overlay::Disseminator::peek_envelope_scope(payload);
  if (!scope.is_ok()) return;  // malformed: never trust the wire
  if (abandoned_.contains(scope.value())) {
    // We restarted out of this scope; relay duty died with the crash and
    // the survivors' healed tree no longer counts on us.
    runtime().simulator().counters().add(kCounterDeadScopeDropped);
    return;
  }
  if (!manager_.known(scope.value())) return;
  const InstanceInfo& info = manager_.info(scope.value());
  if (!info.use_tree || !info.is_member(id())) return;
  // Register lazily: a belated member (or one that already left) still
  // relays for the committee; local deliveries fall through to the belated
  // buffer / dead-scope paths like any direct message.
  ensure_overlay(info);
  overlay_.on_envelope(from, payload);
}

void Participant::on_round_finished(ActionInstanceId scope,
                                    ExceptionId resolved, ObjectId resolver) {
  Dyn* dyn = find_dyn(scope);
  CAA_CHECK(dyn != nullptr);
  wd_progress(scope);
  // Remembered for CrashSync: if the resolver crashes right after deciding,
  // this applied commit is what the survivors' barrier redistributes.
  dyn->last_commit = resolve::CommitMsg{scope, dyn->round, resolver, resolved};
  dyn->promote_pending = false;  // the round resolved; nothing to promote
  if (dyn->raise_time >= 0) {
    // Raiser-side resolution latency (raise -> this round's commit), fed
    // into the campaign's merged percentile rows.
    obs::Metrics& metrics = runtime().simulator().obs().metrics();
    metrics.record(metrics.histogram("resolve.latency"),
                   now() - dyn->raise_time);
    dyn->raise_time = -1;
  }
  const std::uint32_t resolved_round = dyn->round;
  ++dyn->round;  // subsequent messages of the old round become stale
  dyn->handling = true;  // the handler takes over this participant's duties
  // Census, promise and suppressed-raise state belonged to the finished
  // round (a suppressed raise is subsumed by the commit that finished it).
  if (dyn->avoidance != nullptr) dyn->avoidance->on_round_finished();
  // Replace the engine and run the handler from a fresh event: finish() is
  // still on the stack of the old engine, which we must not destroy here.
  schedule_after(0, [this, scope, resolved, resolved_round] {
    Dyn* d = find_dyn(scope);
    if (d == nullptr || d->aborting) return;  // aborted meanwhile
    if (d->barrier_span.valid() || d->handler_span.valid()) {
      // The resolution superseded an acceptance-line wait / running handler.
      obs::Tracer& tracer = runtime().simulator().obs().tracer();
      tracer.end_args(d->handler_span, "superseded");
      tracer.end_args(d->barrier_span, "superseded");
      d->handler_span = obs::SpanId::invalid();
      d->barrier_span = obs::SpanId::invalid();
    }
    d->engine = make_engine(*d, scope);
    d->done_sent = false;  // the handler takes over and completes anew
    sync_caa_health();     // exit occupancy: the handler re-opened our part
    drain_future(scope);
    invoke_handler(scope, resolved, resolved_round);
  });
}

void Participant::invoke_handler(ActionInstanceId scope, ExceptionId resolved,
                                 std::uint32_t resolved_round) {
  Dyn* dyn = find_dyn(scope);
  CAA_CHECK(dyn != nullptr);
  run_guarded(scope, dyn->config.handler_dispatch_delay,
              [this, scope, resolved, resolved_round] {
    Dyn* d = find_dyn(scope);
    CAA_CHECK(d != nullptr);
    const ex::Handler& handler = d->config.handlers.get(resolved);
    obs::SpanId span = obs::SpanId::invalid();
    if (obs::Observability* o = observing()) {
      span = o->tracer().begin(
          id().value(), "handler",
          "handle " + d->info->decl->tree().name_of(resolved));
      d->handler_span = span;
    }
    const ex::HandlerResult result = handler(resolved);
    handled_.push_back(HandledRecord{scope, resolved_round, resolved, now()});
    trace("handler ran",
          d->info->decl->tree().name_of(resolved) +
              (result.outcome == ex::HandlerOutcome::kSignal ? " -> signal"
                                                             : " -> ok"));
    if (d->config.on_handler) d->config.on_handler(resolved);
    run_guarded(scope, result.duration, [this, scope, result, span] {
      Dyn* inner = find_dyn(scope);
      if (inner != nullptr && span.valid() && inner->handler_span == span) {
        // Still ours (a superseding resolution would have closed it).
        runtime().simulator().obs().tracer().end(span);
        inner->handler_span = obs::SpanId::invalid();
      }
      if (result.outcome == ex::HandlerOutcome::kRecovered) {
        complete_internal(scope, true, ExceptionId::invalid());
      } else {
        complete_internal(scope, true, result.signal);
      }
    });
  });
}

// ---------------------------------------------------------------------------
// Abortion of nested chains
// ---------------------------------------------------------------------------

void Participant::abort_chain_until(ActionInstanceId scope,
                                    std::function<void(ExceptionId)> done) {
  const auto target_depth = contexts_.depth_of(scope);
  CAA_CHECK_MSG(target_depth.has_value(), "abort target not in stack");
  // Mark everything strictly below the target as aborting: their
  // resolutions are superseded (§3.3 point 4).
  for (std::size_t depth = *target_depth + 1; depth < contexts_.size();
       ++depth) {
    dyn_.at(contexts_.at(depth).instance).aborting = true;
  }
  if (abort_chain_.has_value()) {
    // An even more deeply scoped abortion was in progress; the new (outer)
    // resolution supersedes it. Retarget: the old target's NestedCompleted
    // will never be sent — its whole action is aborted instead.
    CAA_CHECK_MSG(*target_depth <
                      contexts_.depth_of(abort_chain_->target).value(),
                  "abort retarget must be an outer action");
    abort_chain_->target = scope;
    abort_chain_->done = std::move(done);
    return;  // the running chain keeps stepping, now towards `scope`
  }
  abort_chain_ = AbortChain{scope, std::move(done)};
  abort_step();
}

void Participant::abort_step() {
  CAA_CHECK(abort_chain_.has_value());
  CAA_CHECK(in_action());
  const ex::Context& ctx = contexts_.active();
  CAA_CHECK_MSG(ctx.instance != abort_chain_->target,
                "abort_step past target");
  // Run this nested action's abortion handler (§4.1: abortion handlers run
  // innermost-first; only they may run in an aborted action).
  const ex::AbortResult result =
      ctx.abortion_handler ? ctx.abortion_handler() : ex::AbortResult::none();
  trace("abortion handler",
        dyn_.at(ctx.instance).info->decl->name() +
            (result.signal.valid() ? " signalling" : ""));
  obs::SpanId abort_span = obs::SpanId::invalid();
  if (obs::Observability* o = observing()) {
    abort_span = o->tracer().begin(
        id().value(), "abort",
        "abort " + dyn_.at(ctx.instance).info->decl->name(),
        result.signal.valid() ? "signalling" : std::string());
  }
  schedule_after(result.duration,
                 [this, instance = ctx.instance, signal = result.signal,
                  abort_span] {
    Dyn* dyn = find_dyn(instance);
    // A node restart may have abandoned this context (on_restarted) between
    // the abortion handler and this continuation; the chain is void then.
    if (dyn == nullptr) return;
    if (dyn->config.on_abort) dyn->config.on_abort();
    aborts_.push_back(AbortRecord{instance, signal, now()});
    if (obs::FlightRecorder& recorder =
            runtime().simulator().obs().recorder();
        recorder.enabled()) {
      recorder.record_protocol(obs::RecType::kAbort, id().value(),
                               instance.value(), 0,
                               signal.valid() ? signal.value() : 0);
    }
    if (abort_span.valid()) {
      obs::Tracer& tracer = runtime().simulator().obs().tracer();
      tracer.end(abort_span);
      tracer.end_args(dyn->action_span, "aborted");
    }
    pop_context(instance, /*dead=*/true);
    if (!abort_chain_.has_value()) return;  // defensive; should not happen
    if (in_action() && contexts_.active().instance == abort_chain_->target) {
      // Only the exception signalled by the abortion handlers of the
      // *directly* nested action may be raised in the container (§4.1).
      auto done = std::move(abort_chain_->done);
      const ActionInstanceId target = abort_chain_->target;
      abort_chain_.reset();
      done(signal);
      // A peer crash observed mid-abortion deferred any suspended-survivor
      // promotion; the engine state is decidable now.
      maybe_promote(target);
      return;
    }
    abort_step();
  });
}

// ---------------------------------------------------------------------------
// Exit (delegated to the scope's pluggable exit::ExitProtocol)
// ---------------------------------------------------------------------------

void Participant::complete_internal(ActionInstanceId scope, bool ok,
                                    ExceptionId signal) {
  Dyn* dyn = find_dyn(scope);
  CAA_CHECK(dyn != nullptr);
  if (dyn->engine->state() != resolve::ResolverCore::State::kNormal) {
    // A new resolution started before this completion was reported; the new
    // round's handler will complete instead.
    runtime().simulator().counters().add(kCounterCompleteSuperseded);
    return;
  }
  // Figure 2(b): the acceptance test guards EVERY attempt's completion —
  // normal body completions and handler-driven ones alike.
  if (ok && !signal.valid() && dyn->config.acceptance) {
    ok = dyn->config.acceptance();
  }
  dyn->done_sent = true;
  dyn->handling = false;  // handler (if any) has completed the action part
  DoneMsg m{scope, dyn->round, id(), ok, signal};
  trace("done", std::string(ok ? "ok" : "acceptance-failed") +
                    (signal.valid() ? " +signal" : ""));
  if (obs::Observability* o = observing()) {
    dyn->barrier_span = o->tracer().begin(
        id().value(), "barrier", "barrier r" + std::to_string(dyn->round),
        ok ? std::string() : "acceptance failed");
  }
  sync_caa_health();  // exit occupancy: done_sent flipped on
  wd_progress(scope);
  // From here the exit protocol owns everything up to the Leave decision.
  dyn->exit->on_complete(m);
}

void Participant::on_exit_msg(ObjectId from, net::MsgKind kind,
                              const net::Bytes& payload) {
  auto sr = resolve::peek_scope_round(payload);
  if (!sr.is_ok()) return;
  const ActionInstanceId scope = sr.value().scope;
  if (dead_.contains(scope)) {
    // A member that missed the final Leave (lost with the crashed leader)
    // re-sends its Done/vote to us after re-election; if we exited this
    // scope through its exit protocol, release the sender with the outcome
    // everyone else applied.
    if (const LeaveMsg* rec = leave_log_.find(scope);
        rec != nullptr && !manager_.debug_bugs().lost_final_leave) {
      // The planted-bug flag re-opens the PR 5 lost-final-Leave hole by
      // dropping the belated Done instead (see action::DebugBugs).
      send(from, net::MsgKind::kActionLeave, encode(*rec));
      return;
    }
    runtime().simulator().counters().add(kCounterDeadScopeDropped);
    return;
  }
  Dyn* dyn = find_dyn(scope);
  if (dyn == nullptr) {
    pending_[scope].push_back(RawMsg{from, kind, payload});
    return;
  }
  wd_progress(scope);
  dyn->exit->on_message(from, kind, payload);
}

void Participant::on_leave_ack(ObjectId from, const net::Bytes& payload) {
  (void)from;
  auto m = exit::decode_leave_ack(payload);
  if (!m.is_ok()) return;
  const ActionInstanceId scope = m.value().scope;
  if (abandoned_.contains(scope) ||
      (dead_.contains(scope) && leave_log_.find(scope) == nullptr)) {
    // We never recorded a Leave for this scope (restart wiped it, or we
    // aborted out while peers exited): nothing to collect, and no record
    // will ever appear — do not buffer the ACK.
    return;
  }
  if (leave_log_.on_ack(scope, m.value().sender)) {
    runtime().simulator().counters().add(kCounterLeaveCollected);
  }
}

void Participant::on_leave_msg(const net::Bytes& payload) {
  auto m = decode_leave(payload);
  if (!m.is_ok()) return;
  apply_leave(m.value());
}

void Participant::apply_leave(const LeaveMsg& m) {
  Dyn* dyn = find_dyn(m.scope);
  if (dyn == nullptr || dyn->aborting) {
    // The action is gone, or an outer resolution is aborting it right now —
    // abortion supersedes the normal exit decision.
    runtime().simulator().counters().add(kCounterDeadScopeDropped);
    return;
  }
  CAA_CHECK_MSG(in_action() && contexts_.active().instance == m.scope,
                "Leave for a non-active context");
  wd_progress(m.scope);
  const InstanceInfo& info = *dyn->info;
  const bool leader = live_leader(*dyn) == id();

  switch (m.outcome) {
    case LeaveOutcome::kCommitted: {
      if (leader && dyn->config.on_commit) dyn->config.on_commit();
      if (dyn->config.on_leave) {
        dyn->config.on_leave(m.outcome, ExceptionId::invalid());
      }
      trace("leave committed", info.decl->name());
      if (dyn->action_span.valid()) {
        obs::Tracer& tracer = runtime().simulator().obs().tracer();
        tracer.end(dyn->barrier_span);
        tracer.end_args(dyn->action_span, "committed");
      }
      record_leave(*dyn, m);
      pop_context(m.scope, /*dead=*/true);
      return;
    }
    case LeaveOutcome::kSignalled: {
      if (leader && dyn->config.on_abort) dyn->config.on_abort();
      if (dyn->config.on_leave) dyn->config.on_leave(m.outcome, m.signal);
      trace("leave signalled", info.decl->name());
      if (dyn->action_span.valid()) {
        obs::Tracer& tracer = runtime().simulator().obs().tracer();
        tracer.end(dyn->barrier_span);
        tracer.end_args(dyn->action_span, "signalled");
      }
      const ActionInstanceId parent = info.parent;
      record_leave(*dyn, m);
      pop_context(m.scope, /*dead=*/true);
      if (!leader) return;
      if (parent.valid() && m.signal.valid()) {
        // The leader represents the completed-with-failure nested action by
        // raising the signalled exception in the containing action (§3.1
        // "signalled between nested actions").
        Dyn* parent_dyn = find_dyn(parent);
        CAA_CHECK_MSG(parent_dyn != nullptr,
                      "leader left containing action before nested signal");
        if (!parent_dyn->aborting &&
            parent_dyn->engine->state() ==
                resolve::ResolverCore::State::kNormal) {
          parent_dyn->engine->raise(m.signal, "signalled by nested action");
        } else {
          runtime().simulator().counters().add(kCounterSignalDropped);
        }
      } else if (!parent.valid()) {
        if (failure_sink_) failure_sink_(m.scope, m.signal);
      }
      return;
    }
    case LeaveOutcome::kRestored: {
      if (leader && dyn->config.on_abort) dyn->config.on_abort();
      if (dyn->config.restore_checkpoint) dyn->config.restore_checkpoint();
      if (dyn->config.on_leave) {
        dyn->config.on_leave(m.outcome, ExceptionId::invalid());
      }
      trace("restore attempt", std::to_string(m.attempt));
      if (dyn->barrier_span.valid()) {
        obs::Tracer& tracer = runtime().simulator().obs().tracer();
        tracer.end_args(dyn->barrier_span, "restored");
        dyn->barrier_span = obs::SpanId::invalid();
      }
      if (obs::Observability* o = observing()) {
        o->tracer().instant(id().value(), "action", "restore",
                            "attempt " + std::to_string(m.attempt));
      }
      dyn->attempt = m.attempt;
      dyn->done_sent = false;
      dyn->handling = false;
      dyn->exit->on_restored();  // drop the previous attempt's pending Done
      ++dyn->round;  // a new attempt is a new protocol round
      dyn->engine = make_engine(*dyn, m.scope);
      sync_caa_health();  // exit occupancy: the new attempt re-opened our part
      drain_future(m.scope);
      if (dyn->config.body) {
        run_guarded(m.scope, 0, [this, scope = m.scope] {
          Dyn* d = find_dyn(scope);
          if (d != nullptr && d->config.body) d->config.body(d->attempt);
        });
      }
      return;
    }
  }
}

void Participant::record_leave(const Dyn& dyn, const LeaveMsg& m) {
  const bool gc = manager_.exit_gc();
  leave_log_.record(m, dyn.info->members, id(), dyn.excluded, gc);
  if (!gc) return;
  runtime().simulator().counters().add(kCounterLeaveRecorded);
  // Tell every live member we applied the final Leave; once a member holds
  // ACKs from the whole committee its record can never be needed again.
  const net::Bytes ack =
      exit::encode(exit::LeaveAckMsg{m.scope, m.round, id()});
  for (ObjectId member : dyn.info->members) {
    if (member == id() || dyn.excluded.contains(member)) continue;
    send(member, net::MsgKind::kActionLeaveAck,
         net::BytesPool::local().copy_of(ack));
  }
}

void Participant::pop_context(ActionInstanceId scope, bool dead) {
  CAA_CHECK(in_action() && contexts_.active().instance == scope);
  if (Dyn* dyn = find_dyn(scope); dyn != nullptr && dyn->exit != nullptr) {
    // The decide path ends inside the protocol (exit_deliver_leave -> here),
    // so its frames may still be on the stack: retire, don't destroy. The
    // graveyard is swept at the next quiet entry into this participant.
    retired_exits_.push_back(std::move(dyn->exit));
  }
  if (Dyn* dyn = find_dyn(scope);
      dyn != nullptr &&
      (dyn->action_span.valid() || dyn->barrier_span.valid() ||
       dyn->handler_span.valid())) {
    // Close LIFO (handler/barrier nest inside the action span). The engine's
    // round span, if still open, closes in ~ResolverCore at dyn_.erase.
    obs::Tracer& tracer = runtime().simulator().obs().tracer();
    tracer.end(dyn->handler_span);
    tracer.end(dyn->barrier_span);
    tracer.end(dyn->action_span);
  }
  contexts_.pop();
  dyn_.erase(scope);
  if (dead) dead_.insert(scope);
  pending_.erase(scope);
  sync_caa_health();
  wd_closed(scope);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::unique_ptr<resolve::ResolverCore> Participant::make_engine(
    Dyn& dyn, ActionInstanceId scope) {
  auto engine = std::make_unique<resolve::ResolverCore>(
      id(), dyn.info->members, &dyn.info->decl->tree(), scope, dyn.round,
      make_hooks(scope), dyn.config.resolver_committee);
  if (manager_.debug_bugs().exclusion_divergence) {
    engine->set_debug_keep_crashed(true);
  }
  for (ObjectId member : dyn.info->members) {
    if (crashed_.contains(member)) {
      dyn.excluded.insert(member);
      engine->exclude_member(member);
    }
  }
  // A round bump mid-CrashSync: the fresh engine inherits the gate until
  // the outstanding status replies drain.
  if (!dyn.sync_waiting.empty()) engine->set_commit_gate(true);
  return engine;
}

ObjectId Participant::live_leader(const Dyn& dyn) const {
  return exit::live_leader(*dyn.info, dyn.excluded);
}

Participant::Dyn* Participant::find_dyn(ActionInstanceId scope) {
  auto it = dyn_.find(scope);
  return it == dyn_.end() ? nullptr : &it->second;
}

const Participant::Dyn& Participant::dyn_of(ActionInstanceId scope) const {
  auto it = dyn_.find(scope);
  CAA_CHECK_MSG(it != dyn_.end(), "exit host: scope not open here");
  return it->second;
}

const exit::ExitProtocol* Participant::exit_protocol_of(
    ActionInstanceId scope) const {
  auto it = dyn_.find(scope);
  return it == dyn_.end() ? nullptr : it->second.exit.get();
}

// ---------------------------------------------------------------------------
// exit::ExitHost — the seam the exit protocols talk back through
// ---------------------------------------------------------------------------

ObjectId Participant::exit_self() const { return id(); }

std::uint32_t Participant::exit_round(ActionInstanceId scope) const {
  return dyn_of(scope).round;
}

const std::set<ObjectId>& Participant::exit_excluded(
    ActionInstanceId scope) const {
  return dyn_of(scope).excluded;
}

bool Participant::exit_aborting(ActionInstanceId scope) const {
  return dyn_of(scope).aborting;
}

bool Participant::exit_resolution_idle(ActionInstanceId scope) const {
  const Dyn& dyn = dyn_of(scope);
  // A fast round in flight (suppressed raise, open census, or a kNoRaise
  // promise) leaves the engine Normal but a commit may still land: the exit
  // decision must wait until the census settles.
  return dyn.engine->state() == resolve::ResolverCore::State::kNormal &&
         (dyn.avoidance == nullptr || dyn.avoidance->idle());
}

void Participant::exit_unicast(ActionInstanceId scope, ObjectId to,
                               net::MsgKind kind, net::Bytes payload) {
  const Dyn& dyn = dyn_of(scope);
  if (dyn.info->use_tree) {
    // The live leader is the lowest live member — exactly the relay-tree
    // root — so exit traffic aggregates up the tree into shared envelopes.
    ensure_overlay(*dyn.info);
    overlay_.route(scope, to, kind, std::move(payload));
    return;
  }
  send(to, kind, std::move(payload));
}

void Participant::exit_unicast_many(ActionInstanceId scope,
                                    const std::vector<ObjectId>& targets,
                                    net::MsgKind kind,
                                    const net::Bytes& payload) {
  if (targets.empty()) return;
  const Dyn& dyn = dyn_of(scope);
  if (dyn.info->use_tree) {
    // One payload per shared tree edge instead of one RouteItem per target
    // — the whole 2a wave to an acceptor subtree rides a single envelope
    // entry.
    ensure_overlay(*dyn.info);
    overlay_.route_multi(scope, targets, kind, payload);
    return;
  }
  for (ObjectId to : targets) {
    send(to, kind, net::BytesPool::local().copy_of(payload));
  }
}

void Participant::exit_multicast(ActionInstanceId scope, net::MsgKind kind,
                                 const net::Bytes& payload) {
  multicast(*dyn_of(scope).info, kind, payload);
}

void Participant::exit_announce_live(ActionInstanceId scope,
                                     net::MsgKind kind,
                                     const net::Bytes& payload) {
  const Dyn& dyn = dyn_of(scope);
  if (dyn.info->use_tree) {
    ensure_overlay(*dyn.info);
    overlay_.flood(scope, kind, payload);
    return;
  }
  for (ObjectId member : dyn.info->members) {
    if (member == id() || dyn.excluded.contains(member)) continue;
    send(member, kind, net::BytesPool::local().copy_of(payload));
  }
}

LeaveMsg Participant::exit_decide(ActionInstanceId scope, std::uint32_t round,
                                  const std::vector<DoneMsg>& dones) {
  const Dyn& dyn = dyn_of(scope);
  bool all_ok = true;
  std::vector<ExceptionId> signals;
  for (const DoneMsg& done : dones) {
    all_ok = all_ok && done.ok;
    if (done.signal.valid()) signals.push_back(done.signal);
  }

  LeaveMsg leave;
  leave.scope = scope;
  leave.round = round;
  if (!all_ok) {
    // Acceptance failure: backward recovery while attempts remain (§3.1 /
    // Figure 2(b)), otherwise signal the configured failure exception.
    if (dyn.attempt + 1 < dyn.config.max_attempts) {
      leave.outcome = LeaveOutcome::kRestored;
      leave.attempt = dyn.attempt + 1;
    } else {
      leave.outcome = LeaveOutcome::kSignalled;
      leave.signal = dyn.config.failure_signal;
    }
  } else if (!signals.empty()) {
    leave.outcome = LeaveOutcome::kSignalled;
    if (dyn.info->parent.valid()) {
      const ex::ExceptionTree& parent_tree =
          manager_.info(dyn.info->parent).decl->tree();
      leave.signal = parent_tree.resolve(signals);
    } else {
      leave.signal = signals.front();
    }
  } else {
    leave.outcome = LeaveOutcome::kCommitted;
  }
  return leave;
}

void Participant::exit_deliver_leave(const LeaveMsg& m) { apply_leave(m); }

void Participant::exit_trace(std::string_view event, std::string detail) {
  trace(event, std::move(detail));
}

void Participant::notify_peer_crashed(ObjectId peer) {
  if (peer == id()) return;
  if (!crashed_.insert(peer).second) return;  // already known
  retired_exits_.clear();  // no exit-protocol frames on the stack here
  purge_pending_from(peer);
  // Heal the relay trees first: the re-announcements below must travel the
  // repaired topology, not through the dead relay.
  if (overlay_ready_) overlay_.on_peer_crashed(peer);
  trace("peer crashed", "O" + std::to_string(peer.value()));
  for (std::size_t depth = 0; depth < contexts_.size(); ++depth) {
    const ActionInstanceId instance = contexts_.at(depth).instance;
    Dyn& dyn = dyn_.at(instance);
    if (!dyn.info->is_member(peer) || dyn.excluded.contains(peer)) continue;
    // Avoidance first: any census aborts and suppressed raises replay into
    // the engine NOW, so the CrashSync barrier and the exit protocol's
    // decide re-evaluation below see settled (engine-held) state.
    if (dyn.avoidance != nullptr) dyn.avoidance->on_peer_crashed(peer);
    const ObjectId old_leader = live_leader(dyn);
    dyn.excluded.insert(peer);
    // Barrier before exclusion: the gate must be on before exclude_member's
    // readiness re-check, or this object could commit from its own partial
    // view the instant the crashed member's ACK is waived. The planted-bug
    // flag (action::DebugBugs::exclusion_divergence) skips the barrier,
    // restoring the pre-PR 5 race the explorer must rediscover.
    const bool skip_sync = manager_.debug_bugs().exclusion_divergence;
    if (!skip_sync) begin_crash_sync(instance, dyn, peer);
    dyn.engine->exclude_member(peer);
    // If an earlier barrier was still waiting on this peer, its reply will
    // never come — waive it (may complete that barrier).
    if (!skip_sync) crash_sync_heard(instance, dyn, peer);
    const ObjectId new_leader = live_leader(dyn);
    // Exit-side consequences (leader re-election, pending-Done re-announce,
    // quorum re-evaluation) belong to the scope's exit protocol. May decide
    // and tear the scope down; nothing touches `dyn` afterwards.
    dyn.exit->on_peer_crashed(peer, old_leader, new_leader);
  }
  // The peer will never ACK a Leave again: complete any waiting records.
  if (const std::size_t collected = leave_log_.waive(peer); collected > 0) {
    runtime().simulator().counters().add(
        kCounterLeaveCollected, static_cast<std::int64_t>(collected));
  }
  // Forward recovery among survivors: raise the configured crash exception
  // if this participant is still working in its active action.
  if (!in_action()) return;
  const ActionInstanceId active = contexts_.active().instance;
  Dyn& adyn = dyn_.at(active);
  if (adyn.config.crash_exception.valid() && adyn.info->is_member(peer) &&
      !adyn.aborting && !adyn.done_sent && !adyn.handling &&
      adyn.engine->state() == resolve::ResolverCore::State::kNormal) {
    adyn.engine->raise(adyn.config.crash_exception,
                       "peer O" + std::to_string(peer.value()) + " crashed");
  } else if (adyn.config.crash_exception.valid() && !adyn.aborting &&
             (adyn.engine->state() ==
                  resolve::ResolverCore::State::kSuspended ||
              adyn.engine->state() ==
                  resolve::ResolverCore::State::kAborting)) {
    // A suspended survivor whose raisers have all crashed must promote
    // itself (extension; see ResolverCore::raise_from_suspended) — but not
    // before the CrashSync barrier drains: a peer's status may carry the
    // commit (or a live raiser's exception) that makes promotion wrong.
    // While kAborting the raiser set is not even knowable yet; the
    // re-check runs when the abortion completes.
    adyn.promote_pending = true;
    maybe_promote(active);
  }
}

void Participant::maybe_promote(ActionInstanceId scope) {
  Dyn* dyn = find_dyn(scope);
  if (dyn == nullptr || !dyn->promote_pending) return;
  if (!dyn->sync_waiting.empty()) return;  // barrier still draining
  if (dyn->aborting || !in_action() || contexts_.active().instance != scope ||
      dyn->engine->state() == resolve::ResolverCore::State::kAborting) {
    // Not decidable yet (abortion running) or no longer applicable; a
    // dead/aborting context clears the flag for good.
    if (dyn->aborting || !in_action() ||
        contexts_.active().instance != scope) {
      dyn->promote_pending = false;
    }
    return;
  }
  dyn->promote_pending = false;
  if (dyn->engine->state() != resolve::ResolverCore::State::kSuspended ||
      dyn->engine->has_live_raiser() ||
      !dyn->config.crash_exception.valid()) {
    return;  // the sync surfaced a live raiser or a commit; nothing to do
  }
  dyn->engine->raise_from_suspended(dyn->config.crash_exception);
}

resolve::CrashSyncMsg Participant::sync_status(
    const Dyn& dyn, ActionInstanceId scope, ObjectId crashed,
    resolve::CrashSyncMsg::Phase phase) const {
  resolve::CrashSyncMsg m;
  m.scope = scope;
  m.round = dyn.round;
  m.sender = id();
  m.crashed = crashed;
  m.phase = phase;
  // One commit slot suffices: a commit this member holds for a round some
  // live peer has not finished is either the engine's held commit (our
  // current round) or the last applied one (the previous round) — round
  // divergence among live members is at most 1, and a commit for a round
  // beyond a live member's current round cannot exist (its ACK is missing).
  if (const auto& held = dyn.engine->held_commit(); held.has_value()) {
    m.commit_round = held->round;
    m.commit_resolver = held->resolver;
    m.commit_resolved = held->resolved;
  } else if (dyn.last_commit.has_value()) {
    m.commit_round = dyn.last_commit->round;
    m.commit_resolver = dyn.last_commit->resolver;
    m.commit_resolved = dyn.last_commit->resolved;
  }
  return m;
}

void Participant::begin_crash_sync(ActionInstanceId scope, Dyn& dyn,
                                   ObjectId crashed) {
  std::vector<ObjectId> live;
  for (ObjectId member : dyn.info->members) {
    if (member == id() || crashed_.contains(member) ||
        dyn.excluded.contains(member)) {
      continue;
    }
    live.push_back(member);
    dyn.sync_waiting.insert(member);
  }
  if (dyn.sync_waiting.empty()) return;  // sole survivor: nothing to learn
  dyn.engine->set_commit_gate(true);
  trace("crash sync begins",
        "O" + std::to_string(crashed.value()) + ", waiting on " +
            std::to_string(dyn.sync_waiting.size()));
  const net::Bytes payload = resolve::encode(
      sync_status(dyn, scope, crashed, resolve::CrashSyncMsg::Phase::kPush));
  for (ObjectId member : live) {
    send(member, net::MsgKind::kCrashSync,
         net::BytesPool::local().copy_of(payload));
  }
}

void Participant::crash_sync_heard(ActionInstanceId scope, Dyn& dyn,
                                   ObjectId from) {
  if (dyn.sync_waiting.erase(from) == 0) return;
  if (!dyn.sync_waiting.empty()) return;
  trace("crash sync complete");
  dyn.engine->set_commit_gate(false);
  maybe_promote(scope);
}

void Participant::on_crash_sync(ObjectId from, const net::Bytes& payload) {
  auto decoded = resolve::decode_crash_sync(payload);
  if (!decoded.is_ok()) return;
  const resolve::CrashSyncMsg m = decoded.value();
  if (m.crashed == id()) return;  // fail-stop: nobody truthfully names us
  if (crashed_.contains(from)) {
    runtime().simulator().counters().add(kCounterFromCrashedDropped);
    return;
  }
  // Gossip: a push can outrun our own failure detector. Apply the exclusion
  // first so the status we answer with reflects a consistent membership
  // view — this is also what un-deadlocks asymmetric detection (our own
  // barrier begins, and our push to `from` is already in flight, before we
  // strike `from`'s push off the waiting set below).
  notify_peer_crashed(m.crashed);
  Dyn* dyn = find_dyn(m.scope);
  if (dyn == nullptr || dyn->aborting) {
    // Not in the action (never entered, left, restarted, or aborting out of
    // it): tell pushers to stop waiting for us. Replies to replies would
    // ping-pong; kGone only answers pushes.
    if (m.phase == resolve::CrashSyncMsg::Phase::kPush) {
      resolve::CrashSyncMsg gone;
      gone.scope = m.scope;
      gone.round = resolve::CrashSyncMsg::kGoneRound;
      gone.sender = id();
      gone.crashed = m.crashed;
      gone.phase = resolve::CrashSyncMsg::Phase::kGone;
      send(from, net::MsgKind::kCrashSync, resolve::encode(gone));
    }
    return;
  }
  // Adopt a carried commit for our current round. Commits for other rounds
  // are stale (ours is applied) — a commit for a round we have not reached
  // cannot exist while we are live (see sync_status).
  if (m.commit_resolved.valid() && m.commit_round == dyn->round &&
      dyn->engine->round() == dyn->round) {
    dyn->engine->apply_synced_commit(resolve::CommitMsg{
        m.scope, m.commit_round, m.commit_resolver, m.commit_resolved});
  }
  if (m.phase == resolve::CrashSyncMsg::Phase::kPush) {
    // Re-find: applying a commit can finish the round and, via zero-delay
    // continuations, never invalidates dyn_, but stay defensive about the
    // reply's snapshot.
    Dyn* current = find_dyn(m.scope);
    if (current != nullptr) {
      send(from, net::MsgKind::kCrashSync,
           resolve::encode(sync_status(*current, m.scope, m.crashed,
                                       resolve::CrashSyncMsg::Phase::kReply)));
    }
  }
  if (Dyn* current = find_dyn(m.scope); current != nullptr) {
    crash_sync_heard(m.scope, *current, from);
  }
}

void Participant::notify_peer_restarted(ObjectId peer) {
  if (peer == id()) return;
  if (crashed_.erase(peer) == 0) return;
  trace("peer restarted", "O" + std::to_string(peer.value()));
  // Per-instance exclusions stay: the peer lost its volatile state for
  // those actions and the engines have already waived it. Only the global
  // from-crashed message filter and new-instance membership reset.
}

void Participant::on_restarted() {
  // Fail-stop restart (extension): the crash wiped this object's volatile
  // action state, and the survivors have already excluded it from every
  // resolution it was part of, so nothing it could say is still expected.
  // Abandon every open context innermost-first; the tombstones route any
  // in-flight or future messages for these scopes to the dead-scope drop
  // path. Durable records (handled_, aborts_) survive — commits that were
  // applied before the crash stay applied.
  abort_chain_.reset();
  retired_exits_.clear();  // no exit-protocol frames on the stack here
  obs::FlightRecorder& recorder = runtime().simulator().obs().recorder();
  while (in_action()) {
    const ActionInstanceId scope = contexts_.active().instance;
    trace("restart abandons", dyn_.at(scope).info->decl->name());
    abandoned_.insert(scope);
    runtime().simulator().counters().add(kCounterRestartAbandoned);
    if (recorder.enabled()) {
      recorder.record_protocol(obs::RecType::kAbort, id().value(),
                               scope.value(), 0, 0);
    }
    pop_context(scope, /*dead=*/true);
  }
  pending_.clear();
  // Relay caches and squelch state are volatile too: the healed survivor
  // trees exclude us, and on_relay drops envelopes for abandoned scopes.
  overlay_.clear();
  // Watchdog holds for the abandoned scopes were released at crash time;
  // instances entered from now on are watched normally again.
  wd_released_ = false;
}

bool Participant::is_live(ActionInstanceId scope) const {
  auto it = dyn_.find(scope);
  return it != dyn_.end() && !it->second.aborting;
}

void Participant::run_guarded(ActionInstanceId scope, sim::Time delay,
                              std::function<void()> fn) {
  schedule_after(delay, [this, scope, fn = std::move(fn)] {
    if (!is_live(scope)) return;  // the action was aborted meanwhile
    fn();
  });
}

void Participant::trace(std::string_view event, std::string detail) {
  if (!attached()) return;
  sim::TraceLog& log = runtime().trace();
  if (!log.enabled()) return;
  log.record(now(), "resolve", std::string(event), name(), std::move(detail));
}

obs::Observability* Participant::observing() const {
  if (!attached()) return nullptr;
  obs::Observability& o = runtime().simulator().obs();
  return o.enabled() ? &o : nullptr;
}

// ---------------------------------------------------------------------------
// Health gauges + liveness watchdog (src/obs/)
// ---------------------------------------------------------------------------

void Participant::sync_caa_health() {
  if (!attached()) return;
  obs::HealthGauges& h = runtime().simulator().obs().health();
  const auto scopes = static_cast<std::int64_t>(dyn_.size());
  std::int64_t barrier = 0;
  std::int64_t paxos = 0;
  for (const auto& [scope, dyn] : dyn_) {
    // "Exit occupancy": this member sent its Done and the scope has not
    // left yet — the window where the committee protocol is in charge.
    if (!dyn.done_sent || dyn.exit == nullptr) continue;
    if (dyn.exit->kind() == exit::ExitKind::kPaxos) {
      ++paxos;
    } else {
      ++barrier;
    }
  }
  if (scopes != scopes_gauge_) {
    h.add(obs::Gauge::kCaaOpenScopes, scopes - scopes_gauge_);
    scopes_gauge_ = scopes;
  }
  h.set_max(obs::Gauge::kCaaNestingDepth,
            static_cast<std::int64_t>(contexts_.size()));
  if (barrier != exit_barrier_gauge_) {
    h.add(obs::Gauge::kExitBarrierOpen, barrier - exit_barrier_gauge_);
    exit_barrier_gauge_ = barrier;
  }
  if (paxos != exit_paxos_gauge_) {
    h.add(obs::Gauge::kExitPaxosOpen, paxos - exit_paxos_gauge_);
    exit_paxos_gauge_ = paxos;
  }
}

void Participant::wd_open(ActionInstanceId scope) {
  if (!attached()) return;
  obs::Watchdog& w = runtime().simulator().obs().watchdog();
  if (w.armed()) w.note_open(scope.value(), now());
}

void Participant::wd_progress(ActionInstanceId scope) {
  if (!attached()) return;
  obs::Watchdog& w = runtime().simulator().obs().watchdog();
  if (w.armed()) w.note_progress(scope.value(), now());
}

void Participant::wd_closed(ActionInstanceId scope) {
  if (!attached() || wd_released_) return;
  obs::Watchdog& w = runtime().simulator().obs().watchdog();
  if (w.armed()) w.note_closed(scope.value(), now());
}

void Participant::wd_release_open_scopes() {
  if (wd_released_) return;
  for (const auto& [scope, dyn] : dyn_) wd_closed(scope);
  wd_released_ = true;
}

bool Participant::describe_scope(ActionInstanceId scope,
                                 obs::WatchdogReport& report) const {
  auto it = dyn_.find(scope);
  if (it == dyn_.end()) return false;
  const Dyn& dyn = it->second;
  report.scope_name = dyn.info->decl->name();
  std::vector<ObjectId> awaited;
  if (dyn.aborting) {
    report.phase = "aborting nested chain";
  } else if (dyn.engine != nullptr &&
             dyn.engine->state() != resolve::ResolverCore::State::kNormal) {
    report.phase =
        "resolve (" + std::string(resolve::to_string(dyn.engine->state())) +
        ", round " + std::to_string(dyn.round) + ")";
    awaited = dyn.engine->awaited_members();
  } else if (dyn.avoidance != nullptr && !dyn.avoidance->idle()) {
    report.phase =
        "avoidance (" + std::string(dyn.avoidance->phase()) + ")";
  } else if (dyn.done_sent && dyn.exit != nullptr) {
    dyn.exit->describe(report.phase, awaited);
    if (report.phase.empty()) report.phase = "exit (awaiting committee)";
  } else if (dyn.handling) {
    report.phase = "handler running";
  } else {
    report.phase = "body running (no Done sent)";
  }
  if (attached()) {
    const rt::Directory& dir = runtime().directory();
    for (ObjectId o : awaited) report.awaited.push_back(dir.name_of(o));
  } else {
    for (ObjectId o : awaited) {
      report.awaited.push_back("obj" + std::to_string(o.value()));
    }
  }
  if (!dyn.excluded.empty()) {
    report.detail =
        std::to_string(dyn.excluded.size()) + " member(s) excluded (crashed)";
  }
  return true;
}

}  // namespace caa::action
