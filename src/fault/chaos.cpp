#include "fault/chaos.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "caa/world.h"
#include "fault/injector.h"
#include "fault/oracle.h"
#include "fault/repro.h"

namespace caa::fault {
namespace {

// Decorrelates the plan-generation stream from the scenario stream: both
// are pure functions of the trial seed, but must not consume each other's
// draws or a shrunk plan would change the world it replays against.
constexpr std::uint64_t kPlanStream = 0x9e3779b97f4a7c15ULL;

Rng scenario_rng(std::uint64_t trial_seed) { return Rng(trial_seed); }

}  // namespace

std::uint32_t trial_participants(std::uint64_t trial_seed,
                                 const ChaosOptions& options) {
  CAA_CHECK(options.min_participants >= 2 &&
            options.max_participants >= options.min_participants);
  Rng rng = scenario_rng(trial_seed);
  return options.min_participants +
         static_cast<std::uint32_t>(rng.below(
             options.max_participants - options.min_participants + 1));
}

FaultPlan chaos_plan(std::uint64_t trial_seed, const ChaosOptions& options) {
  PlanGenOptions gen;
  gen.mix = options.mix;
  gen.nodes = trial_participants(trial_seed, options);
  gen.horizon = options.horizon;
  Rng rng(trial_seed ^ kPlanStream);
  FaultPlan plan = generate_plan(rng, gen);
  plan.exit = options.exit;
  plan.avoid = options.avoid;
  return plan;
}

run::WorldResult run_chaos_trial(std::uint64_t trial_seed,
                                 const FaultPlan& plan,
                                 const ChaosOptions& options,
                                 std::size_t index,
                                 std::string* critical_path,
                                 std::string* trace_log,
                                 std::string* watchdog_report) {
  Rng rng = scenario_rng(trial_seed);
  const std::uint32_t n =
      options.min_participants +
      static_cast<std::uint32_t>(rng.below(
          options.max_participants - options.min_participants + 1));

  WorldConfig config;
  config.link = net::LinkParams::lan();
  config.seed = trial_seed;
  config.trace = options.trace;
  config.reliable_transport = true;
  // Give-up horizon rto * max_retries = 12000 ticks: even a worst-case
  // chain of every generated outage window on one channel pair (5 windows
  // x 2000 ticks) cannot strand a retransmission permanently, so "stuck"
  // oracle hits are protocol bugs, not transport give-ups.
  config.reliable.rto = 300;
  config.reliable.max_retries = 40;
  config.overlay = options.overlay;
  // The plan (not the options) carries the exit protocol so a shrunk repro
  // replays against the protocol it was found with. GC'd leave records keep
  // long campaigns lean and exercise the ack path under faults.
  config.exit_protocol = plan.exit;
  config.resolve_avoidance = plan.avoid;
  config.exit_gc = true;
  config.watchdog_deadline = options.watchdog_deadline;
  World w(config);

  std::vector<action::Participant*> objects;
  std::vector<ObjectId> ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId node = w.add_node();
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1), node));
    ids.push_back(objects.back()->id());
  }
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("eb", cover);
  tree.declare("peer_crash");
  const auto& decl = w.actions().declare("A", std::move(tree));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    const bool entered = o->enter(
        inst.instance,
        action::EnterConfig::with(
            action::uniform_handlers(
                decl.tree(), ex::HandlerResult::recovered(rng.below(300))))
            .committee(options.committee)
            .on_peer_crash(decl.tree().find("peer_crash")));
    CAA_CHECK_MSG(entered, "chaos trial: initial enter refused");
  }
  // 1-2 raisers at random times, guarded: a raise is only legal while the
  // participant is working normally inside the action.
  const int raisers = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < raisers; ++i) {
    action::Participant* p = objects[rng.below(objects.size())];
    const sim::Time t = 1000 + static_cast<sim::Time>(rng.below(500));
    const bool which = rng.chance(0.5);
    w.at(t, [p, which] {
      if (!p->in_action()) return;
      if (p->at_acceptance_line()) return;
      if (p->resolver_state() != resolve::ResolverCore::State::kNormal) return;
      p->raise(which ? "ea" : "eb");
    });
  }
  // Idle survivors eventually complete; restarted/crashed participants
  // fall out via the in_action() guard.
  for (auto* o : objects) {
    for (sim::Time t = 6000; t <= 30000; t += 2000) {
      w.at(t, [o] {
        if (o->in_action() && !o->at_acceptance_line() &&
            o->resolver_state() == resolve::ResolverCore::State::kNormal) {
          o->complete();
        }
      });
    }
  }

  FaultInjector injector(w, plan);
  run::WorldResult r =
      run::measure("chaos#" + std::to_string(index), w,
                   [&w, &options] {
                     return w.simulator().run_until(options.deadline);
                   });

  if (trace_log != nullptr) *trace_log = w.trace().to_string();
  // run_until bypasses World::run, so close the watchdog here: any scope
  // still open at the deadline is a stall worth explaining.
  w.watchdog().finish(w.simulator().now());
  if (watchdog_report != nullptr) *watchdog_report = w.watchdog().report_text();
  OracleOptions oracle;
  oracle.deadline = options.deadline;
  const OracleReport report = check_invariants(w, oracle);
  r.values["chaos.plans"] = 1;
  r.values["chaos.plan_events"] =
      static_cast<std::int64_t>(plan.events.size());
  if (!report.ok()) {
    r.ok = false;
    r.error = report.summary();
    r.artifact = plan.to_text();
    if (critical_path != nullptr) *critical_path = w.critical_path_report();
    if (!options.dump_dir.empty()) {
      const std::string path = options.dump_dir + "/chaos" +
                               std::to_string(index) + "_seed" +
                               seed_hex(trial_seed) + ".caafr";
      if (w.write_recorder_dump(path, index)) r.recorder_dump_path = path;
    }
  }
  return r;
}

ChaosReport run_chaos_campaign(const ChaosOptions& options) {
  run::Campaign campaign({.seed = options.seed, .threads = options.threads});
  for (std::size_t i = 0; i < options.plans; ++i) {
    campaign.add("chaos#" + std::to_string(i),
                 [&options](const run::WorldContext& ctx) {
                   const FaultPlan plan = chaos_plan(ctx.seed, options);
                   // No dump during the sweep: the post-pass re-runs the
                   // *shrunk* plan and dumps that — the artifact a human
                   // debugs should match the minimal repro.
                   ChaosOptions sweep = options;
                   sweep.dump_dir.clear();
                   return run_chaos_trial(ctx.seed, plan, sweep, ctx.index);
                 });
  }
  ChaosReport report;
  report.campaign = campaign.run();
  report.violations = report.campaign.failed;
  if (report.violations == 0 || !options.shrink) return report;

  // Post-pass, sequential and deterministic: shrink every failing plan and
  // re-run the minimal plan once to dump its flight recorder and critical
  // path.
  for (run::WorldResult& world : report.campaign.worlds) {
    if (world.ok) continue;
    auto parsed = FaultPlan::parse(world.artifact);
    if (!parsed.is_ok()) continue;  // violation had no plan attached
    ChaosOptions replay = options;
    replay.dump_dir.clear();
    const std::uint64_t trial_seed = world.seed;
    const std::size_t index = world.index;
    const ShrinkResult shrunk = shrink_plan(
        parsed.value(),
        [&](const FaultPlan& candidate) {
          return !run_chaos_trial(trial_seed, candidate, replay, index).ok;
        },
        options.shrink_options);
    std::string critical_path;
    const run::WorldResult minimal = run_chaos_trial(
        trial_seed, shrunk.plan, options, index, &critical_path);
    if (!minimal.recorder_dump_path.empty()) {
      world.recorder_dump_path = minimal.recorder_dump_path;
    }
    std::string repro = "  repro (plan shrunk " +
                        std::to_string(parsed.value().events.size()) + " -> " +
                        std::to_string(shrunk.plan.events.size()) +
                        " events, " + std::to_string(shrunk.replays) +
                        " replays" +
                        (shrunk.minimal ? "" : ", replay budget hit") +
                        "):\n";
    // The recipe body is exactly what parse_repro reads back, so a saved
    // failure report replays with `caa-chaos --replay <file>`.
    repro += "    trial seed 0x" + seed_hex(trial_seed) + ", mix " +
             std::string(fault_mix_name(options.mix)) + ", " +
             std::to_string(trial_participants(trial_seed, options)) +
             " participants\n";
    append_indented(repro, shrunk.plan.to_text());
    if (!critical_path.empty()) {
      repro += "  critical path (caa-inspect decodes the dump):\n";
      append_indented(repro, critical_path);
    }
    world.repro = std::move(repro);
  }
  return report;
}

}  // namespace caa::fault
