#include "fault/injector.h"

#include <utility>

#include "util/check.h"

namespace caa::fault {

FaultInjector::FaultInjector(World& world, FaultPlan plan)
    : world_(world), plan_(std::move(plan)) {
  const Status status = plan_.validate(world_.node_count());
  CAA_CHECK_MSG(status.is_ok(), "fault plan failed validation");
  arm();
}

void FaultInjector::crash_node(World& world, NodeId node) {
  net::Network& network = world.network();
  if (!network.node_up(node)) return;  // already down (shrunk plans)
  network.set_node_up(node, false);
  // Fail-stop detection: every participant on a live node learns of each of
  // the victim's objects. Immediate detection keeps plans deterministic; a
  // detection-latency study would move this behind the heartbeat monitor.
  for (const auto& victim : world.participants()) {
    if (victim->runtime().node() != node) continue;
    for (const auto& peer : world.participants()) {
      const NodeId peer_node = peer->runtime().node();
      if (peer_node == node || !network.node_up(peer_node)) continue;
      peer->notify_peer_crashed(victim->id());
    }
  }
}

void FaultInjector::arm() {
  sim::Simulator& simulator = world_.simulator();
  net::Network& network = world_.network();
  for (const FaultEvent& e : plan_.events) {
    switch (e.kind) {
      case FaultKind::kCrash:
        simulator.schedule_at(e.at, [this, node = NodeId(e.a)] {
          crash_node(world_, node);
        });
        break;
      case FaultKind::kRestart:
        simulator.schedule_at(e.at, [&network, node = NodeId(e.a)] {
          // No-op when up (shrunk plans); the up-transition fires the
          // World's node hook, which drives participant restart handling.
          if (!network.node_up(node)) network.set_node_up(node, true);
        });
        break;
      case FaultKind::kPartition:
        simulator.schedule_at(e.at, [&network, a = NodeId(e.a),
                                     b = NodeId(e.b)] {
          network.set_partitioned(a, b, true);
        });
        simulator.schedule_at(e.until, [&network, a = NodeId(e.a),
                                        b = NodeId(e.b)] {
          network.set_partitioned(a, b, false);
        });
        break;
      case FaultKind::kDropBurst:
        simulator.schedule_at(e.at, [&network, e] {
          network.set_drop_window(NodeId(e.a), NodeId(e.b), e.until,
                                  e.permille);
          network.set_drop_window(NodeId(e.b), NodeId(e.a), e.until,
                                  e.permille);
        });
        break;
      case FaultKind::kLatencySpike:
        simulator.schedule_at(e.at, [&network, e] {
          network.set_latency_window(NodeId(e.a), NodeId(e.b), e.until,
                                     e.extra);
          network.set_latency_window(NodeId(e.b), NodeId(e.a), e.until,
                                     e.extra);
        });
        break;
      case FaultKind::kResolverCrash:
        resolver_delay_ = e.extra;
        break;
      case FaultKind::kExitAssassin:
        assassin_delay_ = e.extra;
        break;
    }
  }
  if (!resolver_delay_.has_value() && !assassin_delay_.has_value()) return;
  // The Network has ONE send tap, so the trigger faults share it. The tap
  // fires inside Network::send() with participant frames on the stack: only
  // *schedule* the crashes, never apply them here.
  network.set_send_tap([this](const net::Packet& p) {
    // A fast round's kFastCover report is the avoidance path's analogue of
    // the first Exception send — count it so the resolver hunt still aims
    // at raisers when coordination avoidance suppresses the broadcast.
    if (resolver_delay_.has_value() && !trigger_fired_ &&
        (p.kind == net::MsgKind::kException ||
         p.kind == net::MsgKind::kFastCover)) {
      trigger_fired_ = true;
      world_.simulator().schedule_at(
          world_.simulator().now() + *resolver_delay_,
          [this, node = p.src.node] { crash_node(world_, node); });
    }
    if (assassin_delay_.has_value() && !assassin_fired_ &&
        (p.kind == net::MsgKind::kActionDone ||
         p.kind == net::MsgKind::kPaxosVote)) {
      // The committee has started exiting: take out the coordinator. The
      // victim is chosen at crash time — the lowest live node hosts the
      // lowest live member, i.e. whoever leads the exit at that moment.
      assassin_fired_ = true;
      world_.simulator().schedule_at(
          world_.simulator().now() + *assassin_delay_, [this] {
            net::Network& network = world_.network();
            for (std::uint32_t n = 0; n < world_.node_count(); ++n) {
              if (network.node_up(NodeId(n))) {
                crash_node(world_, NodeId(n));
                return;
              }
            }
          });
    }
  });
}

}  // namespace caa::fault
