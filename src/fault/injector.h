// Arms a FaultPlan against a World as ordinary simulator events.
//
// The injector owns no policy: it translates timeline entries into the
// Network's fault primitives (set_node_up, set_partitioned, windowed drop /
// latency overrides) plus the crash-notification choreography the
// fail-stop extension expects (every live participant learns of a crashed
// peer's objects). The trigger-based faults share the Network's single send
// tap: the resolver crash schedules a crash of the first Exception packet's
// sender a configured delay later, and the exit assassin schedules a crash
// of the current exit leader (the lowest live node) once the first
// exit-protocol packet (ActionDone / PaxosVote) is seen. Both only
// *schedule* — the tap runs inside send() with participant frames on the
// stack, so nothing may crash synchronously.
//
// One injector serves one run of one world and must outlive it.
#pragma once

#include <optional>

#include "caa/world.h"
#include "fault/plan.h"

namespace caa::fault {

class FaultInjector {
 public:
  /// Validates `plan` against the world's node count (CHECK on failure —
  /// plans reaching an injector have passed generation or parsing) and
  /// schedules every event. Call before running the world.
  FaultInjector(World& world, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Crashes `node` now: marks it down and notifies every participant on a
  /// live node of each of the victim's participants. No-op if already
  /// down. Exposed so tests can script crashes outside a plan.
  static void crash_node(World& world, NodeId node);

 private:
  void arm();

  World& world_;
  FaultPlan plan_;
  // Trigger delays armed from the plan; set => that trigger participates in
  // the shared send tap. Each fires at most once.
  std::optional<sim::Time> resolver_delay_;
  std::optional<sim::Time> assassin_delay_;
  bool trigger_fired_ = false;
  bool assassin_fired_ = false;
};

}  // namespace caa::fault
