// Reusable invariant oracle, run against a world after (attempted)
// quiescence.
//
// The paper's safety claims, stated as machine-checkable invariants:
//   * quiescence   — the simulator drained within the virtual-time budget;
//   * stuck        — no participant on a live node is still inside an
//                    action (completion was driven by the scenario, so a
//                    leftover context means the protocol wedged, e.g.
//                    suspended outside N after a Commit it never saw);
//   * agreement    — across ALL participants (crashed ones included:
//                    commits applied before a crash are final), every
//                    (action, round) resolved to one exception (§4.2);
//   * conservation — per message kind, sent + duplicated ==
//                    delivered + dropped: the network neither loses nor
//                    invents packets beyond its declared faults;
//   * txn leaks    — optional: no lock held, no waiter queued, no undo log
//                    open on any registered atomic-object host, and no
//                    transaction still active on any registered client.
//
// Violations are strings ready for a campaign failure report; the caller
// attaches seed / plan / dump-path context.
#pragma once

#include <string>
#include <vector>

#include "caa/world.h"
#include "txn/atomic_object.h"
#include "txn/txn_manager.h"

namespace caa::fault {

struct OracleOptions {
  /// Virtual-time deadline the run was given; quiescence is checked as
  /// "queue empty once the clock reached this".
  sim::Time deadline = 0;
  /// Atomic-object hosts / transaction clients to audit for leaks
  /// (optional; worlds without transactions leave these empty).
  std::vector<const txn::AtomicObjectHost*> hosts;
  std::vector<const txn::TxnClient*> clients;
};

struct OracleReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations on one line, "; "-separated ("" when ok()).
  [[nodiscard]] std::string summary() const;
};

/// Runs every invariant against `world` as it stands. Call after the run.
[[nodiscard]] OracleReport check_invariants(World& world,
                                            const OracleOptions& options);

}  // namespace caa::fault
