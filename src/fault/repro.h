// Shared repro-recipe plumbing: the text format every violation report
// emits and every replay entry point reads back.
//
// A repro recipe is self-contained: one header line naming the trial seed,
// fault mix and participant count, followed by an indented "faultplan v1"
// block (and optionally a critical-path section, which parsing ignores).
// The chaos campaign post-pass writes recipes with append_indented; the
// systematic explorer (src/explore/) writes its schedule repros with the
// same indentation; caa-chaos --replay feeds a saved recipe straight back
// in through parse_repro.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/plan.h"

namespace caa::fault {

/// "00000000deadbeef": the 16-digit lowercase hex every repro recipe uses
/// for trial seeds.
[[nodiscard]] std::string seed_hex(std::uint64_t value);

/// Appends `block` to `out` one line at a time, each prefixed with
/// `indent` — the recipe indentation failure reports use (and parse_repro
/// strips again).
void append_indented(std::string& out, std::string_view block,
                     std::string_view indent = "    ");

/// One chaos repro artifact reparsed from a failure report (or from any
/// file containing one recipe):
///   trial seed 0x<16 hex>, mix <name>, <N> participants
///   faultplan v1
///   ...
struct ReproArtifact {
  std::uint64_t seed = 0;
  FaultMix mix = FaultMix::kMixed;
  std::uint32_t participants = 0;
  FaultPlan plan;
};

/// Extracts the first recipe found in `text`. Leading whitespace per line
/// is irrelevant; everything after the plan block is ignored.
[[nodiscard]] Result<ReproArtifact> parse_repro(std::string_view text);

}  // namespace caa::fault
