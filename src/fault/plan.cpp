#include "fault/plan.h"

#include <charconv>
#include <cstdio>

namespace caa::fault {
namespace {

// One directive name per kind, in enum order.
constexpr std::string_view kKindNames[] = {
    "crash",   "restart", "partition",      "drop",
    "latency", "resolver-crash", "assassin",
};

void append_field(std::string& out, std::string_view key, std::int64_t value) {
  out += ' ';
  out += key;
  out += '=';
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, end);
}

/// "key=value" → writes into `*value`; false on mismatch or bad number.
bool parse_field(std::string_view token, std::string_view key,
                 std::int64_t* value) {
  if (token.size() <= key.size() + 1 || !token.starts_with(key) ||
      token[key.size()] != '=') {
    return false;
  }
  const std::string_view digits = token.substr(key.size() + 1);
  auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(),
                                   *value);
  return ec == std::errc{} && ptr == digits.data() + digits.size();
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

std::string FaultPlan::to_text() const {
  std::string out = "faultplan v1\n";
  if (exit != exit::ExitKind::kBarrier) {
    out += "exit ";
    out += exit::exit_kind_name(exit);
    out += '\n';
  }
  if (avoid) {
    out += "avoid\n";
  }
  for (const FaultEvent& e : events) {
    out += fault_kind_name(e.kind);
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        append_field(out, "node", e.a);
        append_field(out, "at", e.at);
        break;
      case FaultKind::kPartition:
        append_field(out, "a", e.a);
        append_field(out, "b", e.b);
        append_field(out, "at", e.at);
        append_field(out, "until", e.until);
        break;
      case FaultKind::kDropBurst:
        append_field(out, "a", e.a);
        append_field(out, "b", e.b);
        append_field(out, "at", e.at);
        append_field(out, "until", e.until);
        append_field(out, "permille", e.permille);
        break;
      case FaultKind::kLatencySpike:
        append_field(out, "a", e.a);
        append_field(out, "b", e.b);
        append_field(out, "at", e.at);
        append_field(out, "until", e.until);
        append_field(out, "extra", e.extra);
        break;
      case FaultKind::kResolverCrash:
      case FaultKind::kExitAssassin:
        append_field(out, "delay", e.extra);
        break;
    }
    out += '\n';
  }
  return out;
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::vector<std::string_view> tokens = split_ws(line);
    if (tokens.empty() || tokens[0].starts_with('#')) continue;
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "faultplan" || tokens[1] != "v1") {
        return Status::invalid_argument(
            "fault plan must start with 'faultplan v1' (line " +
            std::to_string(line_no) + ")");
      }
      saw_header = true;
      continue;
    }
    if (tokens[0] == "exit") {
      if (tokens.size() != 2) {
        return Status::invalid_argument(
            "fault plan line " + std::to_string(line_no) +
            ": expected 'exit <barrier|paxos>'");
      }
      auto kind = exit::parse_exit_kind(tokens[1]);
      if (!kind.is_ok()) {
        return Status::invalid_argument("fault plan line " +
                                        std::to_string(line_no) + ": " +
                                        kind.status().message());
      }
      plan.exit = kind.value();
      continue;
    }
    if (tokens[0] == "avoid") {
      if (tokens.size() != 1) {
        return Status::invalid_argument("fault plan line " +
                                        std::to_string(line_no) +
                                        ": 'avoid' takes no fields");
      }
      plan.avoid = true;
      continue;
    }
    FaultEvent e;
    bool known = false;
    for (std::size_t k = 0; k < std::size(kKindNames); ++k) {
      if (tokens[0] == kKindNames[k]) {
        e.kind = static_cast<FaultKind>(k);
        known = true;
        break;
      }
    }
    const auto bad = [&](std::string_view what) -> Result<FaultPlan> {
      return Status::invalid_argument("fault plan line " +
                                      std::to_string(line_no) + ": " +
                                      std::string(what));
    };
    if (!known) return bad("unknown directive '" + std::string(tokens[0]) + "'");

    // Required fields per directive, matched positionally by key.
    struct Slot {
      std::string_view key;
      std::int64_t* dst;
    };
    std::int64_t a = 0, b = 0, at = 0, until = 0, permille = 0, extra = 0;
    std::vector<Slot> slots;
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        slots = {{"node", &a}, {"at", &at}};
        break;
      case FaultKind::kPartition:
        slots = {{"a", &a}, {"b", &b}, {"at", &at}, {"until", &until}};
        break;
      case FaultKind::kDropBurst:
        slots = {{"a", &a},
                 {"b", &b},
                 {"at", &at},
                 {"until", &until},
                 {"permille", &permille}};
        break;
      case FaultKind::kLatencySpike:
        slots = {{"a", &a},
                 {"b", &b},
                 {"at", &at},
                 {"until", &until},
                 {"extra", &extra}};
        break;
      case FaultKind::kResolverCrash:
      case FaultKind::kExitAssassin:
        slots = {{"delay", &extra}};
        break;
    }
    if (tokens.size() != slots.size() + 1) return bad("wrong field count");
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!parse_field(tokens[i + 1], slots[i].key, slots[i].dst)) {
        return bad("expected '" + std::string(slots[i].key) + "=<int>', got '" +
                   std::string(tokens[i + 1]) + "'");
      }
    }
    if (a < 0 || b < 0 || at < 0 || until < 0 || permille < 0 || extra < 0) {
      return bad("negative field");
    }
    e.a = static_cast<std::uint32_t>(a);
    e.b = static_cast<std::uint32_t>(b);
    e.at = at;
    e.until = until;
    e.permille = static_cast<std::uint32_t>(permille);
    e.extra = extra;
    plan.events.push_back(e);
  }
  if (!saw_header) {
    return Status::invalid_argument("empty fault plan (missing header)");
  }
  return plan;
}

Status FaultPlan::validate(std::uint32_t nodes) const {
  std::size_t triggers = 0;
  std::size_t assassins = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const auto bad = [&](std::string_view what) {
      return Status::invalid_argument("fault event " + std::to_string(i) +
                                      " (" +
                                      std::string(fault_kind_name(e.kind)) +
                                      "): " + std::string(what));
    };
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        if (e.a >= nodes) return bad("node out of range");
        break;
      case FaultKind::kPartition:
      case FaultKind::kDropBurst:
      case FaultKind::kLatencySpike:
        if (e.a >= nodes || e.b >= nodes) return bad("node out of range");
        if (e.a == e.b) return bad("self-link");
        if (e.until < e.at) return bad("window ends before it starts");
        if (e.kind == FaultKind::kDropBurst && e.permille > 1000) {
          return bad("permille > 1000");
        }
        break;
      case FaultKind::kResolverCrash:
        if (++triggers > 1) return bad("at most one resolver-crash trigger");
        break;
      case FaultKind::kExitAssassin:
        if (++assassins > 1) return bad("at most one exit-assassin trigger");
        break;
    }
  }
  return Status::ok();
}

std::string_view fault_mix_name(FaultMix mix) {
  switch (mix) {
    case FaultMix::kMixed: return "mixed";
    case FaultMix::kCrashHeavy: return "crash-heavy";
    case FaultMix::kNetworkOnly: return "network-only";
    case FaultMix::kResolverHunt: return "resolver-hunt";
  }
  return "?";
}

Result<FaultMix> parse_fault_mix(std::string_view name) {
  for (FaultMix mix : {FaultMix::kMixed, FaultMix::kCrashHeavy,
                       FaultMix::kNetworkOnly, FaultMix::kResolverHunt}) {
    if (name == fault_mix_name(mix)) return mix;
  }
  return Status::invalid_argument("unknown fault mix '" + std::string(name) +
                                  "'");
}

namespace {

sim::Time pick_time(Rng& rng, const PlanGenOptions& o) {
  return o.fault_from +
         static_cast<sim::Time>(rng.below(
             static_cast<std::uint64_t>(o.horizon - o.fault_from)));
}

FaultEvent window_event(Rng& rng, const PlanGenOptions& o, FaultKind kind) {
  FaultEvent e;
  e.kind = kind;
  e.at = pick_time(rng, o);
  e.until = e.at + 200 +
            static_cast<sim::Time>(
                rng.below(static_cast<std::uint64_t>(o.max_window - 200)));
  e.a = static_cast<std::uint32_t>(rng.below(o.nodes));
  do {
    e.b = static_cast<std::uint32_t>(rng.below(o.nodes));
  } while (e.b == e.a);
  if (kind == FaultKind::kDropBurst) {
    e.permille = 300 + static_cast<std::uint32_t>(rng.below(701));  // 300..1000
  }
  if (kind == FaultKind::kLatencySpike) {
    e.extra = 100 + static_cast<sim::Time>(rng.below(600));  // 100..699
  }
  return e;
}

}  // namespace

FaultPlan generate_plan(Rng& rng, const PlanGenOptions& o) {
  CAA_CHECK_MSG(o.nodes >= 2, "plan generation needs >= 2 nodes");
  CAA_CHECK_MSG(o.horizon > o.fault_from && o.max_window > 200,
                "degenerate plan-gen window");
  FaultPlan plan;

  std::uint64_t crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t bursts = 0;
  std::uint64_t spikes = 0;
  bool hunt = false;
  switch (o.mix) {
    case FaultMix::kMixed:
      crashes = rng.below(2);          // 0..1
      partitions = rng.below(2);       // 0..1
      bursts = rng.below(3);           // 0..2
      spikes = rng.below(3);           // 0..2
      hunt = rng.chance(0.10);
      break;
    case FaultMix::kCrashHeavy:
      crashes = 1 + rng.below(2);      // 1..2 (capped to survivors below)
      partitions = 0;
      bursts = rng.below(2);           // 0..1
      spikes = 0;
      hunt = rng.chance(0.05);
      break;
    case FaultMix::kNetworkOnly:
      crashes = 0;
      partitions = 1 + rng.below(2);   // 1..2
      bursts = 1 + rng.below(3);       // 1..3
      spikes = rng.below(3);           // 0..2
      hunt = false;
      break;
    case FaultMix::kResolverHunt:
      crashes = 0;
      partitions = 0;
      bursts = rng.below(2);           // 0..1
      spikes = rng.below(3);           // 0..2
      hunt = true;
      break;
  }
  // Never crash more than nodes-2 members outright: the protocol needs at
  // least two live members for agreement to be observable, and the trigger
  // crash (resolver hunt) may claim one more.
  const std::uint64_t crash_cap = o.nodes > 2 ? o.nodes - 2 : 0;
  if (crashes > crash_cap) crashes = crash_cap;
  if (hunt && crashes > 0 && crashes == crash_cap) --crashes;
  // Coordinator assassination: crash the current exit leader right as the
  // committee starts exiting. Drawn unconditionally so plan #i stays a pure
  // function of (seed, i); armed only when the crash budget has room for
  // one more victim on top of the scheduled crashes and the hunt trigger.
  double assassin_chance = 0.0;
  switch (o.mix) {
    case FaultMix::kMixed: assassin_chance = 0.10; break;
    case FaultMix::kCrashHeavy: assassin_chance = 0.15; break;
    case FaultMix::kNetworkOnly: assassin_chance = 0.0; break;
    case FaultMix::kResolverHunt: assassin_chance = 0.10; break;
  }
  bool assassin = rng.chance(assassin_chance);
  if (crashes + (hunt ? 1 : 0) + 1 > crash_cap) assassin = false;

  std::vector<std::uint32_t> victims;
  for (std::uint64_t i = 0; i < crashes; ++i) {
    std::uint32_t victim;
    bool fresh;
    do {
      victim = static_cast<std::uint32_t>(rng.below(o.nodes));
      fresh = true;
      for (std::uint32_t v : victims) fresh = fresh && v != victim;
    } while (!fresh);
    victims.push_back(victim);
    FaultEvent crash;
    crash.kind = FaultKind::kCrash;
    crash.a = victim;
    crash.at = pick_time(rng, o);
    plan.events.push_back(crash);
    if (rng.chance(0.5)) {
      FaultEvent restart;
      restart.kind = FaultKind::kRestart;
      restart.a = victim;
      restart.at = crash.at + 300 +
                   static_cast<sim::Time>(
                       rng.below(static_cast<std::uint64_t>(o.max_window)));
      plan.events.push_back(restart);
    }
  }
  for (std::uint64_t i = 0; i < partitions; ++i) {
    plan.events.push_back(window_event(rng, o, FaultKind::kPartition));
  }
  for (std::uint64_t i = 0; i < bursts; ++i) {
    plan.events.push_back(window_event(rng, o, FaultKind::kDropBurst));
  }
  for (std::uint64_t i = 0; i < spikes; ++i) {
    plan.events.push_back(window_event(rng, o, FaultKind::kLatencySpike));
  }
  if (hunt) {
    FaultEvent trigger;
    trigger.kind = FaultKind::kResolverCrash;
    trigger.extra = 10 + static_cast<sim::Time>(rng.below(200));
    plan.events.push_back(trigger);
  }
  if (assassin) {
    FaultEvent trigger;
    trigger.kind = FaultKind::kExitAssassin;
    trigger.extra = 10 + static_cast<sim::Time>(rng.below(200));
    plan.events.push_back(trigger);
  }
  return plan;
}

}  // namespace caa::fault
