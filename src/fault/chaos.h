// The chaos campaign: thousands of generated fault plans, one oracle.
//
// Each trial builds a crash-tolerance world deterministically from its
// (campaign seed, index)-derived trial seed — 3..6 participants on their
// own nodes over the reliable transport, a two-level exception tree, a
// resolver committee and a crash exception — generates a fault plan from
// the configured mix, arms it, runs to the virtual-time deadline and
// checks every oracle invariant. Violating trials fail their campaign
// world with the oracle summary, the serialized plan as the artifact and a
// flight-recorder dump; the campaign post-pass shrinks each failing plan
// to a locally-minimal repro (shrink.h) and attaches a ready-to-paste
// recipe to the failure report.
//
// Everything merges through run::Campaign, so violation counts, merged
// checksums and merged metrics are bit-identical at any --threads value.
#pragma once

#include <cstdint>
#include <string>

#include "fault/plan.h"
#include "fault/shrink.h"
#include "overlay/params.h"
#include "run/campaign.h"

namespace caa::fault {

struct ChaosOptions {
  std::uint64_t seed = 42;
  std::size_t plans = 1000;
  /// Worker threads (0 = hardware concurrency). Never affects results.
  unsigned threads = 1;
  FaultMix mix = FaultMix::kMixed;
  std::uint32_t min_participants = 3;
  std::uint32_t max_participants = 6;
  std::uint32_t committee = 2;
  /// Fault-plan scheduling horizon (PlanGenOptions::horizon).
  sim::Time horizon = 6000;
  /// Virtual-time budget per trial; not idle by then = oracle violation.
  sim::Time deadline = 60'000;
  /// When non-empty: violating trials write their flight-recorder ring as
  /// `<dump_dir>/chaos<index>_seed<hex>.caafr`. The directory must exist.
  std::string dump_dir;
  /// Shrink failing plans in the campaign post-pass.
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Record the flat protocol narrative (debug replays; slows trials).
  bool trace = false;
  /// Overlay dissemination stamped onto every trial world: Mode::kTree
  /// runs the whole fault mix — including relay crashes mid-broadcast —
  /// over the relay tree instead of the flat fan-out.
  overlay::OverlayParams overlay;
  /// Exit protocol stamped onto every generated plan and trial world:
  /// kPaxos runs the whole fault mix — including the exit-assassin
  /// coordinator kill — over Paxos Commit instead of the done-barrier.
  exit::ExitKind exit = exit::ExitKind::kBarrier;
  /// Coordination avoidance stamped onto every generated plan and trial
  /// world: fast rounds must fall back cleanly under the whole fault mix.
  bool avoid = false;
  /// Liveness watchdog per trial (WorldConfig.watchdog_deadline): > 0 arms
  /// stall diagnoses. Replay tooling turns it on so a stuck trial explains
  /// itself (phase, awaited members, causal tail) next to the critical
  /// path. Zero-perturbation: checksums are identical armed or not.
  sim::Time watchdog_deadline = 0;
};

struct ChaosReport {
  run::CampaignResult campaign;
  std::size_t violations = 0;

  [[nodiscard]] bool ok() const { return violations == 0; }
  /// The campaign failure report, with repro recipes attached ("" if ok).
  [[nodiscard]] std::string failure_report() const {
    return campaign.failure_report();
  }
};

/// Participant count of the trial with this seed (pure function; the plan
/// generator and the world builder must agree on it).
[[nodiscard]] std::uint32_t trial_participants(std::uint64_t trial_seed,
                                               const ChaosOptions& options);

/// The fault plan trial `trial_seed` runs under `options` — deterministic,
/// already validated against the trial's node count.
[[nodiscard]] FaultPlan chaos_plan(std::uint64_t trial_seed,
                                   const ChaosOptions& options);

/// Runs one trial world under an explicit plan (the campaign uses
/// chaos_plan(trial_seed); the shrinker replays mutated plans). On an
/// oracle violation the result is !ok with the summary in .error and the
/// plan text in .artifact. When `critical_path` is non-null and the trial
/// fails, it receives the flight recorder's per-action critical-path
/// report. When `trace_log` is non-null and options.trace is set, it
/// receives the world's full protocol narrative. When `watchdog_report` is
/// non-null and options.watchdog_deadline armed the watchdog, it receives
/// every stall diagnosis the trial produced ("" when none).
[[nodiscard]] run::WorldResult run_chaos_trial(
    std::uint64_t trial_seed, const FaultPlan& plan,
    const ChaosOptions& options, std::size_t index = 0,
    std::string* critical_path = nullptr, std::string* trace_log = nullptr,
    std::string* watchdog_report = nullptr);

/// The full campaign: generate + run + check `options.plans` trials, then
/// shrink every violation and attach repro recipes.
[[nodiscard]] ChaosReport run_chaos_campaign(const ChaosOptions& options);

}  // namespace caa::fault
