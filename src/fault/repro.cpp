#include "fault/repro.h"

#include <cstdio>
#include <cstdlib>

namespace caa::fault {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string seed_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

void append_indented(std::string& out, std::string_view block,
                     std::string_view indent) {
  for (std::string_view line(block); !line.empty();) {
    const std::size_t eol = line.find('\n');
    out += indent;
    out += line.substr(0, eol);
    out += '\n';
    line = eol == std::string_view::npos ? std::string_view{}
                                         : line.substr(eol + 1);
  }
}

Result<ReproArtifact> parse_repro(std::string_view text) {
  ReproArtifact out;
  bool have_seed = false;
  bool in_plan = false;
  bool plan_done = false;
  std::string plan_text;
  for (std::string_view rest(text); !rest.empty();) {
    const std::size_t eol = rest.find('\n');
    const std::string_view line = trim(rest.substr(0, eol));
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 1);
    if (in_plan) {
      if (line.empty() || line.starts_with("critical path") ||
          line.starts_with("repro (")) {
        in_plan = false;
        plan_done = true;
        continue;
      }
      plan_text += std::string(line) + "\n";
      continue;
    }
    if (!have_seed && line.starts_with("trial seed 0x")) {
      // "trial seed 0x<hex>, mix <name>, <N> participants"
      const std::string tail(line.substr(std::string_view("trial seed 0x").size()));
      char* end = nullptr;
      out.seed = std::strtoull(tail.c_str(), &end, 16);
      if (end == tail.c_str()) {
        return Status::invalid_argument("repro: bad trial seed in '" +
                                        std::string(line) + "'");
      }
      const std::size_t mix_at = line.find("mix ");
      if (mix_at == std::string_view::npos) {
        return Status::invalid_argument("repro: header line missing 'mix'");
      }
      std::string_view mix_name = line.substr(mix_at + 4);
      const std::size_t comma = mix_name.find(',');
      if (comma == std::string_view::npos) {
        return Status::invalid_argument(
            "repro: header line missing participant count");
      }
      auto mix = parse_fault_mix(trim(mix_name.substr(0, comma)));
      if (!mix.is_ok()) return mix.status();
      out.mix = mix.value();
      const std::string count(trim(mix_name.substr(comma + 1)));
      out.participants =
          static_cast<std::uint32_t>(std::strtoul(count.c_str(), &end, 10));
      if (end == count.c_str() || out.participants < 2) {
        return Status::invalid_argument("repro: bad participant count in '" +
                                        std::string(line) + "'");
      }
      have_seed = true;
      continue;
    }
    if (!plan_done && line == "faultplan v1") {
      in_plan = true;
      plan_text = "faultplan v1\n";
    }
  }
  if (!have_seed) {
    return Status::invalid_argument(
        "repro: no 'trial seed 0x..., mix ..., N participants' header found");
  }
  if (plan_text.empty()) {
    return Status::invalid_argument("repro: no 'faultplan v1' block found");
  }
  auto plan = FaultPlan::parse(plan_text);
  if (!plan.is_ok()) return plan.status();
  out.plan = std::move(plan.value());
  return out;
}

}  // namespace caa::fault
