#include "fault/oracle.h"

#include <map>
#include <utility>

#include "net/message.h"

namespace caa::fault {
namespace {

// Every kind the network accounts for; conservation is checked per kind.
constexpr net::MsgKind kAllKinds[] = {
    net::MsgKind::kTransportAck,    net::MsgKind::kException,
    net::MsgKind::kHaveNested,      net::MsgKind::kNestedCompleted,
    net::MsgKind::kAck,             net::MsgKind::kCommit,
    net::MsgKind::kFastCover,       net::MsgKind::kCrashSync,
    net::MsgKind::kCrRaise,         net::MsgKind::kCrCommit,
    net::MsgKind::kCrAck,           net::MsgKind::kArcheReport,
    net::MsgKind::kArcheConcerted,  net::MsgKind::kCentralException,
    net::MsgKind::kCentralFreeze,   net::MsgKind::kCentralFrozenAck,
    net::MsgKind::kCentralCommit,   net::MsgKind::kActionJoin,
    net::MsgKind::kActionJoinAck,   net::MsgKind::kActionDone,
    net::MsgKind::kActionLeave,     net::MsgKind::kActionAborted,
    net::MsgKind::kActionLeaveAck,  net::MsgKind::kPaxosPrepare,
    net::MsgKind::kPaxosPromise,    net::MsgKind::kPaxosVote,
    net::MsgKind::kPaxosAccepted,
    net::MsgKind::kTxnOpRequest,    net::MsgKind::kTxnOpReply,
    net::MsgKind::kTxnPrepare,      net::MsgKind::kTxnVote,
    net::MsgKind::kTxnDecision,     net::MsgKind::kTxnDecisionAck,
    net::MsgKind::kHeartbeat,       net::MsgKind::kAppData,
};

}  // namespace

std::string OracleReport::summary() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

OracleReport check_invariants(World& world, const OracleOptions& options) {
  OracleReport report;
  auto violate = [&report](std::string msg) {
    report.violations.push_back(std::move(msg));
  };

  // Quiescence within the budget.
  if (!world.simulator().idle()) {
    violate("not quiescent: " + std::to_string(world.simulator().pending_events()) +
            " events still pending at t=" +
            std::to_string(world.simulator().now()) +
            (options.deadline > 0
                 ? " (deadline " + std::to_string(options.deadline) + ")"
                 : ""));
  }

  // No live participant stuck inside an action.
  for (const auto& p : world.participants()) {
    if (!world.network().node_up(p->runtime().node())) continue;
    if (p->in_action()) {
      violate(p->name() + " stuck in action (depth " +
              std::to_string(p->nesting_depth()) + ", resolver state " +
              std::to_string(static_cast<int>(p->resolver_state())) + ")");
    }
  }

  // Survivor agreement on the resolved exception, per (action, round).
  // Fail-stop scoping: a participant that is down at the end, or that
  // abandoned the scope in a restart, may have applied a commit in its
  // final instants that no survivor can ever learn of (the crash wiped the
  // only copy, and survivors uniformly discard the dead object's in-flight
  // messages). Its records are unknowable, not disagreeing — only records
  // of participants still standing in the scope are compared.
  std::map<std::pair<std::uint64_t, std::uint32_t>, ExceptionId> seen;
  for (const auto& p : world.participants()) {
    if (!world.network().node_up(p->runtime().node())) continue;
    for (const action::HandledRecord& h : p->handled()) {
      if (p->abandoned_scopes().contains(h.instance)) continue;
      const auto key = std::make_pair(h.instance.value(), h.round);
      auto [it, inserted] = seen.emplace(key, h.resolved);
      if (!inserted && it->second != h.resolved) {
        violate("resolution disagreement in action " +
                std::to_string(h.instance.value()) + " round " +
                std::to_string(h.round) + " at " + p->name());
      }
    }
  }

  // Packet conservation per kind.
  const obs::Metrics& metrics = world.metrics();
  for (const net::MsgKind kind : kAllKinds) {
    const net::KindCounters& kc = net::kind_counters(kind);
    const std::int64_t sent = metrics.value(kc.sent);
    const std::int64_t duplicated = metrics.value(kc.duplicated);
    const std::int64_t delivered = metrics.value(kc.delivered);
    const std::int64_t dropped = metrics.value(kc.dropped);
    if (sent + duplicated != delivered + dropped) {
      violate("conservation broken for " + std::string(net::kind_name(kind)) +
              ": sent " + std::to_string(sent) + " + duplicated " +
              std::to_string(duplicated) + " != delivered " +
              std::to_string(delivered) + " + dropped " +
              std::to_string(dropped));
    }
  }

  // Transactional leaks on registered hosts / clients.
  for (const txn::AtomicObjectHost* host : options.hosts) {
    if (host->total_locks_held() > 0) {
      violate(host->name() + " leaked " +
              std::to_string(host->total_locks_held()) + " lock(s)");
    }
    if (host->queued_lock_waiters() > 0) {
      violate(host->name() + " has " +
              std::to_string(host->queued_lock_waiters()) +
              " stuck lock waiter(s)");
    }
    if (host->open_undo_logs() > 0) {
      violate(host->name() + " has " +
              std::to_string(host->open_undo_logs()) + " open undo log(s)");
    }
  }
  for (const txn::TxnClient* client : options.clients) {
    if (client->active_txns() > 0) {
      violate(client->name() + " has " +
              std::to_string(client->active_txns()) +
              " dangling transaction(s)");
    }
  }
  return report;
}

}  // namespace caa::fault
