// Counterexample minimization for fault plans (delta debugging).
//
// Given a failing plan and a deterministic "does this plan still fail?"
// predicate, shrink_plan removes events (ddmin: chunked removal with
// shrinking granularity, to a fixpoint) and then retimes the survivors
// (snapping times to coarser values, narrowing windows) so the repro a
// human reads is locally minimal: every remaining event is necessary, and
// no tried retiming keeps the failure. Fully sequential and deterministic —
// the same (plan, predicate) always shrinks to the same result.
#pragma once

#include <cstddef>
#include <functional>

#include "fault/plan.h"

namespace caa::fault {

/// Must be deterministic and side-effect-free per call: replays the world
/// with `plan` and reports whether the original violation still occurs.
using FailsFn = std::function<bool(const FaultPlan&)>;

struct ShrinkOptions {
  /// Upper bound on predicate invocations (each one replays a world).
  std::size_t max_replays = 400;
};

struct ShrinkResult {
  FaultPlan plan;            // locally-minimal failing plan
  std::size_t replays = 0;   // predicate invocations spent
  bool minimal = false;      // false iff the replay budget ran out first
};

/// Precondition: fails(failing) is true (checked — the first replay
/// re-establishes it). Returns the shrunk plan; `failing` itself is
/// returned when nothing can be removed.
[[nodiscard]] ShrinkResult shrink_plan(const FaultPlan& failing,
                                       const FailsFn& fails,
                                       const ShrinkOptions& options = {});

}  // namespace caa::fault
