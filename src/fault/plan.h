// Declarative fault plans: the chaos engine's unit of injection.
//
// A FaultPlan is a timeline of fault events — node crashes and restarts,
// partition windows, per-channel drop bursts and latency spikes, and a
// trigger-based resolver crash — that the injector (injector.h) arms
// against a World as ordinary simulator events. Plans are plain data:
// they serialize to a line-oriented text format ("faultplan v1") and parse
// back bit-identically, so a campaign failure report IS a reproduction
// recipe, and the shrinker (shrink.h) can freely delete or retime events
// and replay.
//
// Every event is tolerant of being degenerate after shrinking: crashing a
// node that is already down, restarting one that is up, healing a
// never-cut partition and zero-length windows are all no-ops, never
// errors. Only structural problems (unknown node ids, inverted windows,
// more than one resolver-crash trigger) fail validation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exit/exit_kind.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/status.h"

namespace caa::fault {

enum class FaultKind : std::uint8_t {
  kCrash,          // node `a` fail-stops at `at`; survivors are notified
  kRestart,        // node `a` comes back up at `at` (volatile state lost)
  kPartition,      // links a<->b cut at `at`, healed at `until`
  kDropBurst,      // links a<->b drop `permille`/1000 extra in [at, until)
  kLatencySpike,   // links a<->b pay `extra` extra ticks in [at, until)
  kResolverCrash,  // crash the sender of the FIRST Exception message,
                   // `extra` ticks after that send (trigger-based; `at`,
                   // `until`, `a`, `b` unused)
  kExitAssassin,   // crash the CURRENT exit leader (lowest live node)
                   // `extra` ticks after the first exit-protocol send
                   // (ActionDone / PaxosVote) — aimed at the coordinator
                   // mid-decision, the classic 2PC blocking window
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

/// One timeline entry. Field use depends on `kind` (see FaultKind); unused
/// fields must be zero so serialized plans stay canonical.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  sim::Time at = 0;            // arming time (virtual ticks)
  sim::Time until = 0;         // window end, exclusive (window events)
  std::uint32_t a = 0;         // primary node
  std::uint32_t b = 0;         // secondary node (pair events)
  std::uint32_t permille = 0;  // drop-burst intensity, 0..1000
  sim::Time extra = 0;         // latency-spike extra / resolver-crash delay

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Exit protocol the trial world runs under. Part of the plan so a shrunk
  /// repro replays against the protocol it was found with; serialized as an
  /// "exit <name>" line (omitted for the default barrier).
  exit::ExitKind exit = exit::ExitKind::kBarrier;

  /// Coordination avoidance (WorldConfig.resolve_avoidance) the trial world
  /// runs under — same reproducibility contract as `exit`; serialized as a
  /// bare "avoid" line (omitted when off).
  bool avoid = false;

  /// Serializes to the "faultplan v1" text format, one event per line, in
  /// event order. parse(to_text()) reproduces the plan exactly.
  [[nodiscard]] std::string to_text() const;

  /// Parses the text format. Unknown directives, malformed fields and
  /// validation failures all yield an error status naming the line.
  [[nodiscard]] static Result<FaultPlan> parse(std::string_view text);

  /// Structural validation against a world of `nodes` nodes: node ids in
  /// range, windows not inverted, permille <= 1000, at most one
  /// resolver-crash trigger, at most one exit-assassin trigger.
  [[nodiscard]] Status validate(std::uint32_t nodes) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Tunable fault-mix profiles for plan generation (see EXPERIMENTS.md E5).
enum class FaultMix : std::uint8_t {
  kMixed,         // a bit of everything — the default campaign diet
  kCrashHeavy,    // crashes and restarts, little network noise
  kNetworkOnly,   // partitions / bursts / spikes, no crashes
  kResolverHunt,  // always arms the resolver-crash trigger
};

[[nodiscard]] std::string_view fault_mix_name(FaultMix mix);
/// Parses a profile name ("mixed", "crash-heavy", "network-only",
/// "resolver-hunt").
[[nodiscard]] Result<FaultMix> parse_fault_mix(std::string_view name);

struct PlanGenOptions {
  FaultMix mix = FaultMix::kMixed;
  /// Nodes in the target world; generated events only name ids below this.
  std::uint32_t nodes = 4;
  /// Faults are scheduled in [fault_from, horizon).
  sim::Time fault_from = 800;
  sim::Time horizon = 6000;
  /// Longest partition / burst / spike window. Must stay well below the
  /// reliable transport's rto * max_retries or plans can strand the
  /// protocol behind a given-up retransmission.
  sim::Time max_window = 2000;
};

/// Generates one plan from `rng`. Deterministic: the same (rng seed,
/// options) always yields the same plan, so a campaign's plan #i is a pure
/// function of (campaign seed, i).
[[nodiscard]] FaultPlan generate_plan(Rng& rng, const PlanGenOptions& options);

}  // namespace caa::fault
