#include "fault/shrink.h"

#include <algorithm>

#include "util/check.h"

namespace caa::fault {
namespace {

class Shrinker {
 public:
  Shrinker(const FailsFn& fails, const ShrinkOptions& options)
      : fails_(fails), options_(options) {}

  [[nodiscard]] bool budget_left() const {
    return replays_ < options_.max_replays;
  }
  [[nodiscard]] std::size_t replays() const { return replays_; }

  bool still_fails(const FaultPlan& plan) {
    ++replays_;
    return fails_(plan);
  }

  /// Classic ddmin over the event list: try dropping chunks of shrinking
  /// size until no single event can be removed.
  FaultPlan ddmin(FaultPlan plan) {
    std::size_t chunk = std::max<std::size_t>(1, plan.events.size() / 2);
    while (!plan.events.empty()) {
      bool removed_any = false;
      for (std::size_t start = 0;
           start < plan.events.size() && budget_left();) {
        // Copy the whole plan so non-event fields (the exit protocol)
        // survive shrinking; only the event list is minimized.
        FaultPlan candidate = plan;
        candidate.events.clear();
        const std::size_t end =
            std::min(start + chunk, plan.events.size());
        candidate.events.reserve(plan.events.size() - (end - start));
        for (std::size_t i = 0; i < plan.events.size(); ++i) {
          if (i < start || i >= end) candidate.events.push_back(plan.events[i]);
        }
        if (still_fails(candidate)) {
          plan = std::move(candidate);
          removed_any = true;
          // Same `start` now addresses the next chunk.
        } else {
          start = end;
        }
      }
      if (!budget_left()) break;
      if (chunk == 1) {
        if (!removed_any) break;  // 1-minimal w.r.t. removal
      } else {
        chunk = std::max<std::size_t>(1, chunk / 2);
      }
    }
    return plan;
  }

  /// Retiming: per event, try coarser times and narrower windows while the
  /// plan keeps failing. Candidates go biggest-simplification-first so the
  /// accepted result reads cleanly (times snapped to round numbers).
  FaultPlan retime(FaultPlan plan) {
    bool changed = true;
    while (changed && budget_left()) {
      changed = false;
      for (std::size_t i = 0; i < plan.events.size() && budget_left(); ++i) {
        for (const FaultEvent& candidate : candidates_for(plan.events[i])) {
          if (candidate == plan.events[i]) continue;
          FaultPlan trial = plan;
          trial.events[i] = candidate;
          if (!budget_left()) break;
          if (still_fails(trial)) {
            plan = std::move(trial);
            changed = true;
            break;  // re-derive candidates from the new event
          }
        }
      }
    }
    return plan;
  }

 private:
  static std::vector<FaultEvent> candidates_for(const FaultEvent& e) {
    std::vector<FaultEvent> out;
    const auto with_at = [&e](sim::Time at) {
      FaultEvent c = e;
      const sim::Time shift = at - c.at;
      c.at = at;
      if (c.until > 0) c.until += shift;  // keep the window length
      return c;
    };
    // Snap the start time to round numbers (coarsest first).
    for (sim::Time grain : {1000, 500, 100}) {
      const sim::Time snapped = (e.at / grain) * grain;
      if (snapped > 0 && snapped != e.at) out.push_back(with_at(snapped));
    }
    // Narrow windows (halve, then minimal).
    if (e.until > e.at) {
      FaultEvent half = e;
      half.until = e.at + (e.until - e.at) / 2;
      if (half.until > e.at) out.push_back(half);
      FaultEvent tight = e;
      tight.until = e.at + 1;
      out.push_back(tight);
    }
    // Simplify intensities.
    if (e.kind == FaultKind::kDropBurst && e.permille != 1000) {
      FaultEvent full = e;
      full.permille = 1000;
      out.push_back(full);
    }
    if ((e.kind == FaultKind::kResolverCrash ||
         e.kind == FaultKind::kExitAssassin) &&
        e.extra != 0) {
      FaultEvent instant = e;
      instant.extra = 0;
      out.push_back(instant);
    }
    return out;
  }

  const FailsFn& fails_;
  const ShrinkOptions& options_;
  std::size_t replays_ = 0;
};

}  // namespace

ShrinkResult shrink_plan(const FaultPlan& failing, const FailsFn& fails,
                         const ShrinkOptions& options) {
  Shrinker shrinker(fails, options);
  ShrinkResult result;
  CAA_CHECK_MSG(shrinker.still_fails(failing),
                "shrink_plan: the input plan does not fail");
  result.plan = shrinker.ddmin(failing);
  result.plan = shrinker.retime(std::move(result.plan));
  result.replays = shrinker.replays();
  result.minimal = shrinker.budget_left();
  return result;
}

}  // namespace caa::fault
