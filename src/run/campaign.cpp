#include "run/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "caa/world.h"
#include "obs/flight_recorder.h"
#include "run/thread_pool.h"
#include "scenario/scenarios.h"
#include "util/hash.h"
#include "util/rng.h"

namespace caa::run {

std::uint64_t derive_seed(std::uint64_t campaign_seed,
                          std::size_t world_index) {
  // Two SplitMix64 steps decorrelate (seed, index) pairs; the +1 keeps
  // index 0 from collapsing to a pure function of the seed's first output.
  SplitMix64 sm(campaign_seed ^
                (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(world_index) + 1)));
  sm.next();
  return sm.next();
}

namespace {

std::string failure_line(const WorldResult& w) {
  char seed_hex[17];
  std::snprintf(seed_hex, sizeof seed_hex, "%016llx",
                static_cast<unsigned long long>(w.seed));
  std::string line = w.name + " (world " + std::to_string(w.index) +
                     ", seed 0x" + seed_hex + "): " + w.error;
  if (!w.recorder_dump_path.empty()) {
    line += " [recorder dump: " + w.recorder_dump_path + "]";
  }
  if (!w.repro.empty()) line += "\n" + w.repro;
  return line;
}

}  // namespace

std::string CampaignResult::first_error() const {
  for (const WorldResult& w : worlds) {
    if (!w.ok) return failure_line(w);
  }
  return {};
}

std::string CampaignResult::failure_report() const {
  std::string out;
  for (const WorldResult& w : worlds) {
    if (w.ok) continue;
    if (!out.empty()) out += '\n';
    out += failure_line(w);
  }
  return out;
}

Campaign::Campaign(CampaignOptions options) : options_(options) {}

Campaign& Campaign::add(std::string name, WorldFn fn) {
  jobs_.push_back(Job{std::move(name), std::move(fn)});
  return *this;
}

CampaignResult Campaign::run() {
  using Clock = std::chrono::steady_clock;
  CampaignResult result;
  result.worlds.resize(jobs_.size());

  unsigned threads = options_.threads;
  if (threads == 0) threads = ThreadPool::default_threads();
  if (jobs_.size() < threads && !jobs_.empty()) {
    threads = static_cast<unsigned>(jobs_.size());
  }
  if (threads == 0) threads = 1;
  result.threads_used = threads;

  const auto start = Clock::now();
  {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      // Each task writes only its own index-addressed slot; the pool's
      // wait_idle() is the synchronization point before the merge reads.
      pool.submit([this, i, &result] {
        const Job& job = jobs_[i];
        WorldContext ctx;
        ctx.index = i;
        ctx.seed = derive_seed(options_.seed, i);
        WorldResult& slot = result.worlds[i];
        // Arm per-thread crash dumping before the job runs: a World dying
        // by unwinding (or a CAA_CHECK trip) dumps its flight recorder to
        // dump_dir, and the catch below collects the path.
        if (!options_.dump_dir.empty()) {
          obs::FlightRecorder::arm_crash_dump(options_.dump_dir, ctx.seed, i);
        }
        try {
          slot = job.fn(ctx);
        } catch (const std::exception& e) {
          slot = WorldResult{};
          slot.ok = false;
          slot.error = e.what();
          slot.recorder_dump_path = obs::FlightRecorder::take_pending_dump_path();
        } catch (...) {
          slot = WorldResult{};
          slot.ok = false;
          slot.error = "unknown exception";
          slot.recorder_dump_path = obs::FlightRecorder::take_pending_dump_path();
        }
        obs::FlightRecorder::disarm_crash_dump();
        slot.index = i;
        slot.seed = ctx.seed;
        if (slot.name.empty()) slot.name = job.name;
      });
    }
    pool.wait_idle();
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  // Merge strictly in index order; nothing here depends on which worker ran
  // which world or when it finished.
  std::uint64_t digest = kFnv1a64Offset;
  for (const WorldResult& w : result.worlds) {
    if (!w.ok) {
      ++result.failed;
      continue;
    }
    digest = fnv1a64_mix(digest, w.checksum);
    digest = fnv1a64_mix(digest, static_cast<std::uint64_t>(w.events));
    result.total_events += w.events;
    result.total_messages += w.messages;
    result.merged_metrics.merge(w.metrics);
    result.merged_timeseries.merge(w.timeseries);
    for (const auto& [key, value] : w.values) {
      result.merged_values[key] += value;
    }
  }
  result.merged_checksum = digest;
  return result;
}

WorldResult measure(std::string name, World& world,
                    const std::function<std::size_t()>& run) {
  using Clock = std::chrono::steady_clock;
  WorldResult r;
  r.name = std::move(name);
  const auto start = Clock::now();
  r.events = static_cast<std::int64_t>(run());
  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  r.sim_time = world.simulator().now();
  r.messages = world.metrics().total_sent();
  r.metrics = world.metrics().snapshot();
  if (world.timeseries().armed()) {
    r.timeseries = world.timeseries().table();
  }
  r.checksum = scenario::world_checksum(world, r.events);
  return r;
}

}  // namespace caa::run
