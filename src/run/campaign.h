// The campaign runner: many independent simulation worlds, one thread pool,
// one deterministic aggregate.
//
// Every §4.3/§4.4 claim this repo reproduces comes from running families of
// deterministic worlds — N-sweeps, fault-mix sweeps, seed sweeps. A Campaign
// shards those worlds across workers and merges their results so that the
// aggregate is *bit-identical for any thread count*:
//
//   * each world gets a seed derived only from (campaign seed, world index),
//     never from scheduling order or wall clock;
//   * each world runs whole on one worker (worlds share no mutable state —
//     the only process-wide structure they touch, the counter-name registry,
//     is mutex-guarded);
//   * results land in an index-addressed slot and are merged in index order;
//   * wall-clock figures are carried for reporting but never folded into
//     checksums or merged metrics.
//
// Usage:
//   run::Campaign c({.seed = 42, .threads = 8});
//   for (int n : {64, 128, 256})
//     c.add("flat_n" + std::to_string(n), [n](const run::WorldContext& ctx) {
//       scenario::FlatOptions o;
//       o.participants = n;
//       o.world.seed = ctx.seed;
//       scenario::FlatScenario s(o);
//       return run::measure("flat", s.world(), [&] { return s.world().run(); });
//     });
//   run::CampaignResult r = c.run();   // r.merged_checksum: thread-invariant
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/event_queue.h"

namespace caa {
class World;
}  // namespace caa

namespace caa::run {

/// Deterministic per-world seed: mixes the campaign seed with the world
/// index through SplitMix64, so neighbouring indices get decorrelated
/// streams and the assignment never depends on which worker runs the world.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                        std::size_t world_index);

/// Handed to each world job.
struct WorldContext {
  std::size_t index = 0;   // position in add() order
  std::uint64_t seed = 0;  // derive_seed(options.seed, index)
};

/// What one world reports back. Everything except wall_ms participates in
/// the deterministic merge.
struct WorldResult {
  std::string name;
  /// Identity for replay: position in add() order and the derived seed the
  /// job received. Filled by the runner even when the job threw, so a
  /// failure report alone is enough to re-run the world.
  std::size_t index = 0;
  std::uint64_t seed = 0;
  /// Path of the flight-recorder dump written when this world failed with
  /// CampaignOptions::dump_dir set ("" otherwise).
  std::string recorder_dump_path;
  std::int64_t events = 0;
  std::int64_t messages = 0;  // total packets sent (all kinds)
  sim::Time sim_time = 0;
  std::uint64_t checksum = 0;  // behavioural fingerprint (world_checksum)
  obs::MetricsSnapshot metrics;
  /// Virtual-time telemetry windows (empty unless the world armed
  /// WorldConfig.telemetry). Merged window-index-aligned, so the campaign
  /// aggregate is bit-identical at any thread count.
  obs::TimeSeriesTable timeseries;
  /// Free-form per-world figures (bench cells: latencies, abort counts...).
  /// Merged by key-wise sum.
  std::map<std::string, std::int64_t, std::less<>> values;
  /// Optional exported blob (e.g. a Chrome trace) for byte-level
  /// determinism checks; not merged.
  std::string artifact;
  /// Ready-to-paste reproduction recipe for a failed world (the chaos
  /// engine fills it with the serialized fault plan + replay command).
  /// Appended verbatim to the failure report; not merged.
  std::string repro;
  double wall_ms = 0.0;  // informational only; never merged
  bool ok = true;
  std::string error;  // set when the job threw
};

using WorldFn = std::function<WorldResult(const WorldContext&)>;

struct CampaignOptions {
  std::uint64_t seed = 42;
  /// Worker threads; 0 means hardware concurrency. The thread count never
  /// affects merged results, only wall time.
  unsigned threads = 1;
  /// When non-empty: arm per-world crash dumps. A world that throws (or
  /// trips a CAA_CHECK) leaves its flight-recorder ring as
  /// `<dump_dir>/world<index>_seed<hex>.caafr`, decodable by caa-inspect;
  /// the path lands in WorldResult::recorder_dump_path and the failure
  /// report. The directory must exist.
  std::string dump_dir;
};

struct CampaignResult {
  std::vector<WorldResult> worlds;  // add() order, regardless of scheduling
  std::uint64_t merged_checksum = 0;
  obs::MetricsSnapshot merged_metrics;
  /// Window-aligned element-wise sum of every world's telemetry table
  /// (empty when no world armed the sampler).
  obs::TimeSeriesTable merged_timeseries;
  std::map<std::string, std::int64_t, std::less<>> merged_values;
  std::int64_t total_events = 0;
  std::int64_t total_messages = 0;
  std::size_t failed = 0;
  double wall_ms = 0.0;  // campaign wall time; excluded from the merge
  unsigned threads_used = 1;

  [[nodiscard]] bool all_ok() const { return failed == 0; }
  /// First failed world's report line, or "" when all_ok().
  [[nodiscard]] std::string first_error() const;
  /// One line per failed world: name, world index, seed (hex, replayable),
  /// the error, and the recorder dump path when one was written. "" when
  /// all_ok().
  [[nodiscard]] std::string failure_report() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions options = {});

  /// Appends a world job. The index passed to the job is its add() order.
  Campaign& add(std::string name, WorldFn fn);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] const CampaignOptions& options() const { return options_; }

  /// Runs every world across the pool and merges in index order. A job that
  /// throws std::exception marks its world !ok (with the message in .error)
  /// and contributes nothing to the merge; the other worlds still run.
  CampaignResult run();

 private:
  struct Job {
    std::string name;
    WorldFn fn;
  };
  CampaignOptions options_;
  std::vector<Job> jobs_;
};

/// Fills a WorldResult from a finished world: events/messages/sim_time,
/// metrics snapshot, and the behavioural checksum (same formula as
/// bench_throughput: counters + final time + events). `run` executes the
/// world and returns events fired; wall time is measured around it.
WorldResult measure(std::string name, World& world,
                    const std::function<std::size_t()>& run);

}  // namespace caa::run
