// A fixed-size worker pool for sharding independent simulation worlds.
//
// Deliberately minimal: a locked deque drained by N workers. Campaign
// workloads are coarse (one task == one whole simulated world, typically
// milliseconds to seconds of work), so queue contention is irrelevant and
// a mutex + condition variable is the simplest ThreadSanitizer-clean
// design. Determinism is the Campaign's job — the pool makes no ordering
// promises beyond running every submitted task exactly once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace caa::run {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means std::thread::hardware_concurrency(),
  /// itself clamped to at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();  // drains the queue, then joins every worker

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing (not merely
  /// been dequeued).
  void wait_idle();

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// What `threads == 0` resolves to.
  static unsigned default_threads();

  /// Runs fn(0), ..., fn(count - 1) across up to `threads` workers and
  /// blocks until all have finished. threads <= 1 (or count <= 1) runs
  /// inline on the caller, so single-threaded users pay no pool setup.
  /// Index-determinism is the caller's job: write results into slot i and
  /// merge in index order after this returns (the systematic explorer's
  /// branch-split does exactly that).
  static void for_each_index(unsigned threads, std::size_t count,
                             const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace caa::run
