#include "run/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace caa::run {

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CAA_CHECK_MSG(static_cast<bool>(task), "submit: empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CAA_CHECK_MSG(!stopping_, "submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::for_each_index(unsigned threads, std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  CAA_CHECK_MSG(static_cast<bool>(fn), "for_each_index: empty fn");
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(threads, count)));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace caa::run
