// One managed-world execution: a model instance driven transition by
// transition.
//
// The Execution owns a freshly built managed-network world (model.h) and
// exposes the explorer's state interface:
//
//   enabled()  — the sorted set of transitions the scheduler may take now:
//                every per-channel FIFO-head parked packet is deliverable;
//                a head whose sender has crashed may instead be dropped
//                (fail-stop: in-flight mail from the dead may or may not
//                arrive); the virtual-clock timer fires only once
//                deliveries drain (race_timers relaxes that); a crash of a
//                configured victim is available while budget remains and
//                the run is not already over.
//   take(t)    — execute one enabled transition, drain the same-time event
//                cohort it triggers, and record the step's happens-before
//                predecessors (hb.h).
//
// Determinism contract: two Executions of the same model taking the same
// transition sequence are bit-identical — packet ids, step metadata and
// checksums all replay exactly. The explorer leans on this to rebuild
// prefixes from scratch when it backtracks.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "explore/hb.h"
#include "explore/model.h"
#include "explore/transition.h"
#include "fault/oracle.h"
#include "net/network.h"

namespace caa::explore {

/// An enabled transition plus the channel facts dependence needs.
struct TransitionInfo {
  Transition t;
  NodeId src{0};  // deliver/drop: packet channel; crash: the victim
  NodeId dst{0};
  net::MsgKind kind = net::MsgKind::kAppData;
};

/// May executing `a` and `b` in either order differ? Deliveries conflict on
/// their destination node (handler order there is observable); a drop
/// conflicts only with its own packet's delivery; timers and crashes are
/// conservatively dependent with everything.
[[nodiscard]] bool dependent(const TransitionInfo& a, const TransitionInfo& b);

struct ExecOptions {
  /// Let the timer race enabled deliveries instead of waiting for delivery
  /// quiescence. Off by default: the equality gates are stated over the
  /// quiescence-separated phase model, and racing timers grows the
  /// state space without growing protocol coverage (timer handlers only
  /// inject scripted scenario steps).
  bool race_timers = false;
};

class Execution {
 public:
  explicit Execution(const ModelOptions& model, ExecOptions options = {});

  /// Enabled transitions, sorted by Transition ordering (so .front() is the
  /// default policy's choice). Cached until the next take().
  [[nodiscard]] const std::vector<TransitionInfo>& enabled();
  [[nodiscard]] bool done() { return enabled().empty(); }

  /// Executes `t` if enabled; returns false (state untouched) otherwise.
  bool take(const Transition& t);

  struct Step {
    TransitionInfo info;
    /// For deliver/drop: the step whose execution parked this packet
    /// (HbTracker::kNone when the world's construction script sent it).
    std::size_t sent_step = HbTracker::kNone;
  };
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] const HbTracker& hb() const { return hb_; }

  [[nodiscard]] World& world() { return instance_->world(); }
  [[nodiscard]] ModelInstance& instance() { return *instance_; }
  [[nodiscard]] std::uint64_t resolved_checksum() const {
    return instance_->resolved_checksum();
  }

  /// The PR 5 invariant oracle at the current (maximal) state.
  [[nodiscard]] fault::OracleReport check();

 private:
  void refresh_enabled();
  void drain_cohort();
  /// Stamps packets first seen after step `idx` as sent by that step.
  void note_new_packets(std::size_t idx);

  ModelOptions model_;
  ExecOptions options_;
  std::unique_ptr<ModelInstance> instance_;
  std::vector<std::uint32_t> victims_;  // sorted, deduped
  std::vector<TransitionInfo> enabled_;
  bool enabled_valid_ = false;
  std::vector<Step> steps_;
  HbTracker hb_;
  std::unordered_map<std::uint64_t, std::size_t> sent_step_;
  std::unordered_map<std::uint64_t, std::size_t> last_channel_delivery_;
  std::unordered_map<std::uint32_t, std::size_t> crash_step_;
  std::uint32_t crashes_ = 0;
  std::vector<net::Network::ManagedPacket> scratch_;
};

}  // namespace caa::explore
