#include "explore/explorer.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "fault/repro.h"
#include "net/message.h"
#include "run/thread_pool.h"
#include "util/check.h"

namespace caa::explore {
namespace {

const TransitionInfo* find_info(const std::vector<TransitionInfo>& infos,
                                const Transition& t) {
  for (const TransitionInfo& info : infos) {
    if (info.t == t) return &info;
  }
  return nullptr;
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

Result<Transition> parse_transition(const std::string& line) {
  if (line == "timer") return Transition{TransitionKind::kTimer, 0};
  struct {
    std::string_view prefix;
    TransitionKind kind;
  } const kForms[] = {
      {"deliver ", TransitionKind::kDeliver},
      {"drop ", TransitionKind::kDrop},
      {"crash ", TransitionKind::kCrash},
  };
  for (const auto& form : kForms) {
    if (line.starts_with(form.prefix)) {
      return Transition{form.kind,
                        std::strtoull(line.c_str() + form.prefix.size(),
                                      nullptr, 10)};
    }
  }
  return Status::invalid_argument("bad schedule transition '" + line + "'");
}

// One depth-first search over one subtree of the schedule space. The
// parallel splitter hands each branch a forced prefix (whose last element
// is that branch's pinned first choice) plus the sibling transitions
// already covered by earlier branches, which become the pinned node's sleep
// set. Nodes at depth < prefix.size() are frozen: no backtrack points are
// planted there — siblings cover those alternatives by construction, and
// every state above the split has exactly one enabled transition anyway.
class Dfs {
 public:
  Dfs(const ModelOptions& model, const ExploreOptions& options,
      std::vector<Transition> prefix, std::set<Transition> split_sleep)
      : model_(model),
        options_(options),
        prefix_(std::move(prefix)),
        split_sleep_(std::move(split_sleep)),
        frozen_(prefix_.size()) {}

  ExploreStats run() {
    fresh_execution();
    for (std::size_t k = 0; k < prefix_.size(); ++k) {
      Node node;
      node.enabled = exec_->enabled();
      if (k + 1 == prefix_.size()) node.sleep = split_sleep_;
      node.chosen = prefix_[k];
      take(node.chosen);
      stack_.push_back(std::move(node));
    }
    std::size_t fresh_from = 0;
    for (;;) {
      const End end = extend();
      if (end == End::kSleepBlocked) {
        ++stats_.sleep_blocked;
      } else {
        finish_schedule(end, fresh_from);
      }
      if (stopped_) break;
      if (!backtrack(&fresh_from)) break;
    }
    return std::move(stats_);
  }

 private:
  enum class End { kMaximal, kDepthBound, kSleepBlocked };

  struct Node {
    Transition chosen{};
    std::vector<TransitionInfo> enabled;  // at the state BEFORE chosen
    std::set<Transition> todo;            // backtrack candidates
    std::set<Transition> done;            // children fully explored
    std::set<Transition> sleep;           // entry sleep + explored children
    std::size_t base_delays = 0;  // non-default choices strictly above
  };

  void fresh_execution() {
    exec_ = std::make_unique<Execution>(model_,
                                        ExecOptions{options_.race_timers});
  }

  void take(const Transition& t) {
    CAA_CHECK_MSG(exec_->take(t), "explore: replayed transition not enabled");
    ++stats_.transitions;
  }

  std::size_t delays_with(const Node& node, const Transition& t) const {
    return node.base_delays + (t == node.enabled.front().t ? 0 : 1);
  }

  // Non-delivery alternatives never fall out of the race analysis — the
  // default policy never schedules them, so no execution would ever
  // witness the race. Plant them as backtrack points outright; sleep sets
  // still collapse the placements that commute.
  void seed_todo(Node& node) {
    if (!options_.dpor) {
      for (const TransitionInfo& e : node.enabled) node.todo.insert(e.t);
      return;
    }
    if (node.enabled.size() <= 1) return;
    for (const TransitionInfo& e : node.enabled) {
      if (e.t.kind == TransitionKind::kDrop ||
          e.t.kind == TransitionKind::kCrash ||
          (options_.race_timers && e.t.kind == TransitionKind::kTimer)) {
        node.todo.insert(e.t);
      }
    }
  }

  /// Extends the current execution by the default policy until it is
  /// maximal, depth-bounded, or every enabled transition is asleep.
  End extend() {
    for (;;) {
      if (stack_.size() >= options_.max_steps) return End::kDepthBound;
      const std::vector<TransitionInfo>& enabled = exec_->enabled();
      if (enabled.empty()) return End::kMaximal;
      Node node;
      node.enabled = enabled;
      if (!stack_.empty()) {
        const Node& parent = stack_.back();
        node.base_delays = delays_with(parent, parent.chosen);
        if (options_.dpor) {
          // A sleeping transition stays asleep while independent
          // transitions run; the parent's chosen wakes whatever it
          // conflicts with. Dependence is judged on parent-state infos
          // (the packet facts at the state where both were enabled).
          const TransitionInfo* chosen_info =
              find_info(parent.enabled, parent.chosen);
          for (const Transition& s : parent.sleep) {
            const TransitionInfo* sleep_info = find_info(parent.enabled, s);
            if (sleep_info != nullptr && chosen_info != nullptr &&
                !dependent(*sleep_info, *chosen_info)) {
              node.sleep.insert(s);
            }
          }
        }
      }
      const Transition* pick = nullptr;
      for (const TransitionInfo& e : node.enabled) {
        if (!node.sleep.contains(e.t)) {
          pick = &e.t;
          break;
        }
      }
      if (pick == nullptr) return End::kSleepBlocked;
      if (options_.max_delays > 0 &&
          delays_with(node, *pick) > options_.max_delays) {
        stats_.capped = true;
        return End::kSleepBlocked;  // pruned by the delay bound
      }
      node.chosen = *pick;
      seed_todo(node);
      take(node.chosen);
      stack_.push_back(std::move(node));
    }
  }

  void record_violation(std::string what, std::uint64_t checksum,
                        const std::string& schedule) {
    Violation v;
    v.what = std::move(what);
    v.checksum = checksum;
    v.repro = "  repro (schedule " + std::to_string(stats_.schedules) +
              ", depth " + std::to_string(stack_.size()) + "):\n";
    fault::append_indented(v.repro, schedule);
    stats_.violations.push_back(std::move(v));
  }

  void finish_schedule(End end, std::size_t fresh_from) {
    ++stats_.schedules;
    stats_.max_depth = std::max(stats_.max_depth, stack_.size());
    const std::uint64_t checksum = exec_->resolved_checksum();
    std::string text;
    const auto ensure_text = [&] {
      if (text.empty()) {
        text = schedule_to_text(model_, options_.race_timers, exec_->steps());
      }
    };
    if (!stats_.classes.contains(checksum)) {
      ensure_text();
      stats_.classes.emplace(checksum, text);
    }
    ++stats_.class_counts[checksum];
    if (end == End::kDepthBound) {
      ensure_text();
      record_violation(
          "depth bound " + std::to_string(options_.max_steps) +
              " exceeded (possible livelock): " +
              std::to_string(exec_->world().network().managed_in_flight_count()) +
              " packets in flight, " +
              std::to_string(exec_->world().simulator().pending_events()) +
              " events pending",
          checksum, text);
    } else {
      const fault::OracleReport report = exec_->check();
      if (!report.ok()) {
        ensure_text();
        record_violation(report.summary(), checksum, text);
      }
    }
    if (options_.fail_fast && !stats_.violations.empty()) stopped_ = true;
    if (options_.max_schedules > 0 &&
        stats_.schedules >= options_.max_schedules) {
      stats_.capped = true;
      stopped_ = true;
    }
    if (options_.dpor && !stopped_) race_analysis(fresh_from);
  }

  /// Flanagan-Godefroid race scan: a pair of dependent, happens-before-
  /// unordered deliveries is a reversible race; plant the later delivery
  /// (or, if it is not yet enabled there, every choice) as a backtrack
  /// point at the earlier one's state. Pairs entirely inside the replayed
  /// prefix (< fresh_from) were scanned when that prefix was first run.
  void race_analysis(std::size_t fresh_from) {
    const std::vector<Execution::Step>& steps = exec_->steps();
    const HbTracker& hb = exec_->hb();
    for (std::size_t j = std::max(fresh_from, frozen_ + 1); j < steps.size();
         ++j) {
      const TransitionInfo& tj = steps[j].info;
      if (tj.t.kind != TransitionKind::kDeliver) continue;
      for (std::size_t i = frozen_; i < j; ++i) {
        const TransitionInfo& ti = steps[i].info;
        if (ti.t.kind != TransitionKind::kDeliver) continue;
        if (!dependent(ti, tj)) continue;
        if (hb.ordered(i, j)) continue;
        ++stats_.races;
        Node& target = stack_[i];
        if (find_info(target.enabled, tj.t) != nullptr) {
          if (tj.t != target.chosen) target.todo.insert(tj.t);
        } else {
          for (const TransitionInfo& e : target.enabled) {
            target.todo.insert(e.t);
          }
        }
      }
    }
  }

  /// Retreats to the deepest node with an unexplored backtrack candidate,
  /// replays its prefix from scratch and takes the candidate. Returns
  /// false when the subtree is exhausted.
  bool backtrack(std::size_t* fresh_from) {
    while (stack_.size() > frozen_) {
      Node& node = stack_.back();
      const std::size_t d = stack_.size() - 1;
      node.done.insert(node.chosen);
      if (options_.dpor) node.sleep.insert(node.chosen);
      const Transition* next = nullptr;
      for (const Transition& t : node.todo) {
        if (node.done.contains(t)) continue;
        if (options_.dpor && node.sleep.contains(t)) continue;
        if (options_.max_delays > 0 &&
            delays_with(node, t) > options_.max_delays) {
          stats_.capped = true;
          continue;
        }
        next = &t;
        break;
      }
      if (next == nullptr) {
        stack_.pop_back();
        continue;
      }
      node.chosen = *next;
      fresh_execution();
      for (std::size_t k = 0; k < d; ++k) take(stack_[k].chosen);
      take(node.chosen);
      *fresh_from = d;
      return true;
    }
    return false;
  }

  ModelOptions model_;
  ExploreOptions options_;
  std::vector<Transition> prefix_;
  std::set<Transition> split_sleep_;
  std::size_t frozen_ = 0;
  std::unique_ptr<Execution> exec_;
  std::vector<Node> stack_;
  ExploreStats stats_;
  bool stopped_ = false;
};

}  // namespace

std::string ExploreStats::summary() const {
  std::ostringstream out;
  out << "schedules=" << schedules << " classes=" << classes.size()
      << " violations=" << violations.size() << " races=" << races
      << " sleep_blocked=" << sleep_blocked << " transitions=" << transitions
      << " max_depth=" << max_depth;
  if (capped) out << " (capped)";
  return out.str();
}

ExploreStats explore(const ModelOptions& model, const ExploreOptions& options) {
  const Status valid = validate_model(model);
  CAA_CHECK_MSG(valid.is_ok(), valid.message().c_str());
  if (options.threads <= 1) {
    return Dfs(model, options, {}, {}).run();
  }
  // Probe the default schedule for the first state with a genuine choice;
  // everything above it is a forced single-transition corridor, so no
  // backtrack point can ever land there and pinning the corridor plus one
  // split choice per branch partitions the schedule space exactly.
  Execution probe(model, ExecOptions{options.race_timers});
  std::vector<Transition> prefix;
  std::vector<TransitionInfo> split;
  while (prefix.size() < options.max_steps) {
    const std::vector<TransitionInfo>& enabled = probe.enabled();
    if (enabled.empty()) break;
    if (enabled.size() >= 2) {
      split = enabled;
      break;
    }
    prefix.push_back(enabled.front().t);
    CAA_CHECK(probe.take(prefix.back()));
  }
  if (split.empty()) {
    // At most one choice anywhere: the default schedule is the whole space.
    return Dfs(model, options, {}, {}).run();
  }
  std::vector<ExploreStats> branch(split.size());
  ExploreOptions sequential = options;
  sequential.threads = 1;
  run::ThreadPool::for_each_index(
      options.threads, split.size(), [&](std::size_t i) {
        std::vector<Transition> p = prefix;
        p.push_back(split[i].t);
        // Earlier siblings are fully covered by earlier branches; carrying
        // them as the split node's sleep set keeps branches disjoint.
        std::set<Transition> sleep;
        for (std::size_t j = 0; j < i; ++j) sleep.insert(split[j].t);
        branch[i] = Dfs(model, sequential, std::move(p), std::move(sleep))
                        .run();
      });
  // Merge in branch-index order so every stat (and the first witness per
  // checksum class) is invariant under the thread count.
  ExploreStats merged;
  for (ExploreStats& b : branch) {
    merged.schedules += b.schedules;
    merged.sleep_blocked += b.sleep_blocked;
    merged.transitions += b.transitions;
    merged.races += b.races;
    merged.max_depth = std::max(merged.max_depth, b.max_depth);
    merged.capped = merged.capped || b.capped;
    for (auto& [checksum, text] : b.classes) {
      merged.classes.emplace(checksum, std::move(text));
    }
    for (const auto& [checksum, count] : b.class_counts) {
      merged.class_counts[checksum] += count;
    }
    for (Violation& v : b.violations) {
      merged.violations.push_back(std::move(v));
    }
  }
  return merged;
}

std::string schedule_to_text(const ModelOptions& model, bool race_timers,
                             const std::vector<Execution::Step>& steps) {
  std::string out =
      race_timers ? "schedule v1 race-timers\n" : "schedule v1\n";
  out += "model " + model.to_text() + "\n";
  for (const Execution::Step& s : steps) {
    std::string line = to_string(s.info.t);
    if (s.info.t.kind == TransitionKind::kDeliver ||
        s.info.t.kind == TransitionKind::kDrop) {
      line += "  # " + std::string(net::kind_name(s.info.kind)) + " " +
              std::to_string(s.info.src.value()) + "->" +
              std::to_string(s.info.dst.value());
    }
    out += line + "\n";
  }
  return out;
}

Result<ScheduleArtifact> parse_schedule(const std::string& text) {
  ScheduleArtifact artifact;
  std::istringstream in(text);
  std::string raw;
  bool in_block = false;
  bool have_model = false;
  while (std::getline(in, raw)) {
    std::string line = raw;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trimmed(line);
    if (!in_block) {
      if (line == "schedule v1") {
        in_block = true;
      } else if (line == "schedule v1 race-timers") {
        in_block = true;
        artifact.race_timers = true;
      }
      continue;
    }
    if (line.empty()) {
      if (have_model) break;  // blank line ends the block
      continue;
    }
    if (!have_model) {
      if (!line.starts_with("model ")) {
        return Status::invalid_argument(
            "schedule block: expected 'model ...' after 'schedule v1'");
      }
      auto model = ModelOptions::parse(line.substr(6));
      if (!model.is_ok()) return model.status();
      artifact.model = model.value();
      have_model = true;
      continue;
    }
    auto transition = parse_transition(line);
    if (!transition.is_ok()) return transition.status();
    artifact.transitions.push_back(transition.value());
  }
  if (!in_block) {
    return Status::invalid_argument("no 'schedule v1' block found");
  }
  if (!have_model) {
    return Status::invalid_argument("schedule block missing model line");
  }
  return artifact;
}

ReplayOutcome replay_schedule(const ScheduleArtifact& artifact) {
  ReplayOutcome outcome;
  Execution exec(artifact.model, ExecOptions{artifact.race_timers});
  for (const Transition& t : artifact.transitions) {
    if (!exec.take(t)) {
      outcome.error = "step " + std::to_string(outcome.steps + 1) +
                      " not enabled: " + to_string(t);
      outcome.checksum = exec.resolved_checksum();
      return outcome;
    }
    ++outcome.steps;
  }
  outcome.checksum = exec.resolved_checksum();
  if (exec.done()) {
    const fault::OracleReport report = exec.check();
    if (!report.ok()) {
      outcome.error = report.summary();
      return outcome;
    }
  }
  outcome.ok = true;
  return outcome;
}

}  // namespace caa::explore
