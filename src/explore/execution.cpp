#include "explore/execution.h"

#include <algorithm>
#include <unordered_set>

#include "fault/injector.h"
#include "util/check.h"

namespace caa::explore {
namespace {

std::uint64_t channel_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
}

}  // namespace

bool dependent(const TransitionInfo& a, const TransitionInfo& b) {
  // Timers are phase barriers (and, in race mode, conservatively conflict
  // with in-phase deliveries); crashes perturb every node's view at once.
  if (a.t.kind == TransitionKind::kTimer || b.t.kind == TransitionKind::kTimer ||
      a.t.kind == TransitionKind::kCrash || b.t.kind == TransitionKind::kCrash) {
    return true;
  }
  if (a.t.kind == TransitionKind::kDeliver &&
      b.t.kind == TransitionKind::kDeliver) {
    return a.dst.value() == b.dst.value();
  }
  // A drop commutes with everything except its own packet's delivery.
  return a.t.id == b.t.id;
}

Execution::Execution(const ModelOptions& model, ExecOptions options)
    : model_(model), options_(options) {
  instance_ = make_model(model_, /*managed=*/true);
  victims_ = model_.crash_victims;
  std::sort(victims_.begin(), victims_.end());
  victims_.erase(std::unique(victims_.begin(), victims_.end()),
                 victims_.end());
  drain_cohort();
  // Packets the construction script parked have no sending step.
  world().network().managed_in_flight(scratch_);
  for (const net::Network::ManagedPacket& p : scratch_) {
    sent_step_.emplace(p.id, HbTracker::kNone);
  }
}

const std::vector<TransitionInfo>& Execution::enabled() {
  if (!enabled_valid_) refresh_enabled();
  return enabled_;
}

void Execution::refresh_enabled() {
  enabled_.clear();
  net::Network& network = world().network();
  sim::Simulator& simulator = world().simulator();
  network.managed_in_flight(scratch_);
  // FIFO heads: the first packet per (src, dst) channel in birth order is
  // deliverable; later ones wait their turn (in-order channels).
  std::unordered_set<std::uint64_t> seen;
  std::vector<TransitionInfo> drops;
  for (const net::Network::ManagedPacket& p : scratch_) {
    if (!seen.insert(channel_key(p.src, p.dst)).second) continue;
    enabled_.push_back(
        {Transition{TransitionKind::kDeliver, p.id}, p.src, p.dst, p.kind});
    if (!network.node_up(p.src)) {
      drops.push_back(
          {Transition{TransitionKind::kDrop, p.id}, p.src, p.dst, p.kind});
    }
  }
  // scratch_ is birth-ordered, so deliveries (and drops) are id-sorted.
  const bool deliveries = !enabled_.empty();
  if (!simulator.idle() && (options_.race_timers || !deliveries)) {
    enabled_.push_back({Transition{TransitionKind::kTimer, 0}});
  }
  enabled_.insert(enabled_.end(), drops.begin(), drops.end());
  // A crash is worth exploring only while something else can still happen:
  // once the world is over, killing a node cannot change any outcome the
  // oracle looks at.
  if (crashes_ < model_.max_crashes && !enabled_.empty()) {
    for (const std::uint32_t v : victims_) {
      if (!network.node_up(NodeId(v))) continue;
      enabled_.push_back(
          {Transition{TransitionKind::kCrash, v}, NodeId(v), NodeId(v)});
    }
  }
  enabled_valid_ = true;
}

void Execution::drain_cohort() {
  sim::Simulator& simulator = world().simulator();
  while (!simulator.idle() &&
         simulator.next_event_time() <= simulator.now()) {
    simulator.step_block();
  }
}

void Execution::note_new_packets(std::size_t idx) {
  world().network().managed_in_flight(scratch_);
  for (const net::Network::ManagedPacket& p : scratch_) {
    sent_step_.emplace(p.id, idx);
  }
}

bool Execution::take(const Transition& t) {
  const std::vector<TransitionInfo>& en = enabled();
  const auto it =
      std::find_if(en.begin(), en.end(),
                   [&t](const TransitionInfo& info) { return info.t == t; });
  if (it == en.end()) return false;
  const TransitionInfo info = *it;
  const std::size_t idx = steps_.size();
  std::size_t sent = HbTracker::kNone;

  net::Network& network = world().network();
  switch (t.kind) {
    case TransitionKind::kDeliver: {
      const auto sent_it = sent_step_.find(t.id);
      sent = sent_it == sent_step_.end() ? HbTracker::kNone : sent_it->second;
      const auto prev_it =
          last_channel_delivery_.find(channel_key(info.src, info.dst));
      const std::size_t prev = prev_it == last_channel_delivery_.end()
                                   ? HbTracker::kNone
                                   : prev_it->second;
      CAA_CHECK(network.managed_deliver(t.id));
      drain_cohort();
      hb_.push({sent, prev});
      last_channel_delivery_[channel_key(info.src, info.dst)] = idx;
      break;
    }
    case TransitionKind::kTimer: {
      const std::size_t fired = world().simulator().step_block();
      CAA_CHECK(fired > 0);
      drain_cohort();
      hb_.push_barrier();
      break;
    }
    case TransitionKind::kDrop: {
      const auto sent_it = sent_step_.find(t.id);
      sent = sent_it == sent_step_.end() ? HbTracker::kNone : sent_it->second;
      const auto crash_it = crash_step_.find(info.src.value());
      const std::size_t crashed = crash_it == crash_step_.end()
                                      ? HbTracker::kNone
                                      : crash_it->second;
      CAA_CHECK(network.managed_drop(t.id));
      hb_.push({sent, crashed});
      break;
    }
    case TransitionKind::kCrash: {
      fault::FaultInjector::crash_node(world(), NodeId(info.src));
      // Fail-stop eager policy: mail TO the dead node can never be read —
      // drop it atomically with the crash. Mail FROM the dead node stays
      // parked; each such packet becomes a deliver-or-drop family choice,
      // which is exactly the "message from the crashed leader may or may
      // not arrive" ambiguity crash exploration is after.
      network.managed_in_flight(scratch_);
      for (const net::Network::ManagedPacket& p : scratch_) {
        if (p.dst.value() == info.src.value()) {
          CAA_CHECK(network.managed_drop(p.id));
        }
      }
      drain_cohort();
      ++crashes_;
      crash_step_[info.src.value()] = idx;
      hb_.push_barrier();
      break;
    }
  }

  note_new_packets(idx);
  steps_.push_back(Step{info, sent});
  enabled_valid_ = false;
  return true;
}

fault::OracleReport Execution::check() {
  fault::OracleOptions oracle;
  oracle.deadline = world().simulator().now();
  return fault::check_invariants(world(), oracle);
}

}  // namespace caa::explore
