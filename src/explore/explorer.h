// Stateless-model-checking driver: systematic enumeration of message
// interleavings (and optional crash points) over the deterministic
// simulator, with dynamic partial-order reduction.
//
// The explorer does what the chaos campaign (src/fault/chaos.h) cannot:
// instead of sampling random fault plans it walks EVERY inequivalent
// delivery order of a small world and checks the PR 5 invariant oracle at
// every maximal state. Two executions that only ever swap independent
// transitions (deliveries to different nodes, drops on unrelated channels)
// reach the same state, so exploring both is waste; classic DPOR
// (Flanagan & Godefroid, POPL'05) with sleep sets prunes such
// Mazurkiewicz-equivalent schedules:
//
//   * each finished execution is scanned for races — pairs of dependent,
//     happens-before-unordered deliveries — and every race plants a
//     backtrack point where the later delivery is tried first;
//   * sleep sets carry "already explored elsewhere" transitions down the
//     tree and abort executions that could only revisit known territory;
//   * crash and drop alternatives never arise from races (the default
//     policy never picks them), so they are seeded as explicit backtrack
//     points wherever they are enabled.
//
// On top of the oracle, the explorer checks cross-schedule determinism:
// every crash-free schedule of a model must resolve the exact same
// exceptions (scenario::resolved_checksum). Schedules are classified by
// that checksum; more than one class on a crash-free model is a resolution
// nondeterminism bug even when each individual schedule satisfies the
// oracle.
//
// Violations carry a self-contained repro in the chaos shrinker's artifact
// style: a `schedule v1` block (model line + transition list) that
// `caa-explore --replay` re-executes exactly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "explore/execution.h"
#include "util/status.h"

namespace caa::explore {

struct ExploreOptions {
  /// false = naive full DFS over all enabled transitions (the baseline the
  /// reduction factor is measured against).
  bool dpor = true;
  bool race_timers = false;
  /// Stop after this many maximal schedules (0 = unlimited). Hitting the
  /// cap sets stats.capped — the run is then a bounded smoke, not a proof.
  /// With threads > 1 the cap applies to each parallel branch separately
  /// (the merged total can reach branches x cap); the result is still
  /// thread-count invariant because branching is fixed by the model, not
  /// the worker count.
  std::size_t max_schedules = 0;
  /// Depth bound per execution; an execution still live after this many
  /// transitions is reported as a livelock violation.
  std::size_t max_steps = 600;
  /// Delay bound: maximum non-default scheduler choices per schedule
  /// (0 = unlimited). Bounds exploration like a context-switch bound.
  std::size_t max_delays = 0;
  /// Stop (this branch) at the first violation.
  bool fail_fast = false;
  /// > 1 splits the first multi-choice state across a worker pool
  /// (run::ThreadPool::for_each_index); results merge in branch order, so
  /// stats and violations are thread-count invariant.
  unsigned threads = 1;
};

struct Violation {
  std::string what;            // oracle summary / livelock / replay error
  std::uint64_t checksum = 0;  // resolved_checksum at the violating state
  std::string repro;           // indented artifact ("  repro (...)" block)
};

struct ExploreStats {
  std::uint64_t schedules = 0;      // maximal executions oracle-checked
  std::uint64_t sleep_blocked = 0;  // executions pruned by sleep sets
  std::uint64_t transitions = 0;    // take() calls, replays included
  std::uint64_t races = 0;          // backtrack points planted
  std::size_t max_depth = 0;
  bool capped = false;  // a schedule/delay cap truncated the search
  /// resolved_checksum -> first witnessing schedule (raw `schedule v1`
  /// text). One entry on a healthy crash-free model.
  std::map<std::uint64_t, std::string> classes;
  std::map<std::uint64_t, std::uint64_t> class_counts;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Explores the model. CAA_CHECKs validate_model().
[[nodiscard]] ExploreStats explore(const ModelOptions& model,
                                   const ExploreOptions& options);

// ---- Schedule artifacts ---------------------------------------------------

struct ScheduleArtifact {
  ModelOptions model;
  bool race_timers = false;
  std::vector<Transition> transitions;
};

/// Renders a `schedule v1` block: header, model line, one transition per
/// line (annotated with packet kind and channel when `steps` metadata is
/// supplied; annotations are comments the parser ignores).
[[nodiscard]] std::string schedule_to_text(
    const ModelOptions& model, bool race_timers,
    const std::vector<Execution::Step>& steps);

/// Parses a schedule block out of free-form text (a saved failure report,
/// possibly indented — mirrors fault::parse_repro's tolerance).
[[nodiscard]] Result<ScheduleArtifact> parse_schedule(const std::string& text);

struct ReplayOutcome {
  bool ok = false;
  std::string error;  // transition-not-enabled / oracle summary
  std::uint64_t checksum = 0;
  std::size_t steps = 0;
};

/// Re-executes a parsed schedule and oracle-checks the final state. A
/// schedule shorter than a full run leaves the world mid-flight; the oracle
/// is only consulted when the replayed state is maximal.
[[nodiscard]] ReplayOutcome replay_schedule(const ScheduleArtifact& artifact);

}  // namespace caa::explore
