// The explorer's unit of choice: one scheduler transition.
//
// A schedule is a sequence of transitions; the DPOR driver (explorer.h)
// enumerates schedules and the Execution (execution.h) applies them to a
// managed-network world. Four kinds exist:
//
//   deliver <id>  — deliver the parked packet with birth id `id` (only ever
//                   legal for a channel's FIFO head);
//   timer         — fire the next virtual-time event cohort
//                   (sim::Simulator::step_block);
//   drop <id>     — drop the parked packet `id`; only enabled once its
//                   sender has crashed (fail-stop: in-flight messages from
//                   a dead node may or may not arrive);
//   crash <node>  — fail-stop node `node` now
//                   (fault::FaultInjector::crash_node).
//
// The ordering (deliver < timer < drop < crash, then by id) doubles as the
// default scheduling policy: the first enabled transition is the one a
// quiescent-network run would take, so schedule #0 is always the "drain
// deliveries oldest-first, then advance time" baseline.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace caa::explore {

enum class TransitionKind : std::uint8_t {
  kDeliver = 0,
  kTimer = 1,
  kDrop = 2,
  kCrash = 3,
};

struct Transition {
  TransitionKind kind = TransitionKind::kTimer;
  std::uint64_t id = 0;  // packet id (deliver/drop) or node id (crash)

  friend bool operator==(const Transition&, const Transition&) = default;
  friend auto operator<=>(const Transition&, const Transition&) = default;
};

inline std::string to_string(const Transition& t) {
  switch (t.kind) {
    case TransitionKind::kDeliver:
      return "deliver " + std::to_string(t.id);
    case TransitionKind::kTimer:
      return "timer";
    case TransitionKind::kDrop:
      return "drop " + std::to_string(t.id);
    case TransitionKind::kCrash:
      return "crash " + std::to_string(t.id);
  }
  return "?";
}

}  // namespace caa::explore
