// Happens-before tracker over an executed schedule.
//
// Each executed transition becomes one step; the Execution feeds every
// step's immediate predecessors (the send that parked a delivered packet —
// the cause-id DAG edge — plus the previous delivery on the same FIFO
// channel, and barrier edges for timer cohorts and crashes). The tracker
// keeps the transitive closure as one bitset per step, so the DPOR race
// analysis answers "must step i precede step j?" in O(1): a dependent,
// unordered pair is a reversible race worth a backtrack point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace caa::explore {

class HbTracker {
 public:
  void clear() { closure_.clear(); }

  [[nodiscard]] std::size_t size() const { return closure_.size(); }

  /// Appends the next step with the given immediate predecessors (step
  /// indices < size()). kNone entries are ignored.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  void push(std::initializer_list<std::size_t> preds) {
    push_impl(preds.begin(), preds.size());
  }

  /// Appends a step ordered after EVERY previous step (timer cohorts in
  /// quiescence-separated mode, crash notifications).
  void push_barrier();

  /// True iff step i is (transitively) ordered before step j. Requires
  /// i < j < size().
  [[nodiscard]] bool ordered(std::size_t i, std::size_t j) const {
    return (closure_[j][i >> 6] >> (i & 63)) & 1;
  }

 private:
  void push_impl(const std::size_t* preds, std::size_t count);

  // closure_[j] = bitset of steps that happen-before step j.
  std::vector<std::vector<std::uint64_t>> closure_;
};

}  // namespace caa::explore
