#include "explore/hb.h"

namespace caa::explore {

void HbTracker::push_impl(const std::size_t* preds, std::size_t count) {
  const std::size_t j = closure_.size();
  std::vector<std::uint64_t> bits((j + 63) / 64, 0);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = preds[k];
    if (p == kNone) continue;
    bits[p >> 6] |= std::uint64_t{1} << (p & 63);
    const std::vector<std::uint64_t>& up = closure_[p];
    for (std::size_t w = 0; w < up.size(); ++w) bits[w] |= up[w];
  }
  closure_.push_back(std::move(bits));
}

void HbTracker::push_barrier() {
  const std::size_t j = closure_.size();
  std::vector<std::uint64_t> bits((j + 63) / 64, 0xffffffffffffffffULL);
  if (!bits.empty()) {
    // Mask the tail word so bits >= j stay clear.
    const std::size_t tail = j & 63;
    if (tail != 0) bits.back() = (std::uint64_t{1} << tail) - 1;
  }
  closure_.push_back(std::move(bits));
}

}  // namespace caa::explore
