// Small-world models for the systematic explorer.
//
// A model is a deterministic scenario construction (no RNG draws in the
// script) that the explorer can rebuild from scratch for every schedule it
// enumerates. Five are available:
//
//   example1  — §4.3 Example 1: three objects, tree E -> {E1, E2},
//               concurrent E1/E2 raises (scenario::Example1Scenario);
//   flat      — the §4.4 counting world: N objects, P concurrent raisers,
//               Q singleton nested actions (scenario::FlatScenario);
//   nested    — the nested-chain world: object 0 raises in the outermost
//               action of a depth-D chain (scenario::NestedChainScenario);
//   figure4   — §4.3 Example 2 exactly: A1 ⊃ A2 ⊃ A3, belated entry,
//               abortion signalling E3 (scenario::Figure4Scenario);
//   crash     — the chaos trial's world shape (cover -> {ea, eb} plus a
//               peer_crash channel, committee exits, crash handlers) with
//               *explicit* raiser choices instead of seeded ones, so the
//               explorer can enumerate crash points against it.
//
// Every model also schedules guarded completion waves (the chaos campaign's
// idiom) so a clean run reaches the empty state and the PR 5 oracle's
// stuck-survivor check is meaningful at maximal states.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "caa/world.h"
#include "scenario/scenarios.h"
#include "util/status.h"

namespace caa::explore {

struct ModelOptions {
  std::string scenario = "example1";  // example1|flat|nested|figure4|crash
  int participants = 3;               // N (flat / crash)
  int raisers = 1;                    // P (flat / crash)
  int nested = 0;                     // Q (flat)
  int depth = 1;                      // chain depth (nested)
  std::uint32_t committee = 1;
  exit::ExitKind exit = exit::ExitKind::kBarrier;
  bool avoid = false;  // coordination-avoidance fast path
  /// Nodes the explorer may crash (crash scenario only; a crash transition
  /// exists per victim while max_crashes budget remains).
  std::vector<std::uint32_t> crash_victims;
  std::uint32_t max_crashes = 0;
  /// Test-only planted protocol bugs (crash scenario only).
  action::DebugBugs bugs;

  /// One-line key=value form, parseable by parse(); embedded in schedule
  /// repro artifacts so a saved violation replays self-contained.
  [[nodiscard]] std::string to_text() const;
  static Result<ModelOptions> parse(std::string_view line);
};

[[nodiscard]] Status validate_model(const ModelOptions& options);

/// One freshly built world for `options`, ready to be driven. With
/// managed=true the network parks packets for the explorer; with false the
/// world runs normally (the baseline the determinism gate compares against).
class ModelInstance {
 public:
  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] const std::vector<action::Participant*>& objects() const {
    return objects_;
  }
  /// scenario::resolved_checksum over this world's participants: the value
  /// the cross-schedule determinism gate classifies on.
  [[nodiscard]] std::uint64_t resolved_checksum() const {
    return scenario::resolved_checksum(objects_);
  }

 private:
  friend std::unique_ptr<ModelInstance> make_model(const ModelOptions&, bool);
  ModelInstance() = default;

  std::unique_ptr<scenario::Example1Scenario> example1_;
  std::unique_ptr<scenario::FlatScenario> flat_;
  std::unique_ptr<scenario::NestedChainScenario> chain_;
  std::unique_ptr<scenario::Figure4Scenario> figure4_;
  std::unique_ptr<World> crash_world_;
  World* world_ = nullptr;
  std::vector<action::Participant*> objects_;
};

/// Builds a fresh world for the model. CAA_CHECKs validate_model(options).
[[nodiscard]] std::unique_ptr<ModelInstance> make_model(
    const ModelOptions& options, bool managed);

}  // namespace caa::explore
