#include "explore/model.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace caa::explore {
namespace {

constexpr sim::Time kRaiseAt = 1000;

// Guarded completion waves, the chaos campaign's idiom: a participant that
// is back to normal work completes; anyone mid-resolution or already at the
// acceptance line is left alone and caught by a later wave (nested scopes
// complete one level per wave).
void schedule_completion_waves(World& world,
                               const std::vector<action::Participant*>& objects) {
  for (action::Participant* o : objects) {
    for (sim::Time t = 6000; t <= 18000; t += 6000) {
      world.at(t, [o] {
        if (o->in_action() && !o->at_acceptance_line() &&
            o->resolver_state() == resolve::ResolverCore::State::kNormal) {
          o->complete();
        }
      });
    }
  }
}

WorldConfig world_config(const ModelOptions& options, bool managed) {
  WorldConfig config;
  config.exit_protocol = options.exit;
  config.resolve_avoidance = options.avoid;
  config.debug_bugs = options.bugs;
  config.managed_network = managed;
  // Exploration rebuilds thousands of short-lived worlds; the black box
  // never helps there (violations carry a schedule repro instead) and its
  // ring reservation would dominate replay cost.
  if (managed) config.flight_recorder = false;
  return config;
}

// The chaos trial's world shape with explicit choices: object i of the
// first `raisers` raises at kRaiseAt — "eb" for the last raiser when there
// is more than one, "ea" otherwise — so concurrent raises exercise the
// commutative cover join without any RNG draw.
std::unique_ptr<World> build_crash_world(
    const ModelOptions& options, bool managed,
    std::vector<action::Participant*>& objects) {
  auto world = std::make_unique<World>(world_config(options, managed));
  std::vector<ObjectId> ids;
  for (int i = 0; i < options.participants; ++i) {
    const NodeId node = world->add_node();
    objects.push_back(
        &world->add_participant("O" + std::to_string(i + 1), node));
    ids.push_back(objects.back()->id());
  }
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("eb", cover);
  tree.declare("peer_crash");
  const auto& decl = world->actions().declare("A", std::move(tree));
  const auto& inst = world->actions().create_instance(decl, ids);
  for (auto* o : objects) {
    const bool entered = o->enter(
        inst.instance,
        action::EnterConfig::with(
            action::uniform_handlers(decl.tree(),
                                     ex::HandlerResult::recovered()))
            .committee(options.committee)
            .on_peer_crash(decl.tree().find("peer_crash")));
    CAA_CHECK_MSG(entered, "explore crash model: initial enter refused");
  }
  for (int i = 0; i < options.raisers; ++i) {
    action::Participant* p = objects[static_cast<std::size_t>(i)];
    const bool last = options.raisers > 1 && i == options.raisers - 1;
    world->at(kRaiseAt, [p, last] {
      if (!p->in_action()) return;
      if (p->at_acceptance_line()) return;
      if (p->resolver_state() != resolve::ResolverCore::State::kNormal) return;
      p->raise(last ? "eb" : "ea");
    });
  }
  return world;
}

std::string_view bug_name(const action::DebugBugs& bugs) {
  if (bugs.exclusion_divergence && bugs.lost_final_leave) return "both";
  if (bugs.exclusion_divergence) return "exclusion";
  if (bugs.lost_final_leave) return "lost-leave";
  return "none";
}

Result<action::DebugBugs> parse_bug(std::string_view name) {
  action::DebugBugs bugs;
  if (name == "none") return bugs;
  if (name == "exclusion" || name == "both") bugs.exclusion_divergence = true;
  if (name == "lost-leave" || name == "both") bugs.lost_final_leave = true;
  if (!bugs.exclusion_divergence && !bugs.lost_final_leave) {
    return Status::invalid_argument("unknown bug '" + std::string(name) +
                                    "' (none|exclusion|lost-leave|both)");
  }
  return bugs;
}

}  // namespace

std::string ModelOptions::to_text() const {
  std::ostringstream out;
  out << "scenario=" << scenario << " n=" << participants
      << " raisers=" << raisers << " nested=" << nested << " depth=" << depth
      << " committee=" << committee << " exit=" << exit::exit_kind_name(exit)
      << " avoid=" << (avoid ? 1 : 0) << " max_crashes=" << max_crashes
      << " victims=";
  if (crash_victims.empty()) {
    out << "-";
  } else {
    for (std::size_t i = 0; i < crash_victims.size(); ++i) {
      if (i != 0) out << ",";
      out << crash_victims[i];
    }
  }
  out << " bug=" << bug_name(bugs);
  return out.str();
}

Result<ModelOptions> ModelOptions::parse(std::string_view line) {
  ModelOptions options;
  options.crash_victims.clear();
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::invalid_argument("model token without '=': " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const auto as_int = [&value] { return std::atoi(value.c_str()); };
    if (key == "scenario") {
      options.scenario = value;
    } else if (key == "n") {
      options.participants = as_int();
    } else if (key == "raisers") {
      options.raisers = as_int();
    } else if (key == "nested") {
      options.nested = as_int();
    } else if (key == "depth") {
      options.depth = as_int();
    } else if (key == "committee") {
      options.committee = static_cast<std::uint32_t>(as_int());
    } else if (key == "exit") {
      auto kind = exit::parse_exit_kind(value);
      if (!kind.is_ok()) return kind.status();
      options.exit = kind.value();
    } else if (key == "avoid") {
      options.avoid = value == "1";
    } else if (key == "max_crashes") {
      options.max_crashes = static_cast<std::uint32_t>(as_int());
    } else if (key == "victims") {
      if (value != "-") {
        std::istringstream list(value);
        std::string item;
        while (std::getline(list, item, ',')) {
          options.crash_victims.push_back(
              static_cast<std::uint32_t>(std::atoi(item.c_str())));
        }
      }
    } else if (key == "bug") {
      auto bugs = parse_bug(value);
      if (!bugs.is_ok()) return bugs.status();
      options.bugs = bugs.value();
    } else {
      return Status::invalid_argument("unknown model key '" + key + "'");
    }
  }
  const Status valid = validate_model(options);
  if (!valid.is_ok()) return valid;
  return options;
}

Status validate_model(const ModelOptions& options) {
  const std::string& s = options.scenario;
  if (s != "example1" && s != "flat" && s != "nested" && s != "figure4" &&
      s != "crash") {
    return Status::invalid_argument(
        "unknown scenario '" + s +
        "' (example1|flat|nested|figure4|crash)");
  }
  if (options.participants < 2 || options.participants > 8) {
    return Status::invalid_argument("participants must be in [2, 8]");
  }
  if ((s == "flat" || s == "crash") &&
      (options.raisers < 1 || options.raisers > options.participants)) {
    return Status::invalid_argument("raisers must be in [1, participants]");
  }
  if (s == "flat" && options.raisers + options.nested > options.participants) {
    return Status::invalid_argument("raisers + nested must not exceed n");
  }
  if (s == "nested" && options.depth < 1) {
    return Status::invalid_argument("depth must be >= 1");
  }
  if (options.committee < 1) {
    return Status::invalid_argument("committee must be >= 1");
  }
  if (s != "crash" &&
      (!options.crash_victims.empty() || options.max_crashes > 0)) {
    return Status::invalid_argument(
        "crash exploration requires scenario=crash (only that model "
        "configures peer-crash handlers)");
  }
  if (s != "crash" &&
      (options.bugs.exclusion_divergence || options.bugs.lost_final_leave)) {
    return Status::invalid_argument("planted bugs require scenario=crash");
  }
  for (const std::uint32_t v : options.crash_victims) {
    if (v >= static_cast<std::uint32_t>(options.participants)) {
      return Status::invalid_argument("crash victim out of range");
    }
  }
  if (options.max_crashes >
      static_cast<std::uint32_t>(options.participants - 1)) {
    return Status::invalid_argument(
        "max_crashes must leave at least one survivor");
  }
  return Status::ok();
}

std::unique_ptr<ModelInstance> make_model(const ModelOptions& options,
                                          bool managed) {
  const Status valid = validate_model(options);
  CAA_CHECK_MSG(valid.is_ok(), valid.message().c_str());
  auto instance = std::unique_ptr<ModelInstance>(new ModelInstance());
  if (options.scenario == "example1") {
    scenario::Example1Options opt;
    opt.raise_at = kRaiseAt;
    opt.world = world_config(options, managed);
    instance->example1_ = std::make_unique<scenario::Example1Scenario>(opt);
    instance->world_ = &instance->example1_->world();
    instance->objects_ = instance->example1_->objects();
  } else if (options.scenario == "flat") {
    scenario::FlatOptions opt;
    opt.participants = options.participants;
    opt.raisers = options.raisers;
    opt.nested = options.nested;
    opt.raise_at = kRaiseAt;
    opt.committee = options.committee;
    opt.world = world_config(options, managed);
    instance->flat_ = std::make_unique<scenario::FlatScenario>(opt);
    instance->world_ = &instance->flat_->world();
    instance->objects_ = instance->flat_->objects();
  } else if (options.scenario == "nested") {
    scenario::NestedChainOptions opt;
    opt.participants = options.participants;
    opt.depth = options.depth;
    opt.raise_at = kRaiseAt;
    opt.world = world_config(options, managed);
    instance->chain_ = std::make_unique<scenario::NestedChainScenario>(opt);
    instance->world_ = &instance->chain_->world();
    instance->objects_ = instance->chain_->objects();
  } else if (options.scenario == "figure4") {
    scenario::Figure4Options opt;
    opt.raise_at = kRaiseAt;
    opt.world = world_config(options, managed);
    instance->figure4_ = std::make_unique<scenario::Figure4Scenario>(opt);
    instance->world_ = &instance->figure4_->world();
    instance->objects_ = instance->figure4_->objects();
  } else {
    instance->crash_world_ =
        build_crash_world(options, managed, instance->objects_);
    instance->world_ = instance->crash_world_.get();
  }
  schedule_completion_waves(*instance->world_, instance->objects_);
  return instance;
}

}  // namespace caa::explore
