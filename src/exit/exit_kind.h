// Exit-protocol selection tag.
//
// Kept free of any other dependency so low-level headers (InstanceInfo, the
// WorldConfig) can stamp the selected strategy without pulling in the
// protocol implementations.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace caa::exit {

/// Which exit/commit protocol a CA-action committee synchronizes through.
enum class ExitKind : std::uint8_t {
  /// The paper's leader-based exit barrier: every member reports Done to
  /// the lowest live member, which decides and multicasts the Leave.
  /// Blocks (until re-election) when the coordinator crashes mid-decision.
  kBarrier = 0,
  /// Gray & Lamport's Paxos Commit: every member's Done is a proposed value
  /// in its own Paxos instance over 2F+1 acceptors drawn deterministically
  /// from the committee. Non-blocking: any single crash — including the
  /// current exit leader — leaves a live quorum able to finish the commit.
  kPaxos = 1,
};

[[nodiscard]] std::string_view exit_kind_name(ExitKind kind);

/// Parses "barrier" / "paxos".
[[nodiscard]] Result<ExitKind> parse_exit_kind(std::string_view name);

}  // namespace caa::exit
