#include "exit/barrier_exit.h"

#include <iterator>
#include <vector>

#include "util/check.h"

namespace caa::exit {

void BarrierExit::on_complete(const action::DoneMsg& m) {
  last_done_ = m;  // kept for re-send on leader re-election
  const ObjectId to = leader();
  if (to == host_.exit_self()) {
    on_done(m);
  } else {
    // The live leader is the lowest live member — exactly the relay-tree
    // root in tree mode — so the host routes Done traffic up the tree.
    host_.exit_unicast(info_.instance, to, net::MsgKind::kActionDone,
                       encode(m));
  }
}

void BarrierExit::on_message(ObjectId from, net::MsgKind kind,
                             const net::Bytes& payload) {
  (void)from;
  if (kind != net::MsgKind::kActionDone) return;  // not ours (paxos kinds)
  auto m = action::decode_done(payload);
  if (!m.is_ok()) return;
  on_done(m.value());
}

void BarrierExit::on_done(const action::DoneMsg& m) {
  // We may receive Dones slightly before learning that the previous leader
  // crashed (the sender learned first); store them, decide only when we
  // believe we lead.
  barrier_[m.round][m.sender] = m;
  if (leader() == host_.exit_self()) maybe_decide();
}

void BarrierExit::maybe_decide() {
  const ActionInstanceId scope = info_.instance;
  if (host_.exit_aborting(scope)) return;  // abortion supersedes the exit
  if (leader() != host_.exit_self()) return;
  const std::uint32_t round = host_.exit_round(scope);
  auto it = barrier_.find(round);
  if (it == barrier_.end()) return;
  // All LIVE members must have reported (crashed ones are waived).
  const std::set<ObjectId>& excluded = host_.exit_excluded(scope);
  if (excluded.empty()) {
    // Fault-free fast path: senders are distinct members, so a full barrier
    // is a size check. The leader runs this on every Done arrival; scanning
    // the member list each time made the exit barrier O(N^2) per round.
    if (it->second.size() < info_.members.size()) return;
  } else {
    for (ObjectId member : info_.members) {
      if (excluded.contains(member)) continue;
      if (!it->second.contains(member)) return;
    }
  }
  CAA_CHECK_MSG(host_.exit_resolution_idle(scope),
                "exit barrier complete while a resolution is in progress");

  std::vector<action::DoneMsg> dones;
  dones.reserve(it->second.size());
  for (const auto& [sender, done] : it->second) {
    if (excluded.contains(sender)) continue;
    dones.push_back(done);
  }
  const action::LeaveMsg leave = host_.exit_decide(scope, round, dones);
  barrier_.erase(barrier_.begin(), std::next(it));

  const net::Bytes payload = encode(leave);
  host_.exit_multicast(scope, net::MsgKind::kActionLeave, payload);
  host_.exit_deliver_leave(leave);
  // deliver_leave may tear down the scope (and retire this object); nothing
  // below this line.
}

void BarrierExit::on_peer_crashed(ObjectId peer, ObjectId old_leader,
                                  ObjectId new_leader) {
  (void)peer;
  const ActionInstanceId scope = info_.instance;
  if (new_leader != old_leader && last_done_.has_value() &&
      last_done_->round == host_.exit_round(scope)) {
    // The exit-barrier leader died: re-announce our Done to every live
    // member, not just the successor. The old leader may have decided and
    // left with its Leave only partially delivered; a member that already
    // exited answers a Done for the dead scope with the recorded final
    // Leave, releasing us — the successor alone may be the one stuck.
    // Members still at the barrier simply record the Done, so whoever
    // ends up leading re-collects the full barrier.
    host_.exit_announce_live(scope, net::MsgKind::kActionDone,
                             encode(*last_done_));
    if (new_leader == host_.exit_self()) {
      // on_done runs maybe_decide itself and may decide and tear the scope
      // down — it must stay the tail call, with no host access after it.
      on_done(*last_done_);
      return;
    }
  }
  if (new_leader == host_.exit_self()) maybe_decide();
}

void BarrierExit::describe(std::string& phase,
                           std::vector<ObjectId>& awaited) const {
  // Quiet until this member voted or started collecting: an entered scope
  // with no Done in flight is the resolver's (or the program's) to explain.
  if (!last_done_.has_value() && barrier_.empty()) return;
  const ActionInstanceId scope = info_.instance;
  if (leader() == host_.exit_self()) {
    phase = "exit.barrier (leader, collecting Done)";
    const std::set<ObjectId>& excluded = host_.exit_excluded(scope);
    auto it = barrier_.find(host_.exit_round(scope));
    for (ObjectId member : info_.members) {
      if (excluded.contains(member)) continue;
      if (it == barrier_.end() || !it->second.contains(member)) {
        awaited.push_back(member);
      }
    }
  } else {
    phase = "exit.barrier (awaiting Leave from leader)";
    awaited.push_back(leader());
  }
}

void BarrierExit::on_restored() {
  // A new attempt is a new protocol round; the previous attempt's Done must
  // not be re-announced on later leader re-elections.
  last_done_.reset();
}

}  // namespace caa::exit
