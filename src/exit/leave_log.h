// Final-Leave records with ACK-driven garbage collection.
//
// Every scope a participant exits through an exit protocol leaves a record
// here: a member whose Leave copy was lost (crashed leader, transport
// give-up) re-sends its Done/vote after re-election, and the recipient —
// who may have left long ago — answers from this record instead of dropping
// the message, releasing the sender with the outcome everyone else applied.
//
// Historically the records lived in `Participant::left_` and grew without
// bound across long campaigns. With GC enabled (WorldConfig.exit_gc), every
// member that applies a final Leave also broadcasts a LeaveAck; once every
// live committee member of a scope has ACKed, nobody can ever need the
// replay again and the record is dropped. Crashed members are waived.
// GC defaults off so existing worlds emit no extra messages and stay
// checksum-identical.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "caa/action_instance.h"
#include "net/message.h"
#include "util/status.h"

namespace caa::exit {

/// Member -> every other member: "I applied this scope's final Leave".
struct LeaveAckMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId sender;
};

net::Bytes encode(const LeaveAckMsg& m);
Result<LeaveAckMsg> decode_leave_ack(const net::Bytes& bytes);

class LeaveLog {
 public:
  /// Records `leave` as the final outcome of its scope. With `gc` the entry
  /// waits for ACKs from every member except `self` and the `excluded`
  /// (early ACKs buffered before the record existed count immediately);
  /// without it the entry is retained forever (the pre-GC behavior).
  void record(const action::LeaveMsg& leave,
              const std::vector<ObjectId>& members, ObjectId self,
              const std::set<ObjectId>& excluded, bool gc);

  /// The recorded Leave, or nullptr (never recorded, or collected).
  [[nodiscard]] const action::LeaveMsg* find(ActionInstanceId scope) const;

  /// ACK from `from` for `scope`. Returns true when this ACK completed the
  /// entry's committee and the record was collected.
  bool on_ack(ActionInstanceId scope, ObjectId from);

  /// `peer` crashed: it will never ACK. Returns how many entries this
  /// completed (and collected).
  std::size_t waive(ObjectId peer);

  /// Entries currently held (the satellite's retained-records gauge).
  [[nodiscard]] std::size_t retained() const { return entries_.size(); }

 private:
  struct Entry {
    action::LeaveMsg leave;
    std::set<ObjectId> pending;  // members whose ACK is still awaited
    bool gc = false;
  };
  std::map<ActionInstanceId, Entry> entries_;
  // ACKs that outran our own Leave application, keyed by scope.
  std::map<ActionInstanceId, std::set<ObjectId>> early_acks_;
};

}  // namespace caa::exit
