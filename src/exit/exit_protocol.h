// The pluggable exit/commit seam between a Participant and the protocol
// that synchronizes a committee's exit from one CA-action scope.
//
// A Participant owns one ExitProtocol instance per entered scope and routes
// every exit-flavoured message (ActionDone, the Paxos kinds) through it; the
// protocol talks back exclusively through the ExitHost interface — sending,
// tracing, and asking the host to turn a set of collected Done votes into
// the scope's Leave decision (attempt bookkeeping, failure signals and
// nested-signal resolution stay host duties, identical across protocols).
//
// Implementations:
//   BarrierExit (barrier_exit.h) — the paper's leader barrier, byte-for-byte
//       the behaviour previously inlined in Participant.
//   PaxosCommitExit (paxos_exit.h) — Gray & Lamport's Paxos Commit.
//
// The split is what makes the two strategies directly comparable: both run
// under the same deterministic simulator, cause-id DAG, flight recorder,
// chaos plans and oracles, differing only in the message pattern between
// "my part is finished" and "the committee decided".
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "caa/action_instance.h"
#include "exit/exit_kind.h"
#include "net/message.h"
#include "net/wire.h"

namespace caa::exit {

/// Everything an exit protocol may ask of its hosting participant. One host
/// serves all of the participant's scopes; calls name the scope explicitly.
class ExitHost {
 public:
  virtual ~ExitHost() = default;

  [[nodiscard]] virtual ObjectId exit_self() const = 0;
  /// The scope's current resolution round / attempt tag.
  [[nodiscard]] virtual std::uint32_t exit_round(ActionInstanceId scope)
      const = 0;
  /// Members excluded (crashed) from the scope so far.
  [[nodiscard]] virtual const std::set<ObjectId>& exit_excluded(
      ActionInstanceId scope) const = 0;
  /// True while an abort chain supersedes the scope's exit.
  [[nodiscard]] virtual bool exit_aborting(ActionInstanceId scope) const = 0;
  /// True when no resolution is in progress (the engine is Normal) — a
  /// committee may only decide its exit in that state.
  [[nodiscard]] virtual bool exit_resolution_idle(ActionInstanceId scope)
      const = 0;

  /// Unicast to one member; routes along the relay tree for tree-mode
  /// scopes, sends directly otherwise.
  virtual void exit_unicast(ActionInstanceId scope, ObjectId to,
                            net::MsgKind kind, net::Bytes payload) = 0;
  /// The SAME payload to many members at once — the Paxos 2a pattern (one
  /// Prepare/re-proposal to the whole acceptor set). Tree-mode hosts batch
  /// the group into shared envelopes that carry the payload once per tree
  /// edge (Disseminator::route_multi); this default sends one pooled copy
  /// per target, byte-identical to a caller-side loop.
  virtual void exit_unicast_many(ActionInstanceId scope,
                                 const std::vector<ObjectId>& targets,
                                 net::MsgKind kind,
                                 const net::Bytes& payload) {
    for (ObjectId to : targets) {
      exit_unicast(scope, to, kind, net::BytesPool::local().copy_of(payload));
    }
  }
  /// Multicast to every other member (tree flood / flat fan-out with pooled
  /// payload copies) — the delivery pattern of the final Leave.
  virtual void exit_multicast(ActionInstanceId scope, net::MsgKind kind,
                              const net::Bytes& payload) = 0;
  /// Re-announcement to the live members only: tree flood, or a flat
  /// fan-out that skips the excluded as well as self.
  virtual void exit_announce_live(ActionInstanceId scope, net::MsgKind kind,
                                  const net::Bytes& payload) = 0;

  /// Turns the collected Done votes (whose senders the *protocol* chose to
  /// count) into the scope's Leave: acceptance vs backward recovery vs
  /// signalling, including attempt bookkeeping and nested-signal resolution
  /// against the containing action's tree.
  [[nodiscard]] virtual action::LeaveMsg exit_decide(
      ActionInstanceId scope, std::uint32_t round,
      const std::vector<action::DoneMsg>& dones) = 0;
  /// Applies a Leave locally (commit/signal/restore choreography).
  virtual void exit_deliver_leave(const action::LeaveMsg& m) = 0;

  virtual void exit_trace(std::string_view event, std::string detail) = 0;
};

/// One protocol instance drives one participant's view of one scope's exit.
class ExitProtocol {
 public:
  virtual ~ExitProtocol() = default;

  [[nodiscard]] virtual ExitKind kind() const = 0;

  /// This participant finished its part: `m` is its Done for the scope's
  /// current round. The protocol owns everything from here to the Leave.
  virtual void on_complete(const action::DoneMsg& m) = 0;

  /// An exit-flavoured message for this scope arrived (is_exit_kind kinds
  /// only). Payloads come off the wire; malformed ones must be ignored.
  virtual void on_message(ObjectId from, net::MsgKind kind,
                          const net::Bytes& payload) = 0;

  /// Membership change: `peer` crashed out of the scope (the host has
  /// already recorded the exclusion). Leaders are the lowest live member;
  /// both arguments are computed before/after the exclusion.
  virtual void on_peer_crashed(ObjectId peer, ObjectId old_leader,
                               ObjectId new_leader) = 0;

  /// The scope was backward-recovered (Leave kRestored): the host bumped
  /// the round; per-attempt exit state (a pending Done) must be dropped.
  virtual void on_restored() = 0;

  /// Liveness introspection for watchdog diagnoses: fills `phase` with the
  /// protocol's current stage ("" when nothing is in flight) and `awaited`
  /// with the members it is waiting to hear from. Default: nothing to
  /// report.
  virtual void describe(std::string& phase,
                        std::vector<ObjectId>& awaited) const {
    (void)phase;
    (void)awaited;
  }
};

/// True for the message kinds owned by the exit protocols; the Participant
/// routes exactly these through ExitProtocol::on_message.
[[nodiscard]] bool is_exit_kind(net::MsgKind kind);

/// The lowest member not excluded — the exit leader both protocols (and the
/// relay-tree root) agree on. Falls back to the static leader when every
/// member is excluded.
[[nodiscard]] ObjectId live_leader(const action::InstanceInfo& info,
                                   const std::set<ObjectId>& excluded);

/// Factory for the built-in protocols.
[[nodiscard]] std::unique_ptr<ExitProtocol> make_exit_protocol(
    ExitKind kind, ExitHost& host, const action::InstanceInfo& info);

}  // namespace caa::exit
