#include "exit/paxos_exit.h"

#include <algorithm>

#include "net/wire.h"

namespace caa::exit {

namespace {

// All four paxos messages lead with u64 scope + u32 round so the generic
// resolve::peek_scope_round routing in Participant applies to them.

void put_value(net::WireWriter& w, bool waived, bool ok, ExceptionId signal) {
  w.boolean(waived);
  w.boolean(ok);
  w.u32(signal.value());
}

}  // namespace

PaxosCommitExit::PaxosCommitExit(ExitHost& host,
                                 const action::InstanceInfo& info)
    : host_(host), info_(info) {
  const std::size_t count = acceptor_count(info.members.size());
  acceptors_.assign(info.members.begin(),
                    info.members.begin() + static_cast<std::ptrdiff_t>(count));
}

std::size_t PaxosCommitExit::acceptor_count(std::size_t members) {
  if (members <= 2) return members;
  return 2 * ((members - 1) / 2) + 1;
}

bool PaxosCommitExit::is_acceptor(ObjectId o) const {
  return std::binary_search(acceptors_.begin(), acceptors_.end(), o);
}

bool PaxosCommitExit::is_member(ObjectId o) const {
  return std::binary_search(info_.members.begin(), info_.members.end(), o);
}

std::size_t PaxosCommitExit::live_acceptors() const {
  const std::set<ObjectId>& excluded = host_.exit_excluded(info_.instance);
  std::size_t live = 0;
  for (ObjectId a : acceptors_) {
    if (!excluded.contains(a)) ++live;
  }
  return live;
}

std::uint32_t PaxosCommitExit::next_ballot() {
  // Proposer-unique ballots: leader ranks stride the ballot space modulo N,
  // with ballot 0 reserved for the voters' fast path.
  const auto n = static_cast<std::uint32_t>(info_.members.size());
  const auto rank = static_cast<std::uint32_t>(
      std::lower_bound(info_.members.begin(), info_.members.end(), self()) -
      info_.members.begin());
  std::uint32_t ballot = max_ballot_seen_ + 1;
  const std::uint32_t target = (rank + 1) % n;
  ballot += (target + n - (ballot % n)) % n;
  observe_ballot(ballot);
  return ballot;
}

// ---------------------------------------------------------------------------
// ExitProtocol entry points
// ---------------------------------------------------------------------------

void PaxosCommitExit::on_complete(const action::DoneMsg& m) {
  last_done_ = m;
  ensure_recovery(m.round);
  send_vote(m.round, /*ballot=*/0, self(),
            Value{/*waived=*/false, m.ok, m.signal});
}

void PaxosCommitExit::on_message(ObjectId from, net::MsgKind kind,
                                 const net::Bytes& payload) {
  (void)from;  // crashed-acceptor filtering keys on the *embedded* ids
  net::WireReader r(payload);
  auto scope = r.u64();
  auto round = r.u32();
  auto ballot = r.u32();
  if (!scope.is_ok() || !round.is_ok() || !ballot.is_ok()) return;
  if (ActionInstanceId(scope.value()) != info_.instance) return;
  switch (kind) {
    case net::MsgKind::kPaxosVote: {
      auto voter = r.u32();
      auto waived = r.boolean();
      auto ok = r.boolean();
      auto signal = r.u32();
      if (!voter.is_ok() || !waived.is_ok() || !ok.is_ok() ||
          !signal.is_ok()) {
        return;
      }
      // Embedded ids name reply targets and quorum entries; only scope
      // members may appear (a garbage id must not reach the directory).
      if (!is_member(ObjectId(voter.value()))) return;
      handle_vote(VoteMsg{info_.instance, round.value(), ballot.value(),
                          ObjectId(voter.value()),
                          Value{waived.value(), ok.value(),
                                ExceptionId(signal.value())}});
      return;
    }
    case net::MsgKind::kPaxosAccepted: {
      auto acceptor = r.u32();
      auto voter = r.u32();
      auto waived = r.boolean();
      auto ok = r.boolean();
      auto signal = r.u32();
      if (!acceptor.is_ok() || !voter.is_ok() || !waived.is_ok() ||
          !ok.is_ok() || !signal.is_ok()) {
        return;
      }
      if (!is_member(ObjectId(acceptor.value())) ||
          !is_member(ObjectId(voter.value()))) {
        return;
      }
      handle_accepted(AcceptedMsg{info_.instance, round.value(),
                                  ballot.value(), ObjectId(acceptor.value()),
                                  ObjectId(voter.value()),
                                  Value{waived.value(), ok.value(),
                                        ExceptionId(signal.value())}});
      return;
    }
    case net::MsgKind::kPaxosPrepare: {
      auto sender = r.u32();
      if (!sender.is_ok()) return;
      if (!is_member(ObjectId(sender.value()))) return;
      handle_prepare(PrepareMsg{info_.instance, round.value(), ballot.value(),
                                ObjectId(sender.value())});
      return;
    }
    case net::MsgKind::kPaxosPromise: {
      auto acceptor = r.u32();
      auto count = r.u32();
      if (!acceptor.is_ok() || !count.is_ok()) return;
      if (!is_member(ObjectId(acceptor.value()))) return;
      PromiseMsg m{info_.instance, round.value(), ballot.value(),
                   ObjectId(acceptor.value()), {}};
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto voter = r.u32();
        auto aballot = r.u32();
        auto waived = r.boolean();
        auto ok = r.boolean();
        auto signal = r.u32();
        if (!voter.is_ok() || !aballot.is_ok() || !waived.is_ok() ||
            !ok.is_ok() || !signal.is_ok()) {
          return;
        }
        if (!is_member(ObjectId(voter.value()))) return;
        m.accepted[ObjectId(voter.value())] =
            Accepted{aballot.value(), Value{waived.value(), ok.value(),
                                            ExceptionId(signal.value())}};
      }
      handle_promise(m);
      return;
    }
    default:
      return;  // kActionDone etc.: not ours
  }
}

void PaxosCommitExit::on_peer_crashed(ObjectId peer, ObjectId old_leader,
                                      ObjectId new_leader) {
  // Live-set quorums must only count evidence from live acceptors; a dead
  // acceptor's reports and promises are struck everywhere.
  for (auto& [round, l] : leader_) {
    for (auto& [voter, reports] : l.reports) reports.erase(peer);
    l.promised.erase(peer);
  }
  const std::uint32_t round = host_.exit_round(info_.instance);
  if (new_leader != old_leader && last_done_.has_value() &&
      last_done_->round == round) {
    // The believed leader died: 2b reports for our vote may have died with
    // it, and a Leave it already decided may have been lost in flight to us
    // (a partition that heals only after the crash). Re-announce our
    // ballot-0 vote — acceptors that missed it accept and report to the
    // successor, acceptors that have it drop the duplicate, and a member
    // that already exited the scope answers with the recorded final Leave
    // (the dead-scope replay), releasing us when everyone else moved on.
    send_vote(round, 0, self(),
              Value{false, last_done_->ok, last_done_->signal});
    // The inline self-delivery can cascade all the way to a decision that
    // tears the scope down; every host accessor below needs it alive.
    if (const auto it = leader_.find(round);
        it != leader_.end() && it->second.decided) {
      return;
    }
  }
  if (leader() != self()) return;
  LeaderRound& l = leader_[round];
  if (l.decided) return;
  if (!l.preparing) {
    // Recovery round: re-discover every accepted value from the surviving
    // acceptors, then re-propose them (and Waived for voteless crashed
    // members) at a fresh ballot. Covers both a dead leader (we succeed it)
    // and a dead voter/acceptor under a continuing leader.
    start_prepare(round);
  } else {
    // The awaited promise set shrank with the crash; it may be complete now.
    maybe_finish_prepare(round);
  }
  if (!l.decided) maybe_decide(round);
}

void PaxosCommitExit::on_restored() {
  // A new attempt is a new round; the old vote must not leak into it.
  last_done_.reset();
}

void PaxosCommitExit::describe(std::string& phase,
                               std::vector<ObjectId>& awaited) const {
  const ActionInstanceId scope = info_.instance;
  const std::uint32_t round = host_.exit_round(scope);
  const auto lit = leader_.find(round);
  if (!last_done_.has_value() && lit == leader_.end()) return;
  if (lit != leader_.end() && lit->second.decided) return;
  if (leader() != self()) {
    phase = last_done_.has_value() ? "exit.paxos (vote sent, awaiting Leave)"
                                   : "exit.paxos (awaiting Leave)";
    awaited.push_back(leader());
    return;
  }
  const std::set<ObjectId>& excluded = host_.exit_excluded(scope);
  static const LeaderRound kIdle;
  const LeaderRound& l = lit != leader_.end() ? lit->second : kIdle;
  if (l.preparing) {
    phase = "exit.paxos (leader, prepare ballot " +
            std::to_string(l.my_ballot) + ")";
    for (ObjectId a : acceptors_) {
      if (excluded.contains(a)) continue;
      if (!l.promised.contains(a)) awaited.push_back(a);
    }
    return;
  }
  phase = "exit.paxos (leader, collecting acceptances)";
  // Awaited: members whose instance has no value chosen by a majority of
  // the live acceptors — the same tally maybe_decide runs.
  const std::size_t live = live_acceptors();
  const std::size_t quorum = live / 2 + 1;
  for (ObjectId voter : info_.members) {
    bool chosen = false;
    if (auto rit = l.reports.find(voter); rit != l.reports.end()) {
      std::map<std::uint32_t, std::size_t> tally;
      for (const auto& [acceptor, acc] : rit->second) {
        if (excluded.contains(acceptor)) continue;
        ++tally[acc.ballot];
      }
      for (const auto& [ballot, count] : tally) {
        if (count >= quorum) {
          chosen = true;
          break;
        }
      }
    }
    if (!chosen) awaited.push_back(voter);
  }
}

// ---------------------------------------------------------------------------
// Acceptor role
// ---------------------------------------------------------------------------

void PaxosCommitExit::handle_vote(const VoteMsg& m) {
  observe_ballot(m.ballot);
  AcceptorRound& a = acceptor_[m.round];
  auto it = a.accepted.find(m.voter);
  if (m.ballot == 0) {
    // Fast path: the voter is its instance's unique ballot-0 proposer, so
    // the first ballot-0 value is always safe to accept — even after a
    // recovery Prepare raised `promised` (the recovery leader only
    // re-proposes discovered values or waives *excluded* voteless members,
    // and exclusion means this voter can no longer be live and voting).
    if (it != a.accepted.end()) return;  // duplicate or superseded
  } else {
    if (m.ballot < a.promised) return;  // stale proposer
    a.promised = m.ballot;
  }
  a.accepted[m.voter] = Accepted{m.ballot, m.value};

  const ObjectId to = leader();
  if (to == self()) {
    handle_accepted(AcceptedMsg{info_.instance, m.round, m.ballot, self(),
                                m.voter, m.value});
  } else {
    net::WireWriter w;
    w.u64(info_.instance.value());
    w.u32(m.round);
    w.u32(m.ballot);
    w.u32(self().value());
    w.u32(m.voter.value());
    put_value(w, m.value.waived, m.value.ok, m.value.signal);
    host_.exit_unicast(info_.instance, to, net::MsgKind::kPaxosAccepted,
                       std::move(w).take());
  }
}

void PaxosCommitExit::handle_prepare(const PrepareMsg& m) {
  observe_ballot(m.ballot);
  const std::set<ObjectId>& excluded = host_.exit_excluded(info_.instance);
  if (excluded.contains(m.sender)) return;  // a dead leader's stale round
  AcceptorRound& a = acceptor_[m.round];
  if (m.ballot > a.promised) a.promised = m.ballot;
  // Always answer with the promised ballot and the full accepted state: a
  // fresh prepare gets its promise, a stale one gets a nack carrying the
  // higher ballot so the leader can retry above it.
  if (m.sender == self()) {
    PromiseMsg pm{info_.instance, m.round, a.promised, self(), a.accepted};
    handle_promise(pm);
  } else {
    net::WireWriter w;
    w.u64(info_.instance.value());
    w.u32(m.round);
    w.u32(a.promised);
    w.u32(self().value());
    w.u32(static_cast<std::uint32_t>(a.accepted.size()));
    for (const auto& [voter, acc] : a.accepted) {
      w.u32(voter.value());
      w.u32(acc.ballot);
      put_value(w, acc.value.waived, acc.value.ok, acc.value.signal);
    }
    host_.exit_unicast(info_.instance, m.sender, net::MsgKind::kPaxosPromise,
                       std::move(w).take());
  }
}

// ---------------------------------------------------------------------------
// Leader role
// ---------------------------------------------------------------------------

void PaxosCommitExit::handle_accepted(const AcceptedMsg& m) {
  observe_ballot(m.ballot);
  if (host_.exit_excluded(info_.instance).contains(m.acceptor)) return;
  LeaderRound& l = leader_[m.round];
  l.reports[m.voter][m.acceptor] = Accepted{m.ballot, m.value};
  ensure_recovery(m.round);
  maybe_decide(m.round);
}

void PaxosCommitExit::handle_promise(const PromiseMsg& m) {
  observe_ballot(m.ballot);
  LeaderRound& l = leader_[m.round];
  if (l.decided || !l.preparing) return;
  if (m.ballot > l.my_ballot) {
    // Nack: some acceptor promised a higher ballot (an earlier leader we
    // never heard). Retry above it.
    start_prepare(m.round);
    return;
  }
  if (m.ballot != l.my_ballot) return;  // stale promise for an old attempt
  if (host_.exit_excluded(info_.instance).contains(m.acceptor)) return;
  l.promised.insert(m.acceptor);
  for (const auto& [voter, acc] : m.accepted) {
    l.reports[voter][m.acceptor] = acc;
  }
  maybe_finish_prepare(m.round);
}

void PaxosCommitExit::send_vote(std::uint32_t round, std::uint32_t ballot,
                                ObjectId voter, const Value& value) {
  net::WireWriter w;
  w.u64(info_.instance.value());
  w.u32(round);
  w.u32(ballot);
  w.u32(voter.value());
  put_value(w, value.waived, value.ok, value.signal);
  net::Bytes payload = std::move(w).take();
  const std::set<ObjectId>& excluded = host_.exit_excluded(info_.instance);
  bool self_accepts = false;
  std::vector<ObjectId> targets;
  targets.reserve(acceptors_.size());
  for (ObjectId a : acceptors_) {
    if (a == self()) {
      self_accepts = true;
      continue;
    }
    if (excluded.contains(a)) continue;
    targets.push_back(a);
  }
  host_.exit_unicast_many(info_.instance, targets, net::MsgKind::kPaxosVote,
                          payload);
  net::BytesPool::local().recycle(std::move(payload));
  // Self-delivery last: its 2b can cascade all the way into the decision
  // (and the scope's teardown), so nothing may follow it.
  if (self_accepts) {
    handle_vote(VoteMsg{info_.instance, round, ballot, voter, value});
  }
}

void PaxosCommitExit::ensure_recovery(std::uint32_t round) {
  // A committee that has lost members may also have lost exit evidence: an
  // acceptor's 2b report dies with the leader it was addressed to, and the
  // round can advance past the one on_peer_crashed recovered (members bump
  // rounds at different times, so a vote for round R+1 may predate another
  // member even noticing the crash that made us leader). The current leader
  // therefore runs phase 1 once per round while any member is excluded,
  // re-discovering every accepted value from the surviving acceptors. The
  // prepare never blocks live ballot-0 votes (the fast path accepts
  // regardless of the promised ballot), so over-preparing is only
  // message-cost — and only in worlds that already crashed.
  if (host_.exit_excluded(info_.instance).empty()) return;
  if (round != host_.exit_round(info_.instance)) return;
  if (leader() != self()) return;
  LeaderRound& l = leader_[round];
  if (l.decided || l.preparing || l.proposing || l.my_ballot != 0) return;
  start_prepare(round);
}

void PaxosCommitExit::start_prepare(std::uint32_t round) {
  LeaderRound& l = leader_[round];
  l.my_ballot = next_ballot();
  l.preparing = true;
  l.promised.clear();
  l.proposed.clear();
  host_.exit_trace("paxos prepare",
                   "r" + std::to_string(round) + " b" +
                       std::to_string(l.my_ballot));
  net::WireWriter w;
  w.u64(info_.instance.value());
  w.u32(round);
  w.u32(l.my_ballot);
  w.u32(self().value());
  net::Bytes payload = std::move(w).take();
  const std::set<ObjectId>& excluded = host_.exit_excluded(info_.instance);
  bool self_accepts = false;
  std::vector<ObjectId> targets;
  targets.reserve(acceptors_.size());
  for (ObjectId a : acceptors_) {
    if (a == self()) {
      self_accepts = true;
      continue;
    }
    if (excluded.contains(a)) continue;
    targets.push_back(a);
  }
  host_.exit_unicast_many(info_.instance, targets, net::MsgKind::kPaxosPrepare,
                          payload);
  net::BytesPool::local().recycle(std::move(payload));
  if (self_accepts) {
    handle_prepare(PrepareMsg{info_.instance, round, l.my_ballot, self()});
  }
}

void PaxosCommitExit::maybe_finish_prepare(std::uint32_t round) {
  LeaderRound& l = leader_[round];
  if (l.decided || !l.preparing) return;
  if (round != host_.exit_round(info_.instance)) return;
  if (leader() != self()) return;
  const std::set<ObjectId>& excluded = host_.exit_excluded(info_.instance);
  for (ObjectId a : acceptors_) {
    if (excluded.contains(a)) continue;
    if (!l.promised.contains(a)) return;  // phase 1 still in flight
  }
  l.preparing = false;
  l.proposing = true;
  // Phase 2: re-propose every discovered value at our ballot; waive crashed
  // voteless members; re-drive our own vote if every acceptor that had it
  // died. Live voters that have not voted yet are left alone — their
  // ballot-0 votes are accepted on arrival. Inline self-deliveries cascade
  // into maybe_decide mid-loop; `proposing` keeps them from starting a new
  // prepare underneath this one.
  for (ObjectId voter : info_.members) {
    std::optional<Accepted> best;
    if (auto rit = l.reports.find(voter); rit != l.reports.end()) {
      for (const auto& [acceptor, acc] : rit->second) {
        if (excluded.contains(acceptor)) continue;
        if (!best.has_value() || acc.ballot > best->ballot) best = acc;
      }
    }
    if (best.has_value()) {
      l.proposed.insert(voter);
      send_vote(round, l.my_ballot, voter, best->value);
    } else if (excluded.contains(voter)) {
      l.proposed.insert(voter);
      send_vote(round, l.my_ballot, voter,
                Value{/*waived=*/true, /*ok=*/true, ExceptionId()});
    } else if (voter == self() && last_done_.has_value() &&
               last_done_->round == round) {
      l.proposed.insert(voter);
      send_vote(round, l.my_ballot, voter,
                Value{/*waived=*/false, last_done_->ok, last_done_->signal});
    }
    if (l.decided) return;  // a re-proposal cascaded into the decision
  }
  l.proposing = false;
  maybe_decide(round);
}

void PaxosCommitExit::maybe_decide(std::uint32_t round) {
  LeaderRound& l = leader_[round];
  if (l.decided) return;
  const ActionInstanceId scope = info_.instance;
  if (round != host_.exit_round(scope)) return;
  if (host_.exit_aborting(scope)) return;
  if (leader() != self()) return;
  const std::size_t live = live_acceptors();
  if (live == 0) return;  // unreachable while any member (we) lives; defensive
  const std::size_t quorum = live / 2 + 1;
  const std::set<ObjectId>& excluded = host_.exit_excluded(scope);

  std::vector<action::DoneMsg> dones;
  dones.reserve(info_.members.size());
  bool needs_recovery = false;
  for (ObjectId voter : info_.members) {
    // Chosen value: a (ballot, value) pair reported by a majority of the
    // live acceptors; same-ballot reports carry the same value (single
    // proposer per ballot per instance), so counting ballots suffices.
    std::optional<Value> chosen;
    if (auto rit = l.reports.find(voter); rit != l.reports.end()) {
      std::map<std::uint32_t, std::size_t> tally;
      for (const auto& [acceptor, acc] : rit->second) {
        if (excluded.contains(acceptor)) continue;
        ++tally[acc.ballot];
      }
      for (const auto& [ballot, count] : tally) {
        if (count < quorum) continue;
        for (const auto& [acceptor, acc] : rit->second) {
          if (acc.ballot == ballot && !excluded.contains(acceptor)) {
            chosen = acc.value;  // ascending scan: highest such ballot wins
            break;
          }
        }
      }
    }
    if (!chosen.has_value()) {
      if (excluded.contains(voter)) {
        // Recovery is only warranted when nothing is in flight for this
        // instance: a voter already re-proposed at my_ballot has its 2b
        // reports on the wire, and restarting would chase our own tail.
        if (!l.proposed.contains(voter)) needs_recovery = true;
        continue;
      }
      return;  // a live member is still working; nothing to force
    }
    // Crashed members' parts are waived from the outcome either way — the
    // same semantics the barrier applies to Dones from excluded senders.
    if (excluded.contains(voter) || chosen->waived) continue;
    dones.push_back(
        action::DoneMsg{scope, round, voter, chosen->ok, chosen->signal});
  }
  if (needs_recovery) {
    // Every live member has a chosen value but a crashed voteless member
    // blocks the commit: drive its instance to Waived through a recovery
    // round (at most one prepare / re-proposal wave in flight at a time).
    if (!l.preparing && !l.proposing) start_prepare(round);
    return;
  }
  if (l.proposing) return;  // mid-loop cascade: the tail call re-checks
  if (!host_.exit_resolution_idle(scope)) {
    // A resolution superseded this exit; its finish bumps the round and the
    // committee re-votes there.
    return;
  }
  l.decided = true;
  const action::LeaveMsg leave = host_.exit_decide(scope, round, dones);
  const net::Bytes payload = encode(leave);
  host_.exit_multicast(scope, net::MsgKind::kActionLeave, payload);
  host_.exit_deliver_leave(leave);
  // deliver_leave may tear down the scope (and retire this object); nothing
  // below this line.
}

}  // namespace caa::exit
