// Gray & Lamport's Paxos Commit as an ExitProtocol (PAPERS.md: "Consensus
// on Transaction Commit").
//
// Each committee member's Done (ok / acceptance-failed / signal) is the
// proposed value of its own Paxos instance; the instances share a ballot
// space and an acceptor set of 2F+1 members drawn deterministically from
// the front of the sorted committee. The fast path is ballot 0: a member
// sends its vote straight to the acceptors, acceptors accept the first
// ballot-0 value for an instance unconditionally (the voter is that
// instance's unique ballot-0 proposer) and report acceptance to the current
// exit leader, who decides once every member's instance has a value chosen
// by a majority of the live acceptors.
//
// Crashes never block the exit on any single member — including the leader:
//   * a crashed voter's instance is driven to a Waived value by the leader
//     through a classic Prepare/Promise recovery round at a higher ballot;
//   * a crashed leader is succeeded by the next-lowest live member, whose
//     recovery round re-discovers every accepted value from the surviving
//     acceptors before re-proposing them (so an outcome one leader may have
//     announced is re-derived, not contradicted);
//   * a crashed acceptor's reports are pruned and quorums re-evaluated
//     against the live acceptor set (accurate fail-stop detection — the
//     same group-membership assumption the rest of the system builds on).
//
// The decision itself is delegated to the host (ExitHost::exit_decide) over
// the chosen non-waived values in member order — exactly the tuple the
// barrier hands it — so both protocols resolve identical outcomes from
// identical votes, which the barrier-vs-paxos checksum-equality tests pin.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "exit/exit_protocol.h"

namespace caa::exit {

class PaxosCommitExit final : public ExitProtocol {
 public:
  PaxosCommitExit(ExitHost& host, const action::InstanceInfo& info);

  [[nodiscard]] ExitKind kind() const override { return ExitKind::kPaxos; }

  void on_complete(const action::DoneMsg& m) override;
  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;
  void on_peer_crashed(ObjectId peer, ObjectId old_leader,
                       ObjectId new_leader) override;
  void on_restored() override;
  void describe(std::string& phase,
                std::vector<ObjectId>& awaited) const override;

  /// Acceptors used for a committee of `members` objects: 2F+1 with
  /// F = (members-1)/2, except that both members of a pair serve (a lone
  /// acceptor would be a single point of blocking at N=2).
  [[nodiscard]] static std::size_t acceptor_count(std::size_t members);

 private:
  /// A proposed/accepted value for one member's instance: the member's vote
  /// or the Waived placeholder for a member that crashed voteless.
  struct Value {
    bool waived = false;
    bool ok = true;
    ExceptionId signal;
  };
  struct Accepted {
    std::uint32_t ballot = 0;
    Value value;
  };
  struct VoteMsg {  // kPaxosVote: phase-2a (ballot 0 = the fast path)
    ActionInstanceId scope;
    std::uint32_t round = 0;
    std::uint32_t ballot = 0;
    ObjectId voter;
    Value value;
  };
  struct AcceptedMsg {  // kPaxosAccepted: phase-2b, acceptor -> leader
    ActionInstanceId scope;
    std::uint32_t round = 0;
    std::uint32_t ballot = 0;
    ObjectId acceptor;
    ObjectId voter;
    Value value;
  };
  struct PrepareMsg {  // kPaxosPrepare: phase-1a, new leader -> acceptors
    ActionInstanceId scope;
    std::uint32_t round = 0;
    std::uint32_t ballot = 0;
    ObjectId sender;
  };
  struct PromiseMsg {  // kPaxosPromise: phase-1b with full accepted state
    ActionInstanceId scope;
    std::uint32_t round = 0;
    std::uint32_t ballot = 0;  // the promised (or higher, when nacking)
    ObjectId acceptor;
    std::map<ObjectId, Accepted> accepted;  // voter -> accepted
  };

  // Per-round acceptor state (one logical acceptor for all N instances).
  struct AcceptorRound {
    std::uint32_t promised = 0;  // highest Prepare ballot answered
    std::map<ObjectId, Accepted> accepted;  // voter -> highest accepted
  };
  // Per-round leader state (any member may need it after re-election).
  struct LeaderRound {
    // voter -> acceptor -> its reported acceptance (pruned on crashes).
    std::map<ObjectId, std::map<ObjectId, Accepted>> reports;
    std::set<ObjectId> promised;  // acceptors that answered my_ballot
    // Voters re-proposed at my_ballot in phase 2; their 2b reports are in
    // flight, so seeing them value-less is no reason to start a new ballot.
    std::set<ObjectId> proposed;
    std::uint32_t my_ballot = 0;
    bool preparing = false;
    // True while the phase-2 re-proposal loop is on the stack: inline
    // self-deliveries cascade into maybe_decide, which must not start a
    // fresh prepare mid-loop (that recursion is unbounded).
    bool proposing = false;
    bool decided = false;
  };

  [[nodiscard]] bool is_member(ObjectId o) const;
  void handle_vote(const VoteMsg& m);
  void handle_accepted(const AcceptedMsg& m);
  void handle_prepare(const PrepareMsg& m);
  void handle_promise(const PromiseMsg& m);

  void send_vote(std::uint32_t round, std::uint32_t ballot, ObjectId voter,
                 const Value& value);
  /// Leader, committee with exclusions: runs phase 1 once per round so
  /// accepted state that died with a previous leader is re-discovered.
  void ensure_recovery(std::uint32_t round);
  void start_prepare(std::uint32_t round);
  void maybe_finish_prepare(std::uint32_t round);
  void maybe_decide(std::uint32_t round);

  [[nodiscard]] ObjectId self() const { return host_.exit_self(); }
  [[nodiscard]] ObjectId leader() const {
    return live_leader(info_, host_.exit_excluded(info_.instance));
  }
  [[nodiscard]] bool is_acceptor(ObjectId o) const;
  [[nodiscard]] std::size_t live_acceptors() const;
  [[nodiscard]] std::uint32_t next_ballot();
  void observe_ballot(std::uint32_t ballot) {
    if (ballot > max_ballot_seen_) max_ballot_seen_ = ballot;
  }

  ExitHost& host_;
  const action::InstanceInfo& info_;
  std::vector<ObjectId> acceptors_;  // first acceptor_count(N) members
  std::optional<action::DoneMsg> last_done_;  // this member's current vote
  std::uint32_t max_ballot_seen_ = 0;
  std::map<std::uint32_t, AcceptorRound> acceptor_;  // by round
  std::map<std::uint32_t, LeaderRound> leader_;      // by round
};

}  // namespace caa::exit
