// The paper's leader-based exit barrier as an ExitProtocol.
//
// Every member reports its Done to the lowest live member; once all live
// members of the current round have reported, the leader asks the host for
// the Leave decision and multicasts it. Leader crash re-announces the
// pending Done to every live member (PR 5's lost-final-Leave fix). This is
// a straight extraction of the machinery previously inlined in Participant:
// message patterns, iteration orders and decision points are unchanged, so
// worlds running BarrierExit stay checksum-identical to the pre-seam code.
//
// The barrier map and the pending Done are private here: Participant can no
// longer reach into exit state, which is the compile-time guarantee the
// seam exists to provide.
#pragma once

#include <map>
#include <optional>

#include "exit/exit_protocol.h"

namespace caa::exit {

class BarrierExit final : public ExitProtocol {
 public:
  BarrierExit(ExitHost& host, const action::InstanceInfo& info)
      : host_(host), info_(info) {}

  [[nodiscard]] ExitKind kind() const override { return ExitKind::kBarrier; }

  void on_complete(const action::DoneMsg& m) override;
  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;
  void on_peer_crashed(ObjectId peer, ObjectId old_leader,
                       ObjectId new_leader) override;
  void on_restored() override;
  void describe(std::string& phase,
                std::vector<ObjectId>& awaited) const override;

 private:
  void on_done(const action::DoneMsg& m);
  void maybe_decide();
  [[nodiscard]] ObjectId leader() const {
    return live_leader(info_, host_.exit_excluded(info_.instance));
  }

  ExitHost& host_;
  const action::InstanceInfo& info_;
  // This member's Done for the current round, re-sent on leader re-election.
  std::optional<action::DoneMsg> last_done_;
  // Leader-only: round -> sender -> Done.
  std::map<std::uint32_t, std::map<ObjectId, action::DoneMsg>> barrier_;
};

}  // namespace caa::exit
