#include "exit/exit_protocol.h"

#include "exit/barrier_exit.h"
#include "exit/paxos_exit.h"
#include "util/check.h"

namespace caa::exit {

std::string_view exit_kind_name(ExitKind kind) {
  switch (kind) {
    case ExitKind::kBarrier:
      return "barrier";
    case ExitKind::kPaxos:
      return "paxos";
  }
  return "unknown";
}

Result<ExitKind> parse_exit_kind(std::string_view name) {
  if (name == "barrier") return ExitKind::kBarrier;
  if (name == "paxos") return ExitKind::kPaxos;
  return Status::invalid_argument("unknown exit protocol (barrier|paxos)");
}

bool is_exit_kind(net::MsgKind kind) {
  switch (kind) {
    case net::MsgKind::kActionDone:
    case net::MsgKind::kPaxosVote:
    case net::MsgKind::kPaxosAccepted:
    case net::MsgKind::kPaxosPrepare:
    case net::MsgKind::kPaxosPromise:
      return true;
    default:
      return false;
  }
}

ObjectId live_leader(const action::InstanceInfo& info,
                     const std::set<ObjectId>& excluded) {
  for (ObjectId member : info.members) {
    if (!excluded.contains(member)) return member;
  }
  return info.leader();  // everyone crashed: degenerate, keep static
}

std::unique_ptr<ExitProtocol> make_exit_protocol(
    ExitKind kind, ExitHost& host, const action::InstanceInfo& info) {
  switch (kind) {
    case ExitKind::kBarrier:
      return std::make_unique<BarrierExit>(host, info);
    case ExitKind::kPaxos:
      return std::make_unique<PaxosCommitExit>(host, info);
  }
  CAA_CHECK_MSG(false, "make_exit_protocol: unknown exit kind");
  return nullptr;
}

}  // namespace caa::exit
