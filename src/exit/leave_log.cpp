#include "exit/leave_log.h"

#include "net/wire.h"

namespace caa::exit {

net::Bytes encode(const LeaveAckMsg& m) {
  net::WireWriter w;
  w.u64(m.scope.value());
  w.u32(m.round);
  w.u32(m.sender.value());
  return std::move(w).take();
}

Result<LeaveAckMsg> decode_leave_ack(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto scope = r.u64();
  if (!scope.is_ok()) return scope.status();
  auto round = r.u32();
  if (!round.is_ok()) return round.status();
  auto sender = r.u32();
  if (!sender.is_ok()) return sender.status();
  return LeaveAckMsg{ActionInstanceId(scope.value()), round.value(),
                     ObjectId(sender.value())};
}

void LeaveLog::record(const action::LeaveMsg& leave,
                      const std::vector<ObjectId>& members, ObjectId self,
                      const std::set<ObjectId>& excluded, bool gc) {
  Entry entry;
  entry.leave = leave;
  entry.gc = gc;
  if (gc) {
    for (ObjectId member : members) {
      if (member == self || excluded.contains(member)) continue;
      entry.pending.insert(member);
    }
    if (auto early = early_acks_.find(leave.scope);
        early != early_acks_.end()) {
      for (ObjectId acked : early->second) entry.pending.erase(acked);
      early_acks_.erase(early);
    }
    if (entry.pending.empty()) return;  // everyone already has it
  }
  entries_.insert_or_assign(leave.scope, std::move(entry));
}

const action::LeaveMsg* LeaveLog::find(ActionInstanceId scope) const {
  auto it = entries_.find(scope);
  return it == entries_.end() ? nullptr : &it->second.leave;
}

bool LeaveLog::on_ack(ActionInstanceId scope, ObjectId from) {
  auto it = entries_.find(scope);
  if (it == entries_.end()) {
    early_acks_[scope].insert(from);
    return false;
  }
  if (!it->second.gc) return false;  // retained forever by configuration
  it->second.pending.erase(from);
  if (!it->second.pending.empty()) return false;
  entries_.erase(it);
  return true;
}

std::size_t LeaveLog::waive(ObjectId peer) {
  std::size_t collected = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    if (entry.gc) {
      entry.pending.erase(peer);
      if (entry.pending.empty()) {
        it = entries_.erase(it);
        ++collected;
        continue;
      }
    }
    ++it;
  }
  return collected;
}

}  // namespace caa::exit
