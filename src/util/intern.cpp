#include "util/intern.h"

#include "util/check.h"

namespace caa {

std::uint32_t InternPool::intern(std::string_view name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  CAA_CHECK_MSG(names_.size() < kNotFound, "intern pool exhausted");
  names_.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(names_.size() - 1);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::uint32_t InternPool::find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& InternPool::name_of(std::uint32_t id) const {
  CAA_CHECK_MSG(id < names_.size(), "unknown interned id");
  return names_[id];
}

}  // namespace caa
