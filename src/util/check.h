// Contract-checking macros.
//
// CAA_CHECK fires in all build types: protocol invariants of the resolution
// algorithm are cheap relative to simulated message passing, and a silent
// invariant violation in a fault-tolerance library is worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace caa::detail {
/// Called after the failure is printed and before abort(). The flight
/// recorder installs a hook that dumps the failing world's ring buffer so a
/// tripped invariant still leaves a post-mortem artifact (obs/flight_recorder.h).
using CheckFailureHook = void (*)();
inline CheckFailureHook& check_failure_hook() {
  static CheckFailureHook hook = nullptr;
  return hook;
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg && *msg ? " — " : "", msg ? msg : "");
  if (CheckFailureHook hook = check_failure_hook(); hook != nullptr) hook();
  std::abort();
}
}  // namespace caa::detail

#define CAA_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) ::caa::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CAA_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) ::caa::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
