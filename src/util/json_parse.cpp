#include "util/json_parse.h"

#include <cstdlib>

namespace caa::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    skip_ws();
    JsonValue root;
    if (Status s = value(root, 0); !s.is_ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return root;
  }

 private:
  Status fail(std::string_view what) const {
    return Status::invalid_argument("json: " + std::string(what) +
                                    " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      }
      case 't':
        if (!eat_word("true")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return Status::ok();
      case 'f':
        if (!eat_word("false")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return Status::ok();
      case 'n':
        if (!eat_word("null")) return fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return Status::ok();
      default: return number(out);
    }
  }

  Status object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return Status::ok();
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (Status s = string(key); !s.is_ok()) return s;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      JsonValue member;
      if (Status s = value(member, depth + 1); !s.is_ok()) return s;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Status::ok();
      return fail("expected ',' or '}'");
    }
  }

  Status array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return Status::ok();
    while (true) {
      skip_ws();
      JsonValue element;
      if (Status s = value(element, depth + 1); !s.is_ok()) return s;
      out.elements.push_back(std::move(element));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Status::ok();
      return fail("expected ',' or ']'");
    }
  }

  Status string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          if (code >= 0x80) return fail("non-ascii \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  Status number(JsonValue& out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out.number = std::strtod(begin, &end);
    if (end == begin) return fail("expected value");
    out.kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace caa::util
