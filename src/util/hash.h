// Small non-cryptographic hashing utilities.
//
// Used for behavioural fingerprints: trace checksums and the bench
// harness's `checksum` field both reduce a run to a 64-bit FNV-1a digest
// so optimization PRs can prove they did not change protocol behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace caa {

inline constexpr std::uint64_t kFnv1a64Offset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ULL;

/// FNV-1a over a byte string; pass a previous digest as `seed` to chain.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view data, std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Folds one 64-bit value into a digest (little-endian byte order).
[[nodiscard]] constexpr std::uint64_t fnv1a64_mix(std::uint64_t h,
                                                  std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFFu;
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Fixed-width lowercase hex rendering of a digest, for JSON output.
[[nodiscard]] inline std::string hex_digest(std::uint64_t h) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xFu];
    h >>= 4;
  }
  return out;
}

}  // namespace caa
