// Minimal read-side JSON: a recursive-descent parser into a small DOM.
//
// The write side lives in bench/perf_json.h (insertion-ordered builder);
// this is its read-side counterpart for the few places that must consume
// JSON the repo itself emits — time-series exports (obs/timeseries.h) and
// the BENCH_*.json regression gate in tools/caa-report. It is not a
// general-purpose JSON library: numbers parse via strtod, strings handle
// the standard escapes (\uXXXX maps below 0x80 only, the range our
// emitters produce), and depth is bounded to keep malformed input from
// recursing away.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace caa::util {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> elements;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject,
                                                             // insertion order
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// First member with `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// The number truncated to int64 (0 for non-numbers).
  [[nodiscard]] std::int64_t as_int() const {
    return is_number() ? static_cast<std::int64_t>(number) : 0;
  }
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// garbage is an error).
[[nodiscard]] Result<JsonValue> parse_json(std::string_view text);

}  // namespace caa::util
