// Named monotonic counters for protocol accounting.
//
// The paper's evaluation (§4.4) is a message-count analysis; the benchmark
// harness reproduces it by counting protocol messages by kind. Counters give
// every module a uniform, allocation-light way to report such figures.
//
// Hot paths intern the name once into a CounterId (process-wide registry)
// and then increment a dense vector slot — no hashing, no string compare,
// no allocation per protocol message. All reads and writes go through
// interned ids; name-based reads for tests and debugging live in
// obs::Metrics::value(std::string_view) (which interns and forwards here).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace caa {

/// A dense handle to a counter *name*. Ids are process-wide (one append-only
/// registry shared by all Counters instances, matching how all simulated
/// worlds share one set of metric names); values stay per-Counters. Resolve
/// once at module-init or first use, then add() costs one vector increment.
/// The name registry is mutex-guarded so campaign workers may intern and
/// render concurrently; Counters *values* stay single-thread (one store per
/// World, one World per worker).
class CounterId {
 public:
  constexpr CounterId() = default;

  /// Interns `name`, returning its stable id. Idempotent.
  static CounterId of(std::string_view name);

  [[nodiscard]] constexpr bool valid() const { return index_ != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t index() const { return index_; }
  /// The interned name; id must be valid.
  [[nodiscard]] std::string_view name() const;

  friend constexpr bool operator==(CounterId, CounterId) = default;

 private:
  friend class Counters;
  constexpr explicit CounterId(std::uint32_t index) : index_(index) {}
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t index_ = kInvalid;
};

/// A registry of named int64 counters with deterministic (name-sorted)
/// rendering so test and bench output is stable.
class Counters {
 public:
  // ---- Hot path: interned handles -----------------------------------
  void add(CounterId id, std::int64_t delta = 1) {
    if (id.index() >= values_.size()) values_.resize(id.index() + 1, 0);
    values_[id.index()] += delta;
  }
  [[nodiscard]] std::int64_t get(CounterId id) const {
    return id.index() < values_.size() ? values_[id.index()] : 0;
  }
  void reset(CounterId id) {
    if (id.index() < values_.size()) values_[id.index()] = 0;
  }

  void reset() { values_.assign(values_.size(), 0); }

  /// Sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::int64_t sum_prefix(std::string_view prefix) const;

  /// Snapshot of all non-zero counters, sorted by name.
  [[nodiscard]] std::map<std::string, std::int64_t, std::less<>> all() const;

  /// Render as sorted "name=value" lines (non-zero counters only), for
  /// debugging, bench output and run fingerprints.
  [[nodiscard]] std::string to_string() const;

 private:
  // Indexed by CounterId; grown lazily on first touch of an id.
  std::vector<std::int64_t> values_;
};

}  // namespace caa
