// Named monotonic counters for protocol accounting.
//
// The paper's evaluation (§4.4) is a message-count analysis; the benchmark
// harness reproduces it by counting protocol messages by kind. Counters give
// every module a uniform, allocation-light way to report such figures.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace caa {

/// A registry of named int64 counters. Deterministic iteration order (map)
/// so test and bench output is stable.
class Counters {
 public:
  void add(std::string_view name, std::int64_t delta = 1);
  [[nodiscard]] std::int64_t get(std::string_view name) const;
  void reset();
  void reset(std::string_view name);

  /// Sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::int64_t sum_prefix(std::string_view prefix) const;

  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>& all()
      const {
    return counters_;
  }

  /// Render as "name=value" lines, for debugging and bench output.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::int64_t, std::less<>> counters_;
};

}  // namespace caa
