#include "util/counters.h"

namespace caa {

void Counters::add(std::string_view name, std::int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::int64_t Counters::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Counters::reset() { counters_.clear(); }

void Counters::reset(std::string_view name) {
  if (auto it = counters_.find(name); it != counters_.end()) {
    counters_.erase(it);
  }
}

std::int64_t Counters::sum_prefix(std::string_view prefix) const {
  std::int64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::string Counters::to_string() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace caa
