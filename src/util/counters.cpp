#include "util/counters.h"

#include "util/check.h"
#include "util/intern.h"

namespace caa {

namespace {

/// The process-wide name registry. Function-local static so CounterId::of
/// is safe from namespace-scope initializers in any translation unit.
InternPool& registry() {
  static InternPool pool;
  return pool;
}

}  // namespace

CounterId CounterId::of(std::string_view name) {
  return CounterId(registry().intern(name));
}

std::string_view CounterId::name() const {
  CAA_CHECK_MSG(valid(), "name() on invalid CounterId");
  return registry().name_of(index_);
}

std::int64_t Counters::sum_prefix(std::string_view prefix) const {
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0 && registry().name_of(i).starts_with(prefix)) {
      total += values_[i];
    }
  }
  return total;
}

std::map<std::string, std::int64_t, std::less<>> Counters::all() const {
  std::map<std::string, std::int64_t, std::less<>> out;
  for (std::uint32_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0) out.emplace(registry().name_of(i), values_[i]);
  }
  return out;
}

std::string Counters::to_string() const {
  std::string out;
  for (const auto& [name, value] : all()) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace caa
