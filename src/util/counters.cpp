#include "util/counters.h"

#include <mutex>

#include "util/check.h"
#include "util/intern.h"

namespace caa {

namespace {

/// The process-wide name registry. Function-local static so CounterId::of
/// is safe from namespace-scope initializers in any translation unit.
/// Guarded by a mutex: campaign workers intern and render counter names
/// concurrently, and the InternPool itself is single-thread by design. The
/// lock is never on a per-message path — hot paths write through CounterId
/// handles resolved once.
struct Registry {
  std::mutex mutex;
  InternPool pool;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

CounterId CounterId::of(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return CounterId(r.pool.intern(name));
}

std::string_view CounterId::name() const {
  CAA_CHECK_MSG(valid(), "name() on invalid CounterId");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  // The pool is append-only and deque-backed, so the returned view stays
  // valid after the lock is released.
  return r.pool.name_of(index_);
}

std::int64_t Counters::sum_prefix(std::string_view prefix) const {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0 && r.pool.name_of(i).starts_with(prefix)) {
      total += values_[i];
    }
  }
  return total;
}

std::map<std::string, std::int64_t, std::less<>> Counters::all() const {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::map<std::string, std::int64_t, std::less<>> out;
  for (std::uint32_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0) out.emplace(r.pool.name_of(i), values_[i]);
  }
  return out;
}

std::string Counters::to_string() const {
  std::string out;
  for (const auto& [name, value] : all()) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace caa
