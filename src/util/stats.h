// Small summary-statistics accumulator (mean / stddev / percentiles).
//
// Used by the benches to quantify the paper's *predictability* argument
// (§2.2: aborting a nested action is "more predictable" than waiting for
// it): predictability is variance and tail percentiles, not just means.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace caa {

class Samples {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }

  [[nodiscard]] double mean() const {
    CAA_CHECK(!values_.empty());
    double sum = 0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  [[nodiscard]] double stddev() const {
    CAA_CHECK(!values_.empty());
    const double m = mean();
    double acc = 0;
    for (double v : values_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size()));
  }

  [[nodiscard]] double min() const {
    CAA_CHECK(!values_.empty());
    return *std::min_element(values_.begin(), values_.end());
  }

  [[nodiscard]] double max() const {
    CAA_CHECK(!values_.empty());
    return *std::max_element(values_.begin(), values_.end());
  }

  /// Percentile by nearest-rank (p in [0, 100]).
  [[nodiscard]] double percentile(double p) const {
    CAA_CHECK(!values_.empty());
    CAA_CHECK(p >= 0.0 && p <= 100.0);
    ensure_sorted();
    if (p <= 0.0) return values_.front();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values_.size())));
    return values_[std::min(rank == 0 ? 0 : rank - 1, values_.size() - 1)];
  }

  void clear() {
    values_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace caa
