// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (latency jitter, fault
// injection, workload arrival times) is driven by explicitly seeded
// generators so that every test and benchmark run is reproducible.
// xoshiro256** with SplitMix64 seeding; no global state (CP.2, CP.3).
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace caa {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xCAAC710E5u) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    CAA_CHECK(bound > 0);
    // 128-bit multiply-shift; rejection for exactness.
    while (true) {
      const std::uint64_t x = next();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    CAA_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Derive an independent child generator (for per-channel streams).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace caa
