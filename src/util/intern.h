// String interning for exception names and other symbolic identifiers.
//
// Exception classes in the paper are named types arranged in a hierarchy
// (§3.2). We intern their names once and pass small integer ids over the
// wire, which keeps protocol messages compact and comparisons O(1).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace caa {

/// An append-only bidirectional map string <-> dense index.
/// Not thread-safe by design: each simulated world owns its own pools
/// (Core Guidelines CP.3 — minimize shared writable data).
class InternPool {
 public:
  /// Returns the id for `name`, interning it on first use.
  std::uint32_t intern(std::string_view name);

  /// Returns the id for `name` or `kNotFound` if never interned.
  [[nodiscard]] std::uint32_t find(std::string_view name) const;

  /// Returns the string for an id previously returned by intern().
  [[nodiscard]] const std::string& name_of(std::uint32_t id) const;

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  // deque: element addresses are stable across growth, so the string_view
  // keys below (which alias the stored strings) never dangle.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace caa
