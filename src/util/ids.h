// Strongly typed identifiers used across the library.
//
// Every entity in the system (nodes, objects, actions, action *instances*,
// transactions, exceptions) is referred to by a small integer id wrapped in a
// distinct type so that ids of different kinds cannot be mixed up silently.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace caa {

/// CRTP-free strong id: a thin wrapper over an integer with a phantom Tag.
/// Ids are totally ordered; the resolution algorithm relies on the order of
/// participant ids to deterministically pick the resolving object (§4.1:
/// "all objects are ordered ... the chosen object will be responsible for
/// exception resolution").
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr StrongId invalid() { return StrongId(); }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

struct NodeIdTag {};
struct ObjectIdTag {};
struct ActionIdTag {};
struct ActionInstanceIdTag {};
struct TxnIdTag {};
struct ExceptionIdTag {};
struct GroupIdTag {};
struct EventIdTag {};

/// Identifies a physical node (one address space) of the simulated network.
using NodeId = StrongId<NodeIdTag>;
/// Identifies a distributed object, unique across the whole system.
/// Object ids double as the participant ordering of §4.1.
using ObjectId = StrongId<ObjectIdTag>;
/// Identifies a *declared* CA action (its static declaration).
using ActionId = StrongId<ActionIdTag>;
/// Identifies one runtime *instance* of a CA action. Nested actions and
/// retries create fresh instances; resolution messages are scoped to an
/// instance so that messages of aborted instances can be discarded (§4.2
/// "clean up messages related to nested actions").
using ActionInstanceId = StrongId<ActionInstanceIdTag, std::uint64_t>;
/// Identifies a transaction (top-level or nested).
using TxnId = StrongId<TxnIdTag, std::uint64_t>;
/// Identifies an exception class interned in an ExceptionSpace.
using ExceptionId = StrongId<ExceptionIdTag>;
/// Identifies a closed communication group.
using GroupId = StrongId<GroupIdTag, std::uint64_t>;
/// Identifies a scheduled simulator event (for cancellation).
using EventId = StrongId<EventIdTag, std::uint64_t>;

}  // namespace caa

namespace std {
template <typename Tag, typename Rep>
struct hash<caa::StrongId<Tag, Rep>> {
  size_t operator()(const caa::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
