// Lightweight Status / Result types for recoverable errors.
//
// C++ exceptions are reserved for programming errors (contract violations);
// expected failure paths — lock conflicts, aborted transactions, protocol
// violations — travel through Status/Result values, following the library's
// own subject matter: an exception *model* is data, not control flow of the
// host language.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace caa {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kAborted,        // transaction / action aborted
  kDeadlineExceeded,
  kUnavailable,    // node down, channel dropped
  kConflict,       // lock conflict (wait-die victim)
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A success-or-error value with an optional human-readable message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status invalid_argument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status not_found(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status already_exists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status failed_precondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status deadline_exceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status conflict(std::string m) { return {StatusCode::kConflict, std::move(m)}; }
  static Status internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    os << to_string(s.code_);
    if (!s.message_.empty()) os << ": " << s.message_;
    return os;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status describing why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT implicit
  Result(Status status) : value_(std::move(status)) {      // NOLINT implicit
    assert(!std::get<Status>(value_).is_ok() && "Result error must not be OK");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(value_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace caa
