// Minimal leveled logger.
//
// Logging in a discrete-event simulation must carry the *virtual* time, not
// wall-clock time, so the logger accepts an optional time source. Output is
// line-buffered to a sink; tests install a capturing sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace caa {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// A logger instance. Each World owns one; modules hold references.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view line)>;
  using TimeSource = std::function<std::int64_t()>;

  Logger();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the output sink (default: stderr).
  void set_sink(Sink sink);

  /// Install a virtual-clock source; logged lines are prefixed with "@t=...".
  void set_time_source(TimeSource source) { time_source_ = std::move(source); }

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, std::string_view module, std::string_view message);

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  TimeSource time_source_;
};

/// Stream-style helper: CAA_LOG(logger, kDebug, "net") << "sent " << n;
class LogLine {
 public:
  LogLine(Logger& logger, LogLevel level, std::string_view module)
      : logger_(logger), level_(level), module_(module) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { logger_.log(level_, module_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Logger& logger_;
  LogLevel level_;
  std::string_view module_;
  std::ostringstream stream_;
};

#define CAA_LOG(logger, level, module)            \
  if (!(logger).enabled(level)) {                 \
  } else                                          \
    ::caa::LogLine(logger, level, module)

}  // namespace caa
