#include "util/log.h"

#include <cstdio>

namespace caa {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view line) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(line.size()),
                 line.data());
  };
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, std::string_view module,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::string line;
  if (time_source_) {
    line += "@t=";
    line += std::to_string(time_source_());
    line += ' ';
  }
  line += '[';
  line += module;
  line += "] ";
  line += message;
  sink_(level, line);
}

}  // namespace caa
