#include "txn/atomic_object.h"

#include <algorithm>

#include "rt/runtime.h"
#include "util/check.h"

namespace caa::txn {
namespace {
const caa::CounterId kUnhandledKind = caa::CounterId::of("txn.unhandled_kind");
const caa::CounterId kWaits = caa::CounterId::of("txn.waits");
const caa::CounterId kWaitDieVictims =
    caa::CounterId::of("txn.wait_die_victims");
}  // namespace


AtomicObjectHost::AtomicObjectHost()
    : locks_([this](const std::string& name, TxnId txn, LockMode mode) {
        on_wake(name, txn, mode);
      }) {}

void AtomicObjectHost::put_initial(std::string name, std::int64_t value) {
  values_[std::move(name)] = value;
}

std::optional<std::int64_t> AtomicObjectHost::peek(
    const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void AtomicObjectHost::on_message(ObjectId from, net::MsgKind kind,
                                  const net::Bytes& payload) {
  switch (kind) {
    case net::MsgKind::kTxnOpRequest: {
      auto m = decode_op_request(payload);
      if (!m.is_ok()) return;
      handle_op(from, m.value());
      return;
    }
    case net::MsgKind::kTxnPrepare: {
      auto m = decode_prepare(payload);
      if (!m.is_ok()) return;
      // Strict 2PL: writes are already applied and locks held, so a live
      // transaction can always commit; only one we killed votes no.
      const bool yes = !aborted_.contains(m.value().txn);
      send(from, net::MsgKind::kTxnVote,
           encode(TxnVote{m.value().txn, yes}));
      return;
    }
    case net::MsgKind::kTxnDecision: {
      auto m = decode_decision(payload);
      if (!m.is_ok()) return;
      if (m.value().commit) {
        commit_release(m.value().txn);
      } else {
        undo_and_release(m.value().txn);
      }
      send(from, net::MsgKind::kTxnDecisionAck,
           encode(TxnDecisionAck{m.value().txn}));
      return;
    }
    default:
      runtime().simulator().counters().add(kUnhandledKind);
      return;
  }
}

void AtomicObjectHost::handle_op(ObjectId from, const TxnOpRequest& request) {
  switch (request.op) {
    case TxnOp::kAbort:
      undo_and_release(request.txn);
      aborted_.insert(request.txn);
      reply(from, request.request_id, TxnReplyStatus::kOk);
      return;
    case TxnOp::kCommitChild:
      merge_child(request.txn, request.parent);
      reply(from, request.request_id, TxnReplyStatus::kOk);
      return;
    default:
      break;
  }
  if (aborted_.contains(request.txn)) {
    reply(from, request.request_id, TxnReplyStatus::kConflict);
    return;
  }
  const LockMode mode =
      request.op == TxnOp::kRead ? LockMode::kShared : LockMode::kExclusive;
  switch (locks_.acquire(request.object, request.txn, request.top, mode)) {
    case LockOutcome::kGranted:
      execute_granted(from, request);
      return;
    case LockOutcome::kQueued:
      parked_[request.txn].push_back(Parked{from, request});
      runtime().simulator().counters().add(kWaits);
      return;
    case LockOutcome::kDied:
      runtime().simulator().counters().add(kWaitDieVictims);
      reply(from, request.request_id, TxnReplyStatus::kConflict);
      return;
  }
}

void AtomicObjectHost::on_wake(const std::string& name, TxnId txn,
                               LockMode mode) {
  (void)mode;
  auto it = parked_.find(txn);
  if (it == parked_.end()) return;
  std::vector<Parked> ready;
  std::erase_if(it->second, [&](Parked& p) {
    if (p.request.object != name) return false;
    ready.push_back(std::move(p));
    return true;
  });
  if (it->second.empty()) parked_.erase(it);
  for (Parked& p : ready) {
    if (aborted_.contains(p.request.txn)) {
      reply(p.client, p.request.request_id, TxnReplyStatus::kConflict);
    } else {
      execute_granted(p.client, p.request);
    }
  }
}

void AtomicObjectHost::record_undo(TxnId txn, const std::string& object) {
  auto& log = undo_[txn];
  for (const UndoEntry& e : log) {
    if (e.object == object) return;  // first-touch image already saved
  }
  auto it = values_.find(object);
  log.push_back(UndoEntry{
      object, it == values_.end() ? std::nullopt
                                  : std::optional<std::int64_t>(it->second)});
}

void AtomicObjectHost::execute_granted(ObjectId from,
                                       const TxnOpRequest& request) {
  switch (request.op) {
    case TxnOp::kRead: {
      auto it = values_.find(request.object);
      if (it == values_.end()) {
        reply(from, request.request_id, TxnReplyStatus::kNotFound);
        return;
      }
      reply(from, request.request_id, TxnReplyStatus::kOk, it->second);
      return;
    }
    case TxnOp::kWrite: {
      auto it = values_.find(request.object);
      if (it == values_.end()) {
        reply(from, request.request_id, TxnReplyStatus::kNotFound);
        return;
      }
      record_undo(request.txn, request.object);
      it->second = request.value;
      reply(from, request.request_id, TxnReplyStatus::kOk, it->second);
      return;
    }
    case TxnOp::kAdd: {
      auto it = values_.find(request.object);
      if (it == values_.end()) {
        reply(from, request.request_id, TxnReplyStatus::kNotFound);
        return;
      }
      record_undo(request.txn, request.object);
      it->second += request.value;
      reply(from, request.request_id, TxnReplyStatus::kOk, it->second);
      return;
    }
    case TxnOp::kCreate: {
      if (values_.contains(request.object)) {
        reply(from, request.request_id, TxnReplyStatus::kExists);
        return;
      }
      record_undo(request.txn, request.object);
      values_[request.object] = request.value;
      reply(from, request.request_id, TxnReplyStatus::kOk, request.value);
      return;
    }
    case TxnOp::kAbort:
    case TxnOp::kCommitChild:
      CAA_CHECK_MSG(false, "control op routed to execute_granted");
  }
}

void AtomicObjectHost::undo_and_release(TxnId txn) {
  auto it = undo_.find(txn);
  if (it != undo_.end()) {
    // Restore before-images in reverse order of first touch.
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      if (rit->old_value.has_value()) {
        values_[rit->object] = *rit->old_value;
      } else {
        values_.erase(rit->object);
      }
    }
    undo_.erase(it);
  }
  // Drop any parked requests of the dead transaction.
  if (auto pit = parked_.find(txn); pit != parked_.end()) {
    for (Parked& p : pit->second) {
      reply(p.client, p.request.request_id, TxnReplyStatus::kConflict);
    }
    parked_.erase(pit);
  }
  locks_.cancel_waiting(txn);
  locks_.release_all(txn);
}

void AtomicObjectHost::commit_release(TxnId txn) {
  undo_.erase(txn);
  locks_.release_all(txn);
}

void AtomicObjectHost::merge_child(TxnId child, TxnId parent) {
  // Parent inherits the child's locks and before-images; child's writes
  // stay applied (visible to the parent, still hidden from outsiders).
  auto it = undo_.find(child);
  if (it != undo_.end()) {
    auto& parent_log = undo_[parent];
    for (UndoEntry& e : it->second) {
      const bool parent_has =
          std::any_of(parent_log.begin(), parent_log.end(),
                      [&](const UndoEntry& pe) { return pe.object == e.object; });
      if (!parent_has) parent_log.push_back(std::move(e));
    }
    undo_.erase(it);
  }
  locks_.transfer(child, parent);
}

void AtomicObjectHost::reply(ObjectId to, std::uint64_t request_id,
                             TxnReplyStatus status, std::int64_t value) {
  send(to, net::MsgKind::kTxnOpReply,
       encode(TxnOpReply{request_id, status, value}));
}

}  // namespace caa::txn
