// Transaction wire protocol: ids, operations and messages.
//
// Transactions give CA actions their "associated transaction" (§3.1): all
// accesses to external atomic objects from within an action run under a
// transaction that is started when the action (attempt) starts, committed
// when it passes its acceptance test, and aborted on abortion/backward
// recovery — the explicit start/commit/abort triple of Figure 2.
#pragma once

#include <cstdint>
#include <string>

#include "net/message.h"
#include "util/ids.h"
#include "util/status.h"

namespace caa::txn {

/// Transaction ids embed the coordinating client and a local sequence
/// number: (client_object_id << 32) | seq. The resulting total order is the
/// age order used by wait-die (§ lock_manager.h): smaller id == older.
[[nodiscard]] constexpr TxnId make_txn_id(ObjectId client,
                                          std::uint32_t seq) {
  return TxnId((static_cast<std::uint64_t>(client.value()) << 32) | seq);
}

enum class TxnOp : std::uint8_t {
  kRead = 0,        // shared lock, returns value
  kWrite = 1,       // exclusive lock, sets value
  kAdd = 2,         // exclusive lock, increments value, returns new value
  kCreate = 3,      // exclusive lock, creates object with initial value
  kAbort = 4,       // abort this transaction at this host
  kCommitChild = 5, // merge a nested transaction into its parent
};

enum class TxnReplyStatus : std::uint8_t {
  kOk = 0,
  kConflict = 1,   // wait-die victim: transaction must abort
  kNotFound = 2,   // unknown object
  kExists = 3,     // create of an existing object
};

struct TxnOpRequest {
  std::uint64_t request_id = 0;
  TxnId txn;
  TxnId top;     // top-level ancestor (wait-die age)
  TxnId parent;  // for kCommitChild: the parent to merge into
  TxnOp op = TxnOp::kRead;
  std::string object;
  std::int64_t value = 0;
};

struct TxnOpReply {
  std::uint64_t request_id = 0;
  TxnReplyStatus status = TxnReplyStatus::kOk;
  std::int64_t value = 0;
};

struct TxnPrepare {
  TxnId txn;
};

struct TxnVote {
  TxnId txn;
  bool yes = true;
};

struct TxnDecision {
  TxnId txn;
  bool commit = true;
};

struct TxnDecisionAck {
  TxnId txn;
};

net::Bytes encode(const TxnOpRequest& m);
net::Bytes encode(const TxnOpReply& m);
net::Bytes encode(const TxnPrepare& m);
net::Bytes encode(const TxnVote& m);
net::Bytes encode(const TxnDecision& m);
net::Bytes encode(const TxnDecisionAck& m);

Result<TxnOpRequest> decode_op_request(const net::Bytes& bytes);
Result<TxnOpReply> decode_op_reply(const net::Bytes& bytes);
Result<TxnPrepare> decode_prepare(const net::Bytes& bytes);
Result<TxnVote> decode_vote(const net::Bytes& bytes);
Result<TxnDecision> decode_decision(const net::Bytes& bytes);
Result<TxnDecisionAck> decode_decision_ack(const net::Bytes& bytes);

}  // namespace caa::txn
