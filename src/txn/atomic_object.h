// Atomic-object host: a node-resident server of named atomic objects.
//
// Atomic objects (§3) are the externally shared state CA actions operate
// on. Each host serves read/write/add/create operations under strict 2PL
// (LockManager), keeps per-transaction before-images for abort, supports
// nested-transaction merge (commit-child) and participates in two-phase
// commit for top-level transactions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rt/managed_object.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace caa::txn {

class AtomicObjectHost : public rt::ManagedObject {
 public:
  AtomicObjectHost();

  /// Creates an object outside any transaction (world setup).
  void put_initial(std::string name, std::int64_t value);

  /// Committed (or in-place, under an active transaction) value.
  [[nodiscard]] std::optional<std::int64_t> peek(
      const std::string& name) const;

  /// Number of objects hosted.
  [[nodiscard]] std::size_t object_count() const { return values_.size(); }

  /// True if the transaction currently holds any lock here.
  [[nodiscard]] bool has_locks(TxnId txn) const {
    return locks_.held_count(txn) > 0;
  }

  // Oracle introspection (src/fault/): all three must read zero once the
  // world is quiescent, otherwise some transaction leaked state here.
  [[nodiscard]] std::size_t total_locks_held() const {
    return locks_.total_held();
  }
  [[nodiscard]] std::size_t queued_lock_waiters() const {
    return locks_.total_queued();
  }
  [[nodiscard]] std::size_t open_undo_logs() const { return undo_.size(); }

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

 private:
  struct UndoEntry {
    std::string object;
    std::optional<std::int64_t> old_value;  // nullopt => object did not exist
  };
  struct Parked {
    ObjectId client;
    TxnOpRequest request;
  };

  void handle_op(ObjectId from, const TxnOpRequest& request);
  void execute_granted(ObjectId from, const TxnOpRequest& request);
  void record_undo(TxnId txn, const std::string& object);
  void undo_and_release(TxnId txn);
  void commit_release(TxnId txn);
  void merge_child(TxnId child, TxnId parent);
  void reply(ObjectId to, std::uint64_t request_id, TxnReplyStatus status,
             std::int64_t value = 0);
  void on_wake(const std::string& name, TxnId txn, LockMode mode);

  LockManager locks_;
  std::map<std::string, std::int64_t> values_;
  std::map<TxnId, std::vector<UndoEntry>> undo_;
  std::map<TxnId, std::vector<Parked>> parked_;
  std::set<TxnId> aborted_;  // wait-die victims and aborted txns
};

}  // namespace caa::txn
