#include "txn/lock_manager.h"

#include <algorithm>

#include "util/check.h"

namespace caa::txn {

bool LockManager::compatible(const LockState& state, TxnId txn, TxnId top,
                             LockMode mode) {
  for (const Holder& h : state.holders) {
    if (h.txn == txn) continue;     // own holding: upgrade handled by caller
    if (h.top == top) continue;     // same top-level family: no conflict
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

LockOutcome LockManager::acquire(const std::string& name, TxnId txn,
                                 TxnId top, LockMode mode) {
  CAA_CHECK(txn.valid() && top.valid());
  LockState& state = locks_[name];

  // Re-acquisition / upgrade check.
  for (Holder& h : state.holders) {
    if (h.txn != txn) continue;
    if (h.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return LockOutcome::kGranted;  // already sufficient
    }
    // Shared -> exclusive upgrade: legal if no other conflicting holder.
    if (compatible(state, txn, top, LockMode::kExclusive)) {
      h.mode = LockMode::kExclusive;
      return LockOutcome::kGranted;
    }
    // Upgrade conflicts follow the same wait-die rule as fresh acquires.
    break;
  }

  if (compatible(state, txn, top, mode) && state.queue.empty()) {
    grant(state, name, txn, top, mode, /*wake=*/false);
    return LockOutcome::kGranted;
  }

  // Wait-die: wait only if this requester's family is older (smaller top id)
  // than EVERY conflicting holder's family; otherwise die.
  for (const Holder& h : state.holders) {
    if (h.txn == txn || h.top == top) continue;
    const bool conflicts =
        mode == LockMode::kExclusive || h.mode == LockMode::kExclusive;
    if (conflicts && !(top < h.top)) {
      return LockOutcome::kDied;
    }
  }
  state.queue.push_back(Waiter{txn, top, mode});
  return LockOutcome::kQueued;
}

void LockManager::grant(LockState& state, const std::string& name, TxnId txn,
                        TxnId top, LockMode mode, bool wake) {
  // Merge with an existing holding (possible on upgrades through the queue).
  for (Holder& h : state.holders) {
    if (h.txn == txn) {
      if (mode == LockMode::kExclusive) h.mode = LockMode::kExclusive;
      if (wake) wake_(name, txn, mode);
      return;
    }
  }
  state.holders.push_back(Holder{txn, top, mode});
  if (wake) wake_(name, txn, mode);
}

void LockManager::pump(const std::string& name, LockState& state) {
  while (!state.queue.empty()) {
    const Waiter w = state.queue.front();
    if (!compatible(state, w.txn, w.top, w.mode)) break;
    state.queue.pop_front();
    grant(state, name, w.txn, w.top, w.mode, /*wake=*/true);
  }
}

void LockManager::release_all(TxnId txn) {
  for (auto& [name, state] : locks_) {
    std::erase_if(state.holders,
                  [txn](const Holder& h) { return h.txn == txn; });
    pump(name, state);
  }
}

void LockManager::transfer(TxnId child, TxnId parent) {
  for (auto& [name, state] : locks_) {
    Holder* parent_holding = nullptr;
    bool child_had = false;
    LockMode child_mode = LockMode::kShared;
    for (Holder& h : state.holders) {
      if (h.txn == parent) parent_holding = &h;
      if (h.txn == child) {
        child_had = true;
        child_mode = h.mode;
      }
    }
    if (!child_had) continue;
    if (parent_holding != nullptr) {
      if (child_mode == LockMode::kExclusive) {
        parent_holding->mode = LockMode::kExclusive;
      }
      std::erase_if(state.holders,
                    [child](const Holder& h) { return h.txn == child; });
    } else {
      for (Holder& h : state.holders) {
        if (h.txn == child) h.txn = parent;  // top stays the family's top
      }
    }
  }
}

void LockManager::cancel_waiting(TxnId txn) {
  for (auto& [name, state] : locks_) {
    std::erase_if(state.queue,
                  [txn](const Waiter& w) { return w.txn == txn; });
    pump(name, state);
  }
}

bool LockManager::holds(const std::string& name, TxnId txn,
                        LockMode mode) const {
  auto it = locks_.find(name);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn &&
        (h.mode == LockMode::kExclusive || mode == LockMode::kShared)) {
      return true;
    }
  }
  return false;
}

std::size_t LockManager::held_count(TxnId txn) const {
  std::size_t n = 0;
  for (const auto& [name, state] : locks_) {
    for (const Holder& h : state.holders) {
      if (h.txn == txn) ++n;
    }
  }
  return n;
}

std::size_t LockManager::total_held() const {
  std::size_t n = 0;
  for (const auto& [name, state] : locks_) n += state.holders.size();
  return n;
}

std::size_t LockManager::total_queued() const {
  std::size_t n = 0;
  for (const auto& [name, state] : locks_) n += state.queue.size();
  return n;
}

}  // namespace caa::txn
