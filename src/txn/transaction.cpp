#include "txn/transaction.h"

#include "net/wire.h"

namespace caa::txn {

net::Bytes encode(const TxnOpRequest& m) {
  net::WireWriter w;
  w.u64(m.request_id);
  w.u64(m.txn.value());
  w.u64(m.top.value());
  w.u64(m.parent.value());
  w.u8(static_cast<std::uint8_t>(m.op));
  w.str(m.object);
  w.i64(m.value);
  return std::move(w).take();
}

net::Bytes encode(const TxnOpReply& m) {
  net::WireWriter w;
  w.u64(m.request_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.i64(m.value);
  return std::move(w).take();
}

net::Bytes encode(const TxnPrepare& m) {
  net::WireWriter w;
  w.u64(m.txn.value());
  return std::move(w).take();
}

net::Bytes encode(const TxnVote& m) {
  net::WireWriter w;
  w.u64(m.txn.value());
  w.boolean(m.yes);
  return std::move(w).take();
}

net::Bytes encode(const TxnDecision& m) {
  net::WireWriter w;
  w.u64(m.txn.value());
  w.boolean(m.commit);
  return std::move(w).take();
}

net::Bytes encode(const TxnDecisionAck& m) {
  net::WireWriter w;
  w.u64(m.txn.value());
  return std::move(w).take();
}

Result<TxnOpRequest> decode_op_request(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto request_id = r.u64();
  if (!request_id.is_ok()) return request_id.status();
  auto txn = r.u64();
  if (!txn.is_ok()) return txn.status();
  auto top = r.u64();
  if (!top.is_ok()) return top.status();
  auto parent = r.u64();
  if (!parent.is_ok()) return parent.status();
  auto op = r.u8();
  if (!op.is_ok()) return op.status();
  if (op.value() > static_cast<std::uint8_t>(TxnOp::kCommitChild)) {
    return Status::invalid_argument("bad txn op");
  }
  auto object = r.str();
  if (!object.is_ok()) return object.status();
  auto value = r.i64();
  if (!value.is_ok()) return value.status();
  return TxnOpRequest{request_id.value(), TxnId(txn.value()),
                      TxnId(top.value()),  TxnId(parent.value()),
                      static_cast<TxnOp>(op.value()),
                      std::move(object.value()), value.value()};
}

Result<TxnOpReply> decode_op_reply(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto request_id = r.u64();
  if (!request_id.is_ok()) return request_id.status();
  auto status = r.u8();
  if (!status.is_ok()) return status.status();
  if (status.value() > static_cast<std::uint8_t>(TxnReplyStatus::kExists)) {
    return Status::invalid_argument("bad txn reply status");
  }
  auto value = r.i64();
  if (!value.is_ok()) return value.status();
  return TxnOpReply{request_id.value(),
                    static_cast<TxnReplyStatus>(status.value()),
                    value.value()};
}

Result<TxnPrepare> decode_prepare(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto txn = r.u64();
  if (!txn.is_ok()) return txn.status();
  return TxnPrepare{TxnId(txn.value())};
}

Result<TxnVote> decode_vote(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto txn = r.u64();
  if (!txn.is_ok()) return txn.status();
  auto yes = r.boolean();
  if (!yes.is_ok()) return yes.status();
  return TxnVote{TxnId(txn.value()), yes.value()};
}

Result<TxnDecision> decode_decision(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto txn = r.u64();
  if (!txn.is_ok()) return txn.status();
  auto commit = r.boolean();
  if (!commit.is_ok()) return commit.status();
  return TxnDecision{TxnId(txn.value()), commit.value()};
}

Result<TxnDecisionAck> decode_decision_ack(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto txn = r.u64();
  if (!txn.is_ok()) return txn.status();
  return TxnDecisionAck{TxnId(txn.value())};
}

}  // namespace caa::txn
