// Strict two-phase locking with wait-die deadlock prevention, for the
// external atomic objects of §3/§3.1.
//
// "Objects that are external to the CA action and can be shared with other
// actions and objects concurrently must be atomic and individually
// responsible for their own integrity" — each atomic-object host runs one
// LockManager over its local objects. Wait-die uses the total order on
// transaction ids ("older" = smaller id): an older requester waits, a
// younger one dies (its transaction aborts and may retry), so no deadlock
// can form even across hosts.
//
// Nested transactions hold locks on behalf of their top-level ancestor for
// conflict purposes; on child commit the locks are transferred to the
// parent (lock inheritance, Moss-style).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/ids.h"

namespace caa::txn {

enum class LockMode : std::uint8_t { kShared, kExclusive };

/// Result of an acquire attempt.
enum class LockOutcome : std::uint8_t {
  kGranted,  // lock held now
  kQueued,   // requester is older than a conflicting holder: waits FIFO
  kDied,     // requester is younger: wait-die victim, must abort
};

class LockManager {
 public:
  /// Invoked when a queued request is finally granted.
  using WakeFn =
      std::function<void(const std::string& name, TxnId txn, LockMode mode)>;

  explicit LockManager(WakeFn wake) : wake_(std::move(wake)) {}

  /// Tries to take `name` in `mode` for `txn` whose top-level ancestor is
  /// `top`. Re-acquisition and shared->exclusive upgrade are handled.
  LockOutcome acquire(const std::string& name, TxnId txn, TxnId top,
                      LockMode mode);

  /// Releases every lock held by `txn`, waking queued compatible requests.
  void release_all(TxnId txn);

  /// Transfers all locks of `child` to `parent` (child commit). The
  /// parent's top-level ancestor is unchanged by construction.
  void transfer(TxnId child, TxnId parent);

  /// Drops a queued (waiting) request, e.g. when its transaction aborts.
  void cancel_waiting(TxnId txn);

  [[nodiscard]] bool holds(const std::string& name, TxnId txn,
                           LockMode mode) const;
  [[nodiscard]] std::size_t held_count(TxnId txn) const;

  /// Locks held across ALL transactions. At quiescence this must be zero —
  /// anything else is a leak (fault-engine oracle invariant).
  [[nodiscard]] std::size_t total_held() const;
  /// Requests still queued across all lock states (stuck waiters).
  [[nodiscard]] std::size_t total_queued() const;

 private:
  struct Holder {
    TxnId txn;
    TxnId top;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    TxnId top;
    LockMode mode;
  };
  struct LockState {
    std::vector<Holder> holders;
    std::deque<Waiter> queue;
  };

  /// True if (txn,mode) is compatible with current holders (ignoring txn's
  /// own holdings and holdings of the same top-level family).
  [[nodiscard]] static bool compatible(const LockState& state, TxnId txn,
                                       TxnId top, LockMode mode);
  void grant(LockState& state, const std::string& name, TxnId txn, TxnId top,
             LockMode mode, bool wake);
  void pump(const std::string& name, LockState& state);

  WakeFn wake_;
  std::map<std::string, LockState> locks_;
};

}  // namespace caa::txn
