// Transaction client / coordinator.
//
// A TxnClient runs on some node and coordinates transactions over
// AtomicObjectHosts: it allocates transaction ids, tracks which hosts each
// transaction touched, drives nested-transaction merge on child commit and
// two-phase commit for top-level transactions, and aborts everywhere on a
// wait-die conflict. All operations are asynchronous with callbacks —
// everything is messages underneath (§2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "obs/obs.h"
#include "rt/managed_object.h"
#include "txn/transaction.h"

namespace caa::txn {

class TxnClient : public rt::ManagedObject {
 public:
  using DoneCb = std::function<void(Status)>;
  using ValueCb = std::function<void(Result<std::int64_t>)>;

  /// Starts a transaction; `parent` makes it a nested transaction of an
  /// active one coordinated by this client.
  TxnId begin(TxnId parent = TxnId::invalid());

  [[nodiscard]] bool active(TxnId txn) const;

  /// Asynchronous operations against an object hosted by `host`.
  void read(TxnId txn, ObjectId host, std::string object, ValueCb cb);
  void write(TxnId txn, ObjectId host, std::string object, std::int64_t value,
             DoneCb cb);
  void add(TxnId txn, ObjectId host, std::string object, std::int64_t delta,
           ValueCb cb);
  void create(TxnId txn, ObjectId host, std::string object,
              std::int64_t initial, DoneCb cb);

  /// Commits: a nested transaction merges into its parent; a top-level one
  /// runs two-phase commit over every touched host.
  void commit(TxnId txn, DoneCb cb);

  /// Aborts the transaction at every touched host.
  void abort(TxnId txn, DoneCb cb);

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

  [[nodiscard]] std::int64_t commits() const { return commits_; }
  [[nodiscard]] std::int64_t aborts() const { return aborts_; }

  /// Transactions begun but not yet committed/aborted (records are erased
  /// on every terminal outcome). Non-zero at quiescence means a dangling
  /// transaction — a fault-engine oracle invariant.
  [[nodiscard]] std::size_t active_txns() const { return txns_.size(); }

 private:
  enum class TxnState : std::uint8_t { kActive, kCommitting, kAborting };

  struct TxnRecord {
    TxnId parent;
    TxnId top;
    TxnState state = TxnState::kActive;
    std::set<ObjectId> hosts;  // touched atomic-object hosts
    // 2PC / fan-out bookkeeping.
    std::size_t awaiting = 0;
    bool all_yes = true;
    DoneCb finish;
    // Structured-trace span covering begin()..terminal outcome (async: a
    // client can coordinate overlapping transactions on one track).
    obs::SpanId span = obs::SpanId::invalid();
    sim::Time began = 0;
  };

  struct PendingOp {
    TxnId txn;
    ValueCb value_cb;  // or
    DoneCb done_cb;
  };

  void send_op(TxnId txn, ObjectId host, TxnOp op, std::string object,
               std::int64_t value, PendingOp pending);
  void fan_out_abort(TxnId txn, DoneCb cb);
  void finish_op(const TxnOpReply& reply);
  TxnRecord& record(TxnId txn);
  [[nodiscard]] obs::Observability* observing() const;
  /// Ends the transaction's span with its outcome and records commit/abort
  /// latency. Must run before the record is erased.
  void note_txn_finished(TxnRecord& rec, const char* outcome);

  std::map<TxnId, TxnRecord> txns_;
  std::map<std::uint64_t, PendingOp> pending_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t next_request_ = 1;
  std::int64_t commits_ = 0;
  std::int64_t aborts_ = 0;
};

}  // namespace caa::txn
