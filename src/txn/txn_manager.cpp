#include "txn/txn_manager.h"

#include "rt/runtime.h"
#include "util/check.h"

namespace caa::txn {
namespace {
const caa::CounterId kClientUnhandledKind =
    caa::CounterId::of("txn.client_unhandled_kind");
}  // namespace


TxnId TxnClient::begin(TxnId parent) {
  const std::uint32_t seq = next_seq_++;
  const TxnId txn = make_txn_id(id(), seq);
  TxnRecord rec;
  rec.parent = parent;
  if (parent.valid()) {
    CAA_CHECK_MSG(active(parent), "begin(): parent not active here");
    rec.top = record(parent).top;
  } else {
    rec.top = txn;
  }
  if (obs::Observability* o = observing()) {
    rec.began = now();
    rec.span = o->tracer().begin_async(
        id().value(), "txn",
        (parent.valid() ? "nested txn " : "txn ") + std::to_string(seq));
  }
  txns_.emplace(txn, std::move(rec));
  return txn;
}

obs::Observability* TxnClient::observing() const {
  if (!attached()) return nullptr;
  obs::Observability& o = runtime().simulator().obs();
  return o.enabled() ? &o : nullptr;
}

void TxnClient::note_txn_finished(TxnRecord& rec, const char* outcome) {
  if (!rec.span.valid()) return;
  obs::Observability& o = runtime().simulator().obs();
  o.tracer().end_args(rec.span, outcome);
  if (o.enabled()) {
    o.metrics().record(o.metrics().histogram("txn.latency"),
                       now() - rec.began);
  }
  rec.span = obs::SpanId::invalid();
}

bool TxnClient::active(TxnId txn) const {
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.state == TxnState::kActive;
}

TxnClient::TxnRecord& TxnClient::record(TxnId txn) {
  auto it = txns_.find(txn);
  CAA_CHECK_MSG(it != txns_.end(), "unknown transaction");
  return it->second;
}

void TxnClient::send_op(TxnId txn, ObjectId host, TxnOp op,
                        std::string object, std::int64_t value,
                        PendingOp pending) {
  TxnRecord& rec = record(txn);
  CAA_CHECK_MSG(rec.state == TxnState::kActive, "operation on finished txn");
  rec.hosts.insert(host);
  const std::uint64_t request_id = next_request_++;
  pending_.emplace(request_id, std::move(pending));
  TxnOpRequest request;
  request.request_id = request_id;
  request.txn = txn;
  request.top = rec.top;
  request.op = op;
  request.object = std::move(object);
  request.value = value;
  send(host, net::MsgKind::kTxnOpRequest, encode(request));
}

void TxnClient::read(TxnId txn, ObjectId host, std::string object,
                     ValueCb cb) {
  PendingOp p;
  p.txn = txn;
  p.value_cb = std::move(cb);
  send_op(txn, host, TxnOp::kRead, std::move(object), 0, std::move(p));
}

void TxnClient::write(TxnId txn, ObjectId host, std::string object,
                      std::int64_t value, DoneCb cb) {
  PendingOp p;
  p.txn = txn;
  p.done_cb = std::move(cb);
  send_op(txn, host, TxnOp::kWrite, std::move(object), value, std::move(p));
}

void TxnClient::add(TxnId txn, ObjectId host, std::string object,
                    std::int64_t delta, ValueCb cb) {
  PendingOp p;
  p.txn = txn;
  p.value_cb = std::move(cb);
  send_op(txn, host, TxnOp::kAdd, std::move(object), delta, std::move(p));
}

void TxnClient::create(TxnId txn, ObjectId host, std::string object,
                       std::int64_t initial, DoneCb cb) {
  PendingOp p;
  p.txn = txn;
  p.done_cb = std::move(cb);
  send_op(txn, host, TxnOp::kCreate, std::move(object), initial,
          std::move(p));
}

void TxnClient::commit(TxnId txn, DoneCb cb) {
  TxnRecord& rec = record(txn);
  CAA_CHECK_MSG(rec.state == TxnState::kActive, "commit on finished txn");
  rec.state = TxnState::kCommitting;
  rec.finish = std::move(cb);

  if (rec.parent.valid()) {
    // Nested commit: merge into the parent at every touched host.
    TxnRecord& parent = record(rec.parent);
    rec.awaiting = rec.hosts.size();
    if (rec.awaiting == 0) {
      note_txn_finished(rec, "committed");
      auto finish = std::move(rec.finish);
      txns_.erase(txn);
      ++commits_;
      if (finish) finish(Status::ok());
      return;
    }
    for (ObjectId host : rec.hosts) {
      parent.hosts.insert(host);
      const std::uint64_t request_id = next_request_++;
      PendingOp p;
      p.txn = txn;
      p.done_cb = [this, txn](Status status) {
        TxnRecord& r = record(txn);
        CAA_CHECK(r.awaiting > 0);
        r.all_yes = r.all_yes && status.is_ok();
        if (--r.awaiting > 0) return;
        note_txn_finished(r, r.all_yes ? "committed" : "aborted");
        auto finish = std::move(r.finish);
        const bool ok = r.all_yes;
        txns_.erase(txn);
        if (ok) ++commits_; else ++aborts_;
        if (finish) {
          finish(ok ? Status::ok() : Status::aborted("child merge failed"));
        }
      };
      pending_.emplace(request_id, std::move(p));
      TxnOpRequest request;
      request.request_id = request_id;
      request.txn = txn;
      request.top = rec.top;
      request.parent = rec.parent;
      request.op = TxnOp::kCommitChild;
      send(host, net::MsgKind::kTxnOpRequest, encode(request));
    }
    return;
  }

  // Top-level: two-phase commit.
  rec.awaiting = rec.hosts.size();
  rec.all_yes = true;
  if (rec.awaiting == 0) {
    note_txn_finished(rec, "committed");
    auto finish = std::move(rec.finish);
    txns_.erase(txn);
    ++commits_;
    if (finish) finish(Status::ok());
    return;
  }
  for (ObjectId host : rec.hosts) {
    send(host, net::MsgKind::kTxnPrepare, encode(TxnPrepare{txn}));
  }
}

void TxnClient::abort(TxnId txn, DoneCb cb) {
  TxnRecord& rec = record(txn);
  if (rec.state != TxnState::kActive) {
    if (cb) cb(Status::failed_precondition("txn already finishing"));
    return;
  }
  rec.state = TxnState::kAborting;
  fan_out_abort(txn, std::move(cb));
}

void TxnClient::fan_out_abort(TxnId txn, DoneCb cb) {
  TxnRecord& rec = record(txn);
  rec.finish = std::move(cb);
  rec.awaiting = rec.hosts.size();
  if (rec.awaiting == 0) {
    note_txn_finished(rec, "aborted");
    auto finish = std::move(rec.finish);
    txns_.erase(txn);
    ++aborts_;
    if (finish) finish(Status::ok());
    return;
  }
  for (ObjectId host : rec.hosts) {
    const std::uint64_t request_id = next_request_++;
    PendingOp p;
    p.txn = txn;
    p.done_cb = [this, txn](Status) {
      TxnRecord& r = record(txn);
      CAA_CHECK(r.awaiting > 0);
      if (--r.awaiting > 0) return;
      note_txn_finished(r, "aborted");
      auto finish = std::move(r.finish);
      txns_.erase(txn);
      ++aborts_;
      if (finish) finish(Status::ok());
    };
    pending_.emplace(request_id, std::move(p));
    TxnOpRequest request;
    request.request_id = request_id;
    request.txn = txn;
    request.top = rec.top;
    request.op = TxnOp::kAbort;
    send(host, net::MsgKind::kTxnOpRequest, encode(request));
  }
}

void TxnClient::finish_op(const TxnOpReply& reply) {
  auto it = pending_.find(reply.request_id);
  if (it == pending_.end()) return;  // late reply for an aborted txn
  PendingOp pending = std::move(it->second);
  pending_.erase(it);

  Status status = Status::ok();
  switch (reply.status) {
    case TxnReplyStatus::kOk:
      break;
    case TxnReplyStatus::kConflict:
      status = Status::conflict("wait-die victim");
      break;
    case TxnReplyStatus::kNotFound:
      status = Status::not_found("no such atomic object");
      break;
    case TxnReplyStatus::kExists:
      status = Status::already_exists("atomic object exists");
      break;
  }
  if (pending.value_cb) {
    if (status.is_ok()) {
      pending.value_cb(reply.value);
    } else {
      pending.value_cb(status);
    }
  } else if (pending.done_cb) {
    pending.done_cb(status);
  }
}

void TxnClient::on_message(ObjectId from, net::MsgKind kind,
                           const net::Bytes& payload) {
  (void)from;
  switch (kind) {
    case net::MsgKind::kTxnOpReply: {
      auto m = decode_op_reply(payload);
      if (!m.is_ok()) return;
      finish_op(m.value());
      return;
    }
    case net::MsgKind::kTxnVote: {
      auto m = decode_vote(payload);
      if (!m.is_ok()) return;
      auto it = txns_.find(m.value().txn);
      if (it == txns_.end()) return;
      TxnRecord& rec = it->second;
      CAA_CHECK(rec.state == TxnState::kCommitting);
      rec.all_yes = rec.all_yes && m.value().yes;
      CAA_CHECK(rec.awaiting > 0);
      if (--rec.awaiting > 0) return;
      // Phase 2: decide.
      rec.awaiting = rec.hosts.size();
      for (ObjectId host : rec.hosts) {
        send(host, net::MsgKind::kTxnDecision,
             encode(TxnDecision{m.value().txn, rec.all_yes}));
      }
      return;
    }
    case net::MsgKind::kTxnDecisionAck: {
      auto m = decode_decision_ack(payload);
      if (!m.is_ok()) return;
      auto it = txns_.find(m.value().txn);
      if (it == txns_.end()) return;
      TxnRecord& rec = it->second;
      CAA_CHECK(rec.awaiting > 0);
      if (--rec.awaiting > 0) return;
      note_txn_finished(rec, rec.all_yes ? "committed" : "aborted");
      auto finish = std::move(rec.finish);
      const bool committed = rec.all_yes;
      txns_.erase(it);
      if (committed) ++commits_; else ++aborts_;
      if (finish) {
        finish(committed ? Status::ok()
                         : Status::aborted("2PC voted no"));
      }
      return;
    }
    default:
      runtime().simulator().counters().add(kClientUnhandledKind);
      return;
  }
}

}  // namespace caa::txn
