#include "sim/simulator.h"

#include "util/check.h"

namespace caa::sim {

Simulator::Simulator() {
  logger_.set_time_source([this] { return now_; });
  obs_.bind_clock(&now_);
}

EventId Simulator::schedule_after(Time delay, EventFn fn) {
  CAA_CHECK_MSG(delay >= 0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  CAA_CHECK_MSG(at >= now_, "scheduling into the past");
  return queue_.schedule(at, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  CAA_CHECK(fired.time >= now_);
  now_ = fired.time;
  fired.fn();
  return true;
}

std::size_t Simulator::run_to_quiescence(std::size_t max_events) {
  std::size_t fired = 0;
  while (step()) {
    ++fired;
    CAA_CHECK_MSG(fired < max_events,
                  "simulation did not quiesce (livelock?)");
  }
  return fired;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace caa::sim
