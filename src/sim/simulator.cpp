#include "sim/simulator.h"

#include "util/check.h"

namespace caa::sim {

Simulator::Simulator() {
  logger_.set_time_source([this] { return now_; });
  obs_.bind_clock(&now_);
}

EventId Simulator::schedule_after(Time delay, EventFn fn) {
  CAA_CHECK_MSG(delay >= 0, "negative delay");
  // New events inherit the flight-recorder record active right now, so the
  // causal chain survives zero-delay continuations and timers.
  return queue_.schedule(now_ + delay, std::move(fn),
                         obs_.recorder().current_cause());
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  CAA_CHECK_MSG(at >= now_, "scheduling into the past");
  return queue_.schedule(at, std::move(fn), obs_.recorder().current_cause());
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  CAA_CHECK(fired.time >= now_);
  now_ = fired.time;
  // Telemetry hooks ride the step loop — never scheduled events — so arming
  // them cannot change event counts or behaviour checksums. Both are one
  // time compare when disarmed. Sampling happens BEFORE the event executes:
  // an event at exactly a window boundary counts into the new window.
  obs::TimeSeries& ts = obs_.timeseries();
  if (ts.armed()) {
    obs_.health().set(obs::Gauge::kSimQueueDepth,
                      static_cast<std::int64_t>(queue_.size()));
    ts.maybe_roll(now_);
  }
  obs_.watchdog().maybe_poll(now_);
  obs::FlightRecorder& recorder = obs_.recorder();
  recorder.set_current_cause(fired.cause);
  fired.fn();
  recorder.set_current_cause(0);
  return true;
}

std::size_t Simulator::step_block() {
  if (queue_.empty()) return 0;
  const Time at = queue_.next_time();
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= at) {
    step();
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_to_quiescence(std::size_t max_events) {
  std::size_t fired = 0;
  while (step()) {
    ++fired;
    CAA_CHECK_MSG(fired < max_events,
                  "simulation did not quiesce (livelock?)");
  }
  return fired;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace caa::sim
