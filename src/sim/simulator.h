// The discrete-event simulator driving the whole system.
//
// Substitution note (DESIGN.md §2): the paper assumes a real network of
// workstations; every claim it makes is about message counts, orderings and
// protocol states. A deterministic simulator preserves those properties while
// making them observable and reproducible.
#pragma once

#include <cstdint>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "util/counters.h"
#include "util/log.h"

namespace caa::sim {

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` after `delay` ticks (>= 0).
  EventId schedule_after(Time delay, EventFn fn);

  /// Schedules `fn` at absolute virtual time `at` (>= now()).
  EventId schedule_at(Time at, EventFn fn);

  /// Cancels a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Fires the next event. Returns false when no events remain.
  bool step();

  /// Virtual time of the next pending event. Only valid when !idle().
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

  /// Fires the next event plus every event scheduled for the same virtual
  /// time — including ones the fired handlers schedule *at* that time
  /// (zero-delay continuations). Returns events fired (0 when idle).
  ///
  /// This is the explorer's pluggable choice point in the step loop: one
  /// step_block() is one atomic "timer cohort" transition, so same-time
  /// input timers can never be interleaved with other transitions, and
  /// next_event_time() strictly exceeds now() afterwards — the invariant
  /// the DPOR driver's enabled-set computation relies on.
  std::size_t step_block();

  /// Runs until the queue is empty (quiescence). Returns events fired.
  /// `max_events` bounds runaway protocols; hitting the bound is a CHECK
  /// failure since it means a livelock in a supposedly quiescent system.
  std::size_t run_to_quiescence(std::size_t max_events = 50'000'000);

  /// Runs events with time <= deadline; clock ends at deadline (or later if
  /// already past). Returns events fired.
  std::size_t run_until(Time deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// The observability hub (structured tracer + metrics facade), bound to
  /// this simulator's virtual clock. All accounting lives here.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  /// Global counters (message accounting, protocol stats). Shorthand for
  /// obs().metrics().counters().
  Counters& counters() { return obs_.metrics().counters(); }
  const Counters& counters() const { return obs_.metrics().counters(); }

  /// Logger wired to the virtual clock.
  Logger& logger() { return logger_; }

 private:
  Time now_ = 0;
  EventQueue queue_;
  obs::Observability obs_;
  Logger logger_;
};

}  // namespace caa::sim
