#include "sim/event_queue.h"

#include "util/check.h"

namespace caa::sim {

EventId EventQueue::schedule(Time at, EventFn fn) {
  const std::uint64_t seq = next_seq_++;
  const EventId id(seq);
  heap_.push(Entry{at, seq, id});
  functions_.emplace(seq, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = functions_.find(id.value());
  if (it == functions_.end()) return false;
  functions_.erase(it);
  cancelled_.insert(id.value());
  CAA_CHECK(live_count_ > 0);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_front() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled_front();
  CAA_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  CAA_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = functions_.find(top.seq);
  CAA_CHECK(it != functions_.end());
  Fired fired{top.time, top.id, std::move(it->second)};
  functions_.erase(it);
  CAA_CHECK(live_count_ > 0);
  --live_count_;
  return fired;
}

}  // namespace caa::sim
