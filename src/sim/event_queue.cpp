#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace caa::sim {
namespace {

// EventId layout: generation in the high 32 bits, slot index in the low 32.
// The all-ones pattern is StrongId's invalid value; generations wrap below
// 2^32-1 so a live id can never collide with it.
constexpr std::uint64_t encode(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<std::uint64_t>(generation) << 32) | slot;
}
constexpr std::uint32_t slot_of(std::uint64_t id) {
  return static_cast<std::uint32_t>(id);
}
constexpr std::uint32_t generation_of(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNone;
    return index;
  }
  CAA_CHECK_MSG(slots_.size() < kNone, "event arena exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = EventFn();  // drop the capture eagerly
  slot.heap_pos = kNone;
  // 2^32-2 cap keeps encode() clear of StrongId's invalid all-ones value.
  slot.generation = slot.generation >= kNone - 1 ? 0 : slot.generation + 1;
  slot.next_free = free_head_;
  free_head_ = index;
}

// 4-ary heap: pops dominate the workload, and a wider node halves the tree
// depth sift_down() walks while keeping all four children adjacent in
// memory — markedly fewer cache misses than a binary heap once hundreds of
// thousands of deliveries are pending.
namespace {
constexpr std::uint32_t kArity = 4;
}  // namespace

void EventQueue::sift_up(std::uint32_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, moving);
}

void EventQueue::sift_down(std::uint32_t pos) {
  // Bottom-up variant: walk the hole down along best children without
  // comparing against `moving` at each level, then bubble `moving` back up.
  // remove_at() mostly sifts the former tail entry, which nearly always
  // belongs near the leaves, so the upward pass is O(1) expected and each
  // level costs kArity-1 comparisons instead of kArity. Any arrangement a
  // valid sift produces yields the same pop order — (time, seq) is a strict
  // total order — so this changes cost only, not behaviour.
  const HeapEntry moving = heap_[pos];
  const auto size = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    const std::uint32_t first = kArity * pos + 1;
    if (first >= size) break;
    std::uint32_t best = first;
    const std::uint32_t last = std::min(first + kArity, size);
    for (std::uint32_t child = first + 1; child < last; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    place(pos, heap_[best]);
    pos = best;
  }
  // `moving` now belongs somewhere on the chain of ancestors of the leaf
  // hole; sift_up restores the heap property along exactly that chain.
  place(pos, moving);
  sift_up(pos);
}

EventQueue::HeapEntry EventQueue::remove_at(std::uint32_t pos) {
  const HeapEntry removed = heap_[pos];
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (removed.slot != last.slot) {
    // Fill the hole with the former tail; it may need to move either way.
    place(pos, last);
    if (pos > 0 && before(last, heap_[(pos - 1) / kArity])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }
  return removed;
}

void EventQueue::renumber_seqs() {
  std::vector<std::uint32_t> order(heap_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return before(heap_[a], heap_[b]);
            });
  std::uint32_t next = 0;
  for (const std::uint32_t pos : order) heap_[pos].seq = next++;
  next_seq_ = next;
}

EventId EventQueue::schedule(Time at, EventFn fn, std::uint64_t cause) {
  if (next_seq_ == kNone) renumber_seqs();  // pending count < 2^32 - 1
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.cause = cause;
  heap_.push_back(HeapEntry{at, next_seq_++, index});
  slot.heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(slot.heap_pos);
  return EventId(encode(slot.generation, index));
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t index = slot_of(id.value());
  if (!id.valid() || index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.heap_pos == kNone || slot.generation != generation_of(id.value())) {
    return false;  // already fired, cancelled, or a recycled slot
  }
  remove_at(slot.heap_pos);
  release_slot(index);
  return true;
}

Time EventQueue::next_time() const {
  CAA_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  CAA_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const HeapEntry entry = remove_at(0);
  Slot& slot = slots_[entry.slot];
  Fired fired{entry.time, EventId(encode(slot.generation, entry.slot)),
              std::move(slot.fn), slot.cause};
  release_slot(entry.slot);
  return fired;
}

}  // namespace caa::sim
