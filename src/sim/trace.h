// Structured event tracing.
//
// A TraceLog records protocol-level events (message sent/delivered, state
// transitions, handlers invoked) as ordered records. Integration tests
// assert on traces — e.g. that the message narrative of the paper's
// §4.3 examples is reproduced verbatim — and benches derive timing series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace caa::sim {

struct TraceRecord {
  Time time = 0;
  std::string category;  // e.g. "resolve", "caa", "txn"
  std::string event;     // e.g. "send Exception", "state X->R"
  std::string subject;   // e.g. "O2"
  std::string detail;    // free-form

  [[nodiscard]] std::string to_string() const;
};

class TraceLog {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Time time, std::string category, std::string event,
              std::string subject, std::string detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

  /// All records in a category, in order.
  [[nodiscard]] std::vector<TraceRecord> filter(
      std::string_view category) const;

  /// Count of records whose event matches exactly.
  [[nodiscard]] std::size_t count_event(std::string_view event) const;

  [[nodiscard]] std::string to_string() const;

  /// 64-bit FNV-1a digest over all records. Tests pin golden fingerprints
  /// of the paper's §4.3 example traces so optimization PRs can prove the
  /// protocol narrative is byte-identical.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace caa::sim
