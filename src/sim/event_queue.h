// Priority queue of timestamped events with stable tie-breaking and O(log n)
// in-place cancellation.
//
// Determinism contract: two events scheduled for the same virtual time fire
// in scheduling order (sequence numbers break ties). This is what makes every
// protocol trace in tests and benches exactly reproducible.
//
// Layout: events live in a free-listed slot arena; the heap is a flat vector
// of (time, seq, slot) entries ordered by (time, seq) — 4-ary, so a sift
// touches half the levels a binary heap would. Compared to the former
// std::priority_queue + unordered_map<id, fn> + tombstone-set design this
// removes the two hash-map touches per event, keeps the callable payload
// inline (EventFn's small-buffer storage), and cancels by sifting the heap
// entry out immediately instead of accumulating tombstones. Sift comparisons
// read keys straight out of the contiguous heap array — no indirection into
// the arena — which matters once the pending set outgrows L1. next_time() is
// genuinely const — there is no lazy state to launder.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "util/ids.h"

namespace caa::sim {

/// Virtual time in integral ticks. The library treats one tick as one
/// microsecond by convention; nothing depends on the unit.
using Time = std::int64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns an id usable with
  /// cancel(). `cause` is opaque to the queue: the simulator stores the
  /// flight-recorder record active at scheduling time and gets it back from
  /// pop(), which is what keeps causal chains connected across scheduled
  /// continuations (obs/flight_recorder.h).
  EventId schedule(Time at, EventFn fn, std::uint64_t cause = 0);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled. The heap entry is removed immediately (O(log n) sift), so
  /// cancelled events occupy no memory and never slow later pops.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops the earliest live event. Only valid when !empty().
  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
    std::uint64_t cause = 0;  // as passed to schedule()
  };
  Fired pop();

  /// Number of arena slots ever allocated (live + free-listed). Bounded by
  /// the high-water mark of concurrently pending events; tests assert it
  /// stays flat under schedule/pop churn (no slot leaks).
  [[nodiscard]] std::size_t arena_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Slot {
    std::uint32_t generation = 0; // bumped on free; validates stale EventIds
    std::uint32_t heap_pos = kNone;  // position in heap_ while live
    std::uint32_t next_free = kNone; // free-list link while free
    std::uint64_t cause = 0;         // caller-opaque causal tag
    EventFn fn;
  };

  // 16 bytes, so the four children of a 4-ary node span one cache line.
  // seq is 32-bit: schedule() renumbers the live entries (preserving their
  // relative order) in the astronomically rare case the counter would wrap.
  struct HeapEntry {
    Time time;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void place(std::uint32_t heap_pos, const HeapEntry& entry) {
    heap_[heap_pos] = entry;
    slots_[entry.slot].heap_pos = heap_pos;
  }

  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);

  /// Reassigns dense sequence numbers to the pending entries in their
  /// current (time, seq) order. Called when next_seq_ is about to wrap;
  /// heap order is untouched because relative entry order is preserved.
  void renumber_seqs();

  /// Detaches heap_[pos], restores the heap property, and returns the
  /// detached entry.
  HeapEntry remove_at(std::uint32_t pos);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;  // min-heap by (time, seq)
  std::uint32_t free_head_ = kNone;
  std::uint32_t next_seq_ = 0;
};

}  // namespace caa::sim
