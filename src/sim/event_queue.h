// Priority queue of timestamped events with stable tie-breaking and O(log n)
// cancellation.
//
// Determinism contract: two events scheduled for the same virtual time fire
// in scheduling order (sequence numbers break ties). This is what makes every
// protocol trace in tests and benches exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/ids.h"

namespace caa::sim {

/// Virtual time in integral ticks. The library treats one tick as one
/// microsecond by convention; nothing depends on the unit.
using Time = std::int64_t;

/// The closure type fired when an event comes due.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns an id usable with cancel().
  EventId schedule(Time at, EventFn fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled. Cancellation is lazy: the heap entry is skipped on pop.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops the earliest live event. Only valid when !empty().
  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
    // Heap of smallest time first; among equal times, smallest seq first.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_front() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<std::uint64_t, EventFn> functions_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace caa::sim
