#include "sim/trace.h"

#include "util/hash.h"

namespace caa::sim {

std::string TraceRecord::to_string() const {
  std::string out = "@" + std::to_string(time) + " [" + category + "] " +
                    subject + ": " + event;
  if (!detail.empty()) {
    out += " (" + detail + ")";
  }
  return out;
}

void TraceLog::record(Time time, std::string category, std::string event,
                      std::string subject, std::string detail) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{time, std::move(category), std::move(event),
                                 std::move(subject), std::move(detail)});
}

std::vector<TraceRecord> TraceLog::filter(std::string_view category) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

std::size_t TraceLog::count_event(std::string_view event) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

std::uint64_t TraceLog::fingerprint() const {
  std::uint64_t h = kFnv1a64Offset;
  for (const auto& r : records_) {
    h = fnv1a64(r.to_string(), h);
    h = fnv1a64("\n", h);
  }
  return h;
}

std::string TraceLog::to_string() const {
  std::string out;
  for (const auto& r : records_) {
    out += r.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace caa::sim
