// A small-buffer-optimized, move-only callable for simulator events.
//
// The event loop fires tens of millions of closures per sweep; with
// std::function every schedule() paid a heap allocation for any capture
// beyond two words. EventFn stores captures up to kInlineSize bytes inline
// (sized so a packet-delivery lambda — Network* + Packet — fits) and only
// falls back to the heap for larger captures. Move-only: events fire once,
// so copyability buys nothing and would forbid move-only captures.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace caa::sim {

class EventFn {
 public:
  /// Inline capture budget. A delivery lambda captures a Network* plus a
  /// Packet (two addresses, kind, a vector payload, a transport seq and the
  /// flight-recorder cause id) — 80 bytes covers it with room for one extra
  /// word. The net-alloc test pins that this lambda stays inline.
  static constexpr std::size_t kInlineSize = 80;

  EventFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor) — drop-in for
                     // std::function at every schedule() call site.
    using Callable = std::remove_cvref_t<F>;
    if constexpr (sizeof(Callable) <= kInlineSize &&
                  alignof(Callable) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Callable>) {
      ::new (static_cast<void*>(storage_)) Callable(std::forward<F>(fn));
      ops_ = &inline_ops<Callable>;
    } else {
      ::new (static_cast<void*>(storage_))
          Callable*(new Callable(std::forward<F>(fn)));
      ops_ = &heap_ops<Callable>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    CAA_CHECK_MSG(ops_ != nullptr, "firing an empty EventFn");
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the capture lives in the inline buffer (no allocation).
  /// Exposed so tests can pin down the no-allocation guarantee.
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into dst's raw storage and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename Callable>
  static constexpr Ops inline_ops = {
      [](void* storage) { (*std::launder(static_cast<Callable*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        auto* from = std::launder(static_cast<Callable*>(src));
        ::new (dst) Callable(std::move(*from));
        from->~Callable();
      },
      [](void* storage) noexcept {
        std::launder(static_cast<Callable*>(storage))->~Callable();
      },
      /*inline_storage=*/true,
  };

  template <typename Callable>
  static constexpr Ops heap_ops = {
      [](void* storage) {
        (**std::launder(static_cast<Callable**>(storage)))();
      },
      // The stored pointer is trivially destructible; relocation copies it
      // and destruction only frees the pointee.
      [](void* dst, void* src) noexcept {
        ::new (dst) Callable*(*std::launder(static_cast<Callable**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(static_cast<Callable**>(storage));
      },
      /*inline_storage=*/false,
  };

  void move_from(EventFn&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace caa::sim
