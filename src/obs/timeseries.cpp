#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/json_parse.h"

namespace caa::obs {

const std::vector<std::string>& default_tracked_counters() {
  static const std::vector<std::string> kDefaults = {
      "net.sent.Exception",     "net.sent.ACK",
      "net.sent.Commit",        "net.sent.HaveNested",
      "net.sent.NestedCompleted", "net.sent.Relay",
      "net.sent.FastCover",     "net.sent.ActionDone",
      "net.sent.ActionLeave",   "overlay.heals",
      "resolve.fallbacks",
  };
  return kDefaults;
}

const std::vector<std::string>& default_tracked_histograms() {
  static const std::vector<std::string> kDefaults = {"resolve.latency"};
  return kDefaults;
}

// ---------------------------------------------------------------------------
// TimeSeries (the sampler)

void TimeSeries::arm(const TimeSeriesConfig& config) {
#ifdef CAA_OBS_DISABLED
  (void)config;
#else
  CAA_CHECK_MSG(metrics_ != nullptr && health_ != nullptr,
                "TimeSeries::arm before bind");
  CAA_CHECK_MSG(config.window > 0, "telemetry window must be positive");
  CAA_CHECK_MSG(config.capacity > 0, "telemetry capacity must be positive");
  window_ = config.window;
  capacity_ = config.capacity;
  next_due_ = window_;
  dropped_ = 0;
  ring_.clear();

  counter_names_ =
      config.counters.empty() ? default_tracked_counters() : config.counters;
  counter_ids_.clear();
  for (const std::string& name : counter_names_) {
    counter_ids_.push_back(CounterId::of(name));
  }
  counter_last_.assign(counter_ids_.size(), 0);
  for (std::size_t i = 0; i < counter_ids_.size(); ++i) {
    counter_last_[i] = metrics_->counters().get(counter_ids_[i]);
  }

  histogram_names_ = config.histograms.empty() ? default_tracked_histograms()
                                               : config.histograms;
  histogram_ids_.clear();
  for (const std::string& name : histogram_names_) {
    histogram_ids_.push_back(metrics_->histogram(name));
  }
  hist_count_last_.assign(histogram_ids_.size(), 0);
  hist_sum_last_.assign(histogram_ids_.size(), 0);
  for (std::size_t i = 0; i < histogram_ids_.size(); ++i) {
    const Histogram& h = metrics_->histogram_data(histogram_ids_[i]);
    hist_count_last_[i] = h.count();
    hist_sum_last_[i] = h.sum();
  }
  health_->reset_peaks();
#endif
}

TimeSeriesWindow TimeSeries::snap_window(std::uint64_t index) const {
  TimeSeriesWindow win;
  win.index = index;
  win.counters.resize(counter_ids_.size());
  for (std::size_t i = 0; i < counter_ids_.size(); ++i) {
    win.counters[i] = metrics_->counters().get(counter_ids_[i]) -
                      counter_last_[i];
  }
  win.gauges.resize(HealthGauges::kGauges);
  win.gauge_peaks.resize(HealthGauges::kGauges);
  for (int g = 0; g < HealthGauges::kGauges; ++g) {
    win.gauges[g] = health_->value(static_cast<Gauge>(g));
    win.gauge_peaks[g] = health_->peak(static_cast<Gauge>(g));
  }
  win.hist_counts.resize(histogram_ids_.size());
  win.hist_sums.resize(histogram_ids_.size());
  for (std::size_t i = 0; i < histogram_ids_.size(); ++i) {
    const Histogram& h = metrics_->histogram_data(histogram_ids_[i]);
    win.hist_counts[i] = h.count() - hist_count_last_[i];
    win.hist_sums[i] = h.sum() - hist_sum_last_[i];
  }
  return win;
}

void TimeSeries::close_window(std::uint64_t index) {
  TimeSeriesWindow win = snap_window(index);
  // Advance the delta baselines to the values just snapshotted.
  for (std::size_t i = 0; i < counter_ids_.size(); ++i) {
    counter_last_[i] += win.counters[i];
  }
  for (std::size_t i = 0; i < histogram_ids_.size(); ++i) {
    hist_count_last_[i] += win.hist_counts[i];
    hist_sum_last_[i] += win.hist_sums[i];
  }
  health_->reset_peaks();
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(win));
}

void TimeSeries::roll(sim::Time now) {
  while (next_due_ <= now) {
    close_window(static_cast<std::uint64_t>(next_due_ / window_) - 1);
    next_due_ += window_;
  }
}

TimeSeriesTable TimeSeries::table() const {
  TimeSeriesTable out;
  if (!armed()) return out;
  out.window = window_;
  out.dropped = dropped_;
  out.counter_names = counter_names_;
  out.gauge_names.reserve(HealthGauges::kGauges);
  for (int g = 0; g < HealthGauges::kGauges; ++g) {
    out.gauge_names.emplace_back(gauge_name(static_cast<Gauge>(g)));
  }
  out.histogram_names = histogram_names_;
  out.windows.assign(ring_.begin(), ring_.end());
  // The open partial window: everything since the last closed boundary.
  // Deterministic — it depends only on the virtual clock, never wall time.
  out.windows.push_back(
      snap_window(static_cast<std::uint64_t>(next_due_ / window_) - 1));
  return out;
}

// ---------------------------------------------------------------------------
// TimeSeriesTable

void TimeSeriesTable::merge(const TimeSeriesTable& other) {
  if (other.window == 0) return;
  if (window == 0) {
    *this = other;
    return;
  }
  CAA_CHECK_MSG(window == other.window &&
                    counter_names == other.counter_names &&
                    gauge_names == other.gauge_names &&
                    histogram_names == other.histogram_names,
                "merging time-series tables with different schemas");
  dropped += other.dropped;
  std::vector<TimeSeriesWindow> merged;
  merged.reserve(std::max(windows.size(), other.windows.size()));
  std::size_t a = 0;
  std::size_t b = 0;
  const auto add_into = [](TimeSeriesWindow& into,
                           const TimeSeriesWindow& from) {
    for (std::size_t i = 0; i < into.counters.size(); ++i) {
      into.counters[i] += from.counters[i];
    }
    for (std::size_t i = 0; i < into.gauges.size(); ++i) {
      into.gauges[i] += from.gauges[i];
      into.gauge_peaks[i] += from.gauge_peaks[i];
    }
    for (std::size_t i = 0; i < into.hist_counts.size(); ++i) {
      into.hist_counts[i] += from.hist_counts[i];
      into.hist_sums[i] += from.hist_sums[i];
    }
  };
  while (a < windows.size() || b < other.windows.size()) {
    if (b >= other.windows.size() ||
        (a < windows.size() && windows[a].index < other.windows[b].index)) {
      merged.push_back(std::move(windows[a++]));
    } else if (a >= windows.size() ||
               other.windows[b].index < windows[a].index) {
      merged.push_back(other.windows[b++]);
    } else {
      TimeSeriesWindow row = std::move(windows[a++]);
      add_into(row, other.windows[b++]);
      merged.push_back(std::move(row));
    }
  }
  windows = std::move(merged);
}

std::int64_t TimeSeriesTable::peak_of(std::string_view name) const {
  for (std::size_t g = 0; g < gauge_names.size(); ++g) {
    if (gauge_names[g] != name) continue;
    std::int64_t best = 0;
    for (const TimeSeriesWindow& win : windows) {
      best = std::max(best, win.gauge_peaks[g]);
    }
    return best;
  }
  return 0;
}

namespace {

void append_names(std::ostringstream& out, std::string_view label,
                  const std::vector<std::string>& names) {
  out << label << ":";
  for (const std::string& name : names) out << " " << name;
  out << "\n";
}

}  // namespace

std::string TimeSeriesTable::to_string() const {
  std::ostringstream out;
  out << "timeseries window=" << window << " windows=" << windows.size()
      << " dropped=" << dropped << "\n";
  if (window == 0) return out.str();
  append_names(out, "counters", counter_names);
  append_names(out, "gauges", gauge_names);
  append_names(out, "histograms", histogram_names);
  for (const TimeSeriesWindow& win : windows) {
    out << "win " << win.index << " [" << win.index * window << ","
        << (win.index + 1) * window << "):";
    bool any = false;
    for (std::size_t i = 0; i < counter_names.size(); ++i) {
      if (win.counters[i] == 0) continue;
      out << " " << counter_names[i] << "=" << win.counters[i];
      any = true;
    }
    out << " |";
    for (std::size_t g = 0; g < gauge_names.size(); ++g) {
      if (win.gauges[g] == 0 && win.gauge_peaks[g] == 0) continue;
      out << " " << gauge_names[g] << "=" << win.gauges[g] << "^"
          << win.gauge_peaks[g];
      any = true;
    }
    for (std::size_t i = 0; i < histogram_names.size(); ++i) {
      if (win.hist_counts[i] == 0) continue;
      out << " | " << histogram_names[i] << "+" << win.hist_counts[i] << "/"
          << win.hist_sums[i];
      any = true;
    }
    if (!any) out << " idle";
    out << "\n";
  }
  return out.str();
}

std::string TimeSeriesTable::timeline() const {
  std::ostringstream out;
  out << "timeline window=" << window << " windows=" << windows.size()
      << " dropped=" << dropped << "\n";
  if (window == 0 || windows.empty()) return out.str();

  // One sparkline column per series with any signal: counters by delta,
  // gauges by in-window peak.
  struct Column {
    char tag;
    std::string name;
    bool is_gauge;
    std::size_t slot;
    std::int64_t max = 0;
  };
  std::vector<Column> columns;
  char next_tag = 'a';
  const auto tag_for = [&next_tag]() {
    const char tag = next_tag;
    next_tag = next_tag == 'z' ? 'A' : static_cast<char>(next_tag + 1);
    return tag;
  };
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    std::int64_t max = 0;
    for (const TimeSeriesWindow& win : windows) {
      max = std::max(max, win.counters[i]);
    }
    if (max > 0) columns.push_back({tag_for(), counter_names[i], false, i, max});
  }
  for (std::size_t g = 0; g < gauge_names.size(); ++g) {
    std::int64_t max = 0;
    for (const TimeSeriesWindow& win : windows) {
      max = std::max(max, win.gauge_peaks[g]);
    }
    if (max > 0) columns.push_back({tag_for(), gauge_names[g], true, g, max});
  }
  for (const Column& col : columns) {
    out << "  " << col.tag << " " << col.name << " (max " << col.max
        << (col.is_gauge ? ", peak)" : ")") << "\n";
  }
  out << "  window     t ";
  for (const Column& col : columns) out << col.tag;
  out << "\n";
  static constexpr char kRamp[] = " .:-=+*#%@";
  for (const TimeSeriesWindow& win : windows) {
    char line[32];
    std::snprintf(line, sizeof(line), "  %6llu %5lld ",
                  static_cast<unsigned long long>(win.index),
                  static_cast<long long>(win.index * window));
    out << line;
    for (const Column& col : columns) {
      const std::int64_t v =
          col.is_gauge ? win.gauge_peaks[col.slot] : win.counters[col.slot];
      int level = 0;
      if (v > 0) level = 1 + static_cast<int>((v * 8) / col.max);
      out << kRamp[std::min(level, 9)];
    }
    out << "\n";
  }
  return out.str();
}

namespace {

void append_json_strings(std::string& out, const std::vector<std::string>& v) {
  out += "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + v[i] + "\"";  // names are identifier-like; no escaping
  }
  out += "]";
}

void append_json_ints(std::string& out, const std::vector<std::int64_t>& v) {
  out += "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v[i]);
  }
  out += "]";
}

Status json_ints(const util::JsonValue* value, std::size_t expected,
                 std::vector<std::int64_t>* out) {
  if (value == nullptr || !value->is_array() ||
      value->elements.size() != expected) {
    return Status::invalid_argument("timeseries: bad window row");
  }
  out->clear();
  out->reserve(expected);
  for (const util::JsonValue& element : value->elements) {
    if (!element.is_number()) {
      return Status::invalid_argument("timeseries: non-numeric cell");
    }
    out->push_back(element.as_int());
  }
  return Status::ok();
}

Status json_names(const util::JsonValue* value,
                  std::vector<std::string>* out) {
  if (value == nullptr || !value->is_array()) {
    return Status::invalid_argument("timeseries: missing name list");
  }
  out->clear();
  for (const util::JsonValue& element : value->elements) {
    if (!element.is_string()) {
      return Status::invalid_argument("timeseries: non-string name");
    }
    out->push_back(element.string);
  }
  return Status::ok();
}

}  // namespace

std::string TimeSeriesTable::to_json() const {
  std::string out;
  out += "{\n  \"format\": \"caa-timeseries\",\n  \"version\": 1,\n";
  out += "  \"window\": " + std::to_string(window) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped) + ",\n";
  out += "  \"counters\": ";
  append_json_strings(out, counter_names);
  out += ",\n  \"gauges\": ";
  append_json_strings(out, gauge_names);
  out += ",\n  \"histograms\": ";
  append_json_strings(out, histogram_names);
  out += ",\n  \"windows\": [";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const TimeSeriesWindow& win = windows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"index\": " + std::to_string(win.index) + ", \"counters\": ";
    append_json_ints(out, win.counters);
    out += ", \"gauges\": ";
    append_json_ints(out, win.gauges);
    out += ", \"peaks\": ";
    append_json_ints(out, win.gauge_peaks);
    out += ", \"hist_counts\": ";
    append_json_ints(out, win.hist_counts);
    out += ", \"hist_sums\": ";
    append_json_ints(out, win.hist_sums);
    out += "}";
  }
  out += windows.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Result<TimeSeriesTable> TimeSeriesTable::from_json(std::string_view text) {
  auto parsed = util::parse_json(text);
  if (!parsed.is_ok()) return parsed.status();
  const util::JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::invalid_argument("timeseries: not an object");
  }
  const util::JsonValue* format = root.find("format");
  if (format == nullptr || !format->is_string() ||
      format->string != "caa-timeseries") {
    return Status::invalid_argument("timeseries: not a caa-timeseries file");
  }
  TimeSeriesTable table;
  const util::JsonValue* window = root.find("window");
  if (window == nullptr || !window->is_number()) {
    return Status::invalid_argument("timeseries: missing window");
  }
  table.window = window->as_int();
  if (const util::JsonValue* dropped = root.find("dropped");
      dropped != nullptr && dropped->is_number()) {
    table.dropped = static_cast<std::uint64_t>(dropped->as_int());
  }
  if (Status s = json_names(root.find("counters"), &table.counter_names);
      !s.is_ok()) {
    return s;
  }
  if (Status s = json_names(root.find("gauges"), &table.gauge_names);
      !s.is_ok()) {
    return s;
  }
  if (Status s = json_names(root.find("histograms"), &table.histogram_names);
      !s.is_ok()) {
    return s;
  }
  const util::JsonValue* windows = root.find("windows");
  if (windows == nullptr || !windows->is_array()) {
    return Status::invalid_argument("timeseries: missing windows");
  }
  for (const util::JsonValue& row : windows->elements) {
    if (!row.is_object()) {
      return Status::invalid_argument("timeseries: bad window row");
    }
    TimeSeriesWindow win;
    const util::JsonValue* index = row.find("index");
    if (index == nullptr || !index->is_number()) {
      return Status::invalid_argument("timeseries: window without index");
    }
    win.index = static_cast<std::uint64_t>(index->as_int());
    if (Status s = json_ints(row.find("counters"),
                             table.counter_names.size(), &win.counters);
        !s.is_ok()) {
      return s;
    }
    if (Status s = json_ints(row.find("gauges"), table.gauge_names.size(),
                             &win.gauges);
        !s.is_ok()) {
      return s;
    }
    if (Status s = json_ints(row.find("peaks"), table.gauge_names.size(),
                             &win.gauge_peaks);
        !s.is_ok()) {
      return s;
    }
    if (Status s = json_ints(row.find("hist_counts"),
                             table.histogram_names.size(), &win.hist_counts);
        !s.is_ok()) {
      return s;
    }
    if (Status s = json_ints(row.find("hist_sums"),
                             table.histogram_names.size(), &win.hist_sums);
        !s.is_ok()) {
      return s;
    }
    table.windows.push_back(std::move(win));
  }
  return table;
}

}  // namespace caa::obs
