#include "obs/tracer.h"

namespace caa::obs {

void Tracer::set_track_name(TrackId track, std::string name) {
  track_names_.emplace(track, std::move(name));
}

SpanId Tracer::begin_impl(TrackId track, bool async, std::string_view category,
                          std::string name, std::string args) {
  if (!enabled_) return SpanId::invalid();
  Span span;
  span.begin = now();
  span.track = track;
  span.async = async;
  span.category = std::string(category);
  span.name = std::move(name);
  span.args = std::move(args);
  last_time_ = std::max(last_time_, span.begin);
  spans_.push_back(std::move(span));
  return SpanId(static_cast<SpanId::rep_type>(spans_.size() - 1));
}

SpanId Tracer::begin(TrackId track, std::string_view category,
                     std::string name, std::string args) {
  return begin_impl(track, /*async=*/false, category, std::move(name),
                    std::move(args));
}

SpanId Tracer::begin_async(TrackId track, std::string_view category,
                           std::string name, std::string args) {
  return begin_impl(track, /*async=*/true, category, std::move(name),
                    std::move(args));
}

void Tracer::end(SpanId id) {
  if (!id.valid() || id.value() >= spans_.size()) return;
  Span& span = spans_[id.value()];
  if (span.end >= 0) return;  // already closed (e.g. superseded barrier)
  span.end = now();
  last_time_ = std::max(last_time_, span.end);
}

void Tracer::end_args(SpanId id, std::string args) {
  if (!id.valid() || id.value() >= spans_.size()) return;
  Span& span = spans_[id.value()];
  if (span.end >= 0) return;
  span.args = std::move(args);
  span.end = now();
  last_time_ = std::max(last_time_, span.end);
}

void Tracer::instant(TrackId track, std::string_view category,
                     std::string name, std::string args) {
  if (!enabled_) return;
  Instant i;
  i.at = now();
  i.track = track;
  i.category = std::string(category);
  i.name = std::move(name);
  i.args = std::move(args);
  last_time_ = std::max(last_time_, i.at);
  instants_.push_back(std::move(i));
}

void Tracer::clear() {
  spans_.clear();
  instants_.clear();
  last_time_ = clock_ ? *clock_ : 0;
}

}  // namespace caa::obs
