#include "obs/watchdog.h"

#include <algorithm>
#include <sstream>

#include "obs/causal.h"

namespace caa::obs {

std::string WatchdogReport::to_string() const {
  std::ostringstream out;
  out << "obs.watchdog: stalled scope "
      << (scope_name.empty() ? std::to_string(scope) : scope_name)
      << " (id " << scope << ")\n";
  out << "  detected at t=" << detected_at << ", no progress since t="
      << last_progress
      << (at_quiescence ? " (run quiesced with the scope open)" : "") << "\n";
  out << "  phase: " << (phase.empty() ? "unknown" : phase) << "\n";
  out << "  awaiting:";
  if (awaited.empty()) {
    out << " nothing recorded";
  } else {
    for (std::size_t i = 0; i < awaited.size(); ++i) {
      out << (i == 0 ? " " : ", ") << awaited[i];
    }
  }
  out << "\n";
  if (!detail.empty()) out << "  detail: " << detail << "\n";
  if (!tail.empty()) {
    out << "  cause tail:\n";
    for (const std::string& line : tail) out << "    " << line << "\n";
  }
  return out.str();
}

void Watchdog::arm(sim::Time deadline, Describer describer) {
#ifdef CAA_OBS_DISABLED
  (void)deadline;
  (void)describer;
#else
  deadline_ = deadline;
  describer_ = std::move(describer);
  scopes_.clear();
  reported_.clear();
  reports_.clear();
  next_check_ = std::numeric_limits<sim::Time>::max();
#endif
}

void Watchdog::poll(sim::Time now) {
  sim::Time next = std::numeric_limits<sim::Time>::max();
  for (const auto& [scope, entry] : scopes_) {
    const bool seen = std::find(reported_.begin(), reported_.end(), scope) !=
                      reported_.end();
    if (seen) continue;
    if (now - entry.last >= deadline_) {
      reported_.push_back(scope);
      diagnose(scope, entry.last, now, /*at_quiescence=*/false);
    } else {
      next = std::min(next, entry.last + deadline_);
    }
  }
  next_check_ = next;
}

void Watchdog::finish(sim::Time now) {
  if (!armed()) return;
  for (const auto& [scope, entry] : scopes_) {
    const bool seen = std::find(reported_.begin(), reported_.end(), scope) !=
                      reported_.end();
    if (seen) continue;
    reported_.push_back(scope);
    diagnose(scope, entry.last, now, /*at_quiescence=*/true);
  }
  next_check_ = std::numeric_limits<sim::Time>::max();
}

void Watchdog::diagnose(std::uint64_t scope, sim::Time last_progress,
                        sim::Time now, bool at_quiescence) {
  WatchdogReport report;
  report.scope = scope;
  report.detected_at = now;
  report.last_progress = last_progress;
  report.at_quiescence = at_quiescence;
  if (describer_) describer_(scope, report);
  if (recorder_ != nullptr && recorder_->enabled()) {
    const std::vector<FlightRecord> records = recorder_->snapshot();
    // Newest protocol record of this scope anchors the causal tail.
    std::uint64_t anchor = 0;
    for (const FlightRecord& rec : records) {
      if (rec.scope == scope) anchor = rec.id;
    }
    if (anchor != 0) {
      const std::vector<FlightRecord> chain = chain_to(records, anchor);
      constexpr std::size_t kTail = 6;
      const std::size_t begin =
          chain.size() > kTail ? chain.size() - kTail : 0;
      if (begin > 0) report.tail.push_back("... (" + std::to_string(begin) +
                                           " earlier records)");
      for (std::size_t i = begin; i < chain.size(); ++i) {
        report.tail.push_back(format_record(chain[i]));
      }
    }
  }
  if (hook_) hook_(report);
  reports_.push_back(std::move(report));
}

std::string Watchdog::report_text() const {
  std::string out;
  for (const WatchdogReport& report : reports_) out += report.to_string();
  return out;
}

}  // namespace caa::obs
