// Per-subsystem health gauges: the *current* shape of a running world.
//
// Counters are monotone totals; what a stalled run hides is level state —
// how deep the event queue is, how many packets are in flight, how many
// resolution rounds are open, how big the overlay outboxes are. Each
// subsystem pushes its level into one fixed, dense gauge slot as it changes
// (a store or two per update; no allocation, no strings), and the
// TimeSeries sampler (obs/timeseries.h) snapshots values + in-window peaks
// at every window boundary.
//
// Cost contract: gauges never feed counters or behaviour checksums — they
// are pure observers of state the subsystem already holds. Under
// -DCAA_OBS_DISABLED every mutator compiles to nothing (the zero-drift
// test pins that checksums are unchanged either way).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace caa::obs {

/// The fixed gauge registry. One slot per subsystem level worth watching;
/// names double as the column headers of time-series tables.
enum class Gauge : std::uint8_t {
  kSimQueueDepth = 0,     // pending simulator events
  kNetInFlight,           // packets sent but not yet delivered/dropped
  kResolveActiveRounds,   // engines away from Normal (resolution running)
  kResolveOutstandingAcks,// ACKs awaited across all engines
  kResolveMaxRound,       // high-water resolution round (never decreases)
  kResolveCensusOpen,     // avoidance censuses / suppressed raises in flight
  kOverlayOutboxBacklog,  // queued items across per-neighbor relay outboxes
  kExitBarrierOpen,       // scopes currently inside a BarrierExit exit phase
  kExitPaxosOpen,         // scopes currently inside a PaxosCommitExit phase
  kCaaOpenScopes,         // entered, not-yet-left contexts across objects
  kCaaNestingDepth,       // context-stack depth of the last (re)entered
                          // object; the in-window peak is the figure
  kCount,
};

[[nodiscard]] std::string_view gauge_name(Gauge gauge);

/// Dense value + in-window peak storage for every Gauge. One per
/// Observability hub (one per world).
class HealthGauges {
 public:
  static constexpr int kGauges = static_cast<int>(Gauge::kCount);

  void set([[maybe_unused]] Gauge gauge, [[maybe_unused]] std::int64_t value) {
#ifndef CAA_OBS_DISABLED
    auto& slot = values_[index(gauge)];
    slot = value;
    auto& peak = peaks_[index(gauge)];
    if (value > peak) peak = value;
#endif
  }

  void add([[maybe_unused]] Gauge gauge, [[maybe_unused]] std::int64_t delta) {
#ifndef CAA_OBS_DISABLED
    set(gauge, values_[index(gauge)] + delta);
#endif
  }

  /// High-water update: the slot only ever rises (kResolveMaxRound).
  void set_max([[maybe_unused]] Gauge gauge,
               [[maybe_unused]] std::int64_t value) {
#ifndef CAA_OBS_DISABLED
    if (value > values_[index(gauge)]) set(gauge, value);
#endif
  }

  [[nodiscard]] std::int64_t value(Gauge gauge) const {
#ifdef CAA_OBS_DISABLED
    (void)gauge;
    return 0;
#else
    return values_[index(gauge)];
#endif
  }

  /// Max the gauge reached since the last reset_peaks() (>= value()).
  [[nodiscard]] std::int64_t peak(Gauge gauge) const {
#ifdef CAA_OBS_DISABLED
    (void)gauge;
    return 0;
#else
    return peaks_[index(gauge)];
#endif
  }

  /// Starts a new peak window: every peak collapses to the current value.
  void reset_peaks() {
#ifndef CAA_OBS_DISABLED
    peaks_ = values_;
#endif
  }

 private:
  static constexpr std::size_t index(Gauge gauge) {
    return static_cast<std::size_t>(gauge);
  }

#ifndef CAA_OBS_DISABLED
  std::array<std::int64_t, kGauges> values_{};
  std::array<std::int64_t, kGauges> peaks_{};
#endif
};

}  // namespace caa::obs
