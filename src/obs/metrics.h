// The metrics facade: one typed surface over all protocol accounting.
//
// Subsumes the former ad-hoc accessors (World::messages_of, World::counters,
// string-keyed Counters lookups) behind one object:
//
//   * kind-indexed message tallies     — sent/delivered/dropped(MsgKind),
//     resolution_messages() (the §4.4 quantity), total_sent()
//   * typed counter handles            — value(CounterId); the interned-id
//     hot path of util/counters.h stays the write side
//   * debug string lookup              — value("name") for tests and cold
//     paths; the ONLY remaining string-keyed read (writes are id-only now)
//   * histograms                       — intern once, record dense
//   * per-action / per-round views     — protocol messages tabulated by
//     (action instance, round, kind) when observability is enabled; this is
//     what reproduces the paper's §4.4 per-scenario tables per run
//   * snapshot / diff                  — stable name→value maps for run
//     fingerprints, A/B comparisons and the bench JSON records
//
// Ownership: obs::Observability (one per Simulator, hence one per World)
// owns the Metrics, which owns the Counters store every module writes to.
// Counter writes are unconditional (they define the behaviour checksum);
// the per-round tables and histogram recording are guarded by
// Observability::enabled() at the call sites, so a disabled run's counters
// are bit-identical to an enabled run's.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/message.h"
#include "util/counters.h"
#include "util/ids.h"

namespace caa::obs {

/// Dense per-Metrics histogram handle (unlike CounterId, histogram names are
/// not a process-wide registry: histograms are heavier and per-World).
using HistogramId = StrongId<struct ObsHistogramTag>;

/// Value-semantic copy of one histogram's state. The campaign runner merges
/// per-world snapshots bucket-wise — addition is commutative and
/// associative, so merged percentile rows are bit-identical for any thread
/// count (merge happens in index order regardless of scheduling).
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // meaningful only when count > 0
  std::int64_t max = 0;
  std::array<std::int64_t, kBuckets> buckets{};

  void merge(const HistogramSnapshot& other);
  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }
  /// Same bucket-bound percentile as Histogram::quantile_bound.
  [[nodiscard]] std::int64_t quantile_bound(double q) const;
};

/// Power-of-two-bucketed value distribution (latencies, sizes). Fixed
/// storage, no allocation after interning; record() is a few integer ops.
class Histogram {
 public:
  void record(std::int64_t value);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// Smallest recorded-bucket upper bound covering >= q of the samples
  /// (q in [0,1]); a coarse percentile adequate for run reports.
  [[nodiscard]] std::int64_t quantile_bound(double q) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t buckets_[kBuckets] = {};
};

/// Per-round tally of the five §4.2 protocol messages, as *sent* (matching
/// the paper's counting; retransmissions of the reliable transport are
/// transport-internal and excluded by construction).
struct RoundCounts {
  std::int64_t exception = 0;
  std::int64_t have_nested = 0;
  std::int64_t nested_completed = 0;
  std::int64_t ack = 0;
  std::int64_t commit = 0;

  [[nodiscard]] std::int64_t total() const {
    return exception + have_nested + nested_completed + ack + commit;
  }
};

/// A stable name→value picture of every non-zero counter, for fingerprints
/// and A/B diffs.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t, std::less<>> counters;
  /// Non-empty histograms at snapshot time. Merged bucket-wise; excluded
  /// from to_string() so behaviour fingerprints stay counter-only.
  std::map<std::string, HistogramSnapshot, std::less<>> histograms;

  /// Per-key `this - earlier` (keys missing on either side count as 0;
  /// zero-valued differences are omitted). Counters only.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

  /// Key-wise sum of `other` into this snapshot — the campaign runner's
  /// aggregation step. Commutative, so merging per-world snapshots in index
  /// order yields the same result for any thread count.
  void merge(const MetricsSnapshot& other);

  /// Sorted "name=value" lines over the counters (checksum input; the
  /// histograms deliberately do not participate).
  [[nodiscard]] std::string to_string() const;
};

class Metrics {
 public:
  // ---- Message tallies (kind-indexed; replaces World::messages_of) ----

  [[nodiscard]] std::int64_t sent(net::MsgKind kind) const {
    return counters_.get(net::kind_counters(kind).sent);
  }
  [[nodiscard]] std::int64_t delivered(net::MsgKind kind) const {
    return counters_.get(net::kind_counters(kind).delivered);
  }
  [[nodiscard]] std::int64_t dropped(net::MsgKind kind) const {
    return counters_.get(net::kind_counters(kind).dropped);
  }

  /// Total resolution-protocol messages sent: Exception + HaveNested +
  /// NestedCompleted + ACK + Commit — exactly the §4.4 quantity.
  [[nodiscard]] std::int64_t resolution_messages() const;

  /// Packets of every kind sent since construction.
  [[nodiscard]] std::int64_t total_sent() const {
    return counters_.sum_prefix("net.sent.");
  }

  // ---- Counters ------------------------------------------------------

  /// The underlying store. Hot paths keep writing through interned
  /// CounterId handles: `metrics.counters().add(kMyCounter)`.
  [[nodiscard]] Counters& counters() { return counters_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

  [[nodiscard]] std::int64_t value(CounterId id) const {
    return counters_.get(id);
  }
  /// Debug/cold-path lookup by name (tests, examples). Interns the name;
  /// never use on a per-message path.
  [[nodiscard]] std::int64_t value(std::string_view name) const {
    return counters_.get(CounterId::of(name));
  }

  // ---- Histograms ----------------------------------------------------

  /// Interns a histogram name to a dense handle. Idempotent; cold path.
  HistogramId histogram(std::string_view name);

  void record(HistogramId id, std::int64_t value) {
    histograms_[id.value()].record(value);
  }
  [[nodiscard]] const Histogram& histogram_data(HistogramId id) const {
    return histograms_[id.value()];
  }
  [[nodiscard]] const std::map<std::string, HistogramId, std::less<>>&
  histogram_names() const {
    return histogram_ids_;
  }

  // ---- Per-action / per-round protocol views -------------------------
  // Populated by the resolution layer only while observability is enabled
  // (World::metrics() of a default world reports no rounds).

  /// Records `n` protocol messages of `kind` sent in `round` of `scope`.
  void note_protocol_send(ActionInstanceId scope, std::uint32_t round,
                          net::MsgKind kind, std::int64_t n);

  /// Rounds observed for one action instance (nullptr when none recorded).
  [[nodiscard]] const std::vector<RoundCounts>* rounds_of(
      ActionInstanceId scope) const;

  /// Action instances with recorded rounds, in id order.
  [[nodiscard]] std::vector<ActionInstanceId> observed_actions() const;

  // ---- Snapshot / diff -----------------------------------------------

  /// Counters plus every non-empty histogram.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  Counters counters_;
  std::vector<Histogram> histograms_;
  std::map<std::string, HistogramId, std::less<>> histogram_ids_;
  std::map<ActionInstanceId, std::vector<RoundCounts>> per_action_;
};

}  // namespace caa::obs
