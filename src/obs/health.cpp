#include "obs/health.h"

namespace caa::obs {

std::string_view gauge_name(Gauge gauge) {
  switch (gauge) {
    case Gauge::kSimQueueDepth: return "sim.queue_depth";
    case Gauge::kNetInFlight: return "net.in_flight";
    case Gauge::kResolveActiveRounds: return "resolve.active_rounds";
    case Gauge::kResolveOutstandingAcks: return "resolve.outstanding_acks";
    case Gauge::kResolveMaxRound: return "resolve.max_round";
    case Gauge::kResolveCensusOpen: return "resolve.census_open";
    case Gauge::kOverlayOutboxBacklog: return "overlay.outbox_backlog";
    case Gauge::kExitBarrierOpen: return "exit.barrier_open";
    case Gauge::kExitPaxosOpen: return "exit.paxos_open";
    case Gauge::kCaaOpenScopes: return "caa.open_scopes";
    case Gauge::kCaaNestingDepth: return "caa.nesting_depth";
    case Gauge::kCount: break;
  }
  return "unknown";
}

}  // namespace caa::obs
