// Chrome trace-event JSON export of a Tracer log.
//
// The output loads directly in chrome://tracing and Perfetto: one process
// (pid 1), one "thread" per track (participant object), named via "M"
// thread_name metadata records. Sync spans become "X" complete events with
// virtual-microsecond ts/dur; async spans (transactions) become "b"/"e"
// pairs keyed by span index; instants become "i" events.
//
// The export is deterministic: records are emitted in creation order (begin
// times are monotone under the simulator's clock), no wall-clock times or
// pointers appear, and spans still open at export time are clamped to the
// last virtual time the tracer saw — so the same seed yields a byte-stable
// file (the golden-trace test pins this).
#pragma once

#include <string>

#include "obs/tracer.h"

namespace caa::obs {

/// Renders the tracer's records as a Chrome trace-event JSON document.
[[nodiscard]] std::string chrome_trace_json(const Tracer& tracer);

/// Writes chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace caa::obs
