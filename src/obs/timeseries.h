// Virtual-time telemetry: windowed deltas of counters/histograms plus
// health-gauge levels, sampled on the simulator clock.
//
// End-of-run aggregates cannot distinguish a run that cruised from one that
// stalled for 80% of its virtual time. The TimeSeries sampler closes that
// gap: every `window` virtual ticks it snapshots the *delta* of a tracked
// counter set, the count/sum deltas of tracked histograms, and the current
// value + in-window peak of every health gauge (obs/health.h) into a
// compact ring of window rows.
//
// Determinism contract (the campaign runner depends on it):
//   * sampling is driven from Simulator::step, never from scheduled events
//     — arming telemetry adds ZERO events, so behaviour checksums (counters
//     + events + final time) are bit-identical with telemetry on or off;
//   * windows are aligned to absolute virtual time (window k covers
//     [k*W, (k+1)*W)), so tables from different worlds merge window-by-
//     window, and merging is element-wise addition — commutative and
//     associative, hence bit-identical for any campaign thread count.
//
// The rendered table (to_string), the JSON export (to_json / from_json)
// and the sparkline timeline (timeline) feed tools/caa-report.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "util/status.h"

namespace caa::obs {

struct TimeSeriesConfig {
  /// Virtual ticks per window; 0 leaves the sampler disarmed.
  sim::Time window = 0;
  /// Retained window rows; older rows fall off the ring (counted).
  std::size_t capacity = 4096;
  /// Tracked counter names. Empty = default_tracked_counters().
  std::vector<std::string> counters;
  /// Tracked histogram names. Empty = default_tracked_histograms().
  std::vector<std::string> histograms;
};

/// The standard watch list: the five §4.2 protocol kinds as sent, the
/// overlay envelope kind, the avoidance census kind, the exit handshake,
/// plus heal and fallback totals.
[[nodiscard]] const std::vector<std::string>& default_tracked_counters();
/// {"resolve.latency"} — the raise→handler distribution of PR 4.
[[nodiscard]] const std::vector<std::string>& default_tracked_histograms();

/// One closed window. All vectors are indexed by the table's name lists.
struct TimeSeriesWindow {
  std::uint64_t index = 0;  // window start = index * window
  std::vector<std::int64_t> counters;     // deltas within the window
  std::vector<std::int64_t> gauges;       // value at window close
  std::vector<std::int64_t> gauge_peaks;  // max within the window
  std::vector<std::int64_t> hist_counts;  // sample-count deltas
  std::vector<std::int64_t> hist_sums;    // sample-sum deltas
};

/// Value-semantic run timeline: schema (name lists) + window rows. This is
/// what worlds report, campaigns merge, and caa-report renders.
struct TimeSeriesTable {
  sim::Time window = 0;  // 0 = no telemetry was armed
  std::uint64_t dropped = 0;  // window rows lost to ring capacity
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::vector<TimeSeriesWindow> windows;  // ascending index

  [[nodiscard]] bool empty() const { return windows.empty(); }

  /// Window-aligned element-wise sum (the campaign merge). Merging into an
  /// empty table adopts `other`; merging tables with different schemas is a
  /// contract violation (campaigns are homogeneous).
  void merge(const TimeSeriesTable& other);

  /// Aligned per-window table, one row per window — byte-stable (the
  /// thread-invariance test and the caa-report golden compare bytes).
  [[nodiscard]] std::string to_string() const;

  /// Sparkline timeline: per-window rows, one scaled bar column per tracked
  /// counter and gauge (ASCII ramp, byte-stable).
  [[nodiscard]] std::string timeline() const;

  /// JSON export ("caa-timeseries" format, version 1).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Result<TimeSeriesTable> from_json(
      std::string_view text);

  /// Peak of gauge `name` across all windows (0 when absent) — the bench
  /// per-window-peak rows.
  [[nodiscard]] std::int64_t peak_of(std::string_view name) const;
};

class TimeSeries {
 public:
  /// Points the sampler at the hub's metrics + gauges (Observability wires
  /// this once at construction).
  void bind(Metrics* metrics, HealthGauges* health) {
    metrics_ = metrics;
    health_ = health;
  }

  /// Arms sampling. Interns the tracked names; resets any prior state.
  /// Under -DCAA_OBS_DISABLED the sampler stays disarmed (gauges are
  /// compiled out, so rows would be hollow anyway).
  void arm(const TimeSeriesConfig& config);

  [[nodiscard]] bool armed() const {
#ifdef CAA_OBS_DISABLED
    return false;
#else
    return window_ > 0;
#endif
  }

  /// Hot-path hook, called by Simulator::step after advancing the clock and
  /// BEFORE executing the event — an event at exactly a window boundary
  /// counts into the new window. One compare when disarmed or not yet due.
  void maybe_roll(sim::Time now) {
    if (now >= next_due_) roll(now);
  }

  /// The run's timeline so far: every closed window plus, when any activity
  /// happened after the last boundary, the open partial window. Const —
  /// callable repeatedly, mid-run or after.
  [[nodiscard]] TimeSeriesTable table() const;

 private:
  void roll(sim::Time now);
  /// Closes the window ending at `boundary` into the ring.
  void close_window(std::uint64_t index);
  [[nodiscard]] TimeSeriesWindow snap_window(std::uint64_t index) const;

  Metrics* metrics_ = nullptr;  // non-const: arm() interns histogram ids
  HealthGauges* health_ = nullptr;

  sim::Time window_ = 0;
  std::size_t capacity_ = 0;
  /// Next window boundary; INT64_MAX keeps maybe_roll to one compare while
  /// disarmed.
  sim::Time next_due_ = std::numeric_limits<sim::Time>::max();
  std::uint64_t dropped_ = 0;

  std::vector<std::string> counter_names_;
  std::vector<CounterId> counter_ids_;
  std::vector<std::int64_t> counter_last_;
  std::vector<std::string> histogram_names_;
  std::vector<HistogramId> histogram_ids_;
  std::vector<std::int64_t> hist_count_last_;
  std::vector<std::int64_t> hist_sum_last_;

  std::deque<TimeSeriesWindow> ring_;
};

}  // namespace caa::obs
