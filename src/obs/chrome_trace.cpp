#include "obs/chrome_trace.h"

#include <cstdio>
#include <sstream>

namespace caa::obs {
namespace {

void append_escaped(std::ostringstream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void field(std::ostringstream& out, const char* key, std::string_view value) {
  out << "\"" << key << "\":\"";
  append_escaped(out, value);
  out << "\"";
}

void maybe_args(std::ostringstream& out, std::string_view args) {
  if (args.empty()) return;
  out << ",\"args\":{";
  field(out, "detail", args);
  out << "}";
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (const auto& [track, name] : tracer.track_names()) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track
        << ",\"name\":\"thread_name\",\"args\":{";
    field(out, "name", name);
    out << "}}";
  }

  const sim::Time horizon = tracer.last_time();
  std::size_t index = 0;
  for (const auto& span : tracer.spans()) {
    const sim::Time end = span.end >= 0 ? span.end : horizon;
    sep();
    if (span.async) {
      // b/e pair: async spans need not nest within the track's sync stack.
      out << "{\"ph\":\"b\",\"pid\":1,\"tid\":" << span.track
          << ",\"id\":" << index << ",\"ts\":" << span.begin << ",";
      field(out, "cat", span.category);
      out << ",";
      field(out, "name", span.name);
      maybe_args(out, span.args);
      out << "},\n{\"ph\":\"e\",\"pid\":1,\"tid\":" << span.track
          << ",\"id\":" << index << ",\"ts\":" << end << ",";
      field(out, "cat", span.category);
      out << ",";
      field(out, "name", span.name);
      out << "}";
    } else {
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << span.track
          << ",\"ts\":" << span.begin << ",\"dur\":" << end - span.begin
          << ",";
      field(out, "cat", span.category);
      out << ",";
      field(out, "name", span.name);
      maybe_args(out, span.args);
      out << "}";
    }
    ++index;
  }

  for (const auto& instant : tracer.instants()) {
    sep();
    out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << instant.track
        << ",\"ts\":" << instant.at << ",\"s\":\"t\",";
    field(out, "cat", instant.category);
    out << ",";
    field(out, "name", instant.name);
    maybe_args(out, instant.args);
    out << "}";
  }

  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json(tracer);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace caa::obs
