// Always-on causal flight recorder: the post-mortem black box of one world.
//
// Where the Tracer records spans for humans watching a healthy run, the
// FlightRecorder records a fixed-size ring of binary records — sends,
// deliveries, drops, raises, state transitions, aborts, resolutions — so a
// world that dies (job exception, CAA_CHECK trip) leaves behind the last N
// things that happened, dumpable to a compact binary file and decodable by
// tools/caa-inspect.
//
// Causality: every record carries the id of the record that *caused* it.
// A send's cause is whatever record was active when the send happened
// (usually the delivery that triggered it); a delivery's cause is the send.
// The simulator threads the active cause through its event queue, so chains
// stay connected across scheduled continuations (timer-driven handler
// bodies, abort steps, zero-delay dispatches). Walking parents backwards
// from a kResolved record therefore reconstructs exactly the §4.4 message
// chain that determined when that resolution completed — see obs/causal.h.
//
// Cost contract: recording is allocation-free after the ring is built (one
// vector reservation on the first record), each record is a few stores, and
// nothing here touches counters — behaviour checksums are byte-identical
// with the recorder on or off. -DCAA_OBS_DISABLED turns enabled() into
// constexpr false and the optimizer deletes every site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "sim/event_queue.h"
#include "util/status.h"

namespace caa::obs {

/// What one flight record describes.
enum class RecType : std::uint8_t {
  kSend = 1,      // packet entered the network   actor=src node, peer=dst
  kDeliver = 2,   // packet handed to an endpoint actor=dst node, peer=src
  kDrop = 3,      // packet lost (crash/partition/loss) actor=owning node
  kRaise = 4,     // local exception raise        actor=object, code=exception
  kState = 5,     // resolver state transition    actor=object, code=State
  kAbort = 6,     // nested action aborted        actor=object, code=signal
  kResolved = 7,  // commit processed, handler starting; code=exception
};

[[nodiscard]] std::string_view rec_type_name(RecType type);

/// One entry of the ring. Fixed-size POD; never owns memory.
struct FlightRecord {
  /// "No action scope": transport records are not tied to one action.
  static constexpr std::uint64_t kNoScope = ~0ULL;

  std::uint64_t id = 0;      // monotonic from 1; 0 is "no record"
  std::uint64_t cause = 0;   // id of the causing record; 0 = spontaneous
  std::uint64_t scope = kNoScope;  // ActionInstanceId value for protocol recs
  sim::Time time = 0;        // virtual clock at recording
  std::uint32_t actor = 0;   // node id (wire records) / object id (protocol)
  std::uint32_t peer = 0;    // the other endpoint for wire records
  std::uint32_t code = 0;    // MsgKind / exception id / resolver state
  std::uint32_t round = 0;   // resolution round for protocol records
  RecType type = RecType::kSend;
};

/// A decoded recorder dump (file or in-memory bytes).
struct FlightDump {
  std::uint64_t seed = 0;
  std::uint64_t world_index = 0;
  std::uint64_t recorded_total = 0;  // records ever pushed (incl. overwritten)
  std::uint64_t overwritten = 0;     // records lost to ring wraparound
  std::vector<FlightRecord> records;  // oldest -> newest
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  [[nodiscard]] bool enabled() const {
#ifdef CAA_OBS_DISABLED
    return false;
#else
    return enabled_;
#endif
  }
  void set_enabled([[maybe_unused]] bool on) {
#ifndef CAA_OBS_DISABLED
    enabled_ = on;
#endif
  }

  /// Resizes the ring (clearing it). Cold path; call before the run.
  void set_capacity(std::size_t records);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Points the recorder at the simulator's virtual-clock storage.
  void bind_clock(const sim::Time* now) { clock_ = now; }

  // ---- Cause context --------------------------------------------------
  // The id of the record "currently executing": the simulator sets it to
  // the fired event's captured cause around each callback, and the network
  // overrides it with the delivery record around each handler call. New
  // records and newly scheduled events inherit it.

  [[nodiscard]] std::uint64_t current_cause() const { return current_cause_; }
  void set_current_cause([[maybe_unused]] std::uint64_t cause) {
#ifndef CAA_OBS_DISABLED
    current_cause_ = cause;
#endif
  }

  // ---- Recording (allocation-free; no-ops when disabled) --------------

  /// Returns the new record's id (0 when disabled) so the caller can stamp
  /// it into the in-flight packet as the delivery's cause.
  std::uint64_t record_send(std::uint16_t kind, std::uint32_t src_node,
                            std::uint32_t dst_node) {
    if (!enabled()) return 0;
    return push(RecType::kSend, current_cause_, FlightRecord::kNoScope,
                src_node, dst_node, kind, 0);
  }
  /// `cause` is the send record's id carried by the packet.
  std::uint64_t record_delivery(std::uint16_t kind, std::uint32_t dst_node,
                                std::uint32_t src_node, std::uint64_t cause) {
    if (!enabled()) return 0;
    return push(RecType::kDeliver, cause, FlightRecord::kNoScope, dst_node,
                src_node, kind, 0);
  }
  void record_drop(std::uint16_t kind, std::uint32_t node,
                   std::uint64_t cause) {
    if (!enabled()) return;
    push(RecType::kDrop, cause, FlightRecord::kNoScope, node, 0, kind, 0);
  }
  /// Raises, state transitions, aborts, resolutions. Scope is the action
  /// instance id; cause is the current context (usually a delivery).
  std::uint64_t record_protocol(RecType type, std::uint32_t object,
                                std::uint64_t scope, std::uint32_t round,
                                std::uint32_t code) {
    if (!enabled()) return 0;
    return push(type, current_cause_, scope, object, 0, code, round);
  }

  // ---- Introspection --------------------------------------------------

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t recorded_total() const { return next_id_ - 1; }
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_total() - ring_.size();
  }
  /// The retained records, oldest to newest (unwinds the ring).
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;
  void clear();

  // ---- Dump / decode --------------------------------------------------

  /// Compact binary encoding ("CAAFR001"): header + retained records.
  [[nodiscard]] net::Bytes encode(std::uint64_t seed,
                                  std::uint64_t world_index) const;
  /// Writes encode() to `path`. Returns false on I/O failure.
  bool dump_to_file(const std::string& path, std::uint64_t seed,
                    std::uint64_t world_index) const;

  [[nodiscard]] static Result<FlightDump> decode(const net::Bytes& bytes);
  [[nodiscard]] static Result<FlightDump> read_dump(const std::string& path);

  // ---- Crash dumps ----------------------------------------------------
  // The campaign runner registers the running world's recorder as the
  // thread's active one and arms a per-thread crash context (directory,
  // seed, world index). When the world unwinds from an exception — or a
  // CAA_CHECK trips (util/check.h calls the installed failure hook before
  // aborting) — the recorder is dumped to
  //   <dir>/world<index>_seed<hex>.caafr
  // and the path is left in a per-thread slot for the failure report.

  /// Registers `recorder` as this thread's active one; returns the previous
  /// registration so scopes can nest (world inside world never happens, but
  /// restore-on-destroy keeps the slot honest).
  static FlightRecorder* bind_thread_active(FlightRecorder* recorder);
  [[nodiscard]] static FlightRecorder* thread_active();

  /// Arms crash dumping for this thread and installs the CAA_CHECK failure
  /// hook (idempotent).
  static void arm_crash_dump(std::string dir, std::uint64_t seed,
                             std::uint64_t world_index);
  static void disarm_crash_dump();
  [[nodiscard]] static bool crash_dump_armed();

  /// Dumps the thread-active recorder per the armed context; returns the
  /// written path ("" if not armed / no recorder / I/O failure). The path
  /// is also retained for take_pending_dump_path().
  static std::string dump_thread_active();
  /// Consumes the path of the most recent crash dump on this thread.
  [[nodiscard]] static std::string take_pending_dump_path();

 private:
  std::uint64_t push(RecType type, std::uint64_t cause, std::uint64_t scope,
                     std::uint32_t actor, std::uint32_t peer,
                     std::uint32_t code, std::uint32_t round);

#ifndef CAA_OBS_DISABLED
  bool enabled_ = true;
#endif
  const sim::Time* clock_ = nullptr;
  std::uint64_t next_id_ = 1;
  std::uint64_t current_cause_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;  // overwrite position once the ring is full
  std::vector<FlightRecord> ring_;
};

}  // namespace caa::obs
