#include "obs/causal.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "net/message.h"
#include "resolve/resolver_core.h"

namespace caa::obs {
namespace {

using RecordIndex = std::unordered_map<std::uint64_t, const FlightRecord*>;

RecordIndex index_by_id(const std::vector<FlightRecord>& records) {
  RecordIndex index;
  index.reserve(records.size());
  for (const FlightRecord& r : records) index.emplace(r.id, &r);
  return index;
}

/// Chain ending at `rec`, root first. Sets `truncated` when a non-zero
/// cause id is missing from the index (overwritten by the ring).
std::vector<FlightRecord> walk_chain(const RecordIndex& index,
                                     const FlightRecord& rec,
                                     bool& truncated) {
  std::vector<FlightRecord> chain;
  truncated = false;
  const FlightRecord* cur = &rec;
  // A record's cause always has a smaller id, so chains cannot cycle; the
  // bound is belt-and-braces against a corrupt dump.
  for (std::size_t steps = 0; steps <= index.size(); ++steps) {
    chain.push_back(*cur);
    if (cur->cause == 0) break;
    const auto it = index.find(cur->cause);
    if (it == index.end() || it->second->id >= cur->id) {
      truncated = true;
      break;
    }
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

int count_message_hops(const std::vector<FlightRecord>& chain) {
  int hops = 0;
  for (const FlightRecord& r : chain) {
    if (r.type == RecType::kDeliver) ++hops;
  }
  return hops;
}

bool matches(const FlightRecord& r, const InspectOptions& o) {
  const bool wire = r.type == RecType::kSend || r.type == RecType::kDeliver ||
                    r.type == RecType::kDrop;
  if (o.scope && r.scope != *o.scope) return false;
  if (o.node && r.actor != *o.node && !(wire && r.peer == *o.node)) {
    return false;
  }
  if (o.kind && (!wire || r.code != *o.kind)) return false;
  return true;
}

std::string_view state_name(std::uint32_t code) {
  return resolve::to_string(static_cast<resolve::ResolverCore::State>(code));
}

}  // namespace

std::string format_record(const FlightRecord& rec) {
  std::ostringstream out;
  out << "#" << rec.id << " t=" << rec.time << " "
      << rec_type_name(rec.type);
  switch (rec.type) {
    case RecType::kSend:
      out << " " << net::kind_name(static_cast<net::MsgKind>(rec.code))
          << " N" << rec.actor << "->N" << rec.peer;
      break;
    case RecType::kDeliver:
      out << " " << net::kind_name(static_cast<net::MsgKind>(rec.code))
          << " N" << rec.actor << "<-N" << rec.peer;
      break;
    case RecType::kDrop:
      out << " " << net::kind_name(static_cast<net::MsgKind>(rec.code))
          << " at N" << rec.actor;
      break;
    case RecType::kRaise:
    case RecType::kResolved:
      out << " O" << rec.actor << " e" << rec.code << " a" << rec.scope
          << " r" << rec.round;
      break;
    case RecType::kState:
      out << " O" << rec.actor << " ->" << state_name(rec.code) << " a"
          << rec.scope << " r" << rec.round;
      break;
    case RecType::kAbort:
      out << " O" << rec.actor << " a" << rec.scope
          << (rec.code != 0 ? " signal e" + std::to_string(rec.code) : "");
      break;
  }
  if (rec.cause != 0) out << " cause=#" << rec.cause;
  return out.str();
}

std::vector<FlightRecord> chain_to(const std::vector<FlightRecord>& records,
                                   std::uint64_t id, bool* truncated) {
  const RecordIndex index = index_by_id(records);
  const auto it = index.find(id);
  if (it == index.end()) {
    if (truncated != nullptr) *truncated = false;
    return {};
  }
  bool trunc = false;
  std::vector<FlightRecord> chain = walk_chain(index, *it->second, trunc);
  if (truncated != nullptr) *truncated = trunc;
  return chain;
}

std::vector<CriticalPath> critical_paths(
    const std::vector<FlightRecord>& records) {
  const RecordIndex index = index_by_id(records);
  std::vector<CriticalPath> best;  // one slot per (scope, round) seen
  for (const FlightRecord& r : records) {
    if (r.type != RecType::kResolved) continue;
    bool truncated = false;
    CriticalPath path;
    path.hops = walk_chain(index, r, truncated);
    path.scope = r.scope;
    path.round = r.round;
    path.resolved_code = r.code;
    path.message_hops = count_message_hops(path.hops);
    path.begin = path.hops.front().time;
    path.end = r.time;
    path.truncated = truncated;
    auto slot = std::find_if(best.begin(), best.end(),
                             [&](const CriticalPath& p) {
                               return p.scope == path.scope &&
                                      p.round == path.round;
                             });
    if (slot == best.end()) {
      best.push_back(std::move(path));
      continue;
    }
    // Keep the longer chain; deterministic tie-breaks (hop count, chain
    // length, then the earliest terminal record id).
    const bool longer =
        path.message_hops != slot->message_hops
            ? path.message_hops > slot->message_hops
            : (path.hops.size() != slot->hops.size()
                   ? path.hops.size() > slot->hops.size()
                   : path.hops.back().id < slot->hops.back().id);
    if (longer) *slot = std::move(path);
  }
  std::sort(best.begin(), best.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              if (a.scope != b.scope) return a.scope < b.scope;
              return a.round < b.round;
            });
  return best;
}

std::string format_path(const CriticalPath& path) {
  std::ostringstream out;
  out << "action " << path.scope << " round " << path.round << ": "
      << path.message_hops << " message hops, t=" << path.begin << ".."
      << path.end << ", resolved e" << path.resolved_code;
  if (path.truncated) out << " (truncated: chain left the ring)";
  out << "\n";
  for (const FlightRecord& hop : path.hops) {
    out << "  " << format_record(hop) << "\n";
  }
  return out.str();
}

std::string inspect_report(const FlightDump& dump,
                           const InspectOptions& options) {
  std::ostringstream out;
  out << "flight recorder dump: seed=0x" << std::hex << dump.seed << std::dec
      << " world=" << dump.world_index << " records=" << dump.records.size()
      << " (recorded " << dump.recorded_total << ", overwritten "
      << dump.overwritten << ")\n";
  if (options.show_records) {
    out << "--- records ---\n";
    std::size_t shown = 0;
    for (const FlightRecord& r : dump.records) {
      if (!matches(r, options)) continue;
      out << format_record(r) << "\n";
      ++shown;
    }
    if (shown != dump.records.size()) {
      out << "(" << shown << "/" << dump.records.size()
          << " records matched the filter)\n";
    }
  }
  if (options.chain) {
    out << "--- causal chain to #" << *options.chain << " ---\n";
    bool truncated = false;
    const std::vector<FlightRecord> chain =
        chain_to(dump.records, *options.chain, &truncated);
    if (chain.empty()) {
      out << "(record #" << *options.chain << " not in dump)\n";
    } else {
      for (const FlightRecord& r : chain) out << format_record(r) << "\n";
      if (truncated) out << "(truncated: chain left the ring)\n";
    }
  }
  if (options.show_paths) {
    out << "--- critical paths ---\n";
    std::vector<CriticalPath> paths = critical_paths(dump.records);
    if (options.scope) {
      std::erase_if(paths, [&](const CriticalPath& p) {
        return p.scope != *options.scope;
      });
    }
    if (paths.empty()) out << "(no resolutions in dump)\n";
    for (const CriticalPath& p : paths) out << format_path(p);
  }
  return out.str();
}

}  // namespace caa::obs
