// Causal-DAG queries over flight-recorder records.
//
// The §4.4 analysis counts the messages the resolution algorithm sends; the
// quantity that determines *when* a resolution completes is the longest
// dependency chain of those messages — raise → Exception → (HaveNested →
// NestedCompleted →) ACK → Commit — i.e. the critical path through the
// causal DAG the flight recorder captures. critical_paths() walks the DAG
// backwards from every kResolved record and reports, per (action, round),
// the chain with the most message hops, with per-hop kinds and virtual
// timestamps. tools/caa-inspect and the --dump-traces bench flag share the
// formatting here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace caa::obs {

/// The longest message chain behind one (action, round) resolution.
struct CriticalPath {
  std::uint64_t scope = FlightRecord::kNoScope;  // ActionInstanceId value
  std::uint32_t round = 0;
  std::uint32_t resolved_code = 0;  // exception id the round committed
  std::vector<FlightRecord> hops;   // root -> terminal kResolved record
  int message_hops = 0;             // kDeliver records on the path
  sim::Time begin = 0;              // time of the root record
  sim::Time end = 0;                // time of the kResolved record
  bool truncated = false;  // chain left the ring's retention window
};

/// Walks parents backwards from every kResolved record; keeps, per
/// (scope, round), the chain with the most message hops (ties: longer
/// chain, then earliest terminal id — deterministic). Sorted by
/// (scope, round).
[[nodiscard]] std::vector<CriticalPath> critical_paths(
    const std::vector<FlightRecord>& records);

/// The causal chain ending at record `id`, root first. Empty when the id is
/// not in `records`. `truncated` (optional) reports whether the chain's
/// oldest link had a cause that fell out of the ring.
[[nodiscard]] std::vector<FlightRecord> chain_to(
    const std::vector<FlightRecord>& records, std::uint64_t id,
    bool* truncated = nullptr);

/// One stable line per record, e.g.
///   "#12 t=1100 deliver Exception N2<-N0 cause=#9".
[[nodiscard]] std::string format_record(const FlightRecord& rec);

/// Multi-line rendering of one critical path (header + indented hops).
[[nodiscard]] std::string format_path(const CriticalPath& path);

/// Record filters for caa-inspect and trace dumps.
struct InspectOptions {
  std::optional<std::uint64_t> scope;  // protocol records of one action
  std::optional<std::uint32_t> node;   // wire records touching this node,
                                       // protocol records of this object
  std::optional<std::uint32_t> kind;   // wire records of one MsgKind
  std::optional<std::uint64_t> chain;  // print the causal chain to this id
  bool show_records = true;
  bool show_paths = true;
};

/// Full text report over a decoded dump: header, (filtered) records,
/// critical paths, optional single chain.
[[nodiscard]] std::string inspect_report(const FlightDump& dump,
                                         const InspectOptions& options = {});

}  // namespace caa::obs
