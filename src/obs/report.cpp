#include "obs/report.h"

#include <iomanip>
#include <sstream>

namespace caa::obs {
namespace {

void row(std::ostringstream& out, std::string_view label, std::int64_t exc,
         std::int64_t have, std::int64_t done, std::int64_t ack,
         std::int64_t commit) {
  out << "  " << std::left << std::setw(10) << label << std::right
      << std::setw(10) << exc << std::setw(12) << have << std::setw(17)
      << done << std::setw(6) << ack << std::setw(8) << commit
      << std::setw(8) << exc + have + done + ack + commit << "\n";
}

}  // namespace

std::string run_report(const Metrics& metrics,
                       const ActionNameFn& action_name) {
  std::ostringstream out;
  out << "=== run report ===\n";
  out << "resolution messages sent: " << metrics.resolution_messages()
      << " (exception=" << metrics.sent(net::MsgKind::kException)
      << " have_nested=" << metrics.sent(net::MsgKind::kHaveNested)
      << " nested_completed=" << metrics.sent(net::MsgKind::kNestedCompleted)
      << " ack=" << metrics.sent(net::MsgKind::kAck)
      << " commit=" << metrics.sent(net::MsgKind::kCommit) << ")\n";

  for (const ActionInstanceId scope : metrics.observed_actions()) {
    const auto* rounds = metrics.rounds_of(scope);
    if (rounds == nullptr || rounds->empty()) continue;
    std::string name;
    if (action_name) name = action_name(scope);
    if (name.empty()) name = "instance " + std::to_string(scope.value());
    out << "\naction " << name << ":\n";
    out << "  " << std::left << std::setw(10) << "round" << std::right
        << std::setw(10) << "Exception" << std::setw(12) << "HaveNested"
        << std::setw(17) << "NestedCompleted" << std::setw(6) << "ACK"
        << std::setw(8) << "Commit" << std::setw(8) << "total" << "\n";
    RoundCounts sum;
    for (std::size_t r = 0; r < rounds->size(); ++r) {
      const RoundCounts& rc = (*rounds)[r];
      if (rc.total() == 0) continue;
      row(out, "r" + std::to_string(r), rc.exception, rc.have_nested,
          rc.nested_completed, rc.ack, rc.commit);
      sum.exception += rc.exception;
      sum.have_nested += rc.have_nested;
      sum.nested_completed += rc.nested_completed;
      sum.ack += rc.ack;
      sum.commit += rc.commit;
    }
    row(out, "total", sum.exception, sum.have_nested, sum.nested_completed,
        sum.ack, sum.commit);
  }

  if (!metrics.histogram_names().empty()) {
    out << "\nhistograms:\n";
    for (const auto& [name, id] : metrics.histogram_names()) {
      out << "  " << name << ": " << metrics.histogram_data(id).to_string()
          << "\n";
    }
  }
  return out.str();
}

}  // namespace caa::obs
