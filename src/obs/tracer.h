// Span-based structured tracing on the simulator's virtual clock.
//
// Where sim::TraceLog records a flat narrative of protocol events (and tests
// pin its exact fingerprint), the Tracer records *intervals*: an action's
// lifetime at a participant, each resolution round, every abortion handler,
// the exit barrier, a transaction's commit/abort. Spans carry the virtual
// begin/end time and a track (one per participant object), which is exactly
// the shape Chrome's about://tracing and Perfetto render as a timeline —
// see obs/chrome_trace.h for the exporter.
//
// Cost contract: the Tracer is owned by obs::Observability and every
// instrumentation site guards on Observability::enabled() (an inlined bool
// load, or constant false under -DCAA_OBS_DISABLED). When disabled, no
// Tracer method is called: no allocation, no string formatting, no clock
// read. The Tracer itself also early-returns when disabled, as a second
// line of defense.
//
// The clock is *bound*, not passed per call: Observability points the
// tracer at the simulator's now() storage once, so record sites never
// thread a timestamp through.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.h"

namespace caa::obs {

/// Index of a span in the tracer's log. Invalid ids are silently ignored by
/// end()/end_args(), so call sites need no "was observability on when this
/// span would have begun?" bookkeeping.
using SpanId = StrongId<struct ObsSpanTag>;

/// A timeline row. By convention one track per participant object (the
/// track id is the ObjectId value); Observability::track_for_object maps it.
using TrackId = std::uint32_t;

struct Span {
  sim::Time begin = 0;
  sim::Time end = -1;  // -1 while open; exporter clamps to the last time seen
  TrackId track = 0;
  bool async = false;  // async spans (transactions) need not nest on a track
  std::string category;  // "action", "round", "abort", "barrier", "txn"
  std::string name;
  std::string args;  // free-form detail; empty args are not exported
};

struct Instant {
  sim::Time at = 0;
  TrackId track = 0;
  std::string category;
  std::string name;
  std::string args;
};

class Tracer {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Points the tracer at the virtual clock (the simulator's now() field).
  void bind_clock(const sim::Time* now) { clock_ = now; }

  /// Names a track for the exporter (thread_name metadata). Idempotent.
  void set_track_name(TrackId track, std::string name);

  /// Opens a span at the current virtual time. Returns an invalid id when
  /// disabled (end() on it is a no-op).
  SpanId begin(TrackId track, std::string_view category, std::string name,
               std::string args = {});

  /// Opens an async span: rendered as a Chrome b/e pair, exempt from the
  /// strict stack nesting of sync spans. Used for transactions (several can
  /// overlap on one client) and resolution rounds (an outer action's round
  /// outlives the nested action spans it aborts).
  SpanId begin_async(TrackId track, std::string_view category,
                     std::string name, std::string args = {});

  /// Closes a span at the current virtual time. No-op on invalid ids and on
  /// already-closed spans (a superseded barrier may race its normal close).
  void end(SpanId id);
  /// Same, also attaching/overwriting the span's args (e.g. an outcome).
  void end_args(SpanId id, std::string args);

  /// Records a point event at the current virtual time.
  void instant(TrackId track, std::string_view category, std::string name,
               std::string args = {});

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<Instant>& instants() const {
    return instants_;
  }
  [[nodiscard]] const std::map<TrackId, std::string>& track_names() const {
    return track_names_;
  }

  /// Largest virtual time any record touched; the exporter closes spans
  /// still open at export time here.
  [[nodiscard]] sim::Time last_time() const { return last_time_; }

  void clear();

 private:
  [[nodiscard]] sim::Time now() const { return clock_ ? *clock_ : 0; }
  SpanId begin_impl(TrackId track, bool async, std::string_view category,
                    std::string name, std::string args);

  bool enabled_ = false;
  const sim::Time* clock_ = nullptr;
  sim::Time last_time_ = 0;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::map<TrackId, std::string> track_names_;
};

}  // namespace caa::obs
