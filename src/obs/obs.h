// The observability hub: one Tracer + one Metrics per simulated world.
//
// Owned by sim::Simulator so every layer that can reach the simulator
// (Network, Runtime → Participant, TxnClient) reaches observability the
// same way, without new plumbing through constructors.
//
// Cost contract (the reason this type exists): all span/instant/table
// recording in hot paths is guarded by `if (obs.enabled())` — an inlined
// load of one bool. Compiling with -DCAA_OBS_DISABLED turns enabled() into
// `constexpr false`, letting the optimizer delete every instrumentation
// site outright. Counter increments are NOT guarded: they define the
// behaviour checksum and must be identical whether observability is on or
// off (the zero-drift test pins this).
#pragma once

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "obs/watchdog.h"

namespace caa::obs {

class Observability {
 public:
  Observability() {
    timeseries_.bind(&metrics_, &health_);
    watchdog_.bind(&recorder_);
  }

  /// True when structured tracing / per-round tabulation should record.
  [[nodiscard]] bool enabled() const {
#ifdef CAA_OBS_DISABLED
    return false;
#else
    return enabled_;
#endif
  }

  void set_enabled([[maybe_unused]] bool on) {
#ifndef CAA_OBS_DISABLED
    enabled_ = on;
#endif
    tracer_.set_enabled(enabled());
  }

  /// Points the tracer and flight recorder at the simulator's virtual
  /// clock storage.
  void bind_clock(const sim::Time* now) {
    tracer_.bind_clock(now);
    recorder_.bind_clock(now);
  }

  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  /// The always-on causal flight recorder. Independent of enabled():
  /// enabled() gates the *optional* structured tracing, while the recorder
  /// is the black box that should still be running when a world crashes.
  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }
  /// Per-subsystem level gauges (obs/health.h). Like the recorder, these
  /// are independent of enabled(): mutators compile out under
  /// -DCAA_OBS_DISABLED and never touch counters, so pushing them
  /// unconditionally cannot drift behaviour checksums.
  [[nodiscard]] HealthGauges& health() { return health_; }
  [[nodiscard]] const HealthGauges& health() const { return health_; }
  /// The virtual-time telemetry sampler (obs/timeseries.h), bound to this
  /// hub's metrics + gauges. Disarmed until TimeSeries::arm.
  [[nodiscard]] TimeSeries& timeseries() { return timeseries_; }
  [[nodiscard]] const TimeSeries& timeseries() const { return timeseries_; }
  /// The liveness watchdog (obs/watchdog.h), bound to the recorder for
  /// causal tails. Disarmed until Watchdog::arm.
  [[nodiscard]] Watchdog& watchdog() { return watchdog_; }
  [[nodiscard]] const Watchdog& watchdog() const { return watchdog_; }

 private:
#ifndef CAA_OBS_DISABLED
  bool enabled_ = false;
#endif
  Tracer tracer_;
  Metrics metrics_;
  FlightRecorder recorder_;
  HealthGauges health_;
  TimeSeries timeseries_;
  Watchdog watchdog_;
};

}  // namespace caa::obs
