#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/check.h"

namespace caa::obs {

void Histogram::record(std::int64_t value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  const auto magnitude =
      static_cast<std::uint64_t>(value < 0 ? 0 : value);
  const int bucket = magnitude == 0 ? 0 : std::bit_width(magnitude);
  buckets_[std::min(bucket, kBuckets - 1)] += 1;
}

namespace {

/// Shared bucket-scan percentile: smallest bucket upper bound covering
/// >= q of `count` samples. `fallback` is returned when the scan runs off
/// the end (numerically impossible for consistent data; max by convention).
std::int64_t bucket_quantile(const std::int64_t* buckets, int n_buckets,
                             std::int64_t count, std::int64_t fallback,
                             double q) {
  CAA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile_bound: q outside [0,1]");
  if (count == 0) return 0;
  // q=1 has the exact answer on hand — the recorded max — and the bucket
  // scan would only round it up to the bucket bound.
  if (q >= 1.0) return fallback;
  const auto threshold =
      static_cast<std::int64_t>(q * static_cast<double>(count));
  std::int64_t seen = 0;
  for (int b = 0; b < n_buckets; ++b) {
    seen += buckets[b];
    if (seen >= threshold && seen > 0) {
      // Upper bound of bucket b: values v with bit_width(v) == b.
      return b == 0 ? 0 : (std::int64_t{1} << b) - 1;
    }
  }
  return fallback;
}

}  // namespace

std::int64_t Histogram::quantile_bound(double q) const {
  return bucket_quantile(buckets_, kBuckets, count_, max_, q);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  for (int b = 0; b < kBuckets; ++b) s.buckets[b] = buckets_[b];
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

std::int64_t HistogramSnapshot::quantile_bound(double q) const {
  return bucket_quantile(buckets.data(), kBuckets, count, max, q);
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  out << "count=" << count_ << " sum=" << sum_ << " min=" << min()
      << " max=" << max_ << " p50<=" << quantile_bound(0.5)
      << " p99<=" << quantile_bound(0.99);
  return out.str();
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::int64_t before = it == earlier.counters.end() ? 0 : it->second;
    if (value != before) out.counters.emplace(name, value - before);
  }
  for (const auto& [name, value] : earlier.counters) {
    if (counters.find(name) == counters.end() && value != 0) {
      out.counters.emplace(name, -value);
    }
  }
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].merge(hist);
  }
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << "=" << value << "\n";
  }
  return out.str();
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.counters = counters_.all();
  for (const auto& [name, id] : histogram_ids_) {
    const Histogram& h = histograms_[id.value()];
    if (h.count() > 0) s.histograms.emplace(name, h.snapshot());
  }
  return s;
}

std::int64_t Metrics::resolution_messages() const {
  return sent(net::MsgKind::kException) + sent(net::MsgKind::kHaveNested) +
         sent(net::MsgKind::kNestedCompleted) + sent(net::MsgKind::kAck) +
         sent(net::MsgKind::kCommit);
}

HistogramId Metrics::histogram(std::string_view name) {
  if (const auto it = histogram_ids_.find(name);
      it != histogram_ids_.end()) {
    return it->second;
  }
  const HistogramId id(
      static_cast<HistogramId::rep_type>(histograms_.size()));
  histograms_.emplace_back();
  histogram_ids_.emplace(std::string(name), id);
  return id;
}

void Metrics::note_protocol_send(ActionInstanceId scope, std::uint32_t round,
                                 net::MsgKind kind, std::int64_t n) {
  auto& rounds = per_action_[scope];
  if (rounds.size() <= round) rounds.resize(round + 1);
  RoundCounts& rc = rounds[round];
  switch (kind) {
    case net::MsgKind::kException: rc.exception += n; break;
    case net::MsgKind::kHaveNested: rc.have_nested += n; break;
    case net::MsgKind::kNestedCompleted: rc.nested_completed += n; break;
    case net::MsgKind::kAck: rc.ack += n; break;
    case net::MsgKind::kCommit: rc.commit += n; break;
    default: break;  // not a resolution-protocol kind; nothing to tabulate
  }
}

const std::vector<RoundCounts>* Metrics::rounds_of(
    ActionInstanceId scope) const {
  const auto it = per_action_.find(scope);
  return it == per_action_.end() ? nullptr : &it->second;
}

std::vector<ActionInstanceId> Metrics::observed_actions() const {
  std::vector<ActionInstanceId> out;
  out.reserve(per_action_.size());
  for (const auto& [scope, rounds] : per_action_) out.push_back(scope);
  return out;
}

}  // namespace caa::obs
