#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "util/check.h"

namespace caa::obs {
namespace {

constexpr std::string_view kMagic = "CAAFR001";

/// Per-thread crash-dump state (campaign workers each run their own worlds).
struct CrashContext {
  bool armed = false;
  std::string dir;
  std::uint64_t seed = 0;
  std::uint64_t world_index = 0;
};

thread_local FlightRecorder* t_active_recorder = nullptr;
thread_local CrashContext t_crash;
thread_local std::string t_pending_dump_path;

void crash_dump_check_hook() {
  const std::string path = FlightRecorder::dump_thread_active();
  if (!path.empty()) {
    std::fprintf(stderr, "flight recorder dumped to %s\n", path.c_str());
  }
}

[[nodiscard]] std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string_view rec_type_name(RecType type) {
  switch (type) {
    case RecType::kSend: return "send";
    case RecType::kDeliver: return "deliver";
    case RecType::kDrop: return "drop";
    case RecType::kRaise: return "raise";
    case RecType::kState: return "state";
    case RecType::kAbort: return "abort";
    case RecType::kResolved: return "resolved";
  }
  return "?";
}

void FlightRecorder::set_capacity(std::size_t records) {
  capacity_ = records < 16 ? 16 : records;
  clear();
}

void FlightRecorder::clear() {
  ring_.clear();
  ring_.shrink_to_fit();  // re-reserved (once) on the next record
  head_ = 0;
  next_id_ = 1;
  current_cause_ = 0;
}

std::uint64_t FlightRecorder::push(RecType type, std::uint64_t cause,
                                   std::uint64_t scope, std::uint32_t actor,
                                   std::uint32_t peer, std::uint32_t code,
                                   std::uint32_t round) {
  FlightRecord rec;
  rec.id = next_id_++;
  rec.cause = cause;
  rec.scope = scope;
  rec.time = clock_ != nullptr ? *clock_ : 0;
  rec.actor = actor;
  rec.peer = peer;
  rec.code = code;
  rec.round = round;
  rec.type = type;
  if (ring_.size() < capacity_) {
    if (ring_.capacity() < capacity_) ring_.reserve(capacity_);
    ring_.push_back(rec);  // within reserved storage: no allocation
  } else {
    ring_[head_] = rec;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }
  return rec.id;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  // head_ is the oldest entry once the ring has wrapped; 0 before that.
  const std::size_t start = ring_.size() < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

net::Bytes FlightRecorder::encode(std::uint64_t seed,
                                  std::uint64_t world_index) const {
  net::WireWriter w;
  w.str(kMagic);
  w.u64(seed);
  w.u64(world_index);
  w.u64(recorded_total());
  w.u64(overwritten());
  const std::vector<FlightRecord> records = snapshot();
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const FlightRecord& r : records) {
    w.u64(r.id);
    w.u64(r.cause);
    w.u64(r.scope);
    w.i64(r.time);
    w.u32(r.actor);
    w.u32(r.peer);
    w.u32(r.code);
    w.u32(r.round);
    w.u8(static_cast<std::uint8_t>(r.type));
  }
  return w.take();
}

bool FlightRecorder::dump_to_file(const std::string& path, std::uint64_t seed,
                                  std::uint64_t world_index) const {
  const net::Bytes bytes = encode(seed, world_index);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

Result<FlightDump> FlightRecorder::decode(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto magic = r.str();
  if (!magic.is_ok()) return magic.status();
  if (magic.value() != kMagic) {
    return Status::invalid_argument("not a flight recorder dump (bad magic)");
  }
  FlightDump dump;
  auto seed = r.u64();
  auto index = r.u64();
  auto total = r.u64();
  auto lost = r.u64();
  auto count = r.u32();
  if (!seed.is_ok() || !index.is_ok() || !total.is_ok() || !lost.is_ok() ||
      !count.is_ok()) {
    return Status::invalid_argument("corrupt dump: truncated header");
  }
  dump.seed = seed.value();
  dump.world_index = index.value();
  dump.recorded_total = total.value();
  dump.overwritten = lost.value();
  dump.records.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    FlightRecord rec;
    auto id = r.u64();
    auto cause = r.u64();
    auto scope = r.u64();
    auto time = r.i64();
    auto actor = r.u32();
    auto peer = r.u32();
    auto code = r.u32();
    auto round = r.u32();
    auto type = r.u8();
    if (!id.is_ok() || !cause.is_ok() || !scope.is_ok() || !time.is_ok() ||
        !actor.is_ok() || !peer.is_ok() || !code.is_ok() || !round.is_ok() ||
        !type.is_ok()) {
      return Status::invalid_argument("corrupt dump: truncated record");
    }
    if (type.value() < 1 ||
        type.value() > static_cast<std::uint8_t>(RecType::kResolved)) {
      return Status::invalid_argument("corrupt dump: unknown record type");
    }
    rec.id = id.value();
    rec.cause = cause.value();
    rec.scope = scope.value();
    rec.time = time.value();
    rec.actor = actor.value();
    rec.peer = peer.value();
    rec.code = code.value();
    rec.round = round.value();
    rec.type = static_cast<RecType>(type.value());
    dump.records.push_back(rec);
  }
  if (!r.exhausted()) {
    return Status::invalid_argument("corrupt dump: trailing bytes");
  }
  return dump;
}

Result<FlightDump> FlightRecorder::read_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::not_found("cannot open " + path);
  net::Bytes bytes;
  char chunk[4096];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    const auto got = static_cast<std::size_t>(in.gcount());
    const auto* begin = reinterpret_cast<const std::byte*>(chunk);
    bytes.insert(bytes.end(), begin, begin + got);
  }
  return decode(bytes);
}

FlightRecorder* FlightRecorder::bind_thread_active(FlightRecorder* recorder) {
  return std::exchange(t_active_recorder, recorder);
}

FlightRecorder* FlightRecorder::thread_active() { return t_active_recorder; }

void FlightRecorder::arm_crash_dump(std::string dir, std::uint64_t seed,
                                    std::uint64_t world_index) {
  t_crash.armed = true;
  t_crash.dir = std::move(dir);
  t_crash.seed = seed;
  t_crash.world_index = world_index;
  detail::check_failure_hook() = &crash_dump_check_hook;
}

void FlightRecorder::disarm_crash_dump() { t_crash.armed = false; }

bool FlightRecorder::crash_dump_armed() { return t_crash.armed; }

std::string FlightRecorder::dump_thread_active() {
  if (!t_crash.armed || t_active_recorder == nullptr) return {};
  std::string path = t_crash.dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "world" + std::to_string(t_crash.world_index) + "_seed" +
          hex16(t_crash.seed) + ".caafr";
  if (!t_active_recorder->dump_to_file(path, t_crash.seed,
                                       t_crash.world_index)) {
    return {};
  }
  t_pending_dump_path = path;
  return path;
}

std::string FlightRecorder::take_pending_dump_path() {
  return std::exchange(t_pending_dump_path, std::string());
}

}  // namespace caa::obs
