// Plain-text run report: the §4.4 message-count tables, per run.
//
// The paper evaluates the resolution protocol by the number of messages each
// scenario costs — `(N-1)(2P+1)` for a flat action with P simultaneous
// raisers, `(N-1)(2P+3Q+1)` with Q nested singleton actions. The run report
// renders what an *actual* run sent, tabulated per action instance and per
// resolution round by protocol message kind, so a scenario can be checked
// against its closed form (and the obs_report_test does exactly that).
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.h"

namespace caa::obs {

/// Maps an action instance to a display name; return "" to fall back to the
/// numeric id. World wires this to its ActionManager.
using ActionNameFn = std::function<std::string(ActionInstanceId)>;

/// Renders per-action, per-round protocol message counts plus kind totals
/// and any recorded histograms. Empty-ish when observability was disabled
/// (the per-round tables only fill while enabled).
[[nodiscard]] std::string run_report(const Metrics& metrics,
                                     const ActionNameFn& action_name = {});

}  // namespace caa::obs
