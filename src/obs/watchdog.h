// Liveness watchdog: structured diagnosis of scopes that stop progressing.
//
// A distributed exit or resolution that deadlocks does not crash — it just
// stops producing events, and the run either spins on timers or quiesces
// with scopes still open. The watchdog turns that silence into a report:
// subsystems note when a scope opens, makes progress, or closes; if a scope
// then sits without progress for a virtual-time deadline (or is still open
// when the event queue drains), the watchdog emits an `obs.watchdog`
// diagnosis — the stuck scope, its current phase, the members it is
// waiting on (both filled in by a World-installed describer that asks the
// participants), and the tail of the causal chain that led into the stall
// (from the flight recorder).
//
// Cost contract: the watchdog schedules no events and writes no counters —
// polling rides Simulator::step behind a single time compare — so arming
// it cannot perturb behaviour checksums. Under -DCAA_OBS_DISABLED it stays
// disarmed and every note_* site compiles down to a dead branch.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "sim/event_queue.h"

namespace caa::obs {

/// One stall diagnosis. `scope` is the ActionInstanceId value; everything
/// past `last_progress` is filled by the installed describer + recorder.
struct WatchdogReport {
  std::uint64_t scope = 0;
  std::string scope_name;          // "A3@obj2" style, from the describer
  sim::Time detected_at = 0;
  sim::Time last_progress = 0;
  bool at_quiescence = false;      // run drained with the scope still open
  std::string phase;               // e.g. "exit.barrier", "resolve.round 2"
  std::vector<std::string> awaited;  // members the scope is waiting on
  std::string detail;              // free-form describer context
  std::vector<std::string> tail;   // causal-chain tail, format_record lines

  [[nodiscard]] std::string to_string() const;
};

class Watchdog {
 public:
  /// Fills phase / awaited / detail / scope_name for a stuck scope. The
  /// World installs one that interrogates its participants.
  using Describer = std::function<void(std::uint64_t scope, WatchdogReport&)>;
  /// Fired on every diagnosis as it happens — the chaos oracle hook.
  using ReportHook = std::function<void(const WatchdogReport&)>;

  /// Points the watchdog at the hub's recorder for causal tails.
  void bind(const FlightRecorder* recorder) { recorder_ = recorder; }

  /// Arms stall detection: a scope with no progress for `deadline` virtual
  /// ticks is diagnosed. Disarmed (and note_* free) under
  /// -DCAA_OBS_DISABLED.
  void arm(sim::Time deadline, Describer describer);
  void set_report_hook(ReportHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] bool armed() const {
#ifdef CAA_OBS_DISABLED
    return false;
#else
    return deadline_ > 0;
#endif
  }

  // ---- Progress notes (cheap; no-ops while disarmed) -------------------
  // Open notes are reference-counted: every member that enters a scope
  // opens it, and the entry only retires when the last member closes (one
  // member exiting cleanly must not stop the watch on a peer still stuck).

  void note_open(std::uint64_t scope, sim::Time now) {
    if (!armed()) return;
    Entry& e = scopes_[scope];
    ++e.refs;
    e.last = now;
    if (now + deadline_ < next_check_) next_check_ = now + deadline_;
  }
  void note_progress(std::uint64_t scope, sim::Time now) {
    if (!armed()) return;
    if (auto it = scopes_.find(scope); it != scopes_.end()) {
      it->second.last = now;
    }
  }
  void note_closed(std::uint64_t scope, sim::Time now) {
    if (!armed()) return;
    auto it = scopes_.find(scope);
    if (it == scopes_.end()) return;
    if (--it->second.refs <= 0) {
      scopes_.erase(it);
    } else {
      it->second.last = now;  // a member leaving IS progress for the rest
    }
  }

  /// Hot-path hook from Simulator::step: one compare until a deadline is
  /// actually reachable.
  void maybe_poll(sim::Time now) {
    if (now >= next_check_) poll(now);
  }

  /// Called when the run quiesces: any scope still open is stalled by
  /// definition (no event will ever progress it) and gets diagnosed even if
  /// the deadline has not elapsed yet.
  void finish(sim::Time now);

  [[nodiscard]] const std::vector<WatchdogReport>& reports() const {
    return reports_;
  }
  /// All diagnoses, concatenated ("" when none fired).
  [[nodiscard]] std::string report_text() const;

 private:
  struct Entry {
    sim::Time last = 0;       // virtual time of the last progress note
    std::int32_t refs = 0;    // members currently holding the scope open
  };

  void poll(sim::Time now);
  void diagnose(std::uint64_t scope, sim::Time last_progress, sim::Time now,
                bool at_quiescence);

  const FlightRecorder* recorder_ = nullptr;
  sim::Time deadline_ = 0;
  Describer describer_;
  ReportHook hook_;
  /// Open scopes and their progress state.
  std::map<std::uint64_t, Entry> scopes_;
  /// Scopes already diagnosed (each reports once).
  std::vector<std::uint64_t> reported_;
  sim::Time next_check_ = std::numeric_limits<sim::Time>::max();
  std::vector<WatchdogReport> reports_;
};

}  // namespace caa::obs
