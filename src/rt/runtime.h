// Per-node object runtime.
//
// Hosts the objects of one node, owns the node's transport endpoint and
// dispatches inbound packets to local objects. One Runtime == one address
// space in the paper's system model.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/reliable_link.h"
#include "rt/managed_object.h"
#include "rt/registry.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace caa::rt {

class Runtime {
 public:
  /// Creates the runtime for `node`, wiring `transport` as its endpoint.
  Runtime(sim::Simulator& simulator, Directory& directory, NodeId node,
          std::unique_ptr<net::Transport> transport);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] Directory& directory() { return directory_; }
  [[nodiscard]] sim::TraceLog& trace() { return *trace_; }

  /// Installs a shared trace log (one per World).
  void set_trace(sim::TraceLog* trace) { trace_ = trace; }

  /// Registers `object` under `name`; the directory assigns its id.
  /// The caller keeps ownership and must outlive the runtime's use.
  ObjectId attach(ManagedObject& object, std::string name);

  /// Removes a local object (no further dispatch).
  void detach(ObjectId id);

  /// Sends from a local object to any object in the system.
  void send(ObjectId from, ObjectId to, net::MsgKind kind,
            net::Bytes payload);

 private:
  void dispatch(net::Packet&& packet);
  [[nodiscard]] ManagedObject* local(ObjectId id) const;

  sim::Simulator& simulator_;
  Directory& directory_;
  NodeId node_;
  std::unique_ptr<net::Transport> transport_;
  // A node hosts a handful of objects, and every inbound packet resolves
  // its destination here: a linear scan over a small vector beats hashing.
  std::vector<std::pair<ObjectId, ManagedObject*>> locals_;
  sim::TraceLog* trace_ = nullptr;
  sim::TraceLog null_trace_;
};

}  // namespace caa::rt
