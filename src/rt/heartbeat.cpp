#include "rt/heartbeat.h"

#include "rt/runtime.h"
#include "util/check.h"

namespace caa::rt {
namespace {
const caa::CounterId kCrashSuspicions = caa::CounterId::of("rt.crash_suspicions");
}  // namespace


void HeartbeatMonitor::start(std::vector<ObjectId> peers, Config config) {
  CAA_CHECK_MSG(!running_, "monitor already running");
  CAA_CHECK_MSG(config.interval > 0 && config.timeout > config.interval,
                "timeout must exceed the beat interval");
  config_ = std::move(config);
  peers_ = std::move(peers);
  const sim::Time now_time = now();
  for (ObjectId p : peers_) {
    last_seen_[p] = now_time;  // grace period: assume alive at start
    suspected_[p] = false;
  }
  running_ = true;
  tick();
}

void HeartbeatMonitor::stop() {
  if (!running_) return;
  running_ = false;
  if (timer_.valid()) {
    cancel(timer_);
    timer_ = EventId{};
  }
}

bool HeartbeatMonitor::suspects(ObjectId peer) const {
  auto it = suspected_.find(peer);
  return it != suspected_.end() && it->second;
}

void HeartbeatMonitor::tick() {
  if (!running_) return;
  for (ObjectId p : peers_) {
    send(p, net::MsgKind::kHeartbeat, net::Bytes{});
  }
  const sim::Time now_time = now();
  for (ObjectId p : peers_) {
    if (suspected_[p]) continue;
    if (now_time - last_seen_[p] > config_.timeout) {
      suspected_[p] = true;
      runtime().simulator().counters().add(kCrashSuspicions);
      if (config_.on_crash) config_.on_crash(p);
    }
  }
  timer_ = schedule_after(config_.interval, [this] { tick(); });
}

void HeartbeatMonitor::on_message(ObjectId from, net::MsgKind kind,
                                  const net::Bytes& payload) {
  (void)payload;
  if (kind != net::MsgKind::kHeartbeat) return;
  last_seen_[from] = now();
  // A previously suspected peer that speaks again stays suspected: the
  // fail-stop model has no recovery; restarted nodes must rejoin with a
  // fresh identity.
}

}  // namespace caa::rt
