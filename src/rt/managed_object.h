// Base class for distributed objects hosted by a node runtime.
#pragma once

#include <string>

#include "net/message.h"
#include "sim/event_queue.h"
#include "util/ids.h"

namespace caa::rt {

class Runtime;

/// A distributed object: receives messages via its hosting Runtime and
/// sends messages to other objects by id. Subclasses implement
/// on_message(); all interaction is asynchronous message passing (§2).
class ManagedObject {
 public:
  ManagedObject() = default;
  ManagedObject(const ManagedObject&) = delete;
  ManagedObject& operator=(const ManagedObject&) = delete;
  virtual ~ManagedObject();

  [[nodiscard]] ObjectId id() const { return id_; }
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] Runtime& runtime() const;
  [[nodiscard]] bool attached() const { return runtime_ != nullptr; }

  /// Invoked by the runtime when a packet addressed to this object arrives.
  virtual void on_message(ObjectId from, net::MsgKind kind,
                          const net::Bytes& payload) = 0;

 protected:
  /// Sends `payload` to `to` (possibly on another node).
  void send(ObjectId to, net::MsgKind kind, net::Bytes payload) const;

  /// Schedules a local callback after `delay` virtual ticks (models local
  /// computation time, e.g. a handler body).
  EventId schedule_after(sim::Time delay, sim::EventFn fn) const;
  bool cancel(EventId id) const;

  [[nodiscard]] sim::Time now() const;

 private:
  friend class Runtime;
  Runtime* runtime_ = nullptr;
  ObjectId id_;
};

}  // namespace caa::rt
