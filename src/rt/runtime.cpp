#include "rt/runtime.h"

#include "util/check.h"

namespace caa::rt {

Runtime::Runtime(sim::Simulator& simulator, Directory& directory, NodeId node,
                 std::unique_ptr<net::Transport> transport)
    : simulator_(simulator),
      directory_(directory),
      node_(node),
      transport_(std::move(transport)),
      trace_(&null_trace_) {
  CAA_CHECK_MSG(transport_ != nullptr, "runtime needs a transport");
  transport_->set_handler([this](net::Packet&& p) { dispatch(std::move(p)); });
}

ObjectId Runtime::attach(ManagedObject& object, std::string name) {
  CAA_CHECK_MSG(!object.attached(), "object already attached");
  const ObjectId id = directory_.register_object(std::move(name), node_);
  object.runtime_ = this;
  object.id_ = id;
  locals_.emplace(id, &object);
  return id;
}

void Runtime::detach(ObjectId id) {
  auto it = locals_.find(id);
  CAA_CHECK_MSG(it != locals_.end(), "detach: not a local object");
  it->second->runtime_ = nullptr;
  locals_.erase(it);
}

void Runtime::send(ObjectId from, ObjectId to, net::MsgKind kind,
                   net::Bytes payload) {
  CAA_CHECK_MSG(locals_.contains(from), "send: sender not local");
  net::Packet packet;
  packet.src = net::Address{node_, from};
  packet.dst = directory_.address_of(to);
  packet.kind = kind;
  packet.payload = std::move(payload);
  if (trace_->enabled()) {
    trace_->record(simulator_.now(), "net",
                   std::string("send ") + std::string(net::kind_name(kind)),
                   directory_.name_of(from), "to " + directory_.name_of(to));
  }
  transport_->send(std::move(packet));
}

void Runtime::dispatch(net::Packet&& packet) {
  CAA_CHECK_MSG(packet.dst.node == node_, "dispatch: foreign packet");
  auto it = locals_.find(packet.dst.object);
  if (it == locals_.end()) {
    // The object was detached (or never existed here): count and drop.
    simulator_.counters().add("rt.dropped_no_object");
    return;
  }
  if (trace_->enabled()) {
    trace_->record(simulator_.now(), "net",
                   std::string("recv ") +
                       std::string(net::kind_name(packet.kind)),
                   directory_.name_of(packet.dst.object),
                   "from " + directory_.name_of(packet.src.object));
  }
  it->second->on_message(packet.src.object, packet.kind, packet.payload);
}

}  // namespace caa::rt
