#include "rt/runtime.h"

#include "util/check.h"

namespace caa::rt {
namespace {
const caa::CounterId kDroppedNoObject = caa::CounterId::of("rt.dropped_no_object");
}  // namespace


Runtime::Runtime(sim::Simulator& simulator, Directory& directory, NodeId node,
                 std::unique_ptr<net::Transport> transport)
    : simulator_(simulator),
      directory_(directory),
      node_(node),
      transport_(std::move(transport)),
      trace_(&null_trace_) {
  CAA_CHECK_MSG(transport_ != nullptr, "runtime needs a transport");
  transport_->set_handler([this](net::Packet&& p) { dispatch(std::move(p)); });
}

ManagedObject* Runtime::local(ObjectId id) const {
  for (const auto& [local_id, object] : locals_) {
    if (local_id == id) return object;
  }
  return nullptr;
}

ObjectId Runtime::attach(ManagedObject& object, std::string name) {
  CAA_CHECK_MSG(!object.attached(), "object already attached");
  const ObjectId id = directory_.register_object(std::move(name), node_);
  object.runtime_ = this;
  object.id_ = id;
  locals_.emplace_back(id, &object);
  return id;
}

void Runtime::detach(ObjectId id) {
  for (auto it = locals_.begin(); it != locals_.end(); ++it) {
    if (it->first == id) {
      it->second->runtime_ = nullptr;
      locals_.erase(it);
      return;
    }
  }
  CAA_CHECK_MSG(false, "detach: not a local object");
}

void Runtime::send(ObjectId from, ObjectId to, net::MsgKind kind,
                   net::Bytes payload) {
  CAA_CHECK_MSG(local(from) != nullptr, "send: sender not local");
  net::Packet packet;
  packet.src = net::Address{node_, from};
  packet.dst = directory_.address_of(to);
  packet.kind = kind;
  packet.payload = std::move(payload);
  if (trace_->enabled()) {
    trace_->record(simulator_.now(), "net",
                   std::string("send ") + std::string(net::kind_name(kind)),
                   directory_.name_of(from), "to " + directory_.name_of(to));
  }
  transport_->send(std::move(packet));
}

void Runtime::dispatch(net::Packet&& packet) {
  CAA_CHECK_MSG(packet.dst.node == node_, "dispatch: foreign packet");
  ManagedObject* object = local(packet.dst.object);
  if (object == nullptr) {
    // The object was detached (or never existed here): count and drop.
    simulator_.counters().add(kDroppedNoObject);
    return;
  }
  if (trace_->enabled()) {
    trace_->record(simulator_.now(), "net",
                   std::string("recv ") +
                       std::string(net::kind_name(packet.kind)),
                   directory_.name_of(packet.dst.object),
                   "from " + directory_.name_of(packet.src.object));
  }
  object->on_message(packet.src.object, packet.kind, packet.payload);
}

}  // namespace caa::rt
