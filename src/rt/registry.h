// Global object directory (name service).
//
// Maps object ids to hosting nodes and human-readable names. In a real
// deployment this is a name service; the simulation gives every node a
// consistent view of it, which the paper implicitly assumes ("each
// participating object knows all other participating objects", §4.1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/message.h"
#include "util/ids.h"

namespace caa::rt {

class Directory {
 public:
  /// Registers an object on `node` and assigns the next ObjectId.
  /// Ids are assigned in registration order; callers that care about the
  /// §4.1 participant ordering register objects in the intended order.
  ObjectId register_object(std::string name, NodeId node);

  [[nodiscard]] net::Address address_of(ObjectId object) const;
  [[nodiscard]] const std::string& name_of(ObjectId object) const;

  /// Looks a name up; returns ObjectId::invalid() when absent.
  [[nodiscard]] ObjectId find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    NodeId node;
  };
  std::vector<Entry> entries_;
};

}  // namespace caa::rt
