#include "rt/registry.h"

#include "util/check.h"

namespace caa::rt {

ObjectId Directory::register_object(std::string name, NodeId node) {
  CAA_CHECK_MSG(!find(name).valid(), "duplicate object name");
  entries_.push_back(Entry{std::move(name), node});
  return ObjectId(static_cast<std::uint32_t>(entries_.size() - 1));
}

net::Address Directory::address_of(ObjectId object) const {
  CAA_CHECK_MSG(object.value() < entries_.size(), "unknown object id");
  return net::Address{entries_[object.value()].node, object};
}

const std::string& Directory::name_of(ObjectId object) const {
  CAA_CHECK_MSG(object.value() < entries_.size(), "unknown object id");
  return entries_[object.value()].name;
}

ObjectId Directory::find(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) {
      return ObjectId(static_cast<std::uint32_t>(i));
    }
  }
  return ObjectId::invalid();
}

}  // namespace caa::rt
