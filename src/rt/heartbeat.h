// Heartbeat-based failure detector (crash-tolerance extension).
//
// §4.5 points at "group communication and a group membership service" as
// the natural substrate; this is the membership half: one monitor per node
// exchanges periodic heartbeats with its peers and reports a peer as
// crashed once nothing has been heard for `timeout` ticks. Fail-stop is
// assumed for the *extension* (the base algorithm needs no detector).
//
// The detector is timing-based and therefore unreliable in the
// theoretical sense: a slow link can cause a false suspicion. Pick
// timeout >> max round-trip for the configured link parameters.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "rt/managed_object.h"

namespace caa::rt {

class HeartbeatMonitor : public ManagedObject {
 public:
  struct Config {
    sim::Time interval = 500;   // beat period
    sim::Time timeout = 2000;   // silence threshold for suspicion
    /// Called once per crashed peer, with the peer *monitor's* object id.
    std::function<void(ObjectId peer)> on_crash;
  };

  /// Starts beating to / watching `peers` (other monitors' object ids).
  /// The monitor keeps firing until stop() — callers using
  /// run_to_quiescence() must stop all monitors first (or run_until()).
  void start(std::vector<ObjectId> peers, Config config);
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool suspects(ObjectId peer) const;

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

 private:
  void tick();

  Config config_;
  std::vector<ObjectId> peers_;
  std::map<ObjectId, sim::Time> last_seen_;
  std::map<ObjectId, bool> suspected_;
  EventId timer_;
  bool running_ = false;
};

}  // namespace caa::rt
