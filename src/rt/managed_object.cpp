#include "rt/managed_object.h"

#include "rt/runtime.h"
#include "util/check.h"

namespace caa::rt {

ManagedObject::~ManagedObject() {
  if (runtime_ != nullptr) {
    runtime_->detach(id_);
  }
}

const std::string& ManagedObject::name() const {
  CAA_CHECK(attached());
  return runtime_->directory().name_of(id_);
}

Runtime& ManagedObject::runtime() const {
  CAA_CHECK(attached());
  return *runtime_;
}

void ManagedObject::send(ObjectId to, net::MsgKind kind,
                         net::Bytes payload) const {
  CAA_CHECK(attached());
  runtime_->send(id_, to, kind, std::move(payload));
}

EventId ManagedObject::schedule_after(sim::Time delay, sim::EventFn fn) const {
  CAA_CHECK(attached());
  return runtime_->simulator().schedule_after(delay, std::move(fn));
}

bool ManagedObject::cancel(EventId id) const {
  CAA_CHECK(attached());
  return runtime_->simulator().cancel(id);
}

sim::Time ManagedObject::now() const {
  CAA_CHECK(attached());
  return runtime_->simulator().now();
}

}  // namespace caa::rt
