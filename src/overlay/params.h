// Overlay dissemination knobs.
//
// The paper's resolution algorithm (§4.2) and the exit barrier multicast
// all-to-all, which is O(N²) messages per round and caps committee size.
// The overlay layer (relay_tree.h, disseminator.h) replaces the physical
// fan-out with a deterministic fanout-k spanning tree over the committee;
// these parameters decide per action instance whether that happens and with
// what shape. They live in their own header so caa/ can stamp them onto an
// InstanceInfo without pulling in the overlay machinery.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"

namespace caa::overlay {

struct OverlayParams {
  /// kFlat: always direct all-to-all (the paper's literal reading).
  /// kTree: always relay over the spanning tree.
  /// kAuto: tree once the committee reaches `tree_threshold` members —
  ///        small committees keep the flat protocol (fewer hops, identical
  ///        wire behaviour with every earlier PR).
  enum class Mode : std::uint8_t { kAuto = 0, kFlat = 1, kTree = 2 };

  Mode mode = Mode::kAuto;

  /// Relay fan-out k: each tree position has up to k children. 8 keeps a
  /// 4096-member committee at depth 4.
  std::uint32_t fanout = 8;

  /// kAuto switches to the tree at this member count.
  std::uint32_t tree_threshold = 128;

  /// Extra hold-down before a relay flushes its per-neighbor outboxes.
  /// 0 still batches everything that arrives in the same virtual tick
  /// (the flush event is FIFO-ordered behind the tick's deliveries).
  sim::Time coalesce_delay = 0;

  /// Per-scope relay-cache budget (items) for crash healing. Re-flooding
  /// after a relay dies needs the items seen so far; beyond this many the
  /// cache stops growing (counted under overlay.cache_overflow) and healing
  /// becomes best-effort — crash-free mega-committee benches set this low,
  /// chaos worlds never get near it.
  std::uint32_t heal_cache_limit = 65536;

  /// Decision for a committee of `members` objects. Trees need at least
  /// three members to differ from direct sends.
  [[nodiscard]] bool tree_for(std::size_t members) const {
    switch (mode) {
      case Mode::kFlat:
        return false;
      case Mode::kTree:
        return members >= 2;
      case Mode::kAuto:
        return members >= tree_threshold;
    }
    return false;
  }
};

}  // namespace caa::overlay
