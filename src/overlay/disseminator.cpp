#include "overlay/disseminator.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace caa::overlay {
namespace {

// Interned once per process; flat-mode worlds never touch these, so the
// non-zero-only counter rendering keeps their checksums byte-identical.
struct OverlayCounterIds {
  CounterId envelopes = CounterId::of("overlay.envelopes");
  CounterId items = CounterId::of("overlay.items_relayed");
  CounterId squelched = CounterId::of("overlay.squelched");
  CounterId acks_merged = CounterId::of("overlay.acks_merged");
  CounterId heals = CounterId::of("overlay.heals");
  CounterId heal_items = CounterId::of("overlay.heal_items");
  CounterId cache_overflow = CounterId::of("overlay.cache_overflow");
  CounterId dead_target = CounterId::of("overlay.dropped_dead_target");
  CounterId malformed = CounterId::of("overlay.malformed");
  CounterId multi_groups = CounterId::of("overlay.multi_groups");
  CounterId multi_targets = CounterId::of("overlay.multi_targets");
};

const OverlayCounterIds& counter_ids() {
  static const OverlayCounterIds ids;
  return ids;
}

void set_bit(net::Bytes& bits, std::size_t rank) {
  bits[rank >> 3] |= static_cast<std::byte>(1u << (rank & 7));
}

bool bit_set(const net::Bytes& bits, std::size_t rank) {
  if ((rank >> 3) >= bits.size()) return false;
  return (bits[rank >> 3] & static_cast<std::byte>(1u << (rank & 7))) !=
         std::byte{0};
}

}  // namespace

void Disseminator::configure(ObjectId self, Hooks hooks, Counters* counters,
                             obs::HealthGauges* health) {
  self_ = self;
  hooks_ = std::move(hooks);
  counters_ = counters;
  health_ = health;
}

void Disseminator::sync_backlog() {
  if (health_ == nullptr) return;
  std::int64_t backlog = 0;
  for (const auto& [id, s] : scopes_) {
    for (const auto& [neighbor, box] : s.outbox) {
      backlog += static_cast<std::int64_t>(box.floods.size()) +
                 static_cast<std::int64_t>(box.routes.size()) +
                 static_cast<std::int64_t>(box.acks.size()) +
                 static_cast<std::int64_t>(box.multis.size());
    }
  }
  if (backlog != backlog_gauge_) {
    health_->add(obs::Gauge::kOverlayOutboxBacklog, backlog - backlog_gauge_);
    backlog_gauge_ = backlog;
  }
}

void Disseminator::register_scope(ActionInstanceId scope,
                                  const std::vector<ObjectId>& members,
                                  const OverlayParams& params,
                                  const std::set<ObjectId>& crashed) {
  CAA_CHECK_MSG(self_.valid(), "Disseminator: configure() before use");
  if (scopes_.contains(scope)) return;
  Scope s;
  s.members = members;
  s.params = params;
  s.tree = RelayTree(members, std::max<std::uint32_t>(1, params.fanout));
  for (ObjectId m : members) {
    if (crashed.contains(m)) s.excluded.insert(m);
  }
  if (!s.excluded.empty()) s.tree.rebuild(s.excluded);
  scopes_.emplace(scope, std::move(s));
}

const RelayTree* Disseminator::tree_of(ActionInstanceId scope) const {
  const auto it = scopes_.find(scope);
  return it == scopes_.end() ? nullptr : &it->second.tree;
}

Disseminator::Scope& Disseminator::scope_state(ActionInstanceId scope) {
  const auto it = scopes_.find(scope);
  CAA_CHECK_MSG(it != scopes_.end(), "Disseminator: scope not registered");
  return it->second;
}

Disseminator::Outbox& Disseminator::outbox_for(ActionInstanceId scope,
                                               Scope& s, ObjectId neighbor) {
  if (!s.flush_scheduled) {
    s.flush_scheduled = true;
    hooks_.schedule(s.params.coalesce_delay,
                    [this, scope] { flush(scope); });
  }
  return s.outbox[neighbor];
}

void Disseminator::flush(ActionInstanceId scope) {
  const auto it = scopes_.find(scope);
  if (it == scopes_.end()) return;  // cleared (restart) before the flush fired
  Scope& s = it->second;
  s.flush_scheduled = false;
  if (s.outbox.empty()) return;
  // Detach the boxes first: send_envelope feeds the network, and nothing a
  // re-entrant enqueue adds may end up in a half-encoded envelope.
  std::map<ObjectId, Outbox> boxes = std::move(s.outbox);
  s.outbox.clear();
  net::WireWriter w;
  for (auto& [neighbor, box] : boxes) {
    if (box.empty()) continue;
    w.u64(scope.value());
    // Floods come first, then routed unicasts, then ack tallies: a relayed
    // Exception always reaches the engine before any ACK that answers it,
    // preserving the per-origin FIFO the flat protocol gets from the links.
    w.u32(static_cast<std::uint32_t>(box.floods.size()));
    for (FloodItem& f : box.floods) {
      w.u32(f.origin.value());
      w.u32(f.seq);
      w.u16(static_cast<std::uint16_t>(f.kind));
      w.blob(f.payload);
      net::BytesPool::local().recycle(std::move(f.payload));
    }
    w.u32(static_cast<std::uint32_t>(box.routes.size()));
    for (RouteItem& rt : box.routes) {
      w.u32(rt.target.value());
      w.u32(rt.origin.value());
      w.u16(static_cast<std::uint16_t>(rt.kind));
      w.blob(rt.payload);
      net::BytesPool::local().recycle(std::move(rt.payload));
    }
    w.u32(static_cast<std::uint32_t>(box.acks.size()));
    for (auto& [key, bits] : box.acks) {
      w.u32(key.first.value());
      w.u32(key.second);
      w.blob(bits);
    }
    w.u32(static_cast<std::uint32_t>(box.multis.size()));
    for (MultiItem& m : box.multis) {
      w.u32(static_cast<std::uint32_t>(m.targets.size()));
      for (ObjectId t : m.targets) w.u32(t.value());
      w.u32(m.origin.value());
      w.u16(static_cast<std::uint16_t>(m.kind));
      w.blob(m.payload);
      net::BytesPool::local().recycle(std::move(m.payload));
    }
    if (counters_ != nullptr) counters_->add(counter_ids().envelopes);
    hooks_.send_envelope(neighbor, w.take());
  }
  sync_backlog();
}

void Disseminator::enqueue_flood(ActionInstanceId scope, Scope& s,
                                 ObjectId neighbor, const FloodItem& item) {
  outbox_for(scope, s, neighbor)
      .floods.push_back({item.origin, item.seq, item.kind,
                         net::BytesPool::local().copy_of(item.payload)});
  if (counters_ != nullptr) counters_->add(counter_ids().items);
}

void Disseminator::cache_flood(Scope& s, FloodItem&& item) {
  if (s.flood_cache.size() >= s.params.heal_cache_limit) {
    if (counters_ != nullptr) counters_->add(counter_ids().cache_overflow);
    net::BytesPool::local().recycle(std::move(item.payload));
    return;
  }
  s.flood_cache.push_back(std::move(item));
}

void Disseminator::cache_route(Scope& s, const RouteItem& item) {
  if (s.route_cache.size() >= s.params.heal_cache_limit) {
    if (counters_ != nullptr) counters_->add(counter_ids().cache_overflow);
    return;
  }
  s.route_cache.push_back({item.target, item.origin, item.kind,
                           net::BytesPool::local().copy_of(item.payload)});
}

void Disseminator::cache_route(Scope& s, RouteItem&& item) {
  if (s.route_cache.size() >= s.params.heal_cache_limit) {
    if (counters_ != nullptr) counters_->add(counter_ids().cache_overflow);
    net::BytesPool::local().recycle(std::move(item.payload));
    return;
  }
  s.route_cache.push_back(std::move(item));
}

void Disseminator::merge_ack(std::map<AckKey, AckBitmap>& into,
                             ObjectId target, std::uint32_t round,
                             const AckBitmap& bits, bool count_merges) {
  auto [it, inserted] = into.try_emplace({target, round}, bits);
  if (inserted) return;
  AckBitmap& have = it->second;
  if (have.size() < bits.size()) have.resize(bits.size(), std::byte{0});
  for (std::size_t i = 0; i < bits.size(); ++i) have[i] |= bits[i];
  if (count_merges && counters_ != nullptr) {
    counters_->add(counter_ids().acks_merged);
  }
}

void Disseminator::flood(ActionInstanceId scope, net::MsgKind kind,
                         const net::Bytes& payload) {
  Scope& s = scope_state(scope);
  FloodItem item{self_, s.next_seq++, kind,
                 net::BytesPool::local().copy_of(payload)};
  s.seen.insert(squelch_key(self_, item.seq));
  for (ObjectId n : s.tree.neighbors_of(self_)) {
    enqueue_flood(scope, s, n, item);
  }
  cache_flood(s, std::move(item));
  sync_backlog();
}

void Disseminator::send_ack(ActionInstanceId scope, std::uint32_t round,
                            ObjectId target) {
  Scope& s = scope_state(scope);
  if (target == self_) {
    hooks_.deliver_ack(scope, round, self_);
    return;
  }
  if (!s.tree.contains(target)) {
    if (counters_ != nullptr) counters_->add(counter_ids().dead_target);
    return;
  }
  AckBitmap bits((s.members.size() + 7) / 8, std::byte{0});
  set_bit(bits, rank_of(s.members, self_));
  merge_ack(s.ack_cache, target, round, bits, /*count_merges=*/false);
  const ObjectId hop = s.tree.next_hop(self_, target);
  merge_ack(outbox_for(scope, s, hop).acks, target, round, bits,
            /*count_merges=*/true);
  sync_backlog();
}

void Disseminator::route(ActionInstanceId scope, ObjectId target,
                         net::MsgKind kind, const net::Bytes& payload) {
  Scope& s = scope_state(scope);
  CAA_CHECK_MSG(target != self_, "Disseminator: route to self");
  if (!s.tree.contains(target)) {
    if (counters_ != nullptr) counters_->add(counter_ids().dead_target);
    return;
  }
  RouteItem item{target, self_, kind,
                 net::BytesPool::local().copy_of(payload)};
  cache_route(s, item);
  const ObjectId hop = s.tree.next_hop(self_, target);
  outbox_for(scope, s, hop).routes.push_back(std::move(item));
  if (counters_ != nullptr) counters_->add(counter_ids().items);
  sync_backlog();
}

void Disseminator::forward_multi(ActionInstanceId scope, Scope& s,
                                 const std::vector<ObjectId>& targets,
                                 ObjectId origin, net::MsgKind kind,
                                 const net::Bytes& payload) {
  // Partition the live targets by next hop; each group shares ONE payload
  // copy on its edge. The heal cache keeps per-target RouteItems instead —
  // after a rebuild the groups would be stale anyway, and the route-cache
  // re-offer machinery already re-partitions towards current next hops.
  std::map<ObjectId, std::vector<ObjectId>> by_hop;
  for (ObjectId target : targets) {
    CAA_CHECK_MSG(target != self_, "Disseminator: route_multi to self");
    if (!s.tree.contains(target)) {
      if (counters_ != nullptr) counters_->add(counter_ids().dead_target);
      continue;
    }
    by_hop[s.tree.next_hop(self_, target)].push_back(target);
    cache_route(s, RouteItem{target, origin, kind,
                             net::BytesPool::local().copy_of(payload)});
  }
  for (auto& [hop, group] : by_hop) {
    if (counters_ != nullptr) {
      counters_->add(counter_ids().multi_groups);
      counters_->add(counter_ids().multi_targets,
                     static_cast<std::int64_t>(group.size()));
    }
    outbox_for(scope, s, hop).multis.push_back(
        MultiItem{std::move(group), origin, kind,
                  net::BytesPool::local().copy_of(payload)});
  }
}

void Disseminator::route_multi(ActionInstanceId scope,
                               const std::vector<ObjectId>& targets,
                               net::MsgKind kind, const net::Bytes& payload) {
  forward_multi(scope, scope_state(scope), targets, self_, kind, payload);
  sync_backlog();
}

void Disseminator::on_envelope(ObjectId from, const net::Bytes& payload) {
  const auto bump_malformed = [this] {
    if (counters_ != nullptr) counters_->add(counter_ids().malformed);
  };
  net::WireReader r(payload);
  const auto scope_raw = r.u64();
  if (!scope_raw) return bump_malformed();
  const ActionInstanceId scope(scope_raw.value());
  const auto it = scopes_.find(scope);
  if (it == scopes_.end()) return;  // unmanaged (abandoned after restart)
  Scope& s = it->second;

  const auto flood_count = r.u32();
  if (!flood_count) return bump_malformed();
  for (std::uint32_t i = 0; i < flood_count.value(); ++i) {
    const auto origin_raw = r.u32();
    const auto seq = r.u32();
    const auto kind_raw = r.u16();
    auto body = r.blob();
    if (!origin_raw || !seq || !kind_raw || !body) return bump_malformed();
    const ObjectId origin(origin_raw.value());
    const auto kind = static_cast<net::MsgKind>(kind_raw.value());
    if (!s.seen.insert(squelch_key(origin, seq.value())).second) {
      if (counters_ != nullptr) counters_->add(counter_ids().squelched);
      continue;
    }
    FloodItem item{origin, seq.value(), kind, std::move(body).take()};
    // Forward before delivering: relay duty must not depend on what the
    // local engine does with the message.
    for (ObjectId n : s.tree.neighbors_of(self_)) {
      if (n == from || n == origin) continue;
      enqueue_flood(scope, s, n, item);
    }
    hooks_.deliver(scope, origin, kind, item.payload);
    cache_flood(s, std::move(item));
  }

  const auto route_count = r.u32();
  if (!route_count) return bump_malformed();
  for (std::uint32_t i = 0; i < route_count.value(); ++i) {
    const auto target_raw = r.u32();
    const auto origin_raw = r.u32();
    const auto kind_raw = r.u16();
    auto body = r.blob();
    if (!target_raw || !origin_raw || !kind_raw || !body) {
      return bump_malformed();
    }
    const ObjectId target(target_raw.value());
    const ObjectId origin(origin_raw.value());
    const auto kind = static_cast<net::MsgKind>(kind_raw.value());
    net::Bytes bytes = std::move(body).take();
    if (target == self_) {
      hooks_.deliver(scope, origin, kind, bytes);
      net::BytesPool::local().recycle(std::move(bytes));
      continue;
    }
    if (!s.tree.contains(target)) {
      if (counters_ != nullptr) counters_->add(counter_ids().dead_target);
      net::BytesPool::local().recycle(std::move(bytes));
      continue;
    }
    RouteItem item{target, origin, kind, std::move(bytes)};
    cache_route(s, item);
    outbox_for(scope, s, s.tree.next_hop(self_, target))
        .routes.push_back(std::move(item));
    if (counters_ != nullptr) counters_->add(counter_ids().items);
  }

  const auto ack_count = r.u32();
  if (!ack_count) return bump_malformed();
  for (std::uint32_t i = 0; i < ack_count.value(); ++i) {
    const auto target_raw = r.u32();
    const auto round = r.u32();
    auto bits_res = r.blob();
    if (!target_raw || !round || !bits_res) return bump_malformed();
    const ObjectId target(target_raw.value());
    AckBitmap bits = std::move(bits_res).take();
    if (target == self_) {
      deliver_ack_bitmap(scope, s, round.value(), bits);
    } else if (s.tree.contains(target)) {
      merge_ack(s.ack_cache, target, round.value(), bits,
                /*count_merges=*/false);
      merge_ack(
          outbox_for(scope, s, s.tree.next_hop(self_, target)).acks,
          target, round.value(), bits, /*count_merges=*/true);
    } else if (counters_ != nullptr) {
      counters_->add(counter_ids().dead_target);
    }
    net::BytesPool::local().recycle(std::move(bits));
  }

  const auto multi_count = r.u32();
  if (!multi_count) return bump_malformed();
  for (std::uint32_t i = 0; i < multi_count.value(); ++i) {
    const auto target_count = r.u32();
    if (!target_count) return bump_malformed();
    std::vector<ObjectId> targets;
    targets.reserve(target_count.value());
    bool mine = false;
    for (std::uint32_t t = 0; t < target_count.value(); ++t) {
      const auto target_raw = r.u32();
      if (!target_raw) return bump_malformed();
      const ObjectId target(target_raw.value());
      if (target == self_) {
        mine = true;
      } else {
        targets.push_back(target);
      }
    }
    const auto origin_raw = r.u32();
    const auto kind_raw = r.u16();
    auto body = r.blob();
    if (!origin_raw || !kind_raw || !body) return bump_malformed();
    const ObjectId origin(origin_raw.value());
    const auto kind = static_cast<net::MsgKind>(kind_raw.value());
    net::Bytes bytes = std::move(body).take();
    // Forward the remainder of the group before delivering our share — the
    // same relay-duty-first ordering the flood path keeps.
    if (!targets.empty()) forward_multi(scope, s, targets, origin, kind, bytes);
    if (mine) hooks_.deliver(scope, origin, kind, bytes);
    net::BytesPool::local().recycle(std::move(bytes));
  }
  sync_backlog();
}

void Disseminator::deliver_ack_bitmap(ActionInstanceId scope, const Scope& s,
                                      std::uint32_t round,
                                      const AckBitmap& bits) {
  for (std::size_t rank = 0; rank < s.members.size(); ++rank) {
    if (bit_set(bits, rank)) {
      hooks_.deliver_ack(scope, round, s.members[rank]);
    }
  }
}

Result<ActionInstanceId> Disseminator::peek_envelope_scope(
    const net::Bytes& payload) {
  net::WireReader r(payload);
  auto scope_raw = r.u64();
  if (!scope_raw) return scope_raw.status();
  return ActionInstanceId(scope_raw.value());
}

void Disseminator::on_peer_crashed(ObjectId peer) {
  for (auto& [scope, s] : scopes_) {
    if (!std::binary_search(s.members.begin(), s.members.end(), peer)) {
      continue;
    }
    if (!s.excluded.insert(peer).second) continue;
    const bool was_live = s.tree.contains(self_);
    const std::vector<ObjectId> before =
        was_live ? s.tree.neighbors_of(self_) : std::vector<ObjectId>{};
    s.tree.rebuild(s.excluded);
    // Anything queued for the dead peer is covered by the re-offers below
    // (floods by the new-neighbor cache replay, routes/acks by re-routing).
    s.outbox.erase(peer);
    if (!s.tree.contains(self_) || s.tree.live_count() < 2) continue;
    if (counters_ != nullptr) counters_->add(counter_ids().heals);
    // Re-offer the flood cache to neighbors the repaired tree added: every
    // member whose parent died (or shifted) is a new child of its new
    // parent, so the parents collectively re-cover the orphaned subtrees;
    // squelching absorbs the overlap.
    const std::vector<ObjectId> now = s.tree.neighbors_of(self_);
    for (ObjectId n : now) {
      if (std::find(before.begin(), before.end(), n) != before.end()) {
        continue;
      }
      for (const FloodItem& f : s.flood_cache) {
        if (f.origin == n) continue;
        enqueue_flood(scope, s, n, f);
        if (counters_ != nullptr) counters_->add(counter_ids().heal_items);
      }
    }
    // Re-route cached unicasts and ack tallies towards their *current* next
    // hop — covers both a dead next-hop and a path that moved. Duplicate
    // arrivals are idempotent at the destination.
    std::erase_if(s.route_cache, [&](const RouteItem& item) {
      return !s.tree.contains(item.target);
    });
    for (const RouteItem& item : s.route_cache) {
      outbox_for(scope, s, s.tree.next_hop(self_, item.target))
          .routes.push_back({item.target, item.origin, item.kind,
                             net::BytesPool::local().copy_of(item.payload)});
      if (counters_ != nullptr) counters_->add(counter_ids().heal_items);
    }
    std::erase_if(s.ack_cache, [&](const auto& entry) {
      return !s.tree.contains(entry.first.first);
    });
    for (const auto& [key, bits] : s.ack_cache) {
      merge_ack(outbox_for(scope, s, s.tree.next_hop(self_, key.first)).acks,
                key.first, key.second, bits, /*count_merges=*/false);
      if (counters_ != nullptr) counters_->add(counter_ids().heal_items);
    }
  }
  sync_backlog();
}

void Disseminator::clear() {
  scopes_.clear();
  sync_backlog();
}

std::size_t Disseminator::rank_of(const std::vector<ObjectId>& members,
                                  ObjectId member) {
  const auto it = std::lower_bound(members.begin(), members.end(), member);
  CAA_CHECK_MSG(it != members.end() && *it == member,
                "Disseminator: object not a committee member");
  return static_cast<std::size_t>(it - members.begin());
}

}  // namespace caa::overlay
