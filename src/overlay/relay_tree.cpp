#include "overlay/relay_tree.h"

#include <algorithm>

#include "util/check.h"
#include "util/hash.h"

namespace caa::overlay {

RelayTree::RelayTree(std::vector<ObjectId> members, std::uint32_t fanout)
    : all_(std::move(members)), live_(all_), fanout_(fanout) {
  CAA_CHECK_MSG(fanout_ >= 1, "RelayTree: fanout must be >= 1");
  CAA_CHECK_MSG(std::is_sorted(all_.begin(), all_.end()),
                "RelayTree: members must be sorted");
}

void RelayTree::rebuild(const std::set<ObjectId>& excluded) {
  live_.clear();
  for (ObjectId m : all_) {
    if (!excluded.contains(m)) live_.push_back(m);
  }
}

bool RelayTree::contains(ObjectId member) const {
  const auto it = std::lower_bound(live_.begin(), live_.end(), member);
  return it != live_.end() && *it == member;
}

ObjectId RelayTree::root() const {
  CAA_CHECK_MSG(!live_.empty(), "RelayTree: no live members");
  return live_.front();
}

std::size_t RelayTree::position_of(ObjectId member) const {
  const auto it = std::lower_bound(live_.begin(), live_.end(), member);
  CAA_CHECK_MSG(it != live_.end() && *it == member,
                "RelayTree: member not live");
  return static_cast<std::size_t>(it - live_.begin());
}

std::vector<ObjectId> RelayTree::neighbors_of(ObjectId member) const {
  const std::size_t pos = position_of(member);
  std::vector<ObjectId> out;
  if (pos != 0) out.push_back(live_[(pos - 1) / fanout_]);
  const std::size_t first_child = pos * fanout_ + 1;
  for (std::size_t c = first_child;
       c < first_child + fanout_ && c < live_.size(); ++c) {
    out.push_back(live_[c]);
  }
  return out;
}

ObjectId RelayTree::next_hop(ObjectId self, ObjectId target) const {
  CAA_CHECK_MSG(self != target, "RelayTree: next_hop to self");
  const std::size_t self_pos = position_of(self);
  // Walk the target's ancestor chain towards the root; if it passes through
  // `self`, the hop is the chain link just below us (descend into the right
  // subtree), otherwise the path goes through our own parent first.
  std::size_t cur = position_of(target);
  while (cur != 0) {
    const std::size_t parent = (cur - 1) / fanout_;
    if (parent == self_pos) return live_[cur];
    cur = parent;
  }
  CAA_CHECK_MSG(self_pos != 0, "RelayTree: root is an ancestor of everyone");
  return live_[(self_pos - 1) / fanout_];
}

std::uint32_t RelayTree::depth_of(ObjectId member) const {
  std::size_t pos = position_of(member);
  std::uint32_t depth = 0;
  while (pos != 0) {
    pos = (pos - 1) / fanout_;
    ++depth;
  }
  return depth;
}

std::uint64_t RelayTree::fingerprint() const {
  std::uint64_t h = fnv1a64_mix(kFnv1a64Offset, fanout_);
  for (ObjectId m : live_) h = fnv1a64_mix(h, m.value());
  return h;
}

}  // namespace caa::overlay
