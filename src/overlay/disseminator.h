// Relay-tree dissemination engine: batching, squelching, aggregation,
// healing.
//
// One Disseminator per participant carries every tree-mode action scope the
// participant serves. Three traffic patterns ride one envelope kind
// (net::MsgKind::kRelay):
//
//   flood   — Exception / HaveNested / NestedCompleted / Commit / Leave
//             multicasts. The origin hands the item to its tree neighbors;
//             every relay forwards to its other neighbors exactly once,
//             keyed by (origin, per-origin sequence) — duplicates arriving
//             over redundant paths after a heal are squelched and counted
//             (rippled's reduce-relay idiom), never re-forwarded.
//   ack     — ACKs aggregate up/down the tree as (target, round) → bitmap
//             of acker ranks. Relays OR bitmaps together, so one envelope
//             edge carries a whole subtree's ACK storm (the hierarchical
//             sub-committee tally of the issue); the target unpacks the
//             bitmap back into individual engine ACKs. Merging is
//             idempotent — healing re-sends cannot double-count.
//   route   — other unicasts (Done to the exit-barrier leader) forwarded
//             hop-by-hop along the unique tree path, batching with
//             whatever else the edge carries that tick.
//
// Envelopes per neighbor are coalesced: items enqueue into per-neighbor
// outboxes and a single flush event (scheduled behind the current tick's
// deliveries) encodes each outbox into one envelope. With uniform link
// latency a whole dissemination wave therefore costs one envelope per tree
// edge instead of one packet per (origin, member) pair.
//
// Healing: when a member is reported crashed, the tree is recomputed from
// the shared live list and every item this relay has cached is re-offered
// to the neighbors the new tree added (new children re-parented from the
// dead relay's subtree). Squelching and idempotent merges absorb the
// duplicates; coverage follows because a member either kept its parent
// (and already holds the items its parent forwarded on a live edge) or was
// re-parented (and receives the new parent's cache).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "net/message.h"
#include "obs/health.h"
#include "overlay/params.h"
#include "overlay/relay_tree.h"
#include "util/counters.h"
#include "util/ids.h"
#include "util/status.h"

namespace caa::overlay {

class Disseminator {
 public:
  struct Hooks {
    /// Physical send of one kRelay envelope to a tree neighbor.
    std::function<void(ObjectId to, net::Bytes payload)> send_envelope;
    /// Local delivery of one relayed protocol message, exactly as if it
    /// had arrived directly from `origin`.
    std::function<void(ActionInstanceId scope, ObjectId origin,
                       net::MsgKind kind, const net::Bytes& payload)>
        deliver;
    /// Local delivery of one ACK unpacked from an aggregated bitmap.
    std::function<void(ActionInstanceId scope, std::uint32_t round,
                       ObjectId acker)>
        deliver_ack;
    /// Schedules the outbox flush (maps to ManagedObject::schedule_after).
    std::function<void(sim::Time delay, std::function<void()> fn)> schedule;
  };

  /// Binds identity, callbacks and the counter store. Idempotent; must run
  /// before any scope is registered. `health` (optional) receives this
  /// relay's queued-item contribution to
  /// obs::Gauge::kOverlayOutboxBacklog.
  void configure(ObjectId self, Hooks hooks, Counters* counters,
                 obs::HealthGauges* health = nullptr);

  /// Starts serving `scope` over its deterministic tree. `crashed` seeds
  /// the exclusion set so a late registrant computes the same live tree as
  /// the survivors. No-op if already registered.
  void register_scope(ActionInstanceId scope,
                      const std::vector<ObjectId>& members,
                      const OverlayParams& params,
                      const std::set<ObjectId>& crashed);
  [[nodiscard]] bool manages(ActionInstanceId scope) const {
    return scopes_.contains(scope);
  }
  /// The scope's current tree (tests and tooling). Null if unmanaged.
  [[nodiscard]] const RelayTree* tree_of(ActionInstanceId scope) const;

  // ---- Send side ------------------------------------------------------

  /// Disseminates `payload` to every other member of the scope.
  void flood(ActionInstanceId scope, net::MsgKind kind,
             const net::Bytes& payload);
  /// Contributes this member's ACK for `round` towards `target`.
  void send_ack(ActionInstanceId scope, std::uint32_t round, ObjectId target);
  /// Forwards a unicast (e.g. Done) towards `target` along the tree.
  void route(ActionInstanceId scope, ObjectId target, net::MsgKind kind,
             const net::Bytes& payload);
  /// Forwards ONE payload towards many targets (e.g. a Paxos 2a to the
  /// whole acceptor set), sharing the bytes on every common tree edge: each
  /// edge carries the payload once plus the target list, and relays split
  /// the group per next hop. Targets may not include self; dead targets are
  /// dropped and counted like route()'s.
  void route_multi(ActionInstanceId scope, const std::vector<ObjectId>& targets,
                   net::MsgKind kind, const net::Bytes& payload);

  // ---- Receive side ---------------------------------------------------

  /// Handles one kRelay envelope from tree neighbor `from`.
  void on_envelope(ObjectId from, const net::Bytes& payload);

  /// Scope of an encoded envelope (for lazy registration by the receiver).
  [[nodiscard]] static Result<ActionInstanceId> peek_envelope_scope(
      const net::Bytes& payload);

  // ---- Fault tolerance ------------------------------------------------

  /// Excludes `peer` from every managed tree and re-offers cached items
  /// along the repaired topology.
  void on_peer_crashed(ObjectId peer);

  /// Drops every scope and cache (fail-stop restart: relay duties are
  /// volatile state).
  void clear();

 private:
  struct FloodItem {
    ObjectId origin;
    std::uint32_t seq = 0;
    net::MsgKind kind = net::MsgKind::kInvalid;
    net::Bytes payload;
  };
  struct RouteItem {
    ObjectId target;
    ObjectId origin;
    net::MsgKind kind = net::MsgKind::kInvalid;
    net::Bytes payload;
  };
  struct MultiItem {
    std::vector<ObjectId> targets;  // all routed via the same next hop
    ObjectId origin;
    net::MsgKind kind = net::MsgKind::kInvalid;
    net::Bytes payload;
  };
  using AckKey = std::pair<ObjectId, std::uint32_t>;  // (target, round)
  using AckBitmap = net::Bytes;  // bit per member rank (full committee order)

  struct Outbox {
    std::vector<FloodItem> floods;
    std::vector<RouteItem> routes;
    std::map<AckKey, AckBitmap> acks;
    std::vector<MultiItem> multis;
    [[nodiscard]] bool empty() const {
      return floods.empty() && routes.empty() && acks.empty() &&
             multis.empty();
    }
  };

  struct Scope {
    std::vector<ObjectId> members;  // full committee, sorted (rank order)
    OverlayParams params;
    RelayTree tree;
    std::set<ObjectId> excluded;
    std::uint32_t next_seq = 0;           // this member's origin sequence
    std::unordered_set<std::uint64_t> seen;  // squelch: origin<<32 | seq
    // Relay caches for healing (bounded by params.heal_cache_limit).
    std::vector<FloodItem> flood_cache;
    std::vector<RouteItem> route_cache;
    std::map<AckKey, AckBitmap> ack_cache;
    std::map<ObjectId, Outbox> outbox;  // per-neighbor, flush-ordered
    bool flush_scheduled = false;
  };

  [[nodiscard]] Scope& scope_state(ActionInstanceId scope);
  Outbox& outbox_for(ActionInstanceId scope, Scope& s, ObjectId neighbor);
  void flush(ActionInstanceId scope);
  void enqueue_flood(ActionInstanceId scope, Scope& s, ObjectId neighbor,
                     const FloodItem& item);
  void merge_ack(std::map<AckKey, AckBitmap>& into, ObjectId target,
                 std::uint32_t round, const AckBitmap& bits, bool count_merges);
  void cache_flood(Scope& s, FloodItem&& item);
  void cache_route(Scope& s, const RouteItem& item);
  void cache_route(Scope& s, RouteItem&& item);
  void forward_multi(ActionInstanceId scope, Scope& s,
                     const std::vector<ObjectId>& targets, ObjectId origin,
                     net::MsgKind kind, const net::Bytes& payload);
  void deliver_ack_bitmap(ActionInstanceId scope, const Scope& s,
                          std::uint32_t round, const AckBitmap& bits);
  [[nodiscard]] static std::uint64_t squelch_key(ObjectId origin,
                                                 std::uint32_t seq) {
    return (static_cast<std::uint64_t>(origin.value()) << 32) | seq;
  }
  [[nodiscard]] static std::size_t rank_of(const std::vector<ObjectId>& members,
                                           ObjectId member);
  /// Recounts queued outbox items across managed scopes and pushes the
  /// delta into the backlog gauge. O(tree neighbors); no counters touched.
  void sync_backlog();

  ObjectId self_;
  Hooks hooks_;
  Counters* counters_ = nullptr;
  obs::HealthGauges* health_ = nullptr;
  std::int64_t backlog_gauge_ = 0;  // last-pushed contribution
  std::map<ActionInstanceId, Scope> scopes_;
};

}  // namespace caa::overlay
