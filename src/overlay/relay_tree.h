// Deterministic fanout-k relay tree over a committee.
//
// Shape: sort the live members (the §4.1 total order all participants
// already share), lay them out as an implicit k-ary heap — children of
// position i are k·i+1 .. k·i+k — and root the tree at the lowest live
// member, which is exactly the exit-barrier leader every participant
// already tracks. The tree is a pure function of (member list, excluded
// set, fanout): every member computes the same one locally from shared
// state, with no tree-construction protocol and nothing extra to agree on.
// Self-healing is recomputation — excluding a crashed member re-packs the
// live list and every survivor lands on the same repaired tree (rippled's
// squelched relay mesh converges the same way, by deterministic re-selection
// rather than repair messages).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "util/ids.h"

namespace caa::overlay {

class RelayTree {
 public:
  RelayTree() = default;
  /// `members` must be sorted and duplicate-free (InstanceInfo order).
  RelayTree(std::vector<ObjectId> members, std::uint32_t fanout);

  /// Recomputes the live layout from the full member list minus `excluded`.
  void rebuild(const std::set<ObjectId>& excluded);

  [[nodiscard]] bool contains(ObjectId member) const;
  [[nodiscard]] std::size_t live_count() const { return live_.size(); }
  [[nodiscard]] std::uint32_t fanout() const { return fanout_; }
  [[nodiscard]] ObjectId root() const;

  /// Tree neighbors (parent + children) of a live member.
  [[nodiscard]] std::vector<ObjectId> neighbors_of(ObjectId member) const;

  /// The neighbor to forward to next on the unique tree path from `self`
  /// towards `target`. Both must be live and distinct.
  [[nodiscard]] ObjectId next_hop(ObjectId self, ObjectId target) const;

  /// Hop distance from the root to `member` (root = 0).
  [[nodiscard]] std::uint32_t depth_of(ObjectId member) const;

  /// FNV-1a digest of the live layout (members, order, fanout): two
  /// replicas agree on the tree iff their fingerprints match.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  [[nodiscard]] std::size_t position_of(ObjectId member) const;

  std::vector<ObjectId> all_;   // full committee, sorted
  std::vector<ObjectId> live_;  // minus excluded; index = heap position
  std::uint32_t fanout_ = 8;
};

}  // namespace caa::overlay
