// Transport layer: per-node sending endpoints.
//
// DirectTransport assumes loss-free channels (the configuration used for the
// paper's message-count benches: §4.4 counts protocol messages, not
// transport retransmissions). ReliableTransport implements what §4.5 assumes
// from the environment — reliable FIFO delivery over lossy links — with
// per-peer sequence numbers, positive acks, retransmission timers, duplicate
// suppression and in-order release.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "net/network.h"

namespace caa::net {

/// Interface between the object runtime and the network.
class Transport {
 public:
  using Handler = std::function<void(Packet&&)>;

  virtual ~Transport() = default;
  virtual void send(Packet packet) = 0;
  virtual void set_handler(Handler handler) = 0;
};

/// Pass-through transport for loss-free networks.
class DirectTransport final : public Transport {
 public:
  DirectTransport(Network& network, NodeId node);
  void send(Packet packet) override;
  void set_handler(Handler handler) override { handler_ = std::move(handler); }

 private:
  Network& network_;
  NodeId node_;
  Handler handler_;
};

struct ReliableOptions {
  sim::Time rto = 500;  // retransmission timeout, ticks
  int max_retries = 30;
};

/// Stop-and-go reliable transport with a per-peer send window.
///
/// Guarantees delivered exactly-once, per-peer FIFO, as long as the channel
/// loss is transient. After `max_retries` unacknowledged retransmissions the
/// packet is abandoned and `net.reliable.gave_up` is counted — the upper
/// layers treat that as a node failure.
class ReliableTransport final : public Transport {
 public:
  using Options = ReliableOptions;

  ReliableTransport(Network& network, NodeId node,
                    Options options = Options());
  ~ReliableTransport() override;

  void send(Packet packet) override;
  void set_handler(Handler handler) override { handler_ = std::move(handler); }

 private:
  struct Pending {
    Packet packet;
    EventId timer;
    int retries = 0;
  };
  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> outstanding;
  };
  struct PeerRx {
    std::uint64_t expected = 1;
    std::map<std::uint64_t, Packet> reorder;
  };

  void on_network(Packet&& packet);
  void transmit(NodeId dst, std::uint64_t seq);
  void arm_timer(NodeId dst, std::uint64_t seq);
  void send_ack(const Packet& data);

  Network& network_;
  NodeId node_;
  Options options_;
  Handler handler_;
  std::unordered_map<NodeId, PeerTx> tx_;
  std::unordered_map<NodeId, PeerRx> rx_;
};

}  // namespace caa::net
