// Closed-group membership directory (§4.5).
//
// "Participating objects in a CA action could be treated as members of a
// closed group which multicasts service messages to all members." The
// directory records group membership; multicast itself is a loop of
// point-to-point sends at the runtime layer (each counted individually, as
// in the paper's analysis, which counts N-1 messages per multicast).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace caa::net {

class GroupDirectory {
 public:
  /// Creates a closed group over `members`. Members are stored sorted —
  /// the total order of §4.1 that picks the resolving object.
  GroupId create(std::vector<ObjectId> members);

  /// Dissolves a group (e.g. when its CA action instance completes).
  void dissolve(GroupId group);

  [[nodiscard]] bool exists(GroupId group) const;

  /// Sorted member list.
  [[nodiscard]] const std::vector<ObjectId>& members(GroupId group) const;

  [[nodiscard]] bool is_member(GroupId group, ObjectId object) const;

  /// Number of live groups.
  [[nodiscard]] std::size_t size() const { return groups_.size(); }

 private:
  std::unordered_map<GroupId, std::vector<ObjectId>> groups_;
  std::uint64_t next_id_ = 1;
};

}  // namespace caa::net
