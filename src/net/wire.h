// Binary wire format.
//
// Nodes in the paper's system model live in disjoint address spaces and
// communicate only by messages (§2.1), so every protocol message in this
// library is explicitly serialized to bytes and parsed on arrival — no
// pointer ever crosses a (simulated) node boundary.
//
// Encoding: little-endian fixed-width integers, varint-free for simplicity;
// strings and blobs are length-prefixed with u32.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace caa::net {

using Bytes = std::vector<std::byte>;

/// Appends primitive values to a byte buffer.
class WireWriter {
 public:
  WireWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v);
  void blob(const Bytes& v);

  [[nodiscard]] const Bytes& bytes() const& { return buffer_; }
  [[nodiscard]] Bytes take() && { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Reads primitive values back out of a byte buffer; all reads are
/// bounds-checked and report malformed input via Status (a remote node must
/// never be able to crash us with a bad packet).
class WireReader {
 public:
  explicit WireReader(const Bytes& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  WireReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<bool> boolean();
  Result<std::string> str();
  Result<Bytes> blob();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  Status need(std::size_t n);
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace caa::net
