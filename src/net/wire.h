// Binary wire format.
//
// Nodes in the paper's system model live in disjoint address spaces and
// communicate only by messages (§2.1), so every protocol message in this
// library is explicitly serialized to bytes and parsed on arrival — no
// pointer ever crosses a (simulated) node boundary.
//
// Encoding: little-endian fixed-width integers, varint-free for simplicity;
// strings and blobs are length-prefixed with u32.
//
// Allocation: payload buffers are drawn from a thread-local BytesPool and
// returned to it once the network has delivered the packet, so steady-state
// message traffic re-uses a small set of warm buffers instead of paying a
// heap allocation per message (tests/net_alloc_test.cpp pins this to zero
// allocations per packet).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace caa::net {

using Bytes = std::vector<std::byte>;

/// A free-list of payload buffers. acquire() hands out an empty buffer that
/// keeps the capacity of a previously recycled one; recycle() clears a
/// spent buffer and shelves it for the next acquire. One pool per thread
/// (BytesPool::local()): campaign workers each recycle their own worlds'
/// buffers, so the pool needs no locks, and reuse only ever changes buffer
/// *capacity* — never observable behaviour or checksums.
class BytesPool {
 public:
  /// Buffers retained at most; beyond this recycle() frees instead.
  static constexpr std::size_t kMaxPooled = 1024;
  /// Buffers whose capacity outgrew this are not retained (a rare giant
  /// payload must not pin its footprint forever).
  static constexpr std::size_t kMaxRetainedCapacity = 64 * 1024;

  /// An empty buffer, reusing recycled capacity when available.
  [[nodiscard]] Bytes acquire();

  /// Clears `buffer` and shelves it for reuse. Zero-capacity (moved-from)
  /// buffers are ignored, so recycling an already-consumed payload is a
  /// harmless no-op.
  void recycle(Bytes&& buffer);

  /// A pooled copy of `src` (multicast fan-out without per-recipient heap
  /// allocations once the pool is warm).
  [[nodiscard]] Bytes copy_of(const Bytes& src);

  /// Frees every retained buffer.
  void trim();

  // Stats, for tests pinning the reuse behaviour.
  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::int64_t reused() const { return reused_; }
  [[nodiscard]] std::int64_t fresh() const { return fresh_; }

  /// The calling thread's pool — the default source for WireWriter buffers
  /// and the sink for delivered payloads.
  static BytesPool& local();

 private:
  std::vector<Bytes> free_;
  std::int64_t reused_ = 0;
  std::int64_t fresh_ = 0;
};

/// Appends primitive values to a byte buffer.
///
/// The buffer comes from a BytesPool (the thread-local one by default);
/// take() moves the encoded bytes out and immediately re-arms the writer
/// with a fresh pooled buffer, so one scratch writer can encode any number
/// of consecutive messages without allocating in steady state.
class WireWriter {
 public:
  WireWriter() : WireWriter(BytesPool::local()) {}
  explicit WireWriter(BytesPool& pool)
      : pool_(&pool), buffer_(pool.acquire()) {}

  WireWriter(WireWriter&&) noexcept = default;
  WireWriter& operator=(WireWriter&&) noexcept = default;
  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  ~WireWriter() {
    if (pool_ != nullptr) pool_->recycle(std::move(buffer_));
  }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v);
  void blob(const Bytes& v);

  [[nodiscard]] const Bytes& bytes() const& { return buffer_; }
  /// Moves the encoded bytes out; the writer re-arms from its pool and
  /// stays usable for the next message.
  [[nodiscard]] Bytes take() {
    Bytes out = std::move(buffer_);
    buffer_ = pool_->acquire();
    return out;
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  BytesPool* pool_;
  Bytes buffer_;
};

/// Reads primitive values back out of a byte buffer; all reads are
/// bounds-checked and report malformed input via Status (a remote node must
/// never be able to crash us with a bad packet).
class WireReader {
 public:
  explicit WireReader(const Bytes& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  WireReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<bool> boolean();
  Result<std::string> str();
  Result<Bytes> blob();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  Status need(std::size_t n);
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace caa::net
