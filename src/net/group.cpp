#include "net/group.h"

#include "util/check.h"

namespace caa::net {

GroupId GroupDirectory::create(std::vector<ObjectId> members) {
  CAA_CHECK_MSG(!members.empty(), "empty group");
  std::sort(members.begin(), members.end());
  CAA_CHECK_MSG(std::adjacent_find(members.begin(), members.end()) ==
                    members.end(),
                "duplicate group member");
  const GroupId id(next_id_++);
  groups_.emplace(id, std::move(members));
  return id;
}

void GroupDirectory::dissolve(GroupId group) {
  CAA_CHECK_MSG(groups_.erase(group) == 1, "dissolving unknown group");
}

bool GroupDirectory::exists(GroupId group) const {
  return groups_.contains(group);
}

const std::vector<ObjectId>& GroupDirectory::members(GroupId group) const {
  auto it = groups_.find(group);
  CAA_CHECK_MSG(it != groups_.end(), "unknown group");
  return it->second;
}

bool GroupDirectory::is_member(GroupId group, ObjectId object) const {
  const auto& m = members(group);
  return std::binary_search(m.begin(), m.end(), object);
}

}  // namespace caa::net
