// Packet and message-kind registry.
//
// The network layer moves opaque, serialized packets between objects; the
// `kind` field classifies them so the accounting layer can reproduce the
// paper's per-message-type counts (§4.4) without inspecting payloads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"
#include "util/counters.h"
#include "util/ids.h"

namespace caa::net {

/// A fully qualified object address: the node hosting it plus its object id.
struct Address {
  NodeId node;
  ObjectId object;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

/// Message kinds. Grouped in bands per module so counter names stay tidy.
/// Kinds 1..15 are transport-internal and excluded from protocol accounting.
enum class MsgKind : std::uint16_t {
  kInvalid = 0,

  // Transport control (never counted as protocol messages).
  kTransportAck = 1,

  // Resolution protocol (§4.2) — the five messages of the paper.
  kException = 100,
  kHaveNested = 101,
  kNestedCompleted = 102,
  kAck = 103,
  kCommit = 104,
  // Coordination-avoidance fast path (src/resolve/avoidance.h): census
  // reports, probes and fast commits for commutative rounds. Resolution-
  // adjacent but deliberately NOT in is_resolution_kind() — the §4.4
  // five-kind totals and the zero-Exception/ACK assertions stay exact.
  kFastCover = 105,

  // CR baseline protocol (§3.3 / [5]).
  kCrRaise = 120,
  kCrCommit = 121,
  kCrAck = 122,

  // Arche-style baseline.
  kArcheReport = 130,
  kArcheConcerted = 131,

  // Centralized resolution strategy (§4.5 alternative).
  kCentralException = 140,
  kCentralFreeze = 141,
  kCentralFrozenAck = 142,
  kCentralCommit = 143,

  // Crash-tolerance extension: survivors synchronize their view of an
  // in-progress resolution when a member is excluded (§4.2 fail-stop).
  kCrashSync = 150,

  // Overlay dissemination envelope: batches relayed protocol messages and
  // aggregated ACK tallies along the committee's spanning tree
  // (src/overlay/). Carries other kinds as payload; counted as its own
  // kind so flat-vs-tree physical message costs are directly comparable.
  kRelay = 160,

  // CA action management (entry/exit synchronization).
  kActionJoin = 200,
  kActionJoinAck = 201,
  kActionDone = 202,
  kActionLeave = 203,
  kActionAborted = 204,
  // "I applied this scope's final Leave" — drives the leave-record GC
  // (src/exit/leave_log.h). Only sent when WorldConfig.exit_gc is on.
  kActionLeaveAck = 205,

  // Paxos Commit exit protocol (src/exit/paxos_exit.h): each member's
  // Done is a Paxos instance over 2F+1 committee acceptors.
  kPaxosPrepare = 210,   // phase 1a: new exit leader -> acceptors
  kPaxosPromise = 211,   // phase 1b: acceptor -> leader, accepted state
  kPaxosVote = 212,      // phase 2a: voter (ballot 0) or leader -> acceptors
  kPaxosAccepted = 213,  // phase 2b: acceptor -> leader

  // Transactions on external atomic objects.
  kTxnOpRequest = 300,
  kTxnOpReply = 301,
  kTxnPrepare = 302,
  kTxnVote = 303,
  kTxnDecision = 304,
  kTxnDecisionAck = 305,

  // Failure-detection extension.
  kHeartbeat = 500,

  // Application-level messages (examples, workloads).
  kAppData = 1000,
};

/// Human-readable name of a kind (used as counter suffix).
[[nodiscard]] std::string_view kind_name(MsgKind kind);

/// True for the five messages of the paper's resolution algorithm; the
/// benches count exactly these to reproduce §4.4.
[[nodiscard]] bool is_resolution_kind(MsgKind kind);

/// True for transport-internal control traffic.
[[nodiscard]] bool is_transport_kind(MsgKind kind);

/// Interned counter handles for one message kind's accounting
/// ("net.sent.<Kind>" etc.). Resolved once per kind per process, so the
/// per-packet accounting in Network is a dense increment, not a string
/// build + map lookup.
struct KindCounters {
  CounterId sent;
  CounterId delivered;
  CounterId dropped;
  CounterId duplicated;
};
[[nodiscard]] const KindCounters& kind_counters(MsgKind kind);

/// The unit moved by the network.
struct Packet {
  Address src;
  Address dst;
  MsgKind kind = MsgKind::kInvalid;
  Bytes payload;

  // Transport metadata (reliable-link sequence numbers). Not part of the
  // application payload; set and consumed by the transport.
  std::uint64_t transport_seq = 0;

  // Flight-recorder send record this packet originated from (0 when the
  // recorder is off). Simulation metadata like transport_seq: it rides the
  // in-memory packet so the delivery record can name its causal parent, but
  // it is not wire payload and does not count towards size_on_wire() — the
  // recorder must not move byte counters (zero-drift contract).
  std::uint64_t cause = 0;

  [[nodiscard]] std::size_t size_on_wire() const {
    return payload.size() + 24;  // header estimate: addresses + kind + seq
  }
};

}  // namespace caa::net
