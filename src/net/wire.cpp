#include "net/wire.h"

#include <cstring>

namespace caa::net {

namespace {
template <typename T>
void append_le(Bytes& buffer, T v) {
  std::byte raw[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    raw[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
  buffer.insert(buffer.end(), raw, raw + sizeof(T));
}

template <typename T>
T read_le(const std::byte* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}
}  // namespace

Bytes BytesPool::acquire() {
  if (free_.empty()) {
    ++fresh_;
    return Bytes{};
  }
  ++reused_;
  Bytes out = std::move(free_.back());
  free_.pop_back();
  return out;
}

void BytesPool::recycle(Bytes&& buffer) {
  if (buffer.capacity() == 0) return;  // moved-from or never-written husk
  if (buffer.capacity() > kMaxRetainedCapacity || free_.size() >= kMaxPooled) {
    Bytes drop = std::move(buffer);  // free now, outside the pool
    return;
  }
  buffer.clear();
  free_.push_back(std::move(buffer));
}

Bytes BytesPool::copy_of(const Bytes& src) {
  Bytes out = acquire();
  out.assign(src.begin(), src.end());
  return out;
}

void BytesPool::trim() { free_.clear(); }

BytesPool& BytesPool::local() {
  thread_local BytesPool pool;
  return pool;
}

void WireWriter::u8(std::uint8_t v) { append_le(buffer_, v); }
void WireWriter::u16(std::uint16_t v) { append_le(buffer_, v); }
void WireWriter::u32(std::uint32_t v) { append_le(buffer_, v); }
void WireWriter::u64(std::uint64_t v) { append_le(buffer_, v); }
void WireWriter::i64(std::int64_t v) {
  append_le(buffer_, static_cast<std::uint64_t>(v));
}

void WireWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size());
}

void WireWriter::blob(const Bytes& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

Status WireReader::need(std::size_t n) {
  if (size_ - pos_ < n) {
    return Status::invalid_argument("wire: truncated message");
  }
  return Status::ok();
}

Result<std::uint8_t> WireReader::u8() {
  if (auto s = need(1); !s.is_ok()) return s;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint16_t> WireReader::u16() {
  if (auto s = need(2); !s.is_ok()) return s;
  auto v = read_le<std::uint16_t>(data_ + pos_);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> WireReader::u32() {
  if (auto s = need(4); !s.is_ok()) return s;
  auto v = read_le<std::uint32_t>(data_ + pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> WireReader::u64() {
  if (auto s = need(8); !s.is_ok()) return s;
  auto v = read_le<std::uint64_t>(data_ + pos_);
  pos_ += 8;
  return v;
}

Result<std::int64_t> WireReader::i64() {
  auto v = u64();
  if (!v.is_ok()) return v.status();
  return static_cast<std::int64_t>(v.value());
}

Result<bool> WireReader::boolean() {
  auto v = u8();
  if (!v.is_ok()) return v.status();
  if (v.value() > 1) return Status::invalid_argument("wire: bad bool");
  return v.value() == 1;
}

Result<std::string> WireReader::str() {
  auto len = u32();
  if (!len.is_ok()) return len.status();
  if (auto s = need(len.value()); !s.is_ok()) return s;
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len.value());
  pos_ += len.value();
  return out;
}

Result<Bytes> WireReader::blob() {
  auto len = u32();
  if (!len.is_ok()) return len.status();
  if (auto s = need(len.value()); !s.is_ok()) return s;
  Bytes out(data_ + pos_, data_ + pos_ + len.value());
  pos_ += len.value();
  return out;
}

}  // namespace caa::net
