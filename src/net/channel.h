// Link parameterization: latency and fault models for point-to-point
// channels.
//
// §2 of the paper: "the time of message passing is not negligible" and both
// transient network errors and node crashes are in the fault model. Channels
// therefore have configurable base latency, jitter, per-byte cost, and
// probabilistic drop/duplicate faults, all driven by deterministic RNG.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace caa::net {

struct LinkParams {
  sim::Time latency_base = 100;    // ticks
  sim::Time latency_jitter = 0;    // uniform [0, jitter]
  sim::Time per_byte = 0;          // additional ticks per payload byte
  double drop_probability = 0.0;   // transient loss
  double duplicate_probability = 0.0;

  /// A conventional LAN-ish profile used by most tests and benches.
  static LinkParams lan() { return LinkParams{100, 20, 0, 0.0, 0.0}; }
  /// A zero-jitter, loss-free profile for message-count benches: makes
  /// traces fully deterministic irrespective of seeds.
  static LinkParams ideal() { return LinkParams{100, 0, 0, 0.0, 0.0}; }
  /// A lossy profile for exercising the reliable transport (E12).
  static LinkParams lossy(double p) { return LinkParams{100, 20, 0, p, 0.0}; }
};

/// Per-ordered-pair channel state: enforces FIFO delivery by never
/// scheduling a delivery earlier than the previously scheduled one.
///
/// On top of the static LinkParams, a channel can carry *windowed* fault
/// overrides (src/fault/ chaos engine): until `drop_until`, packets are
/// additionally dropped with `drop_permille`/1000 probability; until
/// `latency_until`, every delivery pays `latency_extra` extra ticks. The
/// drop boost is an integer permille so fault plans serialize and re-parse
/// without floating-point round-trip drift.
struct ChannelState {
  LinkParams params;
  Rng rng{0};
  sim::Time last_delivery = 0;
  bool partitioned = false;
  // Windowed fault overrides (Network::set_drop_window / set_latency_window).
  sim::Time drop_until = 0;
  std::uint32_t drop_permille = 0;
  sim::Time latency_until = 0;
  sim::Time latency_extra = 0;

  /// True when the drop-burst window additionally claims this packet.
  bool burst_dropped(sim::Time now) {
    return now < drop_until && drop_permille > 0 &&
           rng.chance(static_cast<double>(drop_permille) / 1000.0);
  }

  /// Samples the delivery time for a packet of `bytes` sent at `now`,
  /// advancing FIFO state.
  sim::Time sample_delivery_time(sim::Time now, std::size_t bytes) {
    sim::Time lat = params.latency_base;
    if (params.latency_jitter > 0) {
      lat += static_cast<sim::Time>(
          rng.below(static_cast<std::uint64_t>(params.latency_jitter) + 1));
    }
    lat += params.per_byte * static_cast<sim::Time>(bytes);
    if (now < latency_until) lat += latency_extra;  // latency-spike window
    sim::Time at = now + lat;
    if (at < last_delivery) at = last_delivery;  // FIFO clamp
    last_delivery = at;
    return at;
  }
};

}  // namespace caa::net
