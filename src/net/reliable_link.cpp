#include "net/reliable_link.h"

#include "util/check.h"

namespace caa::net {
namespace {

// Interned once; the retransmission path runs per lost packet.
const CounterId kGaveUp = CounterId::of("net.reliable.gave_up");
const CounterId kRetransmit = CounterId::of("net.reliable.retransmit");
const CounterId kDupDropped = CounterId::of("net.reliable.dup_dropped");

}  // namespace

DirectTransport::DirectTransport(Network& network, NodeId node)
    : network_(network), node_(node) {
  network_.set_endpoint(node, [this](Packet&& p) {
    CAA_CHECK_MSG(static_cast<bool>(handler_), "transport has no handler");
    handler_(std::move(p));
  });
}

void DirectTransport::send(Packet packet) {
  CAA_CHECK_MSG(packet.src.node == node_, "send from foreign node");
  network_.send(std::move(packet));
}

ReliableTransport::ReliableTransport(Network& network, NodeId node,
                                     Options options)
    : network_(network), node_(node), options_(options) {
  network_.set_endpoint(node, [this](Packet&& p) { on_network(std::move(p)); });
}

ReliableTransport::~ReliableTransport() {
  // Cancel all pending retransmission timers so no event fires into a dead
  // object (the simulator may outlive this transport in tests).
  for (auto& [dst, peer] : tx_) {
    for (auto& [seq, pending] : peer.outstanding) {
      if (pending.timer.valid()) {
        network_.simulator().cancel(pending.timer);
      }
    }
  }
}

void ReliableTransport::send(Packet packet) {
  CAA_CHECK_MSG(packet.src.node == node_, "send from foreign node");
  PeerTx& peer = tx_[packet.dst.node];
  const std::uint64_t seq = peer.next_seq++;
  packet.transport_seq = seq;
  const NodeId dst = packet.dst.node;
  peer.outstanding.emplace(seq, Pending{std::move(packet), EventId{}, 0});
  transmit(dst, seq);
}

void ReliableTransport::transmit(NodeId dst, std::uint64_t seq) {
  auto& peer = tx_[dst];
  auto it = peer.outstanding.find(seq);
  if (it == peer.outstanding.end()) return;  // already acked
  network_.send(it->second.packet);          // copy stays in outstanding
  arm_timer(dst, seq);
}

void ReliableTransport::arm_timer(NodeId dst, std::uint64_t seq) {
  auto& peer = tx_[dst];
  auto it = peer.outstanding.find(seq);
  CAA_CHECK(it != peer.outstanding.end());
  it->second.timer =
      network_.simulator().schedule_after(options_.rto, [this, dst, seq] {
        auto& p = tx_[dst];
        auto pit = p.outstanding.find(seq);
        if (pit == p.outstanding.end()) return;  // acked meanwhile
        pit->second.timer = EventId{};
        if (++pit->second.retries > options_.max_retries) {
          network_.simulator().counters().add(kGaveUp);
          p.outstanding.erase(pit);
          return;
        }
        network_.simulator().counters().add(kRetransmit);
        transmit(dst, seq);
      });
}

void ReliableTransport::send_ack(const Packet& data) {
  Packet ack;
  ack.src = Address{node_, ObjectId::invalid()};
  ack.dst = Address{data.src.node, ObjectId::invalid()};
  ack.kind = MsgKind::kTransportAck;
  WireWriter w;
  w.u64(data.transport_seq);
  ack.payload = std::move(w).take();
  network_.send(std::move(ack));
}

void ReliableTransport::on_network(Packet&& packet) {
  if (packet.kind == MsgKind::kTransportAck) {
    WireReader r(packet.payload);
    auto seq = r.u64();
    if (!seq.is_ok()) return;  // malformed ack: ignore
    auto& peer = tx_[packet.src.node];
    auto it = peer.outstanding.find(seq.value());
    if (it != peer.outstanding.end()) {
      if (it->second.timer.valid()) {
        network_.simulator().cancel(it->second.timer);
      }
      peer.outstanding.erase(it);
    }
    return;
  }

  // Data packet: ack it, dedup, release in order.
  send_ack(packet);
  PeerRx& peer = rx_[packet.src.node];
  const std::uint64_t seq = packet.transport_seq;
  if (seq < peer.expected) {
    network_.simulator().counters().add(kDupDropped);
    return;
  }
  peer.reorder.emplace(seq, std::move(packet));  // no-op if seq buffered
  while (true) {
    auto it = peer.reorder.find(peer.expected);
    if (it == peer.reorder.end()) break;
    Packet next = std::move(it->second);
    peer.reorder.erase(it);
    ++peer.expected;
    CAA_CHECK_MSG(static_cast<bool>(handler_), "transport has no handler");
    handler_(std::move(next));
  }
}

}  // namespace caa::net
