// The simulated network: nodes, FIFO channels, fault injection, accounting.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "net/channel.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace caa::net {

/// Moves packets between node endpoints over per-pair FIFO channels with
/// configurable latency and faults. All sends are asynchronous: the packet
/// is delivered (or dropped) by a simulator event.
///
/// Accounting: counters in the simulator are updated per kind —
///   net.sent.<Kind>, net.delivered.<Kind>, net.dropped.<Kind>,
///   net.duplicated.<Kind>, net.bytes_sent.
class Network {
 public:
  using Handler = std::function<void(Packet&&)>;

  explicit Network(sim::Simulator& simulator, std::uint64_t seed = 42);

  /// Registers a node. Nodes start up.
  void add_node(NodeId node);
  [[nodiscard]] bool has_node(NodeId node) const;

  /// Installs the packet handler for a node (its transport endpoint).
  void set_endpoint(NodeId node, Handler handler);

  /// Default parameters for channels created lazily.
  void set_default_link(LinkParams params) { default_params_ = params; }

  /// Overrides parameters of one directed channel.
  void set_link(NodeId src, NodeId dst, LinkParams params);

  /// Crashes / restarts a node. Packets to or from a down node are dropped.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Cuts / heals both directions between two nodes.
  void set_partitioned(NodeId a, NodeId b, bool partitioned);

  /// Sends a packet. The source node must be up; delivery is scheduled per
  /// the channel's latency model unless a fault drops the packet.
  void send(Packet packet);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

  /// Total packets delivered since construction (all kinds).
  [[nodiscard]] std::int64_t delivered_total() const {
    return delivered_total_;
  }

 private:
  struct NodeState {
    Handler handler;
    bool up = true;
  };

  ChannelState& channel(NodeId src, NodeId dst);
  void deliver(Packet&& packet);
  void count(const char* what, MsgKind kind, std::int64_t bytes = -1);

  sim::Simulator& simulator_;
  std::uint64_t seed_;
  LinkParams default_params_ = LinkParams::lan();
  std::unordered_map<NodeId, NodeState> nodes_;
  std::map<std::pair<NodeId, NodeId>, ChannelState> channels_;
  std::int64_t delivered_total_ = 0;
};

}  // namespace caa::net
