// The simulated network: nodes, FIFO channels, fault injection, accounting.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/channel.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace caa::net {

/// Moves packets between node endpoints over per-pair FIFO channels with
/// configurable latency and faults. All sends are asynchronous: the packet
/// is delivered (or dropped) by a simulator event.
///
/// Accounting: counters in the simulator are updated per kind —
///   net.sent.<Kind>, net.delivered.<Kind>, net.dropped.<Kind>,
///   net.duplicated.<Kind>, net.bytes_sent.
class Network {
 public:
  using Handler = std::function<void(Packet&&)>;

  explicit Network(sim::Simulator& simulator, std::uint64_t seed = 42);

  /// Registers a node. Nodes start up.
  void add_node(NodeId node);
  [[nodiscard]] bool has_node(NodeId node) const;

  /// Installs the packet handler for a node (its transport endpoint).
  void set_endpoint(NodeId node, Handler handler);

  /// Default parameters for channels created lazily.
  void set_default_link(LinkParams params) { default_params_ = params; }

  /// Overrides parameters of one directed channel.
  void set_link(NodeId src, NodeId dst, LinkParams params);

  /// Crashes / restarts a node. Packets to or from a down node are dropped.
  /// On a transition the node hook (if any) fires — the fault engine and the
  /// World use the up-transition as the restart signal.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Cuts / heals both directions between two nodes.
  void set_partitioned(NodeId a, NodeId b, bool partitioned);

  // ---- Fault-engine hooks (src/fault/) --------------------------------

  /// Observer of node up/down *transitions* (not redundant set_node_up
  /// calls). The World installs one to drive participant restart handling;
  /// it runs after the node state has changed.
  using NodeHook = std::function<void(NodeId, bool up)>;
  void set_node_hook(NodeHook hook) { node_hook_ = std::move(hook); }

  /// Tap invoked for every packet entering send(), before any fault
  /// decision. Fault plans use it for triggered events ("crash the sender
  /// of the first Exception message"); the tap must not re-enter send().
  using SendTap = std::function<void(const Packet&)>;
  void set_send_tap(SendTap tap) { send_tap_ = std::move(tap); }

  /// Windowed drop burst on the directed channel src->dst: until virtual
  /// time `until`, packets are dropped with an additional `permille`/1000
  /// probability (on top of the channel's static drop_probability).
  void set_drop_window(NodeId src, NodeId dst, sim::Time until,
                       std::uint32_t permille);

  /// Windowed latency spike on the directed channel src->dst: packets sent
  /// before `until` pay `extra` additional ticks of delivery latency.
  void set_latency_window(NodeId src, NodeId dst, sim::Time until,
                          sim::Time extra);

  /// Sends a packet. The source node must be up; delivery is scheduled per
  /// the channel's latency model unless a fault drops the packet.
  void send(Packet packet);

  // ---- Managed delivery (src/explore/) --------------------------------
  //
  // In managed mode the network stops sampling latency, faults and
  // duplicates: send() parks each packet in an in-flight buffer and an
  // external scheduler (the DPOR explorer) decides which parked packet is
  // delivered — or, for crashed senders, dropped — next. Send-side
  // accounting, the send tap and flight-recorder records are unchanged, so
  // the oracles and causal traces read identically to the sampled mode.
  // Per-channel FIFO is the scheduler's obligation: it must only deliver a
  // channel's lowest-id parked packet.

  /// Descriptor of one parked packet — everything the scheduler needs to
  /// compute enabled transitions without touching payload bytes.
  struct ManagedPacket {
    std::uint64_t id = 0;  // birth order; deterministic across replays
    NodeId src;
    NodeId dst;
    MsgKind kind = MsgKind::kAppData;
    sim::Time sent_at = 0;
  };

  void set_managed(bool on) { managed_ = on; }
  [[nodiscard]] bool managed() const { return managed_; }

  /// Overwrites `out` with a descriptor per parked packet, in birth order.
  void managed_in_flight(std::vector<ManagedPacket>& out) const;
  [[nodiscard]] std::size_t managed_in_flight_count() const {
    return parked_.size();
  }

  /// Delivers the parked packet `id` now (invokes the destination handler
  /// synchronously). Returns false if no such packet is parked.
  bool managed_deliver(std::uint64_t id);

  /// Drops the parked packet `id`, counted like a fault-engine drop.
  /// Returns false if no such packet is parked.
  bool managed_drop(std::uint64_t id);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

  /// Total packets delivered since construction (all kinds).
  [[nodiscard]] std::int64_t delivered_total() const {
    return delivered_total_;
  }

 private:
  struct NodeState {
    Handler handler;
    bool up = true;
    bool registered = false;
  };

  ChannelState& channel(NodeId src, NodeId dst);
  /// nullptr when the node was never add_node()ed.
  [[nodiscard]] NodeState* node_state(NodeId node);
  [[nodiscard]] const NodeState* node_state(NodeId node) const;
  void deliver(Packet&& packet);
  void count(CounterId id, std::int64_t bytes = -1);

  sim::Simulator& simulator_;
  std::uint64_t seed_;
  NodeHook node_hook_;
  SendTap send_tap_;
  // Interned once at construction; recorded only while observability is on.
  obs::HistogramId delay_hist_;
  obs::HistogramId bytes_hist_;
  LinkParams default_params_ = LinkParams::lan();
  // Direct-indexed by node id (Worlds assign dense sequential ids); every
  // packet probes src and dst state, so this was three hash lookups per
  // message as an unordered_map.
  std::vector<NodeState> nodes_;
  // Channel state, direct-indexed [src][dst] by node id. Resolution rounds
  // touch all ordered pairs, so the former std::map<pair, ChannelState>
  // paid an O(log N^2) pointer-chasing lookup on every packet — at N=1024
  // that lookup alone was ~37% of simulator wall time. Rows grow lazily;
  // the parallel bitset distinguishes "never used" entries so lazily
  // created channels still get their deterministic per-pair RNG seed.
  std::vector<std::vector<ChannelState>> channels_;
  std::vector<std::vector<bool>> channels_init_;
  std::int64_t delivered_total_ = 0;
  // Managed-mode in-flight buffer (empty and untouched in sampled mode).
  struct Parked {
    std::uint64_t id;
    sim::Time sent_at;
    Packet packet;
  };
  bool managed_ = false;
  std::uint64_t next_managed_id_ = 0;
  std::deque<Parked> parked_;
};

}  // namespace caa::net
