#include "net/network.h"

#include "util/check.h"

namespace caa::net {
namespace {

CounterId bytes_sent_id() {
  static const CounterId id = CounterId::of("net.bytes_sent");
  return id;
}

}  // namespace

Network::Network(sim::Simulator& simulator, std::uint64_t seed)
    : simulator_(simulator),
      seed_(seed),
      delay_hist_(simulator.obs().metrics().histogram("net.delivery_delay")),
      bytes_hist_(simulator.obs().metrics().histogram("net.packet_bytes")) {}

Network::NodeState* Network::node_state(NodeId node) {
  if (!node.valid() || node.value() >= nodes_.size()) return nullptr;
  NodeState& state = nodes_[node.value()];
  return state.registered ? &state : nullptr;
}

const Network::NodeState* Network::node_state(NodeId node) const {
  if (!node.valid() || node.value() >= nodes_.size()) return nullptr;
  const NodeState& state = nodes_[node.value()];
  return state.registered ? &state : nullptr;
}

void Network::add_node(NodeId node) {
  CAA_CHECK_MSG(node.valid(), "invalid node id");
  if (node.value() >= nodes_.size()) nodes_.resize(node.value() + 1);
  NodeState& state = nodes_[node.value()];
  CAA_CHECK_MSG(!state.registered, "node already registered");
  state.registered = true;
}

bool Network::has_node(NodeId node) const {
  return node_state(node) != nullptr;
}

void Network::set_endpoint(NodeId node, Handler handler) {
  NodeState* state = node_state(node);
  CAA_CHECK_MSG(state != nullptr, "set_endpoint: unknown node");
  state->handler = std::move(handler);
}

void Network::set_link(NodeId src, NodeId dst, LinkParams params) {
  channel(src, dst).params = params;
}

void Network::set_node_up(NodeId node, bool up) {
  NodeState* state = node_state(node);
  CAA_CHECK_MSG(state != nullptr, "set_node_up: unknown node");
  const bool was_up = state->up;
  state->up = up;
  if (was_up != up && node_hook_) node_hook_(node, up);
}

bool Network::node_up(NodeId node) const {
  const NodeState* state = node_state(node);
  CAA_CHECK_MSG(state != nullptr, "node_up: unknown node");
  return state->up;
}

void Network::set_partitioned(NodeId a, NodeId b, bool partitioned) {
  channel(a, b).partitioned = partitioned;
  channel(b, a).partitioned = partitioned;
}

void Network::set_drop_window(NodeId src, NodeId dst, sim::Time until,
                              std::uint32_t permille) {
  ChannelState& ch = channel(src, dst);
  ch.drop_until = until;
  ch.drop_permille = permille > 1000 ? 1000 : permille;
}

void Network::set_latency_window(NodeId src, NodeId dst, sim::Time until,
                                 sim::Time extra) {
  ChannelState& ch = channel(src, dst);
  ch.latency_until = until;
  ch.latency_extra = extra;
}

ChannelState& Network::channel(NodeId src, NodeId dst) {
  const std::size_t s = src.value();
  const std::size_t d = dst.value();
  if (s >= channels_.size()) {
    channels_.resize(s + 1);
    channels_init_.resize(s + 1);
  }
  std::vector<ChannelState>& row = channels_[s];
  std::vector<bool>& init = channels_init_[s];
  if (d >= row.size()) {
    // Plain d+1 growth: capacity still doubles under the hood, and sparse
    // traffic patterns (a flat action's ACKs all target one raiser) only pay
    // for the destinations a row actually reaches — eagerly sizing rows to
    // the node count would construct N states per source up front.
    row.resize(d + 1);
    init.resize(d + 1, false);
  }
  ChannelState& state = row[d];
  if (!init[d]) [[unlikely]] {
    init[d] = true;
    state.params = default_params_;
    // Seed deterministically from the pair so behaviour does not depend on
    // channel creation order.
    const std::uint64_t mix =
        seed_ ^ (static_cast<std::uint64_t>(src.value()) << 32) ^
        (static_cast<std::uint64_t>(dst.value()) + 0x9e3779b97f4a7c15ULL);
    state.rng = Rng(mix);
  }
  return state;
}

void Network::count(CounterId id, std::int64_t bytes) {
  simulator_.counters().add(id);
  if (bytes >= 0) simulator_.counters().add(bytes_sent_id(), bytes);
}

void Network::send(Packet packet) {
  const NodeState* src = node_state(packet.src.node);
  CAA_CHECK_MSG(src != nullptr, "send: unknown src node");
  CAA_CHECK_MSG(node_state(packet.dst.node) != nullptr,
                "send: unknown dst node");
  if (send_tap_) send_tap_(packet);
  const KindCounters& kc = kind_counters(packet.kind);
  count(kc.sent, static_cast<std::int64_t>(packet.size_on_wire()));
  obs::FlightRecorder& recorder = simulator_.obs().recorder();
  if (recorder.enabled()) {
    // The send's cause is whatever is executing right now (typically the
    // delivery that triggered it); the packet carries the send record's id
    // so the eventual delivery can name it as parent.
    packet.cause = recorder.record_send(
        static_cast<std::uint16_t>(packet.kind), packet.src.node.value(),
        packet.dst.node.value());
  }

  if (!src->up) {
    count(kc.dropped);
    recorder.record_drop(static_cast<std::uint16_t>(packet.kind),
                         packet.src.node.value(), packet.cause);
    BytesPool::local().recycle(std::move(packet.payload));
    return;  // a crashed node cannot send
  }

  if (managed_) {
    // Park for the external scheduler instead of sampling a delivery time.
    // A destination that is already down drops now (counted) — the explorer
    // eagerly drops in-flight packets to a crash victim, so nothing
    // addressed to a down node may linger in the buffer.
    if (!node_state(packet.dst.node)->up) {
      count(kc.dropped);
      recorder.record_drop(static_cast<std::uint16_t>(packet.kind),
                           packet.dst.node.value(), packet.cause);
      BytesPool::local().recycle(std::move(packet.payload));
      return;
    }
    parked_.push_back(
        Parked{next_managed_id_++, simulator_.now(), std::move(packet)});
    simulator_.obs().health().add(obs::Gauge::kNetInFlight, 1);
    return;
  }

  ChannelState& ch = channel(packet.src.node, packet.dst.node);
  if (ch.partitioned || ch.rng.chance(ch.params.drop_probability) ||
      ch.burst_dropped(simulator_.now())) {
    count(kc.dropped);
    recorder.record_drop(static_cast<std::uint16_t>(packet.kind),
                         packet.src.node.value(), packet.cause);
    BytesPool::local().recycle(std::move(packet.payload));
    return;
  }

  const bool duplicate = ch.rng.chance(ch.params.duplicate_probability);
  const sim::Time at = ch.sample_delivery_time(simulator_.now(),
                                               packet.size_on_wire());
  if (obs::Observability& o = simulator_.obs(); o.enabled()) {
    // The channel knows the delivery time at send; sampling here avoids
    // carrying a send timestamp in every in-flight packet.
    o.metrics().record(delay_hist_, at - simulator_.now());
    o.metrics().record(bytes_hist_,
                       static_cast<std::int64_t>(packet.size_on_wire()));
  }
  if (duplicate) {
    count(kc.duplicated);
    Packet copy = packet;
    copy.payload = BytesPool::local().copy_of(packet.payload);
    const sim::Time at2 = ch.sample_delivery_time(simulator_.now(),
                                                  copy.size_on_wire());
    simulator_.schedule_at(at2, [this, p = std::move(copy)]() mutable {
      deliver(std::move(p));
    });
  }
  simulator_.schedule_at(at, [this, p = std::move(packet)]() mutable {
    deliver(std::move(p));
  });
  simulator_.obs().health().add(obs::Gauge::kNetInFlight, duplicate ? 2 : 1);
}

void Network::managed_in_flight(std::vector<ManagedPacket>& out) const {
  out.clear();
  out.reserve(parked_.size());
  for (const Parked& p : parked_) {
    out.push_back(ManagedPacket{p.id, p.packet.src.node, p.packet.dst.node,
                                p.packet.kind, p.sent_at});
  }
}

bool Network::managed_deliver(std::uint64_t id) {
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->id != id) continue;
    Packet packet = std::move(it->packet);
    parked_.erase(it);
    deliver(std::move(packet));  // does the in-flight gauge -1 + accounting
    return true;
  }
  return false;
}

bool Network::managed_drop(std::uint64_t id) {
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->id != id) continue;
    simulator_.obs().health().add(obs::Gauge::kNetInFlight, -1);
    count(kind_counters(it->packet.kind).dropped);
    simulator_.obs().recorder().record_drop(
        static_cast<std::uint16_t>(it->packet.kind),
        it->packet.src.node.value(), it->packet.cause);
    BytesPool::local().recycle(std::move(it->packet.payload));
    parked_.erase(it);
    return true;
  }
  return false;
}

void Network::deliver(Packet&& packet) {
  NodeState* dst = node_state(packet.dst.node);
  CAA_CHECK(dst != nullptr);
  simulator_.obs().health().add(obs::Gauge::kNetInFlight, -1);
  const KindCounters& kc = kind_counters(packet.kind);
  obs::FlightRecorder& recorder = simulator_.obs().recorder();
  if (!dst->up) {
    count(kc.dropped);
    recorder.record_drop(static_cast<std::uint16_t>(packet.kind),
                         packet.dst.node.value(), packet.cause);
    BytesPool::local().recycle(std::move(packet.payload));
    return;  // destination crashed while the packet was in flight
  }
  CAA_CHECK_MSG(static_cast<bool>(dst->handler),
                "deliver: node has no endpoint");
  count(kc.delivered);
  ++delivered_total_;
  // Everything the handler does — records it pushes, packets it sends,
  // events it schedules — descends from this delivery in the causal DAG.
  std::uint64_t saved_cause = 0;
  const bool recording = recorder.enabled();
  if (recording) {
    const std::uint64_t delivery = recorder.record_delivery(
        static_cast<std::uint16_t>(packet.kind), packet.dst.node.value(),
        packet.src.node.value(), packet.cause);
    saved_cause = recorder.current_cause();
    recorder.set_current_cause(delivery);
  }
  dst->handler(std::move(packet));
  if (recording) recorder.set_current_cause(saved_cause);
  // Whatever payload storage the handler did not move out of the packet goes
  // back to the pool; a handler that kept the bytes leaves an empty husk
  // here, which recycle() ignores. This closes the send->deliver loop at
  // zero heap allocations per packet in steady state.
  BytesPool::local().recycle(std::move(packet.payload));
}

}  // namespace caa::net
