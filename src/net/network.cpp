#include "net/network.h"

#include <string>

#include "util/check.h"

namespace caa::net {

Network::Network(sim::Simulator& simulator, std::uint64_t seed)
    : simulator_(simulator), seed_(seed) {}

void Network::add_node(NodeId node) {
  CAA_CHECK_MSG(node.valid(), "invalid node id");
  auto [it, inserted] = nodes_.emplace(node, NodeState{});
  CAA_CHECK_MSG(inserted, "node already registered");
  (void)it;
}

bool Network::has_node(NodeId node) const { return nodes_.contains(node); }

void Network::set_endpoint(NodeId node, Handler handler) {
  auto it = nodes_.find(node);
  CAA_CHECK_MSG(it != nodes_.end(), "set_endpoint: unknown node");
  it->second.handler = std::move(handler);
}

void Network::set_link(NodeId src, NodeId dst, LinkParams params) {
  channel(src, dst).params = params;
}

void Network::set_node_up(NodeId node, bool up) {
  auto it = nodes_.find(node);
  CAA_CHECK_MSG(it != nodes_.end(), "set_node_up: unknown node");
  it->second.up = up;
}

bool Network::node_up(NodeId node) const {
  auto it = nodes_.find(node);
  CAA_CHECK_MSG(it != nodes_.end(), "node_up: unknown node");
  return it->second.up;
}

void Network::set_partitioned(NodeId a, NodeId b, bool partitioned) {
  channel(a, b).partitioned = partitioned;
  channel(b, a).partitioned = partitioned;
}

ChannelState& Network::channel(NodeId src, NodeId dst) {
  auto key = std::make_pair(src, dst);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    ChannelState state;
    state.params = default_params_;
    // Seed deterministically from the pair so behaviour does not depend on
    // channel creation order.
    const std::uint64_t mix =
        seed_ ^ (static_cast<std::uint64_t>(src.value()) << 32) ^
        (static_cast<std::uint64_t>(dst.value()) + 0x9e3779b97f4a7c15ULL);
    state.rng = Rng(mix);
    it = channels_.emplace(key, std::move(state)).first;
  }
  return it->second;
}

void Network::count(const char* what, MsgKind kind, std::int64_t bytes) {
  std::string name = "net.";
  name += what;
  name += '.';
  name += kind_name(kind);
  simulator_.counters().add(name);
  if (bytes >= 0) simulator_.counters().add("net.bytes_sent", bytes);
}

void Network::send(Packet packet) {
  CAA_CHECK_MSG(nodes_.contains(packet.src.node), "send: unknown src node");
  CAA_CHECK_MSG(nodes_.contains(packet.dst.node), "send: unknown dst node");
  const auto kind = packet.kind;
  count("sent", kind, static_cast<std::int64_t>(packet.size_on_wire()));

  if (!node_up(packet.src.node)) {
    count("dropped", kind);
    return;  // a crashed node cannot send
  }

  ChannelState& ch = channel(packet.src.node, packet.dst.node);
  if (ch.partitioned || ch.rng.chance(ch.params.drop_probability)) {
    count("dropped", kind);
    return;
  }

  const bool duplicate = ch.rng.chance(ch.params.duplicate_probability);
  const sim::Time at = ch.sample_delivery_time(simulator_.now(),
                                               packet.size_on_wire());
  if (duplicate) {
    count("duplicated", kind);
    Packet copy = packet;
    const sim::Time at2 = ch.sample_delivery_time(simulator_.now(),
                                                  copy.size_on_wire());
    simulator_.schedule_at(at2, [this, p = std::move(copy)]() mutable {
      deliver(std::move(p));
    });
  }
  simulator_.schedule_at(at, [this, p = std::move(packet)]() mutable {
    deliver(std::move(p));
  });
}

void Network::deliver(Packet&& packet) {
  auto it = nodes_.find(packet.dst.node);
  CAA_CHECK(it != nodes_.end());
  if (!it->second.up) {
    count("dropped", packet.kind);
    return;  // destination crashed while the packet was in flight
  }
  CAA_CHECK_MSG(static_cast<bool>(it->second.handler),
                "deliver: node has no endpoint");
  count("delivered", packet.kind);
  ++delivered_total_;
  it->second.handler(std::move(packet));
}

}  // namespace caa::net
