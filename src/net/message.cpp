#include "net/message.h"

#include <array>
#include <string>

#include "util/check.h"

namespace caa::net {

std::string_view kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kInvalid: return "Invalid";
    case MsgKind::kTransportAck: return "TransportAck";
    case MsgKind::kException: return "Exception";
    case MsgKind::kHaveNested: return "HaveNested";
    case MsgKind::kNestedCompleted: return "NestedCompleted";
    case MsgKind::kAck: return "ACK";
    case MsgKind::kCommit: return "Commit";
    case MsgKind::kFastCover: return "FastCover";
    case MsgKind::kCrRaise: return "CrRaise";
    case MsgKind::kCrCommit: return "CrCommit";
    case MsgKind::kCrAck: return "CrAck";
    case MsgKind::kArcheReport: return "ArcheReport";
    case MsgKind::kArcheConcerted: return "ArcheConcerted";
    case MsgKind::kCentralException: return "CentralException";
    case MsgKind::kCentralFreeze: return "CentralFreeze";
    case MsgKind::kCentralFrozenAck: return "CentralFrozenAck";
    case MsgKind::kCentralCommit: return "CentralCommit";
    case MsgKind::kCrashSync: return "CrashSync";
    case MsgKind::kRelay: return "Relay";
    case MsgKind::kActionJoin: return "ActionJoin";
    case MsgKind::kActionJoinAck: return "ActionJoinAck";
    case MsgKind::kActionDone: return "ActionDone";
    case MsgKind::kActionLeave: return "ActionLeave";
    case MsgKind::kActionAborted: return "ActionAborted";
    case MsgKind::kActionLeaveAck: return "ActionLeaveAck";
    case MsgKind::kPaxosPrepare: return "PaxosPrepare";
    case MsgKind::kPaxosPromise: return "PaxosPromise";
    case MsgKind::kPaxosVote: return "PaxosVote";
    case MsgKind::kPaxosAccepted: return "PaxosAccepted";
    case MsgKind::kTxnOpRequest: return "TxnOpRequest";
    case MsgKind::kTxnOpReply: return "TxnOpReply";
    case MsgKind::kTxnPrepare: return "TxnPrepare";
    case MsgKind::kTxnVote: return "TxnVote";
    case MsgKind::kTxnDecision: return "TxnDecision";
    case MsgKind::kTxnDecisionAck: return "TxnDecisionAck";
    case MsgKind::kHeartbeat: return "Heartbeat";
    case MsgKind::kAppData: return "AppData";
  }
  return "Unknown";
}

bool is_resolution_kind(MsgKind kind) {
  switch (kind) {
    case MsgKind::kException:
    case MsgKind::kHaveNested:
    case MsgKind::kNestedCompleted:
    case MsgKind::kAck:
    case MsgKind::kCommit:
      return true;
    default:
      return false;
  }
}

bool is_transport_kind(MsgKind kind) {
  return kind == MsgKind::kTransportAck;
}

const KindCounters& kind_counters(MsgKind kind) {
  // Direct-indexed by the enum value; kAppData = 1000 is the largest kind.
  // Built eagerly for every index under a magic static: the lazy
  // first-touch init it replaces raced when two campaign workers first sent
  // the same kind concurrently. After init the lookup is a lock-free read.
  static const std::array<KindCounters, 1025>& table = *[] {
    auto* t = new std::array<KindCounters, 1025>();
    for (std::size_t i = 0; i < t->size(); ++i) {
      const std::string suffix(kind_name(static_cast<MsgKind>(i)));
      (*t)[i].sent = CounterId::of("net.sent." + suffix);
      (*t)[i].delivered = CounterId::of("net.delivered." + suffix);
      (*t)[i].dropped = CounterId::of("net.dropped." + suffix);
      (*t)[i].duplicated = CounterId::of("net.duplicated." + suffix);
    }
    return t;
  }();
  const auto index = static_cast<std::size_t>(kind);
  CAA_CHECK_MSG(index < table.size(), "kind_counters: unknown kind");
  return table[index];
}

}  // namespace caa::net
