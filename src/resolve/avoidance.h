// Coordination avoidance: the commutative-exception fast path that skips
// the O(N²) Exception/ACK resolution exchange (ROADMAP item 3).
//
// The paper's algorithm always runs the full exchange, even when the
// outcome is a foregone conclusion. Following Soethout et al.'s
// path-sensitive commit idea (PAPERS.md), a raise whose exception sits in a
// *universal* subtree of the resolution tree — one where ANY concurrent
// pair of raises joins to the same ancestor (ex::ExceptionTree lattice) —
// can be resolved without hearing the rest of the raise set: the join of
// whatever the committee raised is pinned inside the subtree's universal
// cover.
//
// Protocol ("census at the leader"; all messages are net::MsgKind::
// kFastCover, which is deliberately NOT a resolution kind):
//
//   raiser  --kReport(e, cover)-->  live leader      (raise is SUPPRESSED:
//                                                     the engine stays
//                                                     Normal, untouched)
//   leader  --kProbe-->  members it has not heard from (armed one probe
//                        delay after the census opens; reports landing
//                        first make the probe a no-op)
//   member  --kNoRaise / kBusy-->  leader
//   leader: every live member accounted for?
//     - all reports carry the same valid cover, nobody busy, leader itself
//       idle-or-raising  ->  resolved := join-fold of the raised exceptions
//       (the memoized lattice; identical to ExceptionTree::resolve over the
//       same set), multicast kCommit, apply to the own engine LAST
//     - anything else  ->  multicast kFallback; every suppressed raiser
//       replays through ResolverCore::raise, which the census left in a
//       byte-identical Normal state — the full exchange runs as if the
//       fast path never existed, so resolved checksums match avoidance-off
//
// Local fallback triggers (no broadcast needed — the trigger itself is
// visible at every member): one of the five protocol messages arrives for
// this scope+round while the census is pending (a non-commuting raise went
// slow), or a member crash is detected. A report that reaches the leader
// after the round closed is answered with kStale and replayed.
//
// The coordinator is pure decision logic over injected hooks (the
// ResolverCore idiom): caa::Participant owns one per scope and forwards
// messages; none of the classification lives in participant.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ex/exception_tree.h"
#include "obs/health.h"
#include "resolve/messages.h"
#include "sim/event_queue.h"
#include "util/counters.h"

namespace caa::resolve {

class AvoidanceCoordinator {
 public:
  struct Hooks {
    /// Unicast to one member (the owner routes via the relay tree when the
    /// scope is in tree mode).
    std::function<void(ObjectId to, net::Bytes payload)> send;
    /// Multicast to every other member (flood in tree mode).
    std::function<void(const net::Bytes& payload)> multicast;
    /// The scope's current resolution round at the owner.
    std::function<std::uint32_t()> round;
    /// Lowest live member — the census leader (and relay-tree root).
    std::function<ObjectId()> live_leader;
    /// Engine state is Normal (no protocol traffic this round).
    std::function<bool()> engine_normal;
    /// This member may promise "kNoRaise": engine Normal, the scope is its
    /// active context (no nested children), not aborting, no handler
    /// running, not at the acceptance line, and no exclusions known.
    std::function<bool()> answer_idle;
    /// Applies a census commit to a Normal engine
    /// (ResolverCore::apply_fast_commit).
    std::function<void(const CommitMsg&)> apply_fast_commit;
    /// Applies a census commit when slow traffic crossed it
    /// (ResolverCore::apply_synced_commit).
    std::function<void(const CommitMsg&)> apply_synced_commit;
    /// Replays a suppressed raise through the untouched engine.
    std::function<void(ExceptionId, std::string)> replay_raise;
    /// Guarded scheduling (maps to ManagedObject::schedule_after).
    std::function<void(sim::Time delay, std::function<void()> fn)> schedule;
    /// Optional trace callback (event, detail).
    std::function<void(std::string_view, std::string)> trace;
  };

  /// `probe_delay` is how long the leader lets reports land before probing
  /// silent members — an efficiency knob only (correctness never depends on
  /// it): in the §4.4 all-raise every report beats the probe and the round
  /// costs (N-1) reports + (N-1) commits, under the 2N bench gate.
  /// `health` (optional) receives the census-open level
  /// (obs::Gauge::kResolveCensusOpen: open censuses + suppressed raises at
  /// this member); gauge pushes never touch `counters`.
  AvoidanceCoordinator(ObjectId self, const std::vector<ObjectId>* members,
                       const std::set<ObjectId>* excluded,
                       const ex::ExceptionTree* tree, ActionInstanceId scope,
                       sim::Time probe_delay, Hooks hooks, Counters* counters,
                       obs::HealthGauges* health = nullptr);
  ~AvoidanceCoordinator();

  /// Raise-side classification: suppresses the raise and reports it to the
  /// census when `exception` provably commutes — it has a valid universal
  /// cover and no member of the scope is excluded. Returns false when the
  /// raise must take the full exchange (`message` is only consumed on
  /// success; the caller falls through to ResolverCore::raise).
  bool try_fast_raise(ExceptionId exception, std::string&& message);

  /// True while this member's own suppressed raise is in flight. complete()
  /// is superseded by it exactly as the engine's Exceptional state
  /// supersedes completion in the full protocol.
  [[nodiscard]] bool raise_pending() const { return pending_; }

  /// False while a fast round is in flight at this member: a suppressed
  /// raise is pending, a census is open here (leader), or this member
  /// promised kNoRaise and the commit may still arrive. Gates nested
  /// enters and exit decisions.
  [[nodiscard]] bool idle() const {
    return !pending_ && !census_active_ && !promised_.has_value();
  }

  /// One kFastCover message for this scope. The owner has already filtered
  /// crashed senders and dead scopes; round routing happens here.
  void on_message(ObjectId from, const FastCoverMsg& m);

  /// One of the five protocol messages arrived for this scope's current
  /// round: the full exchange supersedes the census. Any suppressed raise
  /// replays NOW, before the owner delivers the trigger, so this member's
  /// exception multicast precedes its ACK of the other raiser's.
  void on_slow_traffic();

  /// A member crash aborts any census: the raise set is no longer provably
  /// commutative and the leader may be the victim. Suppressed raises
  /// replay; an already-multicast census commit survives through the
  /// owner's CrashSync barrier (last_commit redistribution).
  void on_peer_crashed(ObjectId peer);

  /// The round finished (any path): census, promise and suppressed-raise
  /// state for it is void.
  void on_round_finished();

  /// A kFastCover for an already-finished round. Stale reports are answered
  /// with kStale so the reporter replays its suppressed raise into the
  /// current round; everything else is protocol residue and dropped.
  void on_stale(ObjectId from, const FastCoverMsg& m);

  /// The fast path's current phase at this member, for watchdog diagnoses:
  /// "census" (leader, census open), "suppressed-raise", "promised", or
  /// "idle".
  [[nodiscard]] std::string_view phase() const {
    if (census_active_) return "census";
    if (pending_) return "suppressed-raise";
    if (promised_.has_value()) return "promised";
    return "idle";
  }

 private:
  struct Entry {
    enum class Kind : std::uint8_t { kRaise, kNoRaise, kBusy };
    Kind kind = Kind::kNoRaise;
    ExceptionId exception;
    ExceptionId cover;
  };

  void census_record(ObjectId member, Entry entry);
  void maybe_decide();
  void send_probes();
  void decide();
  void fall_back_census(std::string_view reason);
  void replay_suppressed();
  void handle_commit(const FastCoverMsg& m);
  [[nodiscard]] net::Bytes make(FastCoverMsg::Phase phase,
                                ExceptionId exception, ExceptionId cover,
                                std::uint32_t round) const;
  [[nodiscard]] std::size_t live_members() const;
  void trace(std::string_view event, std::string detail = {});
  /// Re-derives the census-open gauge contribution and pushes the delta.
  void sync_health();

  ObjectId self_;
  const std::vector<ObjectId>* members_;   // sorted, includes self
  const std::set<ObjectId>* excluded_;     // owner's per-scope exclusions
  const ex::ExceptionTree* tree_;
  ActionInstanceId scope_;
  sim::Time probe_delay_;
  Hooks hooks_;
  Counters* counters_ = nullptr;
  obs::HealthGauges* health_ = nullptr;
  std::int64_t gauge_ = 0;  // last-pushed census-open contribution

  // Raiser side: the suppressed raise (engine untouched until commit or
  // replay).
  bool pending_ = false;
  ExceptionId pending_exception_;
  std::string pending_message_;
  std::uint32_t pending_round_ = 0;

  // kNoRaise promise: a commit may arrive while the engine looks Normal, so
  // nested enters and exit decisions hold off until the round settles.
  std::optional<std::uint32_t> promised_;

  // Leader side: the census for the current round.
  bool census_active_ = false;
  std::uint32_t census_round_ = 0;
  std::map<ObjectId, Entry> census_;
  bool probe_armed_ = false;
  bool probes_sent_ = false;
};

}  // namespace caa::resolve
