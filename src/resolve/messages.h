// The five protocol messages of the paper's resolution algorithm (§4.1):
//   Exception(A, O_i, E)        — raised E within action A
//   HaveNested(O_i, A)          — O_i is inside an action nested in A and
//                                 starts aborting it
//   NestedCompleted(A, O_i, E)  — abortion finished; E optionally signalled
//   ACK(O_i)                    — acknowledges an Exception/NestedCompleted
//   Commit(E)                   — resolution result, from the chosen object
//
// Every message is scoped to one action *instance* so that messages of
// aborted nested instances can be recognized and discarded, and carries a
// *round* number — our clarification of the paper's "wait until all
// exception messages are handled": within one action instance, resolution
// rounds are numbered, stale-round messages are acknowledged but not
// recorded, and future-round messages are buffered.
#pragma once

#include <cstdint>

#include "net/message.h"
#include "util/ids.h"
#include "util/status.h"

namespace caa::resolve {

struct ExceptionMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId raiser;
  ExceptionId exception;
};

struct HaveNestedMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId sender;
};

struct NestedCompletedMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId sender;
  ExceptionId signalled;  // invalid() when the abortion signalled nothing
};

struct AckMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId sender;
};

struct CommitMsg {
  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId resolver;
  ExceptionId resolved;
};

/// Crash-tolerance extension (not one of the paper's five): when a member
/// learns that `crashed` failed, it pushes its resolution status for the
/// affected action to every other live member and withholds new Commits
/// until it has heard from each of them. The message carries at most one
/// Commit the sender knows about (pending or already applied) so that a
/// resolution the crashed member helped decide survives it; `commit_*` is
/// empty when `commit_resolved` is invalid. A `kGone` reply (round
/// kGoneRound) means the responder no longer participates in the action.
struct CrashSyncMsg {
  enum class Phase : std::uint8_t { kPush = 0, kReply = 1, kGone = 2 };
  static constexpr std::uint32_t kGoneRound = 0xffffffffu;

  ActionInstanceId scope;
  std::uint32_t round = 0;  // sender's current round (kGoneRound if gone)
  ObjectId sender;
  ObjectId crashed;
  Phase phase = Phase::kPush;
  std::uint32_t commit_round = 0;
  ObjectId commit_resolver;
  ExceptionId commit_resolved;  // invalid() = no commit known
};

/// Coordination-avoidance fast path (src/resolve/avoidance.h; not one of the
/// paper's five). A commutative round is decided by a census at the scope's
/// live leader: raisers report their exception + lattice cover, the leader
/// probes members it has not heard from, idle members answer kNoRaise, busy
/// ones kBusy. A unanimous census commits in one broadcast; anything else
/// broadcasts kFallback and every suppressed raiser replays into the full
/// Exception/ACK exchange. kStale redirects a report from a finished round.
struct FastCoverMsg {
  enum class Phase : std::uint8_t {
    kReport = 0,    // raiser -> leader: exception + universal cover
    kProbe = 1,     // leader -> silent member: raise status?
    kNoRaise = 2,   // member -> leader: idle, not raising this round
    kBusy = 3,      // member -> leader: not eligible (nested/aborting/...)
    kFallback = 4,  // leader -> all: census failed, replay via full exchange
    kCommit = 5,    // leader -> all: unanimous census, resolved locally
    kStale = 6,     // leader -> reporter: round already over, replay
  };

  ActionInstanceId scope;
  std::uint32_t round = 0;
  ObjectId sender;
  Phase phase = Phase::kReport;
  ExceptionId exception;  // kReport/kCommit; invalid() otherwise
  ExceptionId cover;      // kReport: sender's universal cover; else invalid()
};

net::Bytes encode(const ExceptionMsg& m);
net::Bytes encode(const HaveNestedMsg& m);
net::Bytes encode(const NestedCompletedMsg& m);
net::Bytes encode(const AckMsg& m);
net::Bytes encode(const CommitMsg& m);
net::Bytes encode(const CrashSyncMsg& m);
net::Bytes encode(const FastCoverMsg& m);

Result<ExceptionMsg> decode_exception(const net::Bytes& bytes);
Result<HaveNestedMsg> decode_have_nested(const net::Bytes& bytes);
Result<NestedCompletedMsg> decode_nested_completed(const net::Bytes& bytes);
Result<AckMsg> decode_ack(const net::Bytes& bytes);
Result<CommitMsg> decode_commit(const net::Bytes& bytes);
Result<CrashSyncMsg> decode_crash_sync(const net::Bytes& bytes);
Result<FastCoverMsg> decode_fast_cover(const net::Bytes& bytes);

/// Scope and round of any resolution-kind packet, without full decoding.
struct ScopeRound {
  ActionInstanceId scope;
  std::uint32_t round = 0;
};
Result<ScopeRound> peek_scope_round(const net::Bytes& bytes);

}  // namespace caa::resolve
