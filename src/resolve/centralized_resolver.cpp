#include "resolve/centralized_resolver.h"

#include <algorithm>

#include "net/wire.h"
#include "rt/runtime.h"
#include "util/check.h"

namespace caa::resolve {
namespace {
const caa::CounterId kRaiseSuperseded =
    caa::CounterId::of("central.raise_superseded");
}  // namespace


namespace {
net::Bytes encode_exception(ExceptionId e) {
  net::WireWriter w;
  w.u32(e.value());
  return std::move(w).take();
}

Result<ExceptionId> decode_exception_id(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto v = r.u32();
  if (!v.is_ok()) return v.status();
  return ExceptionId(v.value());
}
}  // namespace

void CentralizedParticipant::configure(Config config) {
  CAA_CHECK_MSG(config.tree != nullptr, "centralized resolver needs a tree");
  CAA_CHECK(std::is_sorted(config.members.begin(), config.members.end()));
  CAA_CHECK(std::binary_search(config.members.begin(), config.members.end(),
                               id()));
  config_ = std::move(config);
}

void CentralizedParticipant::raise(ExceptionId exception) {
  if (frozen_ || resolved_.valid()) {
    runtime().simulator().counters().add(kRaiseSuperseded);
    return;
  }
  CAA_CHECK(config_.tree->contains(exception));
  if (is_manager()) {
    manager_on_exception(id(), exception);
  } else {
    send(config_.members.front(), net::MsgKind::kCentralException,
         encode_exception(exception));
  }
}

void CentralizedParticipant::manager_on_exception(ObjectId raiser,
                                                  ExceptionId exception) {
  (void)raiser;
  if (resolved_.valid()) return;  // a late exception after commit: dropped
  collected_.push_back(exception);
  if (!freeze_sent_) {
    freeze_sent_ = true;
    frozen_ = true;
    for (ObjectId member : config_.members) {
      if (member == id()) continue;
      send(member, net::MsgKind::kCentralFreeze, net::Bytes{});
    }
  }
  manager_maybe_commit();
}

void CentralizedParticipant::manager_on_frozen_ack(ObjectId from,
                                                   ExceptionId pending) {
  if (pending.valid()) collected_.push_back(pending);
  acked_[from] = true;
  manager_maybe_commit();
}

void CentralizedParticipant::manager_maybe_commit() {
  if (!freeze_sent_ || resolved_.valid()) return;
  for (ObjectId member : config_.members) {
    if (member == id()) continue;
    auto it = acked_.find(member);
    if (it == acked_.end() || !it->second) return;
  }
  resolved_ = config_.tree->resolve(collected_);
  const net::Bytes payload = encode_exception(resolved_);
  for (ObjectId member : config_.members) {
    if (member == id()) continue;
    send(member, net::MsgKind::kCentralCommit,
         net::BytesPool::local().copy_of(payload));
  }
}

void CentralizedParticipant::on_message(ObjectId from, net::MsgKind kind,
                                        const net::Bytes& payload) {
  switch (kind) {
    case net::MsgKind::kCentralException: {
      CAA_CHECK_MSG(is_manager(), "Exception routed to a non-manager");
      auto e = decode_exception_id(payload);
      if (!e.is_ok()) return;
      manager_on_exception(from, e.value());
      return;
    }
    case net::MsgKind::kCentralFreeze: {
      frozen_ = true;
      // No exception can be pending here: a raise before the Freeze was
      // already sent on the same FIFO channel and will be collected first.
      send(config_.members.front(), net::MsgKind::kCentralFrozenAck,
           encode_exception(ExceptionId::invalid()));
      return;
    }
    case net::MsgKind::kCentralFrozenAck: {
      CAA_CHECK_MSG(is_manager(), "FrozenAck routed to a non-manager");
      auto e = decode_exception_id(payload);
      if (!e.is_ok()) return;
      manager_on_frozen_ack(from, e.value());
      return;
    }
    case net::MsgKind::kCentralCommit: {
      auto e = decode_exception_id(payload);
      if (!e.is_ok()) return;
      resolved_ = e.value();
      return;
    }
    default:
      return;
  }
}

}  // namespace caa::resolve
