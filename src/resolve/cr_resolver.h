// Baseline: the Campbell–Randell 1986 exception-resolution algorithm, as
// characterized in §3.3 and compared against in §4.4.
//
// Differences from the paper's new algorithm, reproduced faithfully here:
//  * Each participant only has handlers for a *reduced* tree (a subset of
//    the declared exceptions), not for all of them.
//  * Third source of exceptions: a participant informed of an exception it
//    has no handler for walks up the full tree to the nearest exception it
//    CAN handle and raises that one too — which on adversarial (chain)
//    trees with staggered handler sets produces the §3.3 "domino effect".
//  * Every participant re-resolves after every raise, and raises are
//    broadcast + individually acknowledged, giving O(N^3) messages in the
//    worst case (each of N objects re-raises O(N) times, each raise costing
//    O(N) messages).
//  * Termination/commit uses a stability timeout: when no new exception has
//    been learned for `stability_delay`, the largest-id raiser broadcasts
//    CrCommit and every participant starts the handler nearest (in its
//    reduced tree) to the resolved exception.
//
// The baseline only supports flat (non-nested) actions — nested abortion is
// exactly what [5] left unspecified (§3.3) — which is all the comparison
// benches need.
#pragma once

#include <set>
#include <vector>

#include "ex/exception_tree.h"
#include "rt/managed_object.h"

namespace caa::resolve {

class CrParticipant : public rt::ManagedObject {
 public:
  struct Config {
    std::vector<ObjectId> members;       // sorted, includes self
    const ex::ExceptionTree* tree = nullptr;
    std::set<ExceptionId> handled;       // reduced tree (must include root)
    sim::Time stability_delay = 2000;
  };

  void configure(Config config);

  /// Application-level raise.
  void raise(ExceptionId exception);

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

  /// The exception whose handler ran here (invalid until commit).
  [[nodiscard]] ExceptionId handler_ran() const { return handler_ran_; }
  /// The globally resolved exception (invalid until commit).
  [[nodiscard]] ExceptionId resolved() const { return resolved_; }
  /// Number of raise broadcasts this object performed (incl. re-raises).
  [[nodiscard]] int raises_sent() const { return raises_sent_; }

 private:
  void raise_internal(ExceptionId exception);
  void reconsider();
  void bump_timer();
  void on_stable();
  void multicast(net::MsgKind kind, const net::Bytes& payload);

  Config config_;
  std::set<ExceptionId> known_;
  std::set<ObjectId> raisers_;
  EventId timer_;
  int raises_sent_ = 0;
  ExceptionId handler_ran_;
  ExceptionId resolved_;
  bool committed_ = false;
};

}  // namespace caa::resolve
