// Baseline: Arche-style exception resolution (§4.4, [12]).
//
// Arche resolves multiple exceptions propagated from several objects of the
// same type through a *resolution function* evaluated at the point of a
// multi-function call: every callee reports its exception (or none), the
// caller computes one "concerted" exception and handles it. This maps to a
// coordinator gathering one report per member and multicasting the result —
// 2N messages, but structurally limited: it needs the synchronous
// multi-call, cannot express nested actions, belated participants or
// abortion, and is restricted to NVP-style groups (all members finish
// together). The benches use it as the cheap-but-limited reference point.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ex/exception_tree.h"
#include "rt/managed_object.h"

namespace caa::resolve {

/// The coordinator (the multi-function caller).
class ArcheCoordinator : public rt::ManagedObject {
 public:
  /// `resolution` defaults to the LCA over the reported exceptions.
  struct Config {
    std::vector<ObjectId> members;
    const ex::ExceptionTree* tree = nullptr;
    std::function<ExceptionId(const std::vector<ExceptionId>&)> resolution;
  };

  void configure(Config config);

  [[nodiscard]] ExceptionId concerted() const { return concerted_; }
  [[nodiscard]] bool done() const { return done_; }

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

 private:
  Config config_;
  std::vector<ExceptionId> reported_;
  std::size_t reports_ = 0;
  ExceptionId concerted_;
  bool done_ = false;
};

/// A member of the multi-function call: reports its outcome at call end.
class ArcheMember : public rt::ManagedObject {
 public:
  void configure(ObjectId coordinator) { coordinator_ = coordinator; }

  /// Finishes the member's part of the call, optionally with an exception.
  void finish(ExceptionId exception = ExceptionId::invalid());

  [[nodiscard]] ExceptionId concerted() const { return concerted_; }

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

 private:
  ObjectId coordinator_;
  ExceptionId concerted_;
};

}  // namespace caa::resolve
