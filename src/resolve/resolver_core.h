// The distributed exception-resolution state machine of §4.2 — the paper's
// primary contribution — for ONE participant in ONE action instance during
// ONE resolution round.
//
// The engine is pure protocol logic: all I/O happens through injected hooks
// (multicast / send / abort-nested / start-handler), which makes it unit-
// testable by feeding messages directly, and reusable over any transport.
//
// State mapping to the paper:
//   kNormal      = N
//   kExceptional = X  (an exception was raised here, or our abortion
//                      handlers signalled one)
//   kSuspended   = S  (we learned of an exception elsewhere)
//   kReady       = R  (X + all ACKs received + all nested completions in)
//   kAborting    —  transient sub-state of the paper's nested branch, while
//                    abortion handlers of nested actions run (the paper's
//                    pseudo-code treats abortion as one atomic step; with
//                    real handler durations it is asynchronous)
//   kHandling    —  terminal for the round: Commit processed, handler started
//
// Data mapping: le_ = LE_i, lo_state_ = LO_i, acked_ = LP_i. (SA_i, the
// context stack, lives in caa::Participant, which owns one engine per
// context.) LO_i and LP_i are keyed by member rank in the sorted group list
// rather than stored as node-based containers: the protocol touches them
// once per incoming message, and a byte-per-member array costs a binary
// search instead of a rb-tree allocation on that path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "ex/exception.h"
#include "ex/exception_tree.h"
#include "obs/obs.h"
#include "resolve/messages.h"

namespace caa::resolve {

class ResolverCore {
 public:
  enum class State : std::uint8_t {
    kNormal,
    kExceptional,
    kSuspended,
    kReady,
    kAborting,
    kHandling,
  };

  struct Hooks {
    /// Sends a protocol message to every group member except self.
    std::function<void(net::MsgKind, net::Bytes)> multicast;
    /// Sends a protocol message to one member.
    std::function<void(ObjectId, net::MsgKind, net::Bytes)> send;
    /// Aborts all actions nested below this scope (abortion handlers,
    /// innermost first) and eventually calls done(signalled) with the one
    /// exception the *directly* nested action's abortion handler signalled,
    /// or invalid if none. Asynchronous: may complete after simulated time.
    std::function<void(std::function<void(ExceptionId)> done)> abort_nested;
    /// Starts this participant's handler for the resolved exception.
    std::function<void(ExceptionId resolved, ObjectId resolver)> start_handler;
    /// §4.2 "clean up messages related to nested actions": peer announced
    /// HaveNested, so its buffered messages scoped to nested actions are
    /// obsolete.
    std::function<void(ObjectId peer)> purge_nested_from;
    /// Optional trace callback (event, detail).
    std::function<void(std::string_view, std::string)> trace;
    /// Optional cheap probe: is tracing actually recording right now? The
    /// engine consults it before building detail strings on per-message
    /// paths, so an installed-but-disabled trace sink costs nothing. When
    /// unset, an installed `trace` callback counts as enabled.
    std::function<bool()> trace_enabled;
    /// Optional observability hub. When set and enabled, the engine opens a
    /// span per resolution round on `obs_track` and tabulates its protocol
    /// sends per (scope, round, kind) for the §4.4 run report. Guarded by
    /// obs->enabled() at every use — null or disabled costs one branch.
    obs::Observability* obs = nullptr;
    /// Tracer track the round spans land on (the owner's object id).
    obs::TrackId obs_track = 0;
  };

  /// `members` must be the sorted participant list of the action (G_A),
  /// including `self` — the §4.1 total order.
  ///
  /// `committee` implements the paper's fault-tolerance extension ("the
  /// algorithm can be easily extended to the use of a group of objects that
  /// are responsible for performing resolution and producing the commit
  /// messages", §4.4): the `committee` largest raisers each resolve and
  /// multicast Commit. Every Ready raiser knows the complete LE set (FIFO +
  /// suspension argument), so all commits carry the same resolved
  /// exception; receivers apply the first and drop the duplicates as
  /// stale. Cost: an extra (committee-1)(N-1) messages — a constant factor.
  ResolverCore(ObjectId self, std::vector<ObjectId> members,
               const ex::ExceptionTree* tree, ActionInstanceId scope,
               std::uint32_t round, Hooks hooks, std::uint32_t committee = 1);

  /// Closes this round's span if the engine dies mid-resolution (the round
  /// was superseded by an outer resolution aborting the whole context).
  ~ResolverCore();

  /// Crash-tolerance extension (fail-stop model): marks a group member as
  /// crashed. The member no longer counts towards ACK completeness, its
  /// pending nested completion is waived, and it is skipped when choosing
  /// the resolving object(s). Exceptions it raised are expunged from LE and
  /// later deliveries from it are ignored: survivors that received them and
  /// survivors that did not must compute the same resolution, so only
  /// live-raiser exceptions may contribute (a resolution the crashed member
  /// already committed is preserved by the owner's CrashSync barrier, not
  /// by LE).
  void exclude_member(ObjectId peer);

  /// Crash-tolerance extension: while gated, this engine reaches Ready but
  /// withholds *creating* a Commit (committee self-resolution) until the
  /// owner's CrashSync barrier completes; applying a received or synced
  /// commit stays allowed. Ungating re-evaluates readiness immediately.
  void set_commit_gate(bool gated);

  /// Test-only (action::DebugBugs::exclusion_divergence): keep a crashed
  /// member's exceptions in LE and accept its belated deliveries, restoring
  /// the pre-PR 5 divergence hole the systematic explorer must rediscover.
  void set_debug_keep_crashed(bool on) { debug_keep_crashed_ = on; }

  /// A commit received while Exceptional and held until Ready. The owner's
  /// CrashSync push advertises it so a resolution decided just before a
  /// crash survives the crash.
  [[nodiscard]] const std::optional<CommitMsg>& held_commit() const {
    return pending_commit_;
  }

  /// Applies a commit learned through the CrashSync barrier. Unlike
  /// on_commit this accepts a commit produced by a now-excluded resolver:
  /// the barrier only forwards commits some live member already holds, so
  /// applying it cannot diverge from the survivors.
  void apply_synced_commit(const CommitMsg& m);

  /// Coordination-avoidance fast path (src/resolve/avoidance.h): applies a
  /// commit decided by a unanimous leader census. The engine must still be
  /// Normal — a fast round, by construction, exchanges none of the five
  /// protocol messages, so the engine wakes from Normal straight into the
  /// handler. If slow traffic crossed the census the owner replays the
  /// suppressed raise first and applies via apply_synced_commit instead.
  void apply_fast_commit(const CommitMsg& m);

  /// Crash-tolerance extension: true iff some KNOWN raiser is still alive.
  /// When false while Suspended, the round can never commit (no live
  /// object is allowed to resolve) — a survivor must promote itself with
  /// raise_from_suspended().
  [[nodiscard]] bool has_live_raiser() const;

  /// Crash-tolerance extension: raises `exception` from the Suspended
  /// state. Only legal when every known raiser has been excluded; the
  /// caller becomes a raiser so the resolution can complete among the
  /// survivors.
  void raise_from_suspended(ExceptionId exception);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint32_t round() const { return round_; }
  [[nodiscard]] ActionInstanceId scope() const { return scope_; }

  /// The LE list (raised exceptions known so far).
  [[nodiscard]] const std::vector<ex::Exception>& exceptions() const {
    return le_;
  }

  /// Local raise. Precondition: state is Normal (an object whose
  /// application code is suspended or already exceptional cannot raise —
  /// §4.1 allows one exception per object per action).
  void raise(ExceptionId exception, std::string message = {});

  /// Called by the owner when a trigger message (Exception or HaveNested in
  /// this scope) arrives while this participant's *active* action is nested
  /// below this scope. Implements the paper's HaveNested branch. The trigger
  /// itself is processed after abortion completes.
  void on_trigger_while_nested(
      std::variant<ExceptionMsg, HaveNestedMsg> trigger);

  /// Message deliveries for this scope+round (router guarantees both match).
  void on_exception(const ExceptionMsg& m);
  void on_have_nested(const HaveNestedMsg& m);
  void on_nested_completed(const NestedCompletedMsg& m);
  void on_ack(const AckMsg& m);
  void on_commit(const CommitMsg& m);

  /// True once the round finished (handler started).
  [[nodiscard]] bool finished() const { return state_ == State::kHandling; }

  /// Members this engine is still waiting on: live peers whose ACK has not
  /// arrived (while one is awaited) plus peers with a pending nested
  /// completion. Empty for a round that cannot stall. The liveness
  /// watchdog's "awaiting" list.
  [[nodiscard]] std::vector<ObjectId> awaited_members() const;

  /// Resolution result, valid once finished().
  [[nodiscard]] ExceptionId resolved() const { return resolved_; }

 private:
  using AnyMsg = std::variant<ExceptionMsg, HaveNestedMsg, NestedCompletedMsg,
                              AckMsg, CommitMsg>;

  void process(const AnyMsg& m);
  void handle_exception(const ExceptionMsg& m);
  void handle_have_nested(const HaveNestedMsg& m);
  void handle_nested_completed(const NestedCompletedMsg& m);
  void handle_ack(const AckMsg& m);
  void handle_commit(const CommitMsg& m);

  void abort_finished(ExceptionId signalled);
  void record_exception(ExceptionId exception, ObjectId raiser,
                        std::string message = {});
  void send_ack(ObjectId to);
  /// Tabulates `n` protocol messages just sent (no-op unless observing).
  void note_send(net::MsgKind kind, std::int64_t n);
  /// Pushes a protocol record (raise / state / resolved) into the flight
  /// recorder (no-op when the recorder is off or no hub is wired).
  void record_flight(obs::RecType type, std::uint32_t code);
  /// Opens the round span on first departure from Normal (idempotent).
  void begin_round_span();
  void suspend_if_normal();
  void maybe_ready();
  /// Runs the Ready-state obligations: apply a held commit, or — unless the
  /// commit gate is on — self-resolve when this object is in the committee.
  void ready_actions();
  void finish(const CommitMsg& m);
  [[nodiscard]] bool tracing() const;
  void trace(std::string_view event, std::string detail = {});

  [[nodiscard]] bool all_acks_received() const;
  [[nodiscard]] bool all_nested_completed() const;
  [[nodiscard]] bool self_in_committee() const;

  /// The hub's gauge store (nullptr when no hub is wired — unit tests).
  [[nodiscard]] obs::HealthGauges* health() const;
  /// Re-derives this engine's contribution to the resolve gauges (active
  /// rounds, outstanding ACKs) and pushes the deltas. Called from every
  /// public entry point; a few integer ops, no counters touched.
  void sync_health();

  /// Index of `member` in the sorted members_ list; contract violation if
  /// the id is not a group member (the router only delivers group traffic).
  [[nodiscard]] std::size_t member_rank(ObjectId member) const;

  ObjectId self_;
  std::vector<ObjectId> members_;  // sorted, includes self
  const ex::ExceptionTree* tree_;
  ActionInstanceId scope_;
  std::uint32_t round_;
  Hooks hooks_;
  std::uint32_t committee_ = 1;
  bool members_contiguous_ = false;  // ids consecutive: rank by subtraction
  std::set<ObjectId> excluded_;  // crashed members (extension)
  bool debug_keep_crashed_ = false;  // test-only planted bug (DebugBugs)

  // LO_i entry lifecycle, indexed by member rank.
  enum : std::uint8_t { kLoAbsent = 0, kLoPending = 1, kLoCompleted = 2 };

  State state_ = State::kNormal;
  std::vector<ex::Exception> le_;        // LE_i
  std::vector<std::uint8_t> lo_state_;   // LO_i: per-rank kLo* state
  std::vector<std::uint8_t> acked_;      // LP_i: per-rank "ACK received"
  // Maintained tallies so completeness checks are O(1). maybe_ready() runs
  // per incoming message; rescanning the member list there made large flat
  // groups quadratic in N (a raiser awaiting N-1 ACKs paid an O(N) scan per
  // ACK). acks_live_ counts distinct non-excluded ACK senders; lo_pending_
  // counts LO entries that are neither completed nor excluded.
  std::size_t acks_live_ = 0;
  std::size_t lo_pending_ = 0;
  std::set<ObjectId> raisers_;
  bool awaiting_acks_ = false;  // we multicast Exception or NestedCompleted
  bool commit_gated_ = false;   // CrashSync barrier in progress (extension)
  std::optional<CommitMsg> pending_commit_;
  std::vector<AnyMsg> queued_;  // messages deferred while kAborting
  ExceptionId resolved_;
  obs::SpanId round_span_ = obs::SpanId::invalid();
  // This engine's last-pushed gauge contributions (so deltas are exact and
  // the destructor can retract them when a round is superseded).
  std::int64_t active_gauge_ = 0;
  std::int64_t acks_gauge_ = 0;
};

[[nodiscard]] std::string_view to_string(ResolverCore::State state);

}  // namespace caa::resolve
