#include "resolve/resolver_core.h"

#include <algorithm>

#include "util/check.h"

namespace caa::resolve {

std::string_view to_string(ResolverCore::State state) {
  switch (state) {
    case ResolverCore::State::kNormal: return "N";
    case ResolverCore::State::kExceptional: return "X";
    case ResolverCore::State::kSuspended: return "S";
    case ResolverCore::State::kReady: return "R";
    case ResolverCore::State::kAborting: return "A";
    case ResolverCore::State::kHandling: return "H";
  }
  return "?";
}

ResolverCore::ResolverCore(ObjectId self, std::vector<ObjectId> members,
                           const ex::ExceptionTree* tree,
                           ActionInstanceId scope, std::uint32_t round,
                           Hooks hooks, std::uint32_t committee)
    : self_(self),
      members_(std::move(members)),
      tree_(tree),
      scope_(scope),
      round_(round),
      hooks_(std::move(hooks)),
      committee_(committee == 0 ? 1 : committee) {
  CAA_CHECK_MSG(tree_ != nullptr, "resolver needs an exception tree");
  CAA_CHECK_MSG(std::is_sorted(members_.begin(), members_.end()),
                "members must be sorted (§4.1 ordering)");
  CAA_CHECK_MSG(
      std::binary_search(members_.begin(), members_.end(), self_),
      "self must be a group member");
  lo_state_.assign(members_.size(), kLoAbsent);
  acked_.assign(members_.size(), 0);
  members_contiguous_ =
      members_.back().value() - members_.front().value() == members_.size() - 1;
}

ResolverCore::~ResolverCore() {
  if (round_span_.valid() && hooks_.obs != nullptr) {
    hooks_.obs->tracer().end_args(round_span_, "superseded");
  }
  // A superseded engine retracts its gauge contributions so world-level
  // levels stay exact.
  if (obs::HealthGauges* h = health(); h != nullptr) {
    h->add(obs::Gauge::kResolveActiveRounds, -active_gauge_);
    h->add(obs::Gauge::kResolveOutstandingAcks, -acks_gauge_);
  }
}

obs::HealthGauges* ResolverCore::health() const {
  return hooks_.obs != nullptr ? &hooks_.obs->health() : nullptr;
}

void ResolverCore::sync_health() {
  obs::HealthGauges* h = health();
  if (h == nullptr) return;
  const std::int64_t active =
      state_ != State::kNormal && state_ != State::kHandling ? 1 : 0;
  if (active != active_gauge_) {
    h->add(obs::Gauge::kResolveActiveRounds, active - active_gauge_);
    active_gauge_ = active;
    if (active != 0) {
      h->set_max(obs::Gauge::kResolveMaxRound,
                 static_cast<std::int64_t>(round_) + 1);
    }
  }
  std::int64_t awaited = 0;
  if (awaiting_acks_ && active != 0) {
    awaited = static_cast<std::int64_t>(members_.size() - 1 -
                                        excluded_.size() - acks_live_);
  }
  if (awaited != acks_gauge_) {
    h->add(obs::Gauge::kResolveOutstandingAcks, awaited - acks_gauge_);
    acks_gauge_ = awaited;
  }
}

std::vector<ObjectId> ResolverCore::awaited_members() const {
  std::vector<ObjectId> waiting;
  for (std::size_t rank = 0; rank < members_.size(); ++rank) {
    const ObjectId member = members_[rank];
    if (member == self_ || excluded_.contains(member)) continue;
    const bool ack_due = awaiting_acks_ && state_ != State::kHandling &&
                         acked_[rank] == 0;
    if (ack_due || lo_state_[rank] == kLoPending) waiting.push_back(member);
  }
  return waiting;
}

std::size_t ResolverCore::member_rank(ObjectId member) const {
  // Scenario builders hand out consecutive object ids, so the common case is
  // a contiguous sorted group where rank is a subtraction.
  if (members_contiguous_) {
    const std::size_t rank = member.value() - members_.front().value();
    CAA_CHECK_MSG(member.value() >= members_.front().value() &&
                      rank < members_.size(),
                  "sender is not a group member");
    return rank;
  }
  const auto it = std::lower_bound(members_.begin(), members_.end(), member);
  CAA_CHECK_MSG(it != members_.end() && *it == member,
                "sender is not a group member");
  return static_cast<std::size_t>(it - members_.begin());
}

bool ResolverCore::tracing() const {
  if (!hooks_.trace) return false;
  return !hooks_.trace_enabled || hooks_.trace_enabled();
}

void ResolverCore::trace(std::string_view event, std::string detail) {
  if (tracing()) hooks_.trace(event, std::move(detail));
}

void ResolverCore::record_flight(obs::RecType type, std::uint32_t code) {
  if (hooks_.obs == nullptr) return;
  obs::FlightRecorder& recorder = hooks_.obs->recorder();
  if (!recorder.enabled()) return;
  recorder.record_protocol(type, self_.value(), scope_.value(), round_, code);
}

void ResolverCore::note_send(net::MsgKind kind, std::int64_t n) {
  if (hooks_.obs != nullptr && hooks_.obs->enabled()) {
    hooks_.obs->metrics().note_protocol_send(scope_, round_, kind, n);
  }
}

void ResolverCore::begin_round_span() {
  if (hooks_.obs != nullptr && hooks_.obs->enabled() &&
      !round_span_.valid()) {
    // Async: an outer action's round outlives nested action spans on this
    // track when the round aborts them (Figure 4), so it cannot stack-nest.
    round_span_ = hooks_.obs->tracer().begin_async(
        hooks_.obs_track, "round", "round " + std::to_string(round_));
  }
}

void ResolverCore::raise(ExceptionId exception, std::string message) {
  CAA_CHECK_MSG(state_ == State::kNormal,
                "raise() allowed only in the Normal state (one exception per "
                "object per action, §4.1)");
  CAA_CHECK_MSG(tree_->contains(exception),
                "raise(): exception not declared in the action's tree");
  state_ = State::kExceptional;
  begin_round_span();
  record_flight(obs::RecType::kRaise, exception.value());
  record_exception(exception, self_, std::move(message));
  awaiting_acks_ = true;
  trace("raise", tree_->name_of(exception));
  hooks_.multicast(net::MsgKind::kException,
                   encode(ExceptionMsg{scope_, round_, self_, exception}));
  note_send(net::MsgKind::kException,
            static_cast<std::int64_t>(members_.size() - 1));
  maybe_ready();  // degenerate single-member group resolves immediately
  sync_health();
}

void ResolverCore::on_trigger_while_nested(
    std::variant<ExceptionMsg, HaveNestedMsg> trigger) {
  if (state_ == State::kAborting) {
    // Already aborting for this scope: just queue the trigger message; it
    // will be recorded/ACKed after abortion like any other.
    std::visit([this](const auto& m) { queued_.push_back(m); }, trigger);
    return;
  }
  CAA_CHECK_MSG(state_ == State::kNormal,
                "nested trigger in a non-Normal outer context");
  state_ = State::kAborting;
  begin_round_span();
  record_flight(obs::RecType::kState, static_cast<std::uint32_t>(state_));
  trace("state N->aborting");
  hooks_.multicast(net::MsgKind::kHaveNested,
                   encode(HaveNestedMsg{scope_, round_, self_}));
  note_send(net::MsgKind::kHaveNested,
            static_cast<std::int64_t>(members_.size() - 1));
  std::visit([this](const auto& m) { queued_.push_back(m); }, trigger);
  hooks_.abort_nested([this](ExceptionId signalled) {
    abort_finished(signalled);
  });
  sync_health();
}

void ResolverCore::abort_finished(ExceptionId signalled) {
  CAA_CHECK(state_ == State::kAborting);
  // §4.2: "empty LE_i, LO_i, LP_i" — state of any *nested* resolution was
  // discarded with the nested contexts; this engine's own lists can only
  // hold entries queued for this scope, which we are about to replay, so
  // clearing here mirrors the pseudo-code.
  le_.clear();
  std::fill(lo_state_.begin(), lo_state_.end(), kLoAbsent);
  std::fill(acked_.begin(), acked_.end(), std::uint8_t{0});
  acks_live_ = 0;
  lo_pending_ = 0;
  raisers_.clear();
  awaiting_acks_ = true;  // NestedCompleted is acknowledged by every member
  hooks_.multicast(
      net::MsgKind::kNestedCompleted,
      encode(NestedCompletedMsg{scope_, round_, self_, signalled}));
  note_send(net::MsgKind::kNestedCompleted,
            static_cast<std::int64_t>(members_.size() - 1));
  if (signalled.valid()) {
    state_ = State::kExceptional;
    record_flight(obs::RecType::kRaise, signalled.value());
    record_exception(signalled, self_, "signalled by abortion handler");
    trace("abort done, signalling", tree_->name_of(signalled));
  } else {
    state_ = State::kSuspended;
    record_flight(obs::RecType::kState, static_cast<std::uint32_t>(state_));
    trace("abort done, nothing signalled");
  }
  // Replay messages that arrived during the abortion.
  std::vector<AnyMsg> queued = std::move(queued_);
  queued_.clear();
  for (const auto& m : queued) process(m);
  maybe_ready();
  sync_health();
}

void ResolverCore::process(const AnyMsg& m) {
  std::visit(
      [this](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, ExceptionMsg>) {
          handle_exception(msg);
        } else if constexpr (std::is_same_v<T, HaveNestedMsg>) {
          handle_have_nested(msg);
        } else if constexpr (std::is_same_v<T, NestedCompletedMsg>) {
          handle_nested_completed(msg);
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          handle_ack(msg);
        } else {
          handle_commit(msg);
        }
      },
      m);
}

void ResolverCore::on_exception(const ExceptionMsg& m) {
  if (state_ == State::kAborting) {
    queued_.push_back(m);
    return;
  }
  handle_exception(m);
  sync_health();
}

void ResolverCore::on_have_nested(const HaveNestedMsg& m) {
  if (state_ == State::kAborting) {
    queued_.push_back(m);
    return;
  }
  handle_have_nested(m);
  sync_health();
}

void ResolverCore::on_nested_completed(const NestedCompletedMsg& m) {
  if (state_ == State::kAborting) {
    queued_.push_back(m);
    return;
  }
  handle_nested_completed(m);
  sync_health();
}

void ResolverCore::on_ack(const AckMsg& m) {
  if (state_ == State::kAborting) {
    queued_.push_back(m);
    return;
  }
  handle_ack(m);
  sync_health();
}

void ResolverCore::on_commit(const CommitMsg& m) {
  if (state_ == State::kAborting) {
    queued_.push_back(m);
    return;
  }
  handle_commit(m);
  sync_health();
}

void ResolverCore::handle_exception(const ExceptionMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  CAA_CHECK_MSG(state_ != State::kHandling,
                "router must not deliver into a finished round");
  // A crashed member's exception must not enter LE (see exclude_member):
  // survivors it reached and survivors it missed have to agree. Replays of
  // messages queued during an abortion land here too, so the router's
  // from-crashed filter alone is not enough.
  if (excluded_.contains(m.raiser) && !debug_keep_crashed_) {
    trace("exception from crashed member dropped",
          "O" + std::to_string(m.raiser.value()));
    return;
  }
  suspend_if_normal();
  record_exception(m.exception, m.raiser);
  send_ack(m.raiser);
  maybe_ready();
}

void ResolverCore::handle_have_nested(const HaveNestedMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  if (excluded_.contains(m.sender)) return;  // its completion is waived
  suspend_if_normal();
  // Not completed yet (unless NestedCompleted somehow already arrived, which
  // FIFO channels rule out; a kLoCompleted entry stays completed).
  if (std::uint8_t& lo = lo_state_[member_rank(m.sender)]; lo == kLoAbsent) {
    lo = kLoPending;
    if (!excluded_.contains(m.sender)) ++lo_pending_;
  }
  if (hooks_.purge_nested_from) hooks_.purge_nested_from(m.sender);
  if (tracing()) {
    trace("have_nested from", "O" + std::to_string(m.sender.value()));
  }
}

void ResolverCore::handle_nested_completed(const NestedCompletedMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  if (excluded_.contains(m.sender)) return;  // signalled exception expunged
  suspend_if_normal();
  if (std::uint8_t& lo = lo_state_[member_rank(m.sender)];
      lo != kLoCompleted) {
    if (lo == kLoPending && !excluded_.contains(m.sender)) --lo_pending_;
    lo = kLoCompleted;
  }
  send_ack(m.sender);
  if (m.signalled.valid()) {
    record_exception(m.signalled, m.sender);
  }
  maybe_ready();
}

void ResolverCore::handle_ack(const AckMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  if (std::uint8_t& acked = acked_[member_rank(m.sender)]; acked == 0) {
    acked = 1;
    if (m.sender != self_ && !excluded_.contains(m.sender)) ++acks_live_;
  }
  maybe_ready();
}

void ResolverCore::handle_commit(const CommitMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  // A commit from a crashed resolver is dropped uniformly: members it
  // reached pre-crash already applied (or hold) it and the CrashSync
  // barrier re-distributes it; members it missed must not apply a value
  // the rest never sees.
  if (excluded_.contains(m.resolver)) {
    trace("commit from crashed member dropped",
          "O" + std::to_string(m.resolver.value()));
    return;
  }
  pending_commit_ = m;
  if (state_ == State::kSuspended || state_ == State::kReady) {
    finish(m);
  }
  // In kExceptional we hold the commit until Ready (all our ACKs in) so the
  // round closes only when nobody still needs our bookkeeping.
  maybe_ready();
}

void ResolverCore::apply_synced_commit(const CommitMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  if (state_ == State::kHandling) return;  // already resolved this round
  pending_commit_ = m;
  if (state_ == State::kSuspended || state_ == State::kReady) {
    finish(m);
    return;
  }
  // kExceptional holds it until Ready; kAborting keeps it pending and the
  // post-abortion maybe_ready() applies it.
  maybe_ready();
  sync_health();
}

void ResolverCore::apply_fast_commit(const CommitMsg& m) {
  CAA_CHECK(m.scope == scope_ && m.round == round_);
  CAA_CHECK_MSG(state_ == State::kNormal,
                "fast commit: engine saw protocol traffic this round");
  suspend_if_normal();
  finish(m);
  sync_health();
}

void ResolverCore::record_exception(ExceptionId exception, ObjectId raiser,
                                    std::string message) {
  CAA_CHECK_MSG(tree_->contains(exception),
                "exception not declared in this action's resolution tree");
  if (raisers_.insert(raiser).second) {
    le_.push_back(ex::Exception{exception, raiser, scope_, std::move(message)});
  }
}

void ResolverCore::send_ack(ObjectId to) {
  hooks_.send(to, net::MsgKind::kAck, encode(AckMsg{scope_, round_, self_}));
  note_send(net::MsgKind::kAck, 1);
}

void ResolverCore::suspend_if_normal() {
  if (state_ == State::kNormal) {
    state_ = State::kSuspended;
    begin_round_span();
    record_flight(obs::RecType::kState, static_cast<std::uint32_t>(state_));
    trace("state N->S");
  }
}

bool ResolverCore::all_acks_received() const {
  // excluded_ never holds self (exclude_member filters it), so the live
  // member count needing ACKs is members-1 minus the excluded.
  return acks_live_ >= members_.size() - 1 - excluded_.size();
}

bool ResolverCore::all_nested_completed() const { return lo_pending_ == 0; }

bool ResolverCore::self_in_committee() const {
  CAA_CHECK(!raisers_.empty());
  // The `committee_` largest LIVE raisers resolve (§4.4 extension; with
  // committee == 1 this is exactly the paper's "biggest number among all
  // objects that raised exceptions").
  std::uint32_t rank = 0;
  for (auto it = raisers_.rbegin(); it != raisers_.rend(); ++it) {
    if (excluded_.contains(*it)) continue;
    if (*it == self_) return rank < committee_;
    ++rank;
    if (rank >= committee_) return false;
  }
  return false;  // self not a live raiser (cannot happen while in X)
}

bool ResolverCore::has_live_raiser() const {
  for (ObjectId raiser : raisers_) {
    if (!excluded_.contains(raiser)) return true;
  }
  return false;
}

void ResolverCore::raise_from_suspended(ExceptionId exception) {
  CAA_CHECK_MSG(state_ == State::kSuspended,
                "raise_from_suspended(): not Suspended");
  CAA_CHECK_MSG(!has_live_raiser(),
                "raise_from_suspended(): a live raiser still exists");
  CAA_CHECK(tree_->contains(exception));
  state_ = State::kExceptional;
  record_flight(obs::RecType::kRaise, exception.value());
  record_exception(exception, self_, "raiser crashed; survivor promoted");
  awaiting_acks_ = true;
  trace("raise (promoted from S)", tree_->name_of(exception));
  hooks_.multicast(net::MsgKind::kException,
                   encode(ExceptionMsg{scope_, round_, self_, exception}));
  note_send(net::MsgKind::kException,
            static_cast<std::int64_t>(members_.size() - 1));
  maybe_ready();
  sync_health();
}

void ResolverCore::exclude_member(ObjectId peer) {
  if (peer == self_ ||
      !std::binary_search(members_.begin(), members_.end(), peer)) {
    return;
  }
  if (!excluded_.insert(peer).second) return;
  const std::size_t rank = member_rank(peer);
  if (acked_[rank] != 0) --acks_live_;  // now counted via excluded_
  if (lo_state_[rank] == kLoPending) --lo_pending_;
  // Expunge its exceptions from LE. Exclusion waives the crashed member's
  // ACK, so survivors stop agreeing on whether its in-flight Exception
  // messages are part of the round — the only consistent reading of the
  // fail-stop model is that they are not. Any resolution the member already
  // produced from them is preserved by the owner's CrashSync barrier.
  if (!debug_keep_crashed_ && raisers_.erase(peer) != 0) {
    std::erase_if(le_, [peer](const ex::Exception& e) {
      return e.raised_by == peer;
    });
  }
  trace("member excluded (crash)", "O" + std::to_string(peer.value()));
  maybe_ready();
  sync_health();
}

void ResolverCore::set_commit_gate(bool gated) {
  if (commit_gated_ == gated) return;
  commit_gated_ = gated;
  trace(gated ? "commit gate on (crash sync)" : "commit gate off");
  if (!gated) maybe_ready();
  sync_health();
}

void ResolverCore::maybe_ready() {
  if (state_ != State::kExceptional) {
    // A suspended object can only hold a commit through the synced path
    // (on_commit finishes immediately in S); apply it as soon as noticed.
    if (state_ == State::kSuspended && pending_commit_) {
      finish(*pending_commit_);
      return;
    }
    // Already Ready: a late exclusion or an ungated commit gate may have
    // turned this object into the resolver, or a commit may have arrived.
    if (state_ == State::kReady) ready_actions();
    return;
  }
  if (!awaiting_acks_ || !all_acks_received() || !all_nested_completed()) {
    return;
  }
  state_ = State::kReady;
  record_flight(obs::RecType::kState, static_cast<std::uint32_t>(state_));
  trace("state X->R");
  ready_actions();
}

void ResolverCore::ready_actions() {
  CAA_CHECK(state_ == State::kReady);
  if (pending_commit_) {
    finish(*pending_commit_);
    return;
  }
  if (commit_gated_) return;  // withhold new commits until the sync is done
  if (self_in_committee()) {
    // §4.2: the object with the biggest number among the raisers resolves
    // (generalized to the top-`committee_` live raisers, §4.4 extension).
    std::vector<ExceptionId> ids;
    ids.reserve(le_.size());
    for (const auto& e : le_) ids.push_back(e.id);
    const ExceptionId resolved = tree_->resolve(ids);
    trace("resolving as chosen object", tree_->name_of(resolved));
    hooks_.multicast(net::MsgKind::kCommit,
                     encode(CommitMsg{scope_, round_, self_, resolved}));
    note_send(net::MsgKind::kCommit,
              static_cast<std::int64_t>(members_.size() - 1));
    finish(CommitMsg{scope_, round_, self_, resolved});
  }
}

void ResolverCore::finish(const CommitMsg& m) {
  CAA_CHECK(state_ != State::kHandling);
  CAA_CHECK_MSG(state_ != State::kNormal,
                "commit delivered to a Normal object");
  state_ = State::kHandling;
  resolved_ = m.resolved;
  // The terminal record the critical-path extractor walks back from: its
  // causal ancestry is exactly the message chain that completed the round.
  record_flight(obs::RecType::kResolved, m.resolved.value());
  if (round_span_.valid()) {
    hooks_.obs->tracer().end_args(round_span_,
                                  "resolved " + tree_->name_of(m.resolved));
    round_span_ = obs::SpanId::invalid();
  }
  if (tracing()) {
    trace("commit", tree_->name_of(m.resolved) + " from O" +
                        std::to_string(m.resolver.value()));
  }
  // §4.2: "empty LE_i, LO_i, LP_i; start handler for E".
  le_.clear();
  std::fill(lo_state_.begin(), lo_state_.end(), kLoAbsent);
  std::fill(acked_.begin(), acked_.end(), std::uint8_t{0});
  acks_live_ = 0;
  lo_pending_ = 0;
  raisers_.clear();
  hooks_.start_handler(m.resolved, m.resolver);
}

}  // namespace caa::resolve
