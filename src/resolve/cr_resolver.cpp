#include "resolve/cr_resolver.h"

#include <algorithm>

#include "net/wire.h"
#include "rt/runtime.h"
#include "util/check.h"

namespace caa::resolve {

namespace {
net::Bytes encode_raise(ObjectId origin, ExceptionId exception) {
  net::WireWriter w;
  w.u32(origin.value());
  w.u32(exception.value());
  return std::move(w).take();
}

net::Bytes encode_commit(ExceptionId resolved) {
  net::WireWriter w;
  w.u32(resolved.value());
  return std::move(w).take();
}
}  // namespace

void CrParticipant::configure(Config config) {
  CAA_CHECK_MSG(config.tree != nullptr, "CR participant needs a tree");
  CAA_CHECK_MSG(config.handled.contains(config.tree->root()),
                "reduced tree must include the root (default handler)");
  CAA_CHECK(std::is_sorted(config.members.begin(), config.members.end()));
  config_ = std::move(config);
}

void CrParticipant::multicast(net::MsgKind kind, const net::Bytes& payload) {
  for (ObjectId member : config_.members) {
    if (member == id()) continue;
    send(member, kind, net::BytesPool::local().copy_of(payload));
  }
}

void CrParticipant::raise(ExceptionId exception) { raise_internal(exception); }

void CrParticipant::raise_internal(ExceptionId exception) {
  if (committed_ || known_.contains(exception)) return;
  known_.insert(exception);
  raisers_.insert(id());
  ++raises_sent_;
  multicast(net::MsgKind::kCrRaise, encode_raise(id(), exception));
  reconsider();
  bump_timer();
}

void CrParticipant::reconsider() {
  if (known_.empty() || committed_) return;
  const std::vector<ExceptionId> ids(known_.begin(), known_.end());
  const ExceptionId r = config_.tree->resolve(ids);
  if (config_.handled.contains(r)) return;
  // Third source of exceptions (§3.3): no handler for the resolved
  // exception here — raise the nearest exception we can handle above it.
  ExceptionId cursor = r;
  while (!config_.handled.contains(cursor)) {
    CAA_CHECK(cursor != config_.tree->root());
    cursor = config_.tree->parent(cursor);
  }
  raise_internal(cursor);
}

void CrParticipant::bump_timer() {
  if (timer_.valid()) cancel(timer_);
  timer_ = schedule_after(config_.stability_delay, [this] {
    timer_ = EventId{};
    on_stable();
  });
}

void CrParticipant::on_stable() {
  if (committed_ || known_.empty()) return;
  if (raisers_.empty() || *raisers_.rbegin() != id()) return;
  const std::vector<ExceptionId> ids(known_.begin(), known_.end());
  resolved_ = config_.tree->resolve(ids);
  multicast(net::MsgKind::kCrCommit, encode_commit(resolved_));
  committed_ = true;
  ExceptionId h = resolved_;
  while (!config_.handled.contains(h)) h = config_.tree->parent(h);
  handler_ran_ = h;
}

void CrParticipant::on_message(ObjectId from, net::MsgKind kind,
                               const net::Bytes& payload) {
  switch (kind) {
    case net::MsgKind::kCrRaise: {
      net::WireReader r(payload);
      auto origin = r.u32();
      auto exception = r.u32();
      if (!origin.is_ok() || !exception.is_ok()) return;
      send(from, net::MsgKind::kCrAck, net::Bytes{});
      if (committed_) return;
      const ExceptionId e(exception.value());
      raisers_.insert(ObjectId(origin.value()));
      if (known_.insert(e).second) {
        reconsider();
        bump_timer();
      }
      return;
    }
    case net::MsgKind::kCrAck:
      return;
    case net::MsgKind::kCrCommit: {
      net::WireReader r(payload);
      auto resolved = r.u32();
      if (!resolved.is_ok()) return;
      if (committed_) return;
      committed_ = true;
      if (timer_.valid()) {
        cancel(timer_);
        timer_ = EventId{};
      }
      resolved_ = ExceptionId(resolved.value());
      ExceptionId h = resolved_;
      while (!config_.handled.contains(h)) h = config_.tree->parent(h);
      handler_ran_ = h;
      return;
    }
    default:
      return;
  }
}

}  // namespace caa::resolve
