#include "resolve/arche_resolver.h"

#include "net/wire.h"
#include "util/check.h"

namespace caa::resolve {

void ArcheCoordinator::configure(Config config) {
  CAA_CHECK_MSG(config.tree != nullptr, "Arche coordinator needs a tree");
  CAA_CHECK_MSG(!config.members.empty(), "Arche group needs members");
  if (!config.resolution) {
    const ex::ExceptionTree* tree = config.tree;
    config.resolution = [tree](const std::vector<ExceptionId>& raised) {
      return tree->resolve(raised);
    };
  }
  config_ = std::move(config);
}

void ArcheCoordinator::on_message(ObjectId from, net::MsgKind kind,
                                  const net::Bytes& payload) {
  (void)from;
  if (kind != net::MsgKind::kArcheReport) return;
  net::WireReader r(payload);
  auto exception = r.u32();
  if (!exception.is_ok()) return;
  const ExceptionId e(exception.value());
  if (e.valid()) reported_.push_back(e);
  ++reports_;
  if (reports_ < config_.members.size()) return;

  // All members reported: compute the concerted exception and reply.
  concerted_ = reported_.empty() ? ExceptionId::invalid()
                                 : config_.resolution(reported_);
  done_ = true;
  net::WireWriter w;
  w.u32(concerted_.value());
  const net::Bytes reply = std::move(w).take();
  for (ObjectId member : config_.members) {
    send(member, net::MsgKind::kArcheConcerted, reply);
  }
}

void ArcheMember::finish(ExceptionId exception) {
  CAA_CHECK_MSG(coordinator_.valid(), "member not configured");
  net::WireWriter w;
  w.u32(exception.value());
  send(coordinator_, net::MsgKind::kArcheReport, std::move(w).take());
}

void ArcheMember::on_message(ObjectId from, net::MsgKind kind,
                             const net::Bytes& payload) {
  (void)from;
  if (kind != net::MsgKind::kArcheConcerted) return;
  net::WireReader r(payload);
  auto exception = r.u32();
  if (!exception.is_ok()) return;
  concerted_ = ExceptionId(exception.value());
}

}  // namespace caa::resolve
