// Alternative strategy: CENTRALIZED exception resolution (§4.5).
//
// The paper notes that a meta-object implementation "would allow the
// dynamic change of different resolution algorithms (e.g. centralised or
// decentralised)". This is the centralized one, for flat actions: a fixed
// manager object (the smallest participant id, by convention) collects
// exceptions, freezes the group, resolves, and multicasts the result.
//
//   raiser -> manager:   Exception            (P messages)
//   manager -> all:      Freeze               (N-1)
//   all -> manager:      FrozenAck(+pending)  (N-1)
//   manager -> all:      Commit               (N-1)
//
// Total ~ 3(N-1) + P: fewer messages than the decentralized algorithm's
// (N-1)(2P+1), but the manager is a serial bottleneck and a single point
// of failure, and latency is always >= 3 hops — the trade-off the
// comparison bench quantifies.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "ex/exception_tree.h"
#include "rt/managed_object.h"

namespace caa::resolve {

class CentralizedParticipant : public rt::ManagedObject {
 public:
  struct Config {
    std::vector<ObjectId> members;  // sorted, includes self
    const ex::ExceptionTree* tree = nullptr;
  };

  void configure(Config config);

  [[nodiscard]] bool is_manager() const {
    return !config_.members.empty() && config_.members.front() == id();
  }

  /// Application-level raise (ignored once frozen/committed).
  void raise(ExceptionId exception);

  [[nodiscard]] ExceptionId resolved() const { return resolved_; }
  [[nodiscard]] bool handled() const { return resolved_.valid(); }

  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override;

 private:
  // Manager side.
  void manager_on_exception(ObjectId raiser, ExceptionId exception);
  void manager_on_frozen_ack(ObjectId from, ExceptionId pending);
  void manager_maybe_commit();

  Config config_;
  // Shared state.
  bool frozen_ = false;
  ExceptionId resolved_;
  // Manager state.
  std::vector<ExceptionId> collected_;
  std::map<ObjectId, bool> acked_;
  bool freeze_sent_ = false;
};

}  // namespace caa::resolve
