#include "resolve/messages.h"

#include "net/wire.h"

namespace caa::resolve {

namespace {
// Every resolution message starts with (scope:u64, round:u32) so that
// routing can peek without knowing the exact kind.
void put_header(net::WireWriter& w, ActionInstanceId scope,
                std::uint32_t round) {
  w.u64(scope.value());
  w.u32(round);
}

struct Header {
  ActionInstanceId scope;
  std::uint32_t round;
};

Result<Header> get_header(net::WireReader& r) {
  auto scope = r.u64();
  if (!scope.is_ok()) return scope.status();
  auto round = r.u32();
  if (!round.is_ok()) return round.status();
  return Header{ActionInstanceId(scope.value()), round.value()};
}

Result<ObjectId> get_object(net::WireReader& r) {
  auto v = r.u32();
  if (!v.is_ok()) return v.status();
  return ObjectId(v.value());
}

Result<ExceptionId> get_exception(net::WireReader& r) {
  auto v = r.u32();
  if (!v.is_ok()) return v.status();
  return ExceptionId(v.value());
}
}  // namespace

net::Bytes encode(const ExceptionMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.raiser.value());
  w.u32(m.exception.value());
  return std::move(w).take();
}

net::Bytes encode(const HaveNestedMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.sender.value());
  return std::move(w).take();
}

net::Bytes encode(const NestedCompletedMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.sender.value());
  w.u32(m.signalled.value());
  return std::move(w).take();
}

net::Bytes encode(const AckMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.sender.value());
  return std::move(w).take();
}

net::Bytes encode(const CommitMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.resolver.value());
  w.u32(m.resolved.value());
  return std::move(w).take();
}

net::Bytes encode(const CrashSyncMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.sender.value());
  w.u32(m.crashed.value());
  w.u32(static_cast<std::uint32_t>(m.phase));
  w.u32(m.commit_round);
  w.u32(m.commit_resolver.value());
  w.u32(m.commit_resolved.value());
  return std::move(w).take();
}

net::Bytes encode(const FastCoverMsg& m) {
  net::WireWriter w;
  put_header(w, m.scope, m.round);
  w.u32(m.sender.value());
  w.u32(static_cast<std::uint32_t>(m.phase));
  w.u32(m.exception.value());
  w.u32(m.cover.value());
  return std::move(w).take();
}

Result<ExceptionMsg> decode_exception(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto raiser = get_object(r);
  if (!raiser.is_ok()) return raiser.status();
  auto exception = get_exception(r);
  if (!exception.is_ok()) return exception.status();
  return ExceptionMsg{h.value().scope, h.value().round, raiser.value(),
                      exception.value()};
}

Result<HaveNestedMsg> decode_have_nested(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto sender = get_object(r);
  if (!sender.is_ok()) return sender.status();
  return HaveNestedMsg{h.value().scope, h.value().round, sender.value()};
}

Result<NestedCompletedMsg> decode_nested_completed(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto sender = get_object(r);
  if (!sender.is_ok()) return sender.status();
  auto signalled = get_exception(r);
  if (!signalled.is_ok()) return signalled.status();
  return NestedCompletedMsg{h.value().scope, h.value().round, sender.value(),
                            signalled.value()};
}

Result<AckMsg> decode_ack(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto sender = get_object(r);
  if (!sender.is_ok()) return sender.status();
  return AckMsg{h.value().scope, h.value().round, sender.value()};
}

Result<CommitMsg> decode_commit(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto resolver = get_object(r);
  if (!resolver.is_ok()) return resolver.status();
  auto resolved = get_exception(r);
  if (!resolved.is_ok()) return resolved.status();
  return CommitMsg{h.value().scope, h.value().round, resolver.value(),
                   resolved.value()};
}

Result<CrashSyncMsg> decode_crash_sync(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto sender = get_object(r);
  if (!sender.is_ok()) return sender.status();
  auto crashed = get_object(r);
  if (!crashed.is_ok()) return crashed.status();
  auto phase = r.u32();
  if (!phase.is_ok()) return phase.status();
  if (phase.value() > static_cast<std::uint32_t>(CrashSyncMsg::Phase::kGone)) {
    return Status::invalid_argument("CrashSync: bad phase");
  }
  auto commit_round = r.u32();
  if (!commit_round.is_ok()) return commit_round.status();
  auto commit_resolver = get_object(r);
  if (!commit_resolver.is_ok()) return commit_resolver.status();
  auto commit_resolved = get_exception(r);
  if (!commit_resolved.is_ok()) return commit_resolved.status();
  return CrashSyncMsg{h.value().scope,
                      h.value().round,
                      sender.value(),
                      crashed.value(),
                      static_cast<CrashSyncMsg::Phase>(phase.value()),
                      commit_round.value(),
                      commit_resolver.value(),
                      commit_resolved.value()};
}

Result<FastCoverMsg> decode_fast_cover(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  auto sender = get_object(r);
  if (!sender.is_ok()) return sender.status();
  auto phase = r.u32();
  if (!phase.is_ok()) return phase.status();
  if (phase.value() > static_cast<std::uint32_t>(FastCoverMsg::Phase::kStale)) {
    return Status::invalid_argument("FastCover: bad phase");
  }
  auto exception = get_exception(r);
  if (!exception.is_ok()) return exception.status();
  auto cover = get_exception(r);
  if (!cover.is_ok()) return cover.status();
  return FastCoverMsg{h.value().scope,
                      h.value().round,
                      sender.value(),
                      static_cast<FastCoverMsg::Phase>(phase.value()),
                      exception.value(),
                      cover.value()};
}

Result<ScopeRound> peek_scope_round(const net::Bytes& bytes) {
  net::WireReader r(bytes);
  auto h = get_header(r);
  if (!h.is_ok()) return h.status();
  return ScopeRound{h.value().scope, h.value().round};
}

}  // namespace caa::resolve
