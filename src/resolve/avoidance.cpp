#include "resolve/avoidance.h"

#include <utility>

#include "util/check.h"

namespace caa::resolve {

namespace {
const CounterId kCounterFastRaises = CounterId::of("resolve.fast_raises");
const CounterId kCounterFastCommits = CounterId::of("resolve.fast_commits");
const CounterId kCounterFallbacks = CounterId::of("resolve.fallbacks");
const CounterId kCounterFallbackReplays =
    CounterId::of("resolve.fallback_replays");
const CounterId kCounterProbes = CounterId::of("resolve.fast_probes");
const CounterId kCounterStale = CounterId::of("resolve.fast_stale");
const CounterId kCounterLatticeHits = CounterId::of("resolve.lattice_hits");
const CounterId kCounterLatticeMisses = CounterId::of("resolve.lattice_misses");
}  // namespace

AvoidanceCoordinator::AvoidanceCoordinator(
    ObjectId self, const std::vector<ObjectId>* members,
    const std::set<ObjectId>* excluded, const ex::ExceptionTree* tree,
    ActionInstanceId scope, sim::Time probe_delay, Hooks hooks,
    Counters* counters, obs::HealthGauges* health)
    : self_(self),
      members_(members),
      excluded_(excluded),
      tree_(tree),
      scope_(scope),
      probe_delay_(probe_delay),
      hooks_(std::move(hooks)),
      counters_(counters),
      health_(health) {
  CAA_CHECK(members_ != nullptr && excluded_ != nullptr && tree_ != nullptr);
}

AvoidanceCoordinator::~AvoidanceCoordinator() {
  // A coordinator destroyed mid-census (scope aborted) retracts its gauge
  // contribution so the world-level census count stays exact.
  if (health_ != nullptr) {
    health_->add(obs::Gauge::kResolveCensusOpen, -gauge_);
  }
}

void AvoidanceCoordinator::sync_health() {
  if (health_ == nullptr) return;
  const std::int64_t open =
      (census_active_ ? 1 : 0) + (pending_ ? 1 : 0);
  if (open != gauge_) {
    health_->add(obs::Gauge::kResolveCensusOpen, open - gauge_);
    gauge_ = open;
  }
}

net::Bytes AvoidanceCoordinator::make(FastCoverMsg::Phase phase,
                                      ExceptionId exception, ExceptionId cover,
                                      std::uint32_t round) const {
  return encode(
      FastCoverMsg{scope_, round, self_, phase, exception, cover});
}

std::size_t AvoidanceCoordinator::live_members() const {
  std::size_t live = 0;
  for (ObjectId member : *members_) {
    if (!excluded_->contains(member)) ++live;
  }
  return live;
}

void AvoidanceCoordinator::trace(std::string_view event, std::string detail) {
  if (hooks_.trace) hooks_.trace(event, std::move(detail));
}

bool AvoidanceCoordinator::try_fast_raise(ExceptionId exception,
                                          std::string&& message) {
  // Classification: the raise commutes when its whole concurrent
  // neighbourhood provably joins inside one universal cover. Exclusions
  // void the proof (the census would have to reason about a shrunken
  // committee mid-change), as do two-member-less scopes where the exchange
  // is already minimal.
  if (pending_ || !tree_->frozen()) return false;
  if (!excluded_->empty()) return false;
  if (members_->size() < 2 || live_members() < 2) return false;
  const ExceptionId cover = tree_->universal_cover(exception);
  if (!cover.valid()) return false;
  if (!hooks_.engine_normal()) return false;

  pending_ = true;
  pending_exception_ = exception;
  pending_message_ = std::move(message);
  pending_round_ = hooks_.round();
  if (counters_ != nullptr) counters_->add(kCounterFastRaises);
  trace("fast raise", tree_->name_of(exception) + " cover " +
                          tree_->name_of(cover));

  const ObjectId leader = hooks_.live_leader();
  if (leader == self_) {
    // The leader's own raise opens the census; its entry is implicit in
    // pending_ (decide() folds it in).
    if (!census_active_) {
      census_active_ = true;
      census_round_ = pending_round_;
    }
    if (!probes_sent_ && !probe_armed_) {
      probe_armed_ = true;
      hooks_.schedule(probe_delay_, [this] {
        probe_armed_ = false;
        if (census_active_) send_probes();
      });
    }
    maybe_decide();
  } else {
    hooks_.send(leader, make(FastCoverMsg::Phase::kReport, exception, cover,
                             pending_round_));
  }
  sync_health();
  return true;
}

void AvoidanceCoordinator::census_record(ObjectId member, Entry entry) {
  if (!census_active_) {
    census_active_ = true;
    census_round_ = hooks_.round();
  }
  census_[member] = entry;
  if (!probes_sent_ && !probe_armed_) {
    probe_armed_ = true;
    hooks_.schedule(probe_delay_, [this] {
      probe_armed_ = false;
      if (census_active_) send_probes();
    });
  }
  maybe_decide();
  sync_health();
}

void AvoidanceCoordinator::send_probes() {
  probes_sent_ = true;
  std::int64_t probed = 0;
  for (ObjectId member : *members_) {
    if (member == self_ || excluded_->contains(member)) continue;
    if (census_.contains(member)) continue;
    hooks_.send(member, make(FastCoverMsg::Phase::kProbe,
                             ExceptionId::invalid(), ExceptionId::invalid(),
                             census_round_));
    ++probed;
  }
  if (probed > 0 && counters_ != nullptr) {
    counters_->add(kCounterProbes, probed);
  }
  maybe_decide();  // everyone may have reported while the probe was armed
}

void AvoidanceCoordinator::maybe_decide() {
  if (!census_active_) return;
  for (ObjectId member : *members_) {
    if (member == self_ || excluded_->contains(member)) continue;
    if (!census_.contains(member)) return;  // census incomplete
  }
  decide();
}

void AvoidanceCoordinator::decide() {
  census_active_ = false;
  const std::uint32_t round = census_round_;

  // The leader itself must be raising or idle: a leader busy in a nested
  // action cannot wake from a fast commit without the HaveNested/abortion
  // machinery the census skipped.
  if (!pending_ && !hooks_.answer_idle()) {
    fall_back_census("leader busy");
    return;
  }
  std::vector<ExceptionId> raised;
  std::vector<ExceptionId> covers;
  for (const auto& [member, entry] : census_) {
    if (entry.kind == Entry::Kind::kBusy) {
      fall_back_census("member busy");
      return;
    }
    if (entry.kind == Entry::Kind::kRaise) {
      raised.push_back(entry.exception);
      covers.push_back(entry.cover);
    }
  }
  if (pending_) {
    raised.push_back(pending_exception_);
    covers.push_back(tree_->universal_cover(pending_exception_));
  }
  if (raised.empty()) {
    // Every raise was withdrawn before the census closed (stale rounds);
    // nothing to resolve.
    census_.clear();
    return;
  }
  for (const ExceptionId cover : covers) {
    if (!cover.valid() || cover != covers.front()) {
      fall_back_census("cover mismatch");
      return;
    }
  }
  // Join-fold through the memoized lattice: identical (the LCA of a set is
  // fold-order independent) to the ExceptionTree::resolve the full exchange
  // would have computed over the same raise set — which is what keeps the
  // resolved checksums byte-identical to avoidance-off.
  const std::uint64_t hits0 = tree_->join_hits();
  const std::uint64_t misses0 = tree_->join_misses();
  ExceptionId resolved = raised.front();
  for (std::size_t i = 1; i < raised.size(); ++i) {
    resolved = tree_->join(resolved, raised[i]).cover;
  }
  if (counters_ != nullptr) {
    counters_->add(kCounterLatticeHits,
                   static_cast<std::int64_t>(tree_->join_hits() - hits0));
    counters_->add(kCounterLatticeMisses,
                   static_cast<std::int64_t>(tree_->join_misses() - misses0));
    counters_->add(kCounterFastCommits);
  }
  trace("fast commit", tree_->name_of(resolved) + " from " +
                           std::to_string(raised.size()) + " raise(s)");
  census_.clear();
  pending_ = false;  // the suppressed raise is subsumed by this commit
  promised_.reset();
  hooks_.multicast(make(FastCoverMsg::Phase::kCommit, resolved,
                        ExceptionId::invalid(), round));
  // Own engine LAST (the Paxos self-delivery precedent): finishing the
  // round re-enters the owner, which must not observe a half-sent commit.
  const CommitMsg commit{scope_, round, self_, resolved};
  if (hooks_.engine_normal()) {
    hooks_.apply_fast_commit(commit);
  } else {
    hooks_.apply_synced_commit(commit);
  }
  sync_health();
}

void AvoidanceCoordinator::fall_back_census(std::string_view reason) {
  census_active_ = false;
  census_.clear();
  trace("census fallback", std::string(reason));
  if (counters_ != nullptr) counters_->add(kCounterFallbacks);
  hooks_.multicast(make(FastCoverMsg::Phase::kFallback, ExceptionId::invalid(),
                        ExceptionId::invalid(), census_round_));
  promised_.reset();
  replay_suppressed();
  sync_health();
}

void AvoidanceCoordinator::replay_suppressed() {
  if (!pending_) return;
  pending_ = false;
  sync_health();
  if (counters_ != nullptr) counters_->add(kCounterFallbackReplays);
  if (!hooks_.engine_normal()) {
    // A commit or exchange already superseded the suppressed raise — the
    // same fate a late raise meets in the full protocol.
    if (counters_ != nullptr) counters_->add(kCounterStale);
    return;
  }
  trace("replay raise", tree_->name_of(pending_exception_));
  hooks_.replay_raise(pending_exception_, std::move(pending_message_));
}

void AvoidanceCoordinator::on_slow_traffic() {
  promised_.reset();
  if (census_active_) {
    // The non-commuting raise is multicast, so every member that holds fast
    // state observes it and unwinds locally — no broadcast needed.
    census_active_ = false;
    census_.clear();
    trace("census superseded", "slow exchange");
    if (counters_ != nullptr) counters_->add(kCounterFallbacks);
  }
  replay_suppressed();
  sync_health();
}

void AvoidanceCoordinator::on_peer_crashed(ObjectId peer) {
  promised_.reset();
  if (census_active_) {
    census_active_ = false;
    census_.clear();
    trace("census aborted", "O" + std::to_string(peer.value()) + " crashed");
    if (counters_ != nullptr) counters_->add(kCounterFallbacks);
  }
  replay_suppressed();
  sync_health();
}

void AvoidanceCoordinator::on_round_finished() {
  pending_ = false;
  pending_message_.clear();
  promised_.reset();
  census_active_ = false;
  census_.clear();
  probes_sent_ = false;
  sync_health();
}

void AvoidanceCoordinator::on_stale(ObjectId from, const FastCoverMsg& m) {
  if (m.phase != FastCoverMsg::Phase::kReport) return;  // round is over
  if (counters_ != nullptr) counters_->add(kCounterStale);
  hooks_.send(from, make(FastCoverMsg::Phase::kStale, ExceptionId::invalid(),
                         ExceptionId::invalid(), m.round));
}

void AvoidanceCoordinator::on_message(ObjectId from, const FastCoverMsg& m) {
  if (m.round != hooks_.round()) return;  // the owner routes rounds; defensive
  switch (m.phase) {
    case FastCoverMsg::Phase::kReport:
      census_record(from, Entry{Entry::Kind::kRaise, m.exception, m.cover});
      return;
    case FastCoverMsg::Phase::kProbe: {
      if (pending_) {
        // Crossed with our own report; answer it again (the census map
        // dedups).
        hooks_.send(from,
                    make(FastCoverMsg::Phase::kReport, pending_exception_,
                         tree_->universal_cover(pending_exception_),
                         pending_round_));
        return;
      }
      if (hooks_.answer_idle()) {
        promised_ = m.round;
        hooks_.send(from, make(FastCoverMsg::Phase::kNoRaise,
                               ExceptionId::invalid(), ExceptionId::invalid(),
                               m.round));
      } else {
        hooks_.send(from, make(FastCoverMsg::Phase::kBusy,
                               ExceptionId::invalid(), ExceptionId::invalid(),
                               m.round));
      }
      return;
    }
    case FastCoverMsg::Phase::kNoRaise:
    case FastCoverMsg::Phase::kBusy: {
      // Late replies must not reopen a closed census.
      if (!census_active_ || census_round_ != m.round) return;
      census_record(from, Entry{m.phase == FastCoverMsg::Phase::kBusy
                                    ? Entry::Kind::kBusy
                                    : Entry::Kind::kNoRaise,
                                ExceptionId::invalid(), ExceptionId::invalid()});
      return;
    }
    case FastCoverMsg::Phase::kFallback:
      promised_.reset();
      replay_suppressed();
      return;
    case FastCoverMsg::Phase::kCommit:
      handle_commit(m);
      return;
    case FastCoverMsg::Phase::kStale:
      if (pending_ && pending_round_ == m.round) {
        replay_suppressed();
      }
      return;
  }
}

void AvoidanceCoordinator::handle_commit(const FastCoverMsg& m) {
  promised_.reset();
  pending_ = false;  // subsumed: our report is folded into the commit
  sync_health();
  const CommitMsg commit{scope_, m.round, m.sender, m.exception};
  if (hooks_.engine_normal()) {
    hooks_.apply_fast_commit(commit);
  } else {
    // A slow exchange (our replayed raise, or a non-commuting peer's)
    // crossed the commit. The census decision still stands — apply it the
    // way a CrashSync-carried commit is applied: held until this engine's
    // own round obligations (ACKs) drain, then finishing identically.
    hooks_.apply_synced_commit(commit);
  }
}

}  // namespace caa::resolve
