#include "scenario/scenarios.h"

#include "util/check.h"
#include "util/hash.h"

namespace caa::scenario {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

RunStats collect_stats(World& world,
                       const std::vector<Participant*>& objects,
                       sim::Time raise_at) {
  RunStats stats;
  const obs::Metrics& metrics = world.metrics();
  stats.exceptions = metrics.sent(net::MsgKind::kException);
  stats.have_nested = metrics.sent(net::MsgKind::kHaveNested);
  stats.nested_completed = metrics.sent(net::MsgKind::kNestedCompleted);
  stats.acks = metrics.sent(net::MsgKind::kAck);
  stats.commits = metrics.sent(net::MsgKind::kCommit);
  stats.relays = metrics.sent(net::MsgKind::kRelay);
  stats.fast_covers = metrics.sent(net::MsgKind::kFastCover);
  stats.messages =
      metrics.resolution_messages() + stats.relays + stats.fast_covers;
  stats.all_handled = true;
  sim::Time last = raise_at;
  for (const Participant* o : objects) {
    if (o->handled().empty()) {
      stats.all_handled = false;
    } else {
      last = std::max(last, o->handled().back().at);
    }
  }
  stats.resolution_latency = last - raise_at;
  return stats;
}

// ---------------------------------------------------------------------------

FlatScenario::FlatScenario(FlatOptions options)
    : options_(options), world_(options.world) {
  const int n = options_.participants;
  CAA_CHECK_MSG(options_.raisers + options_.nested <= n,
                "FlatScenario: P + Q must not exceed N");
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    objects_.push_back(&world_.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects_.back()->id());
  }
  decl_ = &world_.actions().declare(
      "A", ex::shapes::star(static_cast<std::size_t>(n)));
  instance_ = &world_.actions().create_instance(*decl_, ids);
  for (auto* o : objects_) {
    const sim::Time abort_duration = options_.abort_duration;
    CAA_CHECK(o->enter(
        instance_->instance,
        EnterConfig::with(uniform_handlers(decl_->tree(),
                                           ex::HandlerResult::recovered(
                                               options_.handler_duration)))
            .committee(options_.committee)
            .abortion([abort_duration] {
              return ex::AbortResult::none(abort_duration);
            })));
  }
  for (int i = n - options_.nested; i < n; ++i) {
    const auto& nd = world_.actions().declare("N" + std::to_string(i),
                                              ex::shapes::star(1));
    const auto& ni = world_.actions().create_instance(
        nd, {objects_[i]->id()}, instance_->instance);
    const sim::Time abort_duration = options_.abort_duration;
    CAA_CHECK(objects_[i]->enter(
        ni.instance,
        EnterConfig::with(
            uniform_handlers(nd.tree(), ex::HandlerResult::recovered()))
            .abortion([abort_duration] {
              return ex::AbortResult::none(abort_duration);
            })));
  }
  world_.at(options_.raise_at, [this] {
    for (int i = 0; i < options_.raisers; ++i) {
      objects_[i]->raise("s" + std::to_string(i + 1));
    }
  });
}

RunStats FlatScenario::run() {
  world_.run();
  return collect_stats(world_, objects_, options_.raise_at);
}

// ---------------------------------------------------------------------------

NestedChainScenario::NestedChainScenario(NestedChainOptions options)
    : options_(options), world_(options.world) {
  const int n = options_.participants;
  CAA_CHECK_MSG(n >= 2, "NestedChainScenario needs >= 2 participants");
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    objects_.push_back(&world_.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects_.back()->id());
  }
  const auto& outer_decl =
      world_.actions().declare("A0", ex::shapes::star(1));
  const auto& outer = world_.actions().create_instance(outer_decl, ids);
  for (auto* o : objects_) {
    CAA_CHECK(o->enter(outer.instance,
                       EnterConfig::with(uniform_handlers(
                           outer_decl.tree(),
                           ex::HandlerResult::recovered()))));
  }
  const action::InstanceInfo* parent = &outer;
  std::vector<ObjectId> nested_ids(ids.begin() + 1, ids.end());
  for (int level = 1; level <= options_.depth; ++level) {
    const auto& decl = world_.actions().declare("A" + std::to_string(level),
                                                ex::shapes::star(1));
    const auto& inst =
        world_.actions().create_instance(decl, nested_ids, parent->instance);
    for (int i = 1; i < n; ++i) {
      const sim::Time abort_duration = options_.abort_duration;
      CAA_CHECK(objects_[i]->enter(
          inst.instance,
          EnterConfig::with(
              uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
              .abortion([abort_duration] {
                return ex::AbortResult::none(abort_duration);
              })));
    }
    parent = &inst;
  }
  world_.at(options_.raise_at, [this] { objects_[0]->raise("s1"); });
}

RunStats NestedChainScenario::run() {
  world_.run();
  return collect_stats(world_, objects_, options_.raise_at);
}

// ---------------------------------------------------------------------------

Figure4Scenario::Figure4Scenario(Figure4Options options)
    : options_(options), world_(options.world) {
  for (int i = 0; i < 4; ++i) {
    objects_.push_back(&world_.add_participant("O" + std::to_string(i + 1)));
  }
  ex::ExceptionTree t1;
  const auto combo = t1.declare("combo_exception");
  t1.declare("E1", combo);
  t1.declare("E3", combo);
  d1_ = &world_.actions().declare("A1", std::move(t1));
  ex::ExceptionTree t2;
  t2.declare("A2_fail");
  const auto& d2 = world_.actions().declare("A2", std::move(t2));
  ex::ExceptionTree t3;
  t3.declare("E2");
  const auto& d3 = world_.actions().declare("A3", std::move(t3));

  a1_ = &world_.actions().create_instance(
      *d1_, {objects_[0]->id(), objects_[1]->id(), objects_[2]->id(),
             objects_[3]->id()});
  a2_ = &world_.actions().create_instance(
      d2, {objects_[1]->id(), objects_[2]->id(), objects_[3]->id()},
      a1_->instance);
  a3_ = &world_.actions().create_instance(
      d3, {objects_[1]->id(), objects_[2]->id()}, a2_->instance);

  auto plain = [&](const action::ActionDecl& d) {
    return EnterConfig::with(
               uniform_handlers(d.tree(), ex::HandlerResult::recovered()))
        .build();
  };
  for (auto* o : objects_) CAA_CHECK(o->enter(a1_->instance, plain(*d1_)));
  const ExceptionId e3 = d1_->tree().find("E3");
  const sim::Time abort_duration = options_.abort_duration;
  const EnterConfig o2_a2 =
      EnterConfig::with(
          uniform_handlers(d2.tree(), ex::HandlerResult::recovered()))
          .abortion([e3, abort_duration] {
            return ex::AbortResult::signalling(e3, abort_duration);
          });
  CAA_CHECK(objects_[1]->enter(a2_->instance, o2_a2));
  CAA_CHECK(objects_[2]->enter(a2_->instance, plain(d2)));
  CAA_CHECK(objects_[3]->enter(a2_->instance, plain(d2)));
  CAA_CHECK(objects_[1]->enter(a3_->instance, plain(d3)));

  world_.at(options_.raise_at, [this] {
    objects_[0]->raise("E1");
    objects_[1]->raise("E2");
  });
  // The belated entry is part of the script, not of run(): scheduling it
  // here means callers that step the simulator themselves (the systematic
  // explorer) exercise the same doomed attempt.
  world_.at(options_.belated_entry_at, [this] {
    const auto& d3 = *world_.actions().info(a3_->instance).decl;
    belated_refused_ = !objects_[2]->enter(
        a3_->instance,
        EnterConfig::with(
            uniform_handlers(d3.tree(), ex::HandlerResult::recovered())));
  });
}

Figure4Scenario::Outcome Figure4Scenario::run() {
  world_.run();
  return outcome();
}

Figure4Scenario::Outcome Figure4Scenario::outcome() {
  Outcome outcome;
  outcome.stats = collect_stats(world_, objects_, options_.raise_at);
  outcome.belated_entry_refused = belated_refused_;
  if (!objects_[0]->handled().empty()) {
    outcome.resolved = objects_[0]->handled().back().resolved;
  }
  const auto& aborts = objects_[1]->aborts();
  outcome.o2_aborted_innermost_first =
      aborts.size() == 2 && aborts[0].instance == a3_->instance &&
      aborts[1].instance == a2_->instance;
  return outcome;
}

// ---------------------------------------------------------------------------

Example1Scenario::Example1Scenario(Example1Options options)
    : options_(options), world_(options.world) {
  auto& o1 = world_.add_participant("O1");
  auto& o2 = world_.add_participant("O2");
  auto& o3 = world_.add_participant("O3");
  objects_ = {&o1, &o2, &o3};
  ex::ExceptionTree tree;
  const auto parent = tree.declare("E");
  tree.declare("E1", parent);
  tree.declare("E2", parent);
  const auto& decl = world_.actions().declare("A1", std::move(tree));
  const auto& a1 =
      world_.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : objects_) {
    CAA_CHECK(o->enter(
        a1.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  world_.at(options_.raise_at, [&o1] { o1.raise("E1"); });
  world_.at(options_.raise_at, [&o2] { o2.raise("E2"); });
}

RunStats Example1Scenario::run() {
  world_.run();
  return collect_stats(world_, objects_, options_.raise_at);
}

std::uint64_t world_checksum(World& world, std::int64_t events) {
  std::uint64_t h = fnv1a64(world.metrics().counters().to_string());
  h = fnv1a64_mix(h, static_cast<std::uint64_t>(world.simulator().now()));
  h = fnv1a64_mix(h, static_cast<std::uint64_t>(events));
  return h;
}

std::uint64_t resolved_checksum(
    const std::vector<action::Participant*>& objects) {
  std::uint64_t h = kFnv1a64Offset;
  for (const action::Participant* o : objects) {
    h = fnv1a64_mix(h, o->id().value());
    for (const action::HandledRecord& rec : o->handled()) {
      h = fnv1a64_mix(h, rec.instance.value());
      h = fnv1a64_mix(h, rec.round);
      h = fnv1a64_mix(h, rec.resolved.value());
    }
  }
  return h;
}

}  // namespace caa::scenario
