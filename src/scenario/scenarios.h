// Canonical experiment scenarios, as a reusable library.
//
// The paper's analysis and examples use a small set of standard
// constructions; benches, tests and downstream experiments share them from
// here instead of re-building worlds by hand:
//
//   FlatScenario       — N participants in one action; P raise
//                        simultaneously; Q sit in singleton nested actions
//                        (the §4.4 counting configuration).
//   NestedChainScenario— N objects, N-1 of them inside a depth-D chain of
//                        nested actions; the remaining object raises in the
//                        outermost action (Figures 3-ish / E8).
//   Figure4Scenario    — the paper's §4.3 Example 2 exactly: A1 ⊃ A2 ⊃ A3,
//                        a belated participant, an abortion handler that
//                        signals E3, concurrent E1/E2 raises.
#pragma once

#include <memory>

#include "caa/world.h"

namespace caa::scenario {

/// Aggregated outcome of a scenario run.
struct RunStats {
  /// Physical messages the protocol cost: the §4.4 five-kind total plus,
  /// in tree mode, the overlay envelopes that replace the direct fan-out
  /// (flat worlds have relays == 0, leaving the historical value intact).
  std::int64_t messages = 0;
  std::int64_t exceptions = 0;
  std::int64_t have_nested = 0;
  std::int64_t nested_completed = 0;
  std::int64_t acks = 0;
  std::int64_t commits = 0;
  std::int64_t relays = 0;  // kRelay envelopes (tree-mode dissemination)
  std::int64_t fast_covers = 0;  // kFastCover census messages (avoidance)
  sim::Time resolution_latency = 0;  // raise -> last handler start
  bool all_handled = false;          // every participant ran a handler
};

// ---------------------------------------------------------------------------

struct FlatOptions {
  int participants = 3;      // N
  int raisers = 1;           // P: objects 1..P raise distinct leaves
  int nested = 0;            // Q: the last Q objects get singleton nested
                             // actions (requires P + Q <= N)
  sim::Time raise_at = 1000;
  sim::Time abort_duration = 0;
  sim::Time handler_duration = 0;
  std::uint32_t committee = 1;
  WorldConfig world;
};

class FlatScenario {
 public:
  explicit FlatScenario(FlatOptions options);

  /// Runs to quiescence and reports the §4.4 accounting.
  RunStats run();

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const std::vector<action::Participant*>& objects() const {
    return objects_;
  }
  [[nodiscard]] const action::InstanceInfo& instance() const {
    return *instance_;
  }
  [[nodiscard]] const action::ActionDecl& decl() const { return *decl_; }

 private:
  FlatOptions options_;
  World world_;
  std::vector<action::Participant*> objects_;
  const action::ActionDecl* decl_ = nullptr;
  const action::InstanceInfo* instance_ = nullptr;
};

// ---------------------------------------------------------------------------

struct NestedChainOptions {
  int participants = 4;  // N (object 0 raises; 1..N-1 descend the chain)
  int depth = 2;         // D nested levels
  sim::Time raise_at = 1000;
  sim::Time abort_duration = 0;
  WorldConfig world;
};

class NestedChainScenario {
 public:
  explicit NestedChainScenario(NestedChainOptions options);
  RunStats run();

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const std::vector<action::Participant*>& objects() const {
    return objects_;
  }

 private:
  NestedChainOptions options_;
  World world_;
  std::vector<action::Participant*> objects_;
};

// ---------------------------------------------------------------------------

/// §4.3 Example 2 / Figure 4, parameterized only by timing knobs.
struct Figure4Options {
  sim::Time raise_at = 1000;          // concurrent E1 (O1/A1) and E2 (O2/A3)
  sim::Time belated_entry_at = 1150;  // O3's doomed attempt to enter A3
  sim::Time abort_duration = 20;
  WorldConfig world;
};

class Figure4Scenario {
 public:
  /// Schedules the whole script — concurrent raises AND O3's belated entry
  /// attempt — so a caller that drives the simulator by hand (the
  /// systematic explorer) replays the same scenario run() does.
  explicit Figure4Scenario(Figure4Options options);

  struct Outcome {
    RunStats stats;
    bool belated_entry_refused = false;
    ExceptionId resolved;             // what A1 resolved to
    bool o2_aborted_innermost_first = false;
  };
  /// Runs to quiescence; equivalent to world().run() + outcome().
  Outcome run();
  /// Collects the outcome of an already-finished world.
  [[nodiscard]] Outcome outcome();

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] action::Participant& o(int i) { return *objects_.at(i); }
  [[nodiscard]] const std::vector<action::Participant*>& objects() const {
    return objects_;
  }

 private:
  Figure4Options options_;
  World world_;
  std::vector<action::Participant*> objects_;
  const action::ActionDecl* d1_ = nullptr;
  const action::InstanceInfo* a1_ = nullptr;
  const action::InstanceInfo* a2_ = nullptr;
  const action::InstanceInfo* a3_ = nullptr;
  bool belated_refused_ = false;
};

// ---------------------------------------------------------------------------

/// §4.3 Example 1 exactly as the golden-trace test stages it: O1/O2/O3 in
/// one action with the tree E -> {E1, E2}; O1 raises E1 and O2 raises E2
/// concurrently at `raise_at`; every participant recovers.
struct Example1Options {
  sim::Time raise_at = 1000;
  WorldConfig world;
};

class Example1Scenario {
 public:
  explicit Example1Scenario(Example1Options options = {});
  RunStats run();

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const std::vector<action::Participant*>& objects() const {
    return objects_;
  }

 private:
  Example1Options options_;
  World world_;
  std::vector<action::Participant*> objects_;
};

/// Collects RunStats from a finished world + participant set.
RunStats collect_stats(World& world,
                       const std::vector<action::Participant*>& objects,
                       sim::Time raise_at);

/// Behavioural fingerprint of a finished world: FNV-1a over the full
/// counter dump, mixed with the final virtual time and the event count.
/// Same formula bench_throughput has always recorded, shared so campaign
/// results and bench rows stay comparable across PRs.
[[nodiscard]] std::uint64_t world_checksum(World& world, std::int64_t events);

/// Fingerprint of WHAT was resolved, independent of WHEN: per participant
/// (creation order), every handled record's (instance, round, exception).
/// Tree-mode relaying changes delivery timing — and therefore
/// world_checksum — but must resolve the exact same exceptions as flat
/// mode on the same seed; this is the value that equality is gated on.
[[nodiscard]] std::uint64_t resolved_checksum(
    const std::vector<action::Participant*>& objects);

}  // namespace caa::scenario
