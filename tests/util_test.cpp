// Unit tests for util: strong ids, status/result, RNG, interning, counters,
// logging.
#include <gtest/gtest.h>

#include <set>

#include "util/counters.h"
#include "util/ids.h"
#include "util/intern.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/status.h"

namespace caa {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  ObjectId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ObjectId::invalid());
}

TEST(StrongId, OrderingAndEquality) {
  const ObjectId a(1), b(2), c(1);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_GT(b, a);
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ObjectId, NodeId>);
  static_assert(!std::is_same_v<ActionId, ActionInstanceId>);
}

TEST(StrongId, Hashable) {
  std::set<ObjectId> ids{ObjectId(3), ObjectId(1), ObjectId(2)};
  EXPECT_EQ(ids.size(), 3u);
  std::unordered_map<ObjectId, int> map;
  map[ObjectId(7)] = 42;
  EXPECT_EQ(map.at(ObjectId(7)), 42);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::conflict("lock contention");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(s.message(), "lock contention");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::not_found("nope");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(InternPool, RoundTrips) {
  InternPool pool;
  const auto a = pool.intern("alpha");
  const auto b = pool.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.intern("alpha"), a);
  EXPECT_EQ(pool.name_of(a), "alpha");
  EXPECT_EQ(pool.find("beta"), b);
  EXPECT_EQ(pool.find("gamma"), InternPool::kNotFound);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(InternPool, ManyStringsStableLookups) {
  InternPool pool;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(pool.intern("name_" + std::to_string(i)));
  }
  // Growth must not invalidate earlier keys (deque-backed storage).
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.find("name_" + std::to_string(i)), ids[i]);
  }
}

TEST(Counters, AddGetReset) {
  Counters c;
  const CounterId x = CounterId::of("x");
  c.add(x);
  c.add(x, 4);
  EXPECT_EQ(c.get(x), 5);
  EXPECT_EQ(c.get(CounterId::of("missing")), 0);
  c.reset(x);
  EXPECT_EQ(c.get(x), 0);
}

TEST(Counters, SumPrefix) {
  Counters c;
  c.add(CounterId::of("net.sent.Exception"), 3);
  c.add(CounterId::of("net.sent.ACK"), 2);
  c.add(CounterId::of("net.dropped.ACK"), 9);
  EXPECT_EQ(c.sum_prefix("net.sent."), 5);
  EXPECT_EQ(c.sum_prefix("net."), 14);
  EXPECT_EQ(c.sum_prefix("zzz"), 0);
}

TEST(Counters, InterningIsStableAndNamesRoundTrip) {
  Counters c;
  const CounterId id = CounterId::of("roundtrip.x");
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.name(), "roundtrip.x");
  EXPECT_EQ(CounterId::of("roundtrip.x"), id) << "interning must be stable";

  c.add(id, 3);
  c.add(CounterId::of("roundtrip.x"), 4);  // re-intern lands on the same slot
  EXPECT_EQ(c.get(id), 7);

  c.reset(id);
  EXPECT_EQ(c.get(id), 0);
}

TEST(Counters, InternedIdsAreIndependentAcrossInstances) {
  const CounterId id = CounterId::of("roundtrip.independent");
  Counters a;
  Counters b;
  a.add(id, 5);
  EXPECT_EQ(a.get(id), 5);
  EXPECT_EQ(b.get(id), 0) << "values are per-Counters, names per-process";
}

TEST(Counters, SumPrefixWorksOverInternedNames) {
  Counters c;
  c.add(CounterId::of("intp.sent.A"), 3);
  c.add(CounterId::of("intp.sent.B"), 4);
  c.add(CounterId::of("intp.dropped.A"), 9);
  EXPECT_EQ(c.sum_prefix("intp.sent."), 7);
  EXPECT_EQ(c.sum_prefix("intp."), 16);
  EXPECT_EQ(c.get(CounterId::of("intp.sent.A")), 3);
  EXPECT_EQ(c.get(CounterId::of("intp.dropped.A")), 9);
}

TEST(Counters, ToStringIsSortedAndSkipsZeroes) {
  Counters c;
  c.add(CounterId::of("zz.last"), 1);
  c.add(CounterId::of("aa.first"), 2);
  c.add(CounterId::of("mm.zeroed"), 5);
  c.reset(CounterId::of("mm.zeroed"));
  EXPECT_EQ(c.to_string(), "aa.first=2\nzz.last=1\n");
  const auto all = c.all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("aa.first"), 2);
}

TEST(Logger, RespectsLevelAndSink) {
  Logger logger;
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  logger.set_level(LogLevel::kInfo);
  CAA_LOG(logger, LogLevel::kDebug, "test") << "hidden";
  CAA_LOG(logger, LogLevel::kInfo, "test") << "shown " << 42;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("shown 42"), std::string::npos);
  EXPECT_NE(lines[0].find("[test]"), std::string::npos);
}

TEST(Logger, TimeSourcePrefix) {
  Logger logger;
  std::string captured;
  logger.set_sink(
      [&](LogLevel, std::string_view line) { captured = std::string(line); });
  logger.set_level(LogLevel::kTrace);
  logger.set_time_source([] { return std::int64_t{777}; });
  logger.log(LogLevel::kWarn, "mod", "msg");
  EXPECT_NE(captured.find("@t=777"), std::string::npos);
}

}  // namespace
}  // namespace caa
