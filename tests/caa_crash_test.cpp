// Crash-tolerance extension tests: member exclusion, leader re-election,
// resolver committees (§4.4 "group of objects ... responsible for
// performing resolution"), crash exceptions, and the heartbeat detector.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "rt/heartbeat.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

ex::ExceptionTree crash_tree() {
  ex::ExceptionTree tree;
  tree.declare("app_fault");
  tree.declare("peer_crash");
  tree.freeze();
  return tree;
}

struct CrashWorld {
  World world;
  std::vector<Participant*> objects;
  const action::ActionDecl* decl = nullptr;
  const action::InstanceInfo* inst = nullptr;

  void build(int n, std::uint32_t committee = 1,
             bool with_crash_exception = false) {
    std::vector<ObjectId> ids;
    for (int i = 0; i < n; ++i) {
      objects.push_back(&world.add_participant("O" + std::to_string(i + 1)));
      ids.push_back(objects.back()->id());
    }
    decl = &world.actions().declare("A", crash_tree());
    inst = &world.actions().create_instance(*decl, ids);
    for (auto* o : objects) {
      auto builder =
          EnterConfig::with(uniform_handlers(
                                decl->tree(),
                                ex::HandlerResult::recovered(100)))
              .committee(committee);
      if (with_crash_exception) {
        builder.on_peer_crash(decl->tree().find("peer_crash"));
      }
      ASSERT_TRUE(o->enter(inst->instance, std::move(builder).build()));
    }
  }

  /// Crashes object `victim`: kills its node and informs the survivors
  /// (as a membership service would).
  void crash(int victim, sim::Time at) {
    world.at(at, [this, victim] {
      world.network().set_node_up(
          world.directory().address_of(objects[victim]->id()).node, false);
      for (int i = 0; i < static_cast<int>(objects.size()); ++i) {
        if (i == victim) continue;
        objects[i]->notify_peer_crashed(objects[victim]->id());
      }
    });
  }
};

TEST(CaaCrash, SuspendedPeerCrashMidResolutionSurvivorsResolve) {
  // O1 raises; O3 crashes before it can ACK. Without exclusion the raiser
  // would wait for O3's ACK forever; with it, the survivors resolve.
  CrashWorld cw;
  cw.build(3);
  cw.world.at(1000, [&] { cw.objects[0]->raise("app_fault"); });
  cw.crash(2, 1050);  // crashes before O1's Exception reaches it
  cw.world.run();

  ASSERT_EQ(cw.objects[0]->handled().size(), 1u);
  ASSERT_EQ(cw.objects[1]->handled().size(), 1u);
  EXPECT_EQ(cw.objects[0]->handled()[0].resolved,
            cw.decl->tree().find("app_fault"));
  EXPECT_FALSE(cw.objects[0]->in_action());
  EXPECT_FALSE(cw.objects[1]->in_action());
}

TEST(CaaCrash, ResolverCrashWithCommitteeOfTwoSurvives) {
  // O1 and O3 raise; O3 is the designated resolver (largest raiser). O3
  // crashes right after raising. With committee=2, O1 also commits.
  CrashWorld cw;
  cw.build(3, /*committee=*/2);
  cw.world.at(1000, [&] {
    cw.objects[0]->raise("app_fault");
    cw.objects[2]->raise("app_fault");
  });
  cw.crash(2, 1010);  // O3's Exception multicast is already in flight
  cw.world.run();

  ASSERT_EQ(cw.objects[0]->handled().size(), 1u);
  ASSERT_EQ(cw.objects[1]->handled().size(), 1u);
  EXPECT_EQ(cw.objects[0]->handled()[0].resolved,
            cw.decl->tree().find("app_fault"));
  EXPECT_FALSE(cw.objects[0]->in_action());
  EXPECT_FALSE(cw.objects[1]->in_action());
}

TEST(CaaCrash, CommitteeOfTwoSendsOneExtraCommitMulticast) {
  // Fault-free committee ablation: with c=2 and two raisers, both raisers
  // commit: (c-1)(N-1) extra messages, everything else unchanged.
  auto run = [](std::uint32_t committee) {
    CrashWorld cw;
    cw.build(4, committee);
    cw.world.at(1000, [&] {
      cw.objects[0]->raise("app_fault");
      cw.objects[3]->raise("app_fault");
    });
    cw.world.run();
    for (auto* o : cw.objects) {
      EXPECT_EQ(o->handled().size(), 1u);
      EXPECT_FALSE(o->in_action());
    }
    return cw.world.metrics().sent(net::MsgKind::kCommit);
  };
  EXPECT_EQ(run(1), 3);      // (N-1)
  EXPECT_EQ(run(2), 2 * 3);  // 2(N-1)
}

TEST(CaaCrash, LeaderCrashBeforeBarrierReelects) {
  // O1 (the exit-barrier leader) crashes after O2 and O3 sent their Dones
  // to it. On the crash notice, O2 and O3 re-send to the new leader (O2),
  // which completes the barrier for the survivors.
  CrashWorld cw;
  cw.build(3);
  cw.world.at(1000, [&] { cw.objects[1]->complete(); });
  cw.world.at(1000, [&] { cw.objects[2]->complete(); });
  cw.crash(0, 1001);  // leader dies with the Dones in flight
  cw.world.run();

  EXPECT_FALSE(cw.objects[1]->in_action());
  EXPECT_FALSE(cw.objects[2]->in_action());
}

TEST(CaaCrash, CrashExceptionTriggersForwardRecovery) {
  // With crash_exception configured, a peer crash while working raises it:
  // the survivors run coordinated handlers for peer_crash.
  CrashWorld cw;
  cw.build(4, 1, /*with_crash_exception=*/true);
  cw.crash(3, 2000);
  cw.world.run();

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(cw.objects[i]->handled().size(), 1u) << i;
    EXPECT_EQ(cw.objects[i]->handled()[0].resolved,
              cw.decl->tree().find("peer_crash"))
        << i;
    EXPECT_FALSE(cw.objects[i]->in_action()) << i;
  }
}

TEST(CaaCrash, CrashAfterCommitDoesNotDisturbSurvivors) {
  CrashWorld cw;
  cw.build(3);
  cw.world.at(1000, [&] { cw.objects[1]->raise("app_fault"); });
  // Crash the raiser long after the resolution finished.
  cw.crash(1, 50000);
  cw.world.run();
  for (auto* o : cw.objects) {
    EXPECT_FALSE(o->in_action());
  }
}

TEST(HeartbeatMonitor, DetectsCrashNoFalsePositives) {
  World w;
  rt::HeartbeatMonitor m1, m2, m3;
  const NodeId n1 = w.add_node(), n2 = w.add_node(), n3 = w.add_node();
  w.attach(m1, "hb1", n1);
  w.attach(m2, "hb2", n2);
  w.attach(m3, "hb3", n3);

  std::vector<ObjectId> crashes_seen_by_1;
  rt::HeartbeatMonitor::Config c1;
  c1.on_crash = [&](ObjectId peer) { crashes_seen_by_1.push_back(peer); };
  m1.start({m2.id(), m3.id()}, c1);
  m2.start({m1.id(), m3.id()}, {});
  m3.start({m1.id(), m2.id()}, {});

  // Healthy for a while: no suspicion.
  w.simulator().run_until(10000);
  EXPECT_TRUE(crashes_seen_by_1.empty());
  EXPECT_FALSE(m1.suspects(m2.id()));

  // Kill node 3; within timeout + interval, m1 and m2 suspect it.
  w.network().set_node_up(n3, false);
  w.simulator().run_until(20000);
  ASSERT_EQ(crashes_seen_by_1.size(), 1u);
  EXPECT_EQ(crashes_seen_by_1[0], m3.id());
  EXPECT_TRUE(m2.suspects(m3.id()));
  EXPECT_FALSE(m1.suspects(m2.id()));

  m1.stop();
  m2.stop();
  m3.stop();
  w.run();  // quiesces once monitors are stopped
}

TEST(HeartbeatMonitor, EndToEndCrashDetectionDrivesResolution) {
  // Full pipeline: participants + monitors; a node dies; monitors detect
  // and notify the local participant, which raises the crash exception.
  World w;
  std::vector<Participant*> objects;
  std::vector<rt::HeartbeatMonitor*> monitors;
  static constexpr int kN = 3;
  std::vector<std::unique_ptr<rt::HeartbeatMonitor>> monitor_storage;
  std::vector<ObjectId> ids;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kN; ++i) {
    const NodeId node = w.add_node();
    nodes.push_back(node);
    objects.push_back(
        &w.add_participant("O" + std::to_string(i + 1), node));
    ids.push_back(objects.back()->id());
    monitor_storage.push_back(std::make_unique<rt::HeartbeatMonitor>());
    w.attach(*monitor_storage.back(), "hb" + std::to_string(i + 1), node);
    monitors.push_back(monitor_storage.back().get());
  }
  const auto& decl = w.actions().declare("A", crash_tree());
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(uniform_handlers(decl.tree(),
                                           ex::HandlerResult::recovered(100)))
            .on_peer_crash(decl.tree().find("peer_crash"))));
  }
  // Wire each monitor to its co-located participant; monitor ids map to
  // participant ids by index.
  for (int i = 0; i < kN; ++i) {
    std::vector<ObjectId> peers;
    for (int j = 0; j < kN; ++j) {
      if (j != i) peers.push_back(monitors[j]->id());
    }
    rt::HeartbeatMonitor::Config config;
    config.on_crash = [&, i](ObjectId peer_monitor) {
      for (int j = 0; j < kN; ++j) {
        if (monitors[j]->id() == peer_monitor) {
          objects[i]->notify_peer_crashed(objects[j]->id());
        }
      }
    };
    monitors[i]->start(peers, config);
  }

  w.at(5000, [&] { w.network().set_node_up(nodes[2], false); });
  w.simulator().run_until(60000);

  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(objects[i]->handled().size(), 1u) << i;
    EXPECT_EQ(objects[i]->handled()[0].resolved,
              decl.tree().find("peer_crash"))
        << i;
    EXPECT_FALSE(objects[i]->in_action()) << i;
  }
  for (auto* m : monitors) m->stop();
  w.run();
}

}  // namespace
}  // namespace caa
