// Allocation accounting for the packet hot path.
//
// This binary overrides global operator new/delete with a counting
// allocator and pins the zero-allocation steady state the pooled send
// path promises: once buffers, counters and the event arena are warm, a
// ping-pong of AppData packets performs NO heap allocations — payloads
// come from the thread-local BytesPool, delivery events live in the
// EventFn small-buffer and the queue's slot arena, and counter writes hit
// a pre-grown dense table.
//
// Also covers WireWriter reuse after take() (the writer re-arms from its
// pool) and the pool's retention caps.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "caa/world.h"
#include "net/wire.h"
#include "rt/managed_object.h"
#include "rt/runtime.h"

// GCC cross-pairs inlined std::vector allocations with the replaced global
// delete and warns; the replacement new/delete below are malloc/free-matched
// by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::int64_t> g_alloc_count{0};

}  // namespace

// Counting allocator: every global allocation in this binary bumps the
// counter. Deallocation stays free-based so mismatched sized/unsized
// forms cannot double-count.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace caa {
namespace {

/// Bounces every AppData packet straight back, taking its payload copy
/// from the thread-local pool (the zero-allocation idiom).
class PingPong final : public rt::ManagedObject {
 public:
  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override {
    ++received_;
    if (kind == net::MsgKind::kAppData && bounces_left_ > 0) {
      --bounces_left_;
      send(from, net::MsgKind::kAppData,
           net::BytesPool::local().copy_of(payload));
    }
  }
  std::int64_t bounces_left_ = 0;
  std::int64_t received_ = 0;
};

TEST(NetAlloc, SteadyStatePacketTrafficAllocatesNothing) {
  WorldConfig wc;
  wc.link = net::LinkParams::lan();  // 20-tick latency: time advances
  World w(wc);
  PingPong a, b;
  const NodeId na = w.add_node(), nb = w.add_node();
  w.attach(a, "a", na);
  w.attach(b, "b", nb);
  a.bounces_left_ = 1'000'000;
  b.bounces_left_ = 1'000'000;

  w.at(0, [&] {
    net::WireWriter payload;
    payload.u64(0xfeedfacecafebeefULL);
    payload.str("steady-state probe");
    w.runtime(na).send(a.id(), b.id(), net::MsgKind::kAppData,
                       payload.take());
  });

  // Warm-up: grows the event arena, interns every counter this traffic
  // touches, and seeds the BytesPool free list. One hop costs ~100-120
  // virtual ticks (lan latency + jitter), so 10k ticks ≈ 90 deliveries.
  w.simulator().run_until(10'000);
  const std::int64_t received_before = a.received_ + b.received_;
  ASSERT_GT(received_before, 10) << "ping-pong never got going";

  const std::int64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  w.simulator().run_until(100'000);
  const std::int64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::int64_t received_after = a.received_ + b.received_;

  ASSERT_GT(received_after, received_before + 500)
      << "measurement window carried no traffic";
  EXPECT_EQ(allocs_after - allocs_before, 0)
      << "steady-state packet path allocated "
      << (allocs_after - allocs_before) << " times over "
      << (received_after - received_before) << " deliveries";

  // Wind down cleanly: stop bouncing and drain in-flight packets.
  a.bounces_left_ = 0;
  b.bounces_left_ = 0;
  w.run();
}

TEST(NetAlloc, WriterReuseAfterTake) {
  net::BytesPool pool;
  net::WireWriter writer(pool);
  writer.u32(7);
  writer.str("first");
  const net::Bytes first = writer.take();

  // The writer re-armed itself from the pool; a second message must not
  // see any bytes of the first.
  writer.u32(9);
  writer.str("second");
  const net::Bytes second = writer.take();

  net::WireReader r1(first);
  EXPECT_EQ(r1.u32().value(), 7u);
  EXPECT_EQ(r1.str().value(), "first");
  EXPECT_EQ(r1.remaining(), 0u);

  net::WireReader r2(second);
  EXPECT_EQ(r2.u32().value(), 9u);
  EXPECT_EQ(r2.str().value(), "second");
  EXPECT_EQ(r2.remaining(), 0u);

  // Round-trip the reuse: recycling a taken buffer and writing again must
  // serve it from the free list, not the heap.
  pool.recycle(net::Bytes(first));
  const std::int64_t reused_before = pool.reused();
  net::WireWriter again(pool);
  again.u64(42);
  const net::Bytes third = again.take();
  EXPECT_GT(pool.reused(), reused_before);
  net::WireReader r3(third);
  EXPECT_EQ(r3.u64().value(), 42u);
}

TEST(NetAlloc, PoolDropsOversizedAndOverflowBuffers) {
  net::BytesPool pool;

  // A buffer beyond the retention cap is dropped, not hoarded.
  net::Bytes huge;
  huge.reserve(net::BytesPool::kMaxRetainedCapacity + 1);
  pool.recycle(std::move(huge));
  EXPECT_EQ(pool.pooled(), 0u);

  // Moved-from (capacity 0) husks are ignored.
  pool.recycle(net::Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);

  // The free list never grows past kMaxPooled.
  for (std::size_t i = 0; i < net::BytesPool::kMaxPooled + 10; ++i) {
    net::Bytes b;
    b.reserve(16);
    pool.recycle(std::move(b));
  }
  EXPECT_EQ(pool.pooled(), net::BytesPool::kMaxPooled);

  // copy_of produces equal bytes through a pooled buffer.
  net::Bytes src;
  src.push_back(std::byte{0xab});
  src.push_back(std::byte{0xcd});
  const net::Bytes copy = pool.copy_of(src);
  EXPECT_EQ(copy, src);
}

}  // namespace
}  // namespace caa
