// Liveness watchdog: refcounted holds, deadline polling, quiescent-stall
// diagnosis, the planted stalled-exit golden, crash-release (a fail-stop
// victim must not read as a stall), the chaos-oracle hook, and the
// zero-drift contract (arming the watchdog never moves checksums).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "caa/world.h"
#include "obs/watchdog.h"
#include "run/campaign.h"
#include "scenario/scenarios.h"

#ifndef CAA_TEST_DATA_DIR
#error "CAA_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

// ---------------------------------------------------------------------------
// Unit level: the Watchdog class alone.

TEST(Watchdog, DeadlineFiresOnlyAfterSilence) {
  obs::Watchdog wd;
  wd.arm(5000, {});
  ASSERT_TRUE(wd.armed());
  wd.note_open(1, 0);
  wd.maybe_poll(4999);
  EXPECT_TRUE(wd.reports().empty());
  // Progress resets the clock.
  wd.note_progress(1, 4000);
  wd.maybe_poll(8999);
  EXPECT_TRUE(wd.reports().empty());
  wd.maybe_poll(9000);
  ASSERT_EQ(wd.reports().size(), 1u);
  EXPECT_EQ(wd.reports()[0].scope, 1u);
  EXPECT_EQ(wd.reports()[0].detected_at, 9000);
  EXPECT_EQ(wd.reports()[0].last_progress, 4000);
  EXPECT_FALSE(wd.reports()[0].at_quiescence);
  // Each scope is diagnosed once.
  wd.maybe_poll(50'000);
  EXPECT_EQ(wd.reports().size(), 1u);
}

TEST(Watchdog, HoldsAreReferenceCounted) {
  obs::Watchdog wd;
  wd.arm(100, {});
  // Two members hold the scope; one leaving is progress, not closure.
  wd.note_open(7, 0);
  wd.note_open(7, 0);
  wd.note_closed(7, 10);
  wd.maybe_poll(105);
  EXPECT_TRUE(wd.reports().empty()) << "member exit must reset the clock";
  wd.maybe_poll(200);
  EXPECT_EQ(wd.reports().size(), 1u);
  // A fully-closed scope never reports, even at quiescence.
  wd.note_open(8, 300);
  wd.note_closed(8, 301);
  wd.finish(10'000);
  EXPECT_EQ(wd.reports().size(), 1u);
}

TEST(Watchdog, FinishDiagnosesQuiescentStallsEarly) {
  obs::Watchdog wd;
  wd.arm(1000, [](std::uint64_t, obs::WatchdogReport& report) {
    report.phase = "unit phase";
    report.awaited = {"peer"};
  });
  int hook_fired = 0;
  wd.set_report_hook(
      [&hook_fired](const obs::WatchdogReport&) { ++hook_fired; });
  wd.note_open(3, 50);
  // The queue drained at t=60: the deadline has not elapsed, but no event
  // can ever progress the scope — diagnose now.
  wd.finish(60);
  ASSERT_EQ(wd.reports().size(), 1u);
  EXPECT_TRUE(wd.reports()[0].at_quiescence);
  EXPECT_EQ(wd.reports()[0].phase, "unit phase");
  ASSERT_EQ(wd.reports()[0].awaited.size(), 1u);
  EXPECT_EQ(wd.reports()[0].awaited[0], "peer");
  EXPECT_EQ(hook_fired, 1);
  EXPECT_NE(wd.report_text().find("unit phase"), std::string::npos);
}

// ---------------------------------------------------------------------------
// World level: the full diagnosis pipeline.

ex::ExceptionTree small_tree() {
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("peer_crash");
  return tree;
}

/// The planted stall of the issue: O3 never completes, so the exit barrier
/// can never close. The deadline poll must name the scope, the barrier
/// phase and exactly the member being awaited. The full report is pinned as
/// a golden; regenerate with CAA_UPDATE_GOLDEN=1 ./watchdog_test.
TEST(Watchdog, PlantedStalledExitIsDiagnosed) {
  WorldConfig config;
  config.watchdog_deadline = 5000;
  World w(config);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A", small_tree());
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance,
                         EnterConfig::with(uniform_handlers(
                             decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] { o1.complete(); });
  w.at(1100, [&] { o2.complete(); });
  // o3 never completes. Carry virtual time past the deadline so the poll
  // fires before quiescence (the watchdog schedules nothing itself).
  w.at(30'000, [] {});
  w.run();

  ASSERT_EQ(w.watchdog().reports().size(), 1u);
  const obs::WatchdogReport& report = w.watchdog().reports()[0];
  EXPECT_EQ(report.scope, a1.instance.value());
  EXPECT_FALSE(report.at_quiescence);
  EXPECT_EQ(report.detected_at, 30'000);
  // The leader's view wins (it can name who it awaits): the barrier is
  // collecting Dones and O3 is the only one missing.
  EXPECT_NE(report.scope_name.find("A @ "), std::string::npos);
  EXPECT_NE(report.phase.find("exit.barrier"), std::string::npos);
  ASSERT_EQ(report.awaited.size(), 1u);
  EXPECT_EQ(report.awaited[0], "O3");

  const std::string text = w.watchdog().report_text();
  const std::string golden_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/watchdog_stalled_exit.txt";
  if (std::getenv("CAA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    out << text;
    GTEST_SKIP() << "golden rewritten: " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path
                         << " (run with CAA_UPDATE_GOLDEN=1)";
  std::stringstream data;
  data << in.rdbuf();
  EXPECT_EQ(data.str(), text)
      << "watchdog diagnosis drifted from the committed golden";
}

/// A stall *during resolution*: O3's node silently dies (no membership
/// notice, direct transport) right after the Exception multicast, so the
/// resolver waits on its ACK forever. The diagnosis names the resolve
/// phase, the awaited member, and — because resolution left protocol
/// records in the flight recorder — the causal tail into the stall.
TEST(Watchdog, PlantedStalledResolutionHasCausalTail) {
  WorldConfig config;
  config.watchdog_deadline = 5000;
  World w(config);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A", small_tree());
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance,
                         EnterConfig::with(uniform_handlers(
                             decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] { o1.raise("ea"); });
  w.at(1001, [&] {
    w.network().set_node_up(w.directory().address_of(o3.id()).node, false);
  });
  w.at(30'000, [] {});
  w.run();

  ASSERT_EQ(w.watchdog().reports().size(), 1u);
  const obs::WatchdogReport& report = w.watchdog().reports()[0];
  EXPECT_EQ(report.scope, a1.instance.value());
  EXPECT_NE(report.phase.find("resolve"), std::string::npos) << report.phase;
  ASSERT_FALSE(report.awaited.empty());
  EXPECT_NE(std::find(report.awaited.begin(), report.awaited.end(), "O3"),
            report.awaited.end());
  EXPECT_FALSE(report.tail.empty()) << "recorder tail missing";
}

TEST(Watchdog, HealthyRunStaysSilent) {
  WorldConfig config;
  config.watchdog_deadline = 5000;
  World w(config);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A", small_tree());
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance,
                         EnterConfig::with(uniform_handlers(
                             decl.tree(), ex::HandlerResult::recovered()))));
  }
  // A raise exercises the resolution progress notes along the way.
  w.at(1000, [&] { o1.raise("ea"); });
  for (Participant* o : {&o1, &o2, &o3}) {
    w.at(8000, [o] {
      if (o->in_action()) o->complete();
    });
  }
  w.at(30'000, [] {});
  w.run();
  EXPECT_TRUE(w.watchdog().reports().empty()) << w.watchdog().report_text();
  EXPECT_EQ(w.watchdog().report_text(), "");
}

TEST(Watchdog, CrashedMemberIsReleasedNotReported) {
  // A fail-stop crash must not read as a stall: the victim's holds are
  // released on the down transition, the survivors exclude it and finish.
  WorldConfig config;
  config.watchdog_deadline = 5000;
  World w(config);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A", small_tree());
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(
        o->enter(a1.instance,
                 EnterConfig::with(uniform_handlers(
                                       decl.tree(),
                                       ex::HandlerResult::recovered(100)))
                     .on_peer_crash(decl.tree().find("peer_crash"))));
  }
  w.at(1050, [&] {
    w.network().set_node_up(w.directory().address_of(o3.id()).node, false);
    o1.notify_peer_crashed(o3.id());
    o2.notify_peer_crashed(o3.id());
  });
  for (Participant* o : {&o1, &o2}) {
    w.at(8000, [o] {
      if (o->in_action()) o->complete();
    });
  }
  w.at(30'000, [] {});
  w.run();
  EXPECT_TRUE(w.watchdog().reports().empty()) << w.watchdog().report_text();
}

TEST(Watchdog, ZeroDriftArmingNeverMovesChecksums) {
  scenario::FlatOptions armed_options;
  armed_options.participants = 6;
  armed_options.raisers = 2;
  armed_options.world.watchdog_deadline = 4000;
  scenario::FlatScenario armed(armed_options);
  const run::WorldResult r_armed = run::measure(
      "armed", armed.world(), [&armed] { return armed.world().run(); });

  scenario::FlatOptions plain_options;
  plain_options.participants = 6;
  plain_options.raisers = 2;
  scenario::FlatScenario plain(plain_options);
  const run::WorldResult r_plain = run::measure(
      "plain", plain.world(), [&plain] { return plain.world().run(); });

  EXPECT_EQ(r_armed.checksum, r_plain.checksum);
  EXPECT_EQ(r_armed.events, r_plain.events);
  EXPECT_EQ(r_armed.sim_time, r_plain.sim_time);
  EXPECT_TRUE(armed.world().watchdog().reports().empty());
}

}  // namespace
}  // namespace caa
