// Virtual-time telemetry: window alignment, delta conservation, ring
// capacity, campaign merge invariance, the JSON round-trip, the committed
// timeline goldens, the zero-drift contract (telemetry on/off checksums)
// and the histogram quantile_bound edge cases.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "obs/timeseries.h"
#include "run/campaign.h"
#include "scenario/scenarios.h"

#ifndef CAA_TEST_DATA_DIR
#error "CAA_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace caa {
namespace {

/// The standard telemetry world of this file: the §4.4 flat scenario with
/// the sampler armed. Everything below derives from its table.
scenario::FlatOptions telemetry_options(sim::Time window = 250) {
  scenario::FlatOptions options;
  options.participants = 6;
  options.raisers = 2;
  options.world.telemetry.window = window;
  return options;
}

std::size_t column(const std::vector<std::string>& names,
                   const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  ADD_FAILURE() << "tracked column missing: " << name;
  return 0;
}

TEST(TimeSeries, WindowsAreAlignedAndDeltasConserve) {
  scenario::FlatScenario s(telemetry_options());
  s.run();
  const obs::TimeSeriesTable table = s.world().timeseries_table();

  ASSERT_FALSE(table.empty());
  EXPECT_EQ(table.window, 250);
  EXPECT_EQ(table.dropped, 0u);
  // Ascending absolute window indices (gaps are fine: idle stretches
  // produce no rows).
  for (std::size_t i = 1; i < table.windows.size(); ++i) {
    EXPECT_LT(table.windows[i - 1].index, table.windows[i].index);
  }

  // Window deltas are a partition of the run's totals: summing any tracked
  // counter column reproduces the end-of-run counter exactly.
  const auto sum_of = [&](const std::string& name) {
    const std::size_t c = column(table.counter_names, name);
    std::int64_t sum = 0;
    for (const obs::TimeSeriesWindow& w : table.windows) sum += w.counters[c];
    return sum;
  };
  EXPECT_EQ(sum_of("net.sent.Exception"),
            s.world().metrics().sent(net::MsgKind::kException));
  EXPECT_EQ(sum_of("net.sent.ACK"),
            s.world().metrics().sent(net::MsgKind::kAck));
  EXPECT_EQ(sum_of("net.sent.Commit"),
            s.world().metrics().sent(net::MsgKind::kCommit));

  // Gauges returned to zero by the end (the run quiesced), but the peaks
  // saw the action: all six scopes were open at once.
  EXPECT_EQ(table.peak_of("caa.open_scopes"), 6);
  EXPECT_GT(table.peak_of("net.in_flight"), 0);
  EXPECT_GT(table.peak_of("sim.queue_depth"), 0);
  EXPECT_EQ(table.peak_of("no.such.gauge"), 0);
}

TEST(TimeSeries, RingCapacityDropsOldestWindows) {
  scenario::FlatOptions options = telemetry_options(/*window=*/50);
  options.world.telemetry.capacity = 3;
  scenario::FlatScenario s(options);
  s.run();
  const obs::TimeSeriesTable table = s.world().timeseries_table();
  EXPECT_GT(table.dropped, 0u);
  EXPECT_LE(table.windows.size(), 4u);  // ring + the open partial window
}

TEST(TimeSeries, MergeIsWindowIndexAligned) {
  // Hand-built tables: identical schema, overlapping + disjoint windows.
  obs::TimeSeriesTable a;
  a.window = 100;
  a.counter_names = {"c"};
  a.gauge_names = {"g"};
  a.windows.push_back({.index = 0,
                       .counters = {5},
                       .gauges = {2},
                       .gauge_peaks = {3},
                       .hist_counts = {},
                       .hist_sums = {}});
  a.windows.push_back({.index = 2,
                       .counters = {7},
                       .gauges = {1},
                       .gauge_peaks = {1},
                       .hist_counts = {},
                       .hist_sums = {}});
  obs::TimeSeriesTable b = a;
  b.windows[0].counters = {10};
  b.windows[1] = {.index = 3,
                  .counters = {1},
                  .gauges = {4},
                  .gauge_peaks = {9},
                  .hist_counts = {},
                  .hist_sums = {}};

  obs::TimeSeriesTable merged = a;
  merged.merge(b);
  ASSERT_EQ(merged.windows.size(), 3u);  // indices 0 (shared), 2, 3
  EXPECT_EQ(merged.windows[0].index, 0u);
  EXPECT_EQ(merged.windows[0].counters[0], 15);  // element-wise sum
  EXPECT_EQ(merged.windows[0].gauges[0], 4);     // levels add across worlds
  EXPECT_EQ(merged.windows[1].index, 2u);
  EXPECT_EQ(merged.windows[1].counters[0], 7);
  EXPECT_EQ(merged.windows[2].index, 3u);
  EXPECT_EQ(merged.windows[2].gauge_peaks[0], 9);

  // Merge is commutative: b.merge(a) renders the same table.
  obs::TimeSeriesTable reversed = b;
  reversed.merge(a);
  EXPECT_EQ(merged.to_string(), reversed.to_string());

  // Merging into an empty table adopts the other side wholesale.
  obs::TimeSeriesTable empty;
  empty.merge(a);
  EXPECT_EQ(empty.to_string(), a.to_string());
}

run::Campaign telemetry_campaign(unsigned threads) {
  run::Campaign campaign({.seed = 42, .threads = threads});
  for (const int n : {4, 6, 8}) {
    for (int k = 0; k < 3; ++k) {
      campaign.add("flat_n" + std::to_string(n) + "#" + std::to_string(k),
                   [n](const run::WorldContext& ctx) {
                     scenario::FlatOptions options;
                     options.participants = n;
                     options.raisers = 2;
                     options.world.seed = ctx.seed;
                     options.world.telemetry.window = 250;
                     scenario::FlatScenario s(options);
                     return run::measure("flat", s.world(),
                                         [&s] { return s.world().run(); });
                   });
    }
  }
  return campaign;
}

TEST(TimeSeries, CampaignMergeIsThreadCountInvariant) {
  // The tentpole acceptance gate: the merged window table — not just its
  // totals — is byte-identical at any worker count.
  const run::CampaignResult serial = telemetry_campaign(1).run();
  const run::CampaignResult parallel = telemetry_campaign(8).run();
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  ASSERT_FALSE(serial.merged_timeseries.empty());
  EXPECT_EQ(serial.merged_timeseries.to_string(),
            parallel.merged_timeseries.to_string());
  EXPECT_EQ(serial.merged_timeseries.to_json(),
            parallel.merged_timeseries.to_json());
}

TEST(TimeSeries, JsonRoundTripIsLossless) {
  scenario::FlatScenario s(telemetry_options());
  s.run();
  const obs::TimeSeriesTable table = s.world().timeseries_table();
  const auto parsed = obs::TimeSeriesTable::from_json(table.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().to_string(), table.to_string());
  EXPECT_EQ(parsed.value().to_json(), table.to_json());
  EXPECT_EQ(parsed.value().dropped, table.dropped);

  EXPECT_FALSE(obs::TimeSeriesTable::from_json("{]").is_ok());
  EXPECT_FALSE(obs::TimeSeriesTable::from_json("{}").is_ok());
}

/// The committed timeline goldens: the JSON export and the sparkline
/// rendering of the standard telemetry world, byte-for-byte (tools/check.sh
/// renders the JSON through caa-report and compares against the .txt).
/// Regenerate both with CAA_UPDATE_GOLDEN=1 ./timeseries_test.
TEST(TimeSeries, GoldenTimelineAndJson) {
  scenario::FlatScenario s(telemetry_options());
  s.run();
  const obs::TimeSeriesTable table = s.world().timeseries_table();
  const std::string json_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/timeseries_flat.json";
  const std::string txt_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/timeseries_flat_timeline.txt";
  if (std::getenv("CAA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream json(json_path, std::ios::binary | std::ios::trunc);
    json << table.to_json();
    std::ofstream txt(txt_path, std::ios::binary | std::ios::trunc);
    txt << table.timeline();
    GTEST_SKIP() << "goldens rewritten: " << json_path;
  }
  std::ifstream json(json_path, std::ios::binary);
  ASSERT_TRUE(json.good()) << "missing golden " << json_path
                           << " (run with CAA_UPDATE_GOLDEN=1)";
  std::stringstream json_data;
  json_data << json.rdbuf();
  EXPECT_EQ(json_data.str(), table.to_json())
      << "timeseries JSON drifted from the committed golden";

  std::ifstream txt(txt_path, std::ios::binary);
  ASSERT_TRUE(txt.good()) << "missing golden " << txt_path;
  std::stringstream txt_data;
  txt_data << txt.rdbuf();
  EXPECT_EQ(txt_data.str(), table.timeline())
      << "timeline rendering drifted from the committed golden";
}

TEST(TimeSeries, ZeroDriftTelemetryNeverMovesChecksums) {
  // The determinism contract: arming the sampler (and the gauges feeding
  // it) adds no events and writes no counters, so the behaviour checksum is
  // bit-identical with telemetry on or off.
  scenario::FlatOptions with = telemetry_options();
  scenario::FlatScenario on(with);
  const run::WorldResult r_on =
      run::measure("on", on.world(), [&on] { return on.world().run(); });

  scenario::FlatOptions without = telemetry_options();
  without.world.telemetry.window = 0;
  scenario::FlatScenario off(without);
  const run::WorldResult r_off =
      run::measure("off", off.world(), [&off] { return off.world().run(); });

  EXPECT_EQ(r_on.checksum, r_off.checksum);
  EXPECT_EQ(r_on.events, r_off.events);
  EXPECT_EQ(r_on.sim_time, r_off.sim_time);
  EXPECT_FALSE(r_on.timeseries.empty());
  EXPECT_TRUE(r_off.timeseries.empty());
}

TEST(Histogram, QuantileBoundEdgeCases) {
  obs::Histogram h;
  h.record(3);
  h.record(3);
  h.record(100);
  // q=0: the lowest occupied bucket's upper bound (values 3 land in the
  // bit_width=2 bucket, bound 3).
  EXPECT_EQ(h.quantile_bound(0.0), 3);
  // q=1: the exact recorded max, not a power-of-two bucket bound.
  EXPECT_EQ(h.quantile_bound(1.0), 100);
  EXPECT_EQ(h.quantile_bound(0.5), 3);

  obs::Histogram empty;
  EXPECT_EQ(empty.quantile_bound(0.0), 0);
  EXPECT_EQ(empty.quantile_bound(1.0), 0);

  // The snapshot shares the same bucket-scan (and the same edges).
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.quantile_bound(0.0), 3);
  EXPECT_EQ(snap.quantile_bound(1.0), 100);
}

}  // namespace
}  // namespace caa
