// Property-based tests: randomized scenarios (seeded, deterministic) that
// check the DESIGN.md §5.3 invariants over many protocol interleavings:
//
//   Agreement      — all participants that handle a given (instance, round)
//                    handle the SAME resolved exception.
//   Coverage       — the resolved exception covers every exception
//                    successfully raised in that (instance, round).
//   Innermost-first— abortion records per participant go from deeper to
//                    shallower nesting.
//   Quiescence     — the simulation always drains; no livelock.
//   Accounting     — fault-free runs exchange zero resolution messages;
//                    flat runs match the §4.4 formula exactly.
//
// Each seed is one independent world, so the 300-seed sweeps run as
// campaigns sharded across every core instead of one TEST_P per seed.
// A seed's invariant violations are collected as strings and reported
// through WorldResult::error; scenario construction per seed is unchanged
// from the TEST_P era.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "caa/world.h"
#include "run/campaign.h"
#include "util/rng.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

struct RaiseRecord {
  ActionInstanceId instance;
  std::uint32_t round;
  ExceptionId exception;
};

struct Scenario {
  World world;
  std::vector<Participant*> objects;
  std::map<ActionInstanceId, const action::ActionDecl*> decls;
  std::map<ActionInstanceId, std::size_t> depth_of;
  std::vector<RaiseRecord> raises;
  std::vector<std::string> violations;

  void fail(const std::string& message) { violations.push_back(message); }

  /// Records and performs a raise only if it would be effective.
  void try_raise(Participant& p, ExceptionId e) {
    if (!p.in_action()) return;
    if (p.at_acceptance_line()) return;
    if (p.resolver_state() != resolve::ResolverCore::State::kNormal) return;
    const ActionInstanceId scope = p.active_instance();
    raises.push_back(RaiseRecord{scope, p.round_of(scope), e});
    p.raise(e);
  }

  void check_agreement_and_coverage() {
    // (instance, round) -> resolved exception seen.
    std::map<std::pair<ActionInstanceId, std::uint32_t>, ExceptionId> seen;
    for (const Participant* o : objects) {
      for (const auto& h : o->handled()) {
        const auto key = std::make_pair(h.instance, h.round);
        auto [it, inserted] = seen.emplace(key, h.resolved);
        if (!inserted && it->second != h.resolved) {
          std::ostringstream msg;
          msg << "agreement violated in instance " << h.instance.value()
              << " round " << h.round;
          fail(msg.str());
          return;
        }
      }
    }
    for (const RaiseRecord& r : raises) {
      auto it = seen.find(std::make_pair(r.instance, r.round));
      if (it == seen.end()) continue;  // round superseded by outer abort
      const auto& tree = decls.at(r.instance)->tree();
      if (!tree.covers(it->second, r.exception)) {
        fail("resolved " + std::string(tree.name_of(it->second)) +
             " does not cover " + std::string(tree.name_of(r.exception)));
      }
    }
  }

  void check_innermost_first() {
    for (const Participant* o : objects) {
      std::size_t last_depth = SIZE_MAX;
      for (const auto& a : o->aborts()) {
        const std::size_t d = depth_of.at(a.instance);
        if (d >= last_depth) {
          fail("abortion order not innermost-first at " + o->name());
          return;
        }
        last_depth = d;
      }
    }
  }
};

ex::ExceptionTree random_tree(Rng& rng, int min_size = 3) {
  ex::ExceptionTree tree;
  const int extra = static_cast<int>(rng.below(5)) + min_size;
  std::vector<ExceptionId> nodes{tree.root()};
  for (int i = 0; i < extra; ++i) {
    const ExceptionId parent = nodes[rng.below(nodes.size())];
    nodes.push_back(tree.declare("x" + std::to_string(i), parent));
  }
  tree.freeze();
  return tree;
}

ExceptionId random_exception(Rng& rng, const ex::ExceptionTree& tree) {
  // Any declared exception except (usually) the root.
  if (tree.size() == 1) return tree.root();
  return ExceptionId(1 + static_cast<std::uint32_t>(rng.below(tree.size() - 1)));
}

/// Seals a seed's violations into its WorldResult.
run::WorldResult finish(run::WorldResult r, Scenario& s) {
  if (!s.violations.empty()) {
    r.ok = false;
    std::ostringstream all;
    for (std::size_t i = 0; i < s.violations.size(); ++i) {
      if (i != 0) all << "; ";
      all << s.violations[i];
    }
    r.error = all.str();
  }
  return r;
}

run::WorldResult run_safe_timings(std::uint64_t seed) {
  // Entries happen strictly before any raise can propagate, so nobody is
  // belated; handlers recover; every participant must leave every action.
  Rng rng(seed);
  Scenario s;
  const int n = 2 + static_cast<int>(rng.below(6));  // 2..7 participants

  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    s.objects.push_back(
        &s.world.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(s.objects.back()->id());
  }
  const auto& outer_decl =
      s.world.actions().declare("A_outer", random_tree(rng));
  const auto& outer = s.world.actions().create_instance(outer_decl, ids);
  s.decls[outer.instance] = &outer_decl;
  s.depth_of[outer.instance] = 0;

  auto config_for = [&](const action::ActionDecl& decl,
                        const ex::ExceptionTree* parent_tree) {
    auto builder =
        EnterConfig::with(uniform_handlers(
                              decl.tree(),
                              ex::HandlerResult::recovered(rng.below(300))))
            .handler_delay(static_cast<sim::Time>(rng.below(100)));
    if (parent_tree != nullptr && rng.chance(0.5)) {
      const ExceptionId signal = random_exception(rng, *parent_tree);
      const sim::Time duration = static_cast<sim::Time>(rng.below(200));
      builder.abortion([signal, duration] {
        return ex::AbortResult::signalling(signal, duration);
      });
    } else {
      const sim::Time duration = static_cast<sim::Time>(rng.below(200));
      builder.abortion(
          [duration] { return ex::AbortResult::none(duration); });
    }
    return std::move(builder).build();
  };

  for (auto* o : s.objects) {
    if (!o->enter(outer.instance, config_for(outer_decl, nullptr))) {
      s.fail("outer enter refused for " + o->name());
      return finish({}, s);
    }
  }

  // A random chain of nested actions over shrinking member subsets.
  const action::InstanceInfo* parent = &outer;
  std::vector<Participant*> members = s.objects;
  const int levels = static_cast<int>(rng.below(3));  // 0..2 nested levels
  for (int level = 0; level < levels && members.size() > 1; ++level) {
    // Random subset: keep each member with p=0.7, at least one.
    std::vector<Participant*> next;
    for (auto* m : members) {
      if (rng.chance(0.7)) next.push_back(m);
    }
    if (next.empty()) next.push_back(members[rng.below(members.size())]);
    std::vector<ObjectId> next_ids;
    for (auto* m : next) next_ids.push_back(m->id());
    const auto& decl = s.world.actions().declare(
        "A_nested_" + std::to_string(level), random_tree(rng));
    const auto& inst =
        s.world.actions().create_instance(decl, next_ids, parent->instance);
    s.decls[inst.instance] = &decl;
    s.depth_of[inst.instance] = static_cast<std::size_t>(level) + 1;
    const auto& parent_tree = s.decls.at(parent->instance)->tree();
    for (auto* m : next) {
      if (!m->enter(inst.instance, config_for(decl, &parent_tree))) {
        s.fail("nested enter refused for " + m->name());
        return finish({}, s);
      }
    }
    parent = &inst;
    members = std::move(next);
  }

  // Raises: 1..3 random (object, time) pairs, against the active action.
  const int raise_count = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < raise_count; ++i) {
    Participant* p = s.objects[rng.below(s.objects.size())];
    const sim::Time t = 1000 + static_cast<sim::Time>(rng.below(2500));
    s.world.at(t, [&s, p] {
      if (!p->in_action()) return;
      const auto& tree = s.decls.at(p->active_instance())->tree();
      Rng local(p->id().value() * 7919 + 13);
      s.try_raise(*p, random_exception(local, tree));
    });
  }

  // Completion pushes: every object tries to complete its active action
  // periodically until it has left everything.
  for (auto* o : s.objects) {
    for (sim::Time t = 6000; t <= 40000; t += 1500) {
      s.world.at(t, [o] {
        if (o->in_action() &&
            o->resolver_state() == resolve::ResolverCore::State::kNormal) {
          o->complete();
        }
      });
    }
  }

  run::WorldResult r = run::measure("safe#" + std::to_string(seed), s.world,
                                    [&s] { return s.world.run(); });

  for (auto* o : s.objects) {
    if (o->in_action()) s.fail(o->name() + " stuck");
  }
  s.check_agreement_and_coverage();
  s.check_innermost_first();
  if (!s.world.failures().empty()) s.fail("unexpected failure reports");
  return finish(std::move(r), s);
}

run::WorldResult run_chaotic_timings(std::uint64_t seed) {
  // Entries, raises and completions all overlap: belated participants and
  // superseded resolutions happen. We assert the structural invariants and
  // quiescence, not full completion.
  Rng rng(seed ^ 0xfeedface);
  Scenario s;
  const int n = 2 + static_cast<int>(rng.below(5));

  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    s.objects.push_back(
        &s.world.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(s.objects.back()->id());
  }
  const auto& outer_decl =
      s.world.actions().declare("A_outer", random_tree(rng));
  const auto& outer = s.world.actions().create_instance(outer_decl, ids);
  s.decls[outer.instance] = &outer_decl;
  s.depth_of[outer.instance] = 0;

  auto make_config = [&](const action::ActionDecl& decl) {
    const sim::Time duration = static_cast<sim::Time>(rng.below(400));
    return EnterConfig::with(uniform_handlers(
                                 decl.tree(),
                                 ex::HandlerResult::recovered(rng.below(300))))
        .abortion([duration] { return ex::AbortResult::none(duration); })
        .build();
  };

  for (auto* o : s.objects) {
    if (!o->enter(outer.instance, make_config(outer_decl))) {
      s.fail("outer enter refused for " + o->name());
      return finish({}, s);
    }
  }

  // Nested chain whose entries are *scheduled*, racing the raises. A real
  // object enters actions in program order, so each participant's deeper
  // entry is scheduled strictly after its previous one.
  const action::InstanceInfo* parent = &outer;
  std::vector<Participant*> members = s.objects;
  std::map<Participant*, sim::Time> last_entry;
  for (auto* m : s.objects) last_entry[m] = 0;
  const int levels = static_cast<int>(rng.below(3));
  for (int level = 0; level < levels && members.size() > 1; ++level) {
    std::vector<Participant*> next;
    for (auto* m : members) {
      if (rng.chance(0.7)) next.push_back(m);
    }
    if (next.empty()) next.push_back(members[rng.below(members.size())]);
    std::vector<ObjectId> next_ids;
    for (auto* m : next) next_ids.push_back(m->id());
    const auto& decl = s.world.actions().declare(
        "A_nested_" + std::to_string(level), random_tree(rng));
    const auto& inst =
        s.world.actions().create_instance(decl, next_ids, parent->instance);
    s.decls[inst.instance] = &decl;
    s.depth_of[inst.instance] = static_cast<std::size_t>(level) + 1;
    const ActionInstanceId parent_instance = parent->instance;
    for (auto* m : next) {
      const sim::Time t =
          last_entry[m] + 1 + static_cast<sim::Time>(rng.below(2000));
      last_entry[m] = t;
      auto config = make_config(decl);
      const ActionInstanceId target = inst.instance;
      s.world.at(t, [m, target, parent_instance, config] {
        // Enter only from the expected parent context (program order); a
        // participant that never made it into the parent (belated there)
        // never attempts the child either.
        if (!m->in_action() || m->active_instance() != parent_instance) {
          return;
        }
        (void)m->enter(target, config);  // may still be refused: belated
      });
    }
    parent = &inst;
    members = std::move(next);
  }

  const int raise_count = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < raise_count; ++i) {
    Participant* p = s.objects[rng.below(s.objects.size())];
    const sim::Time t = 600 + static_cast<sim::Time>(rng.below(3000));
    const std::uint64_t salt = rng.next();
    s.world.at(t, [&s, p, salt] {
      if (!p->in_action()) return;
      const auto& tree = s.decls.at(p->active_instance())->tree();
      Rng local(salt);
      s.try_raise(*p, random_exception(local, tree));
    });
  }

  for (auto* o : s.objects) {
    for (sim::Time t = 8000; t <= 60000; t += 2000) {
      s.world.at(t, [o] {
        if (o->in_action() &&
            o->resolver_state() == resolve::ResolverCore::State::kNormal) {
          o->complete();
        }
      });
    }
  }

  run::WorldResult r =
      run::measure("chaotic#" + std::to_string(seed), s.world,
                   [&s] { return s.world.run(); });
  if (r.events == 0) s.fail("no events fired");
  s.check_agreement_and_coverage();
  s.check_innermost_first();
  return finish(std::move(r), s);
}

run::WorldResult run_flat_formula(std::uint64_t seed) {
  // §4.4 general formula on flat actions with Q=0: total resolution
  // messages == (N-1)(2P+1) when P objects raise simultaneously.
  Rng rng(seed * 31 + 7);
  const int n = 2 + static_cast<int>(rng.below(9));       // 2..10
  const int p = 1 + static_cast<int>(rng.below(n));       // 1..N
  Scenario s;
  World& w = s.world;
  std::vector<Participant*>& objects = s.objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  const auto& decl = w.actions().declare(
      "A", ex::shapes::star(static_cast<std::size_t>(n)));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    if (!o->enter(inst.instance,
                  EnterConfig::with(uniform_handlers(
                      decl.tree(), ex::HandlerResult::recovered())))) {
      s.fail("enter refused for " + o->name());
      return finish({}, s);
    }
  }
  // P distinct raisers, all at the same instant (before any propagation).
  std::vector<int> raisers(n);
  for (int i = 0; i < n; ++i) raisers[i] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(raisers[i], raisers[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  }
  w.at(1000, [&] {
    for (int i = 0; i < p; ++i) {
      objects[raisers[i]]->raise("s" + std::to_string(raisers[i] + 1));
    }
  });
  run::WorldResult r = run::measure("flat#" + std::to_string(seed), w,
                                    [&w] { return w.run(); });
  if (w.metrics().resolution_messages() != (n - 1) * (2 * p + 1)) {
    std::ostringstream msg;
    msg << "formula mismatch: N=" << n << " P=" << p << " expected "
        << (n - 1) * (2 * p + 1) << " got "
        << w.metrics().resolution_messages();
    s.fail(msg.str());
  }
  for (auto* o : objects) {
    if (o->handled().size() != 1u) s.fail(o->name() + " handled() != 1");
    if (o->in_action()) s.fail(o->name() + " still in action");
  }
  return finish(std::move(r), s);
}

/// Shards `runner` over seeds 1..300 and reports every violating seed.
void run_sweep(const char* label,
               run::WorldResult (*runner)(std::uint64_t)) {
  run::Campaign campaign({.seed = 42, .threads = 0});
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    campaign.add(std::string(label) + "#" + std::to_string(seed),
                 [runner, seed](const run::WorldContext&) {
                   return runner(seed);
                 });
  }
  const run::CampaignResult result = campaign.run();
  EXPECT_TRUE(result.all_ok())
      << result.failed << " seed(s) violated invariants; first: "
      << result.first_error();
  EXPECT_GT(result.total_events, 0);
}

TEST(PropertySweep, SafeTimingsFullCompletion) {
  run_sweep("safe", &run_safe_timings);
}

TEST(PropertySweep, ChaoticTimingsStructuralInvariants) {
  run_sweep("chaotic", &run_chaotic_timings);
}

TEST(PropertySweep, FlatFormulaExact) {
  run_sweep("flat", &run_flat_formula);
}

TEST(PropertySweep, SweepIsThreadCountInvariant) {
  // The same seed range merged at 1 worker and at 8 workers must agree
  // bit-for-bit — the campaign determinism contract on real workloads.
  auto sweep_with = [](unsigned threads) {
    run::Campaign campaign({.seed = 42, .threads = threads});
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      campaign.add("flat#" + std::to_string(seed),
                   [seed](const run::WorldContext&) {
                     return run_flat_formula(seed);
                   });
    }
    return campaign.run();
  };
  const run::CampaignResult serial = sweep_with(1);
  const run::CampaignResult parallel = sweep_with(8);
  ASSERT_TRUE(serial.all_ok()) << serial.first_error();
  ASSERT_TRUE(parallel.all_ok()) << parallel.first_error();
  EXPECT_EQ(serial.merged_checksum, parallel.merged_checksum);
  EXPECT_EQ(serial.merged_metrics.to_string(),
            parallel.merged_metrics.to_string());
  EXPECT_EQ(serial.total_events, parallel.total_events);
}

}  // namespace
}  // namespace caa
