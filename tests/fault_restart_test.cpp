// Node restart and re-admission (§4.2 fail-stop): a node taken down
// mid-action loses its volatile state; when it comes back up the World
// notifies both directions — survivors learn of the crash (idempotent) and
// re-admit the restarted objects, while the restarted objects abandon the
// scopes the crash wiped. A restarted object never rejoins an in-flight
// resolution (its exclusion is locked into the per-instance engines) but
// participates in new action instances as a regular member.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "fault/chaos.h"
#include "fault/injector.h"
#include "fault/oracle.h"
#include "run/campaign.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

struct RestartWorld {
  World w;
  Participant* o1;
  Participant* o2;
  Participant* o3;
  const action::ActionDecl* decl;

  RestartWorld() : w(make_config()) {
    o1 = &w.add_participant("O1");
    o2 = &w.add_participant("O2");
    o3 = &w.add_participant("O3");
    ex::ExceptionTree tree;
    tree.declare("boom");
    tree.declare("peer_crash");
    decl = &w.actions().declare("A", std::move(tree));
  }

  static WorldConfig make_config() {
    WorldConfig config;
    config.reliable_transport = true;
    config.seed = 11;
    return config;
  }

  ActionInstanceId enter_all() {
    const auto& inst =
        w.actions().create_instance(*decl, {o1->id(), o2->id(), o3->id()});
    for (auto* o : {o1, o2, o3}) {
      EXPECT_TRUE(o->enter(
          inst.instance,
          EnterConfig::with(uniform_handlers(decl->tree(),
                                             ex::HandlerResult::recovered(100)))
              .committee(2)
              .on_peer_crash(decl->tree().find("peer_crash"))));
    }
    return inst.instance;
  }

  void drive_completion() {
    for (auto* o : {o1, o2, o3}) {
      for (sim::Time t = 6000; t <= 20000; t += 2000) {
        w.at(t, [o] {
          if (o->in_action() && !o->at_acceptance_line() &&
              o->resolver_state() == resolve::ResolverCore::State::kNormal) {
            o->complete();
          }
        });
      }
    }
  }
};

TEST(FaultRestart, RestartMidActionAbandonsTheScopeSurvivorsFinish) {
  RestartWorld rw;
  const ActionInstanceId scope = rw.enter_all();
  const NodeId victim = rw.o3->runtime().node();
  rw.w.at(1000, [&rw] { rw.o2->raise("boom"); });
  rw.w.at(1250, [&rw, victim] { fault::FaultInjector::crash_node(rw.w, victim); });
  rw.w.at(2600, [&rw, victim] { rw.w.network().set_node_up(victim, true); });
  rw.drive_completion();
  rw.w.run();

  const fault::OracleReport report = fault::check_invariants(rw.w, {});
  EXPECT_TRUE(report.ok()) << report.summary();

  // The crash wiped O3's volatile action state: the scope is abandoned,
  // not resumed — the restarted object is a belated participant the live
  // resolution already excluded.
  EXPECT_FALSE(rw.o3->in_action());
  EXPECT_TRUE(rw.o3->abandoned_scopes().contains(scope));
  // The survivors resolved among themselves and agree.
  ASSERT_FALSE(rw.o1->handled().empty());
  ASSERT_FALSE(rw.o2->handled().empty());
  EXPECT_EQ(rw.o1->handled().back().resolved,
            rw.o2->handled().back().resolved);
  EXPECT_FALSE(rw.o1->in_action());
  EXPECT_FALSE(rw.o2->in_action());
}

TEST(FaultRestart, RestartedObjectIsReadmittedIntoNewActions) {
  RestartWorld rw;
  rw.enter_all();
  const NodeId victim = rw.o3->runtime().node();
  rw.w.at(1000, [&rw] { rw.o2->raise("boom"); });
  rw.w.at(1250, [&rw, victim] { fault::FaultInjector::crash_node(rw.w, victim); });
  rw.w.at(2600, [&rw, victim] { rw.w.network().set_node_up(victim, true); });
  rw.drive_completion();
  rw.w.run();
  ASSERT_FALSE(rw.o1->in_action());

  // A fresh instance after re-admission: the restarted object is a full
  // member again — it enters, resolves and exits with everyone else.
  const auto& second = rw.w.actions().create_instance(
      *rw.decl, {rw.o1->id(), rw.o2->id(), rw.o3->id()});
  for (auto* o : {rw.o1, rw.o2, rw.o3}) {
    ASSERT_TRUE(o->enter(
        second.instance,
        EnterConfig::with(uniform_handlers(
            rw.decl->tree(), ex::HandlerResult::recovered(100)))));
  }
  rw.w.at(rw.w.simulator().now() + 500, [&rw] { rw.o3->raise("boom"); });
  for (auto* o : {rw.o1, rw.o2, rw.o3}) {
    rw.w.at(rw.w.simulator().now() + 5000, [o] {
      if (o->in_action() && !o->at_acceptance_line() &&
          o->resolver_state() == resolve::ResolverCore::State::kNormal) {
        o->complete();
      }
    });
  }
  rw.w.run();

  const fault::OracleReport report = fault::check_invariants(rw.w, {});
  EXPECT_TRUE(report.ok()) << report.summary();
  for (auto* o : {rw.o1, rw.o2, rw.o3}) {
    EXPECT_FALSE(o->in_action());
    ASSERT_FALSE(o->handled().empty()) << o->name();
    EXPECT_EQ(o->handled().back().resolved, rw.decl->tree().find("boom"));
  }
}

// The same crash/restart choreography driven declaratively: explicit
// crash+restart plans through the chaos trial builder, swept over seeds.
TEST(FaultRestart, CrashThenRestartPlansKeepEveryInvariant) {
  fault::ChaosOptions options;
  options.seed = 23;
  options.shrink = false;
  run::Campaign campaign({.seed = options.seed, .threads = 0});
  for (std::uint64_t i = 0; i < 20; ++i) {
    campaign.add("restart#" + std::to_string(i),
                 [&options](const run::WorldContext& ctx) {
                   const std::uint32_t n =
                       fault::trial_participants(ctx.seed, options);
                   Rng rng(ctx.seed ^ 0x5eedULL);
                   fault::FaultEvent crash;
                   crash.kind = fault::FaultKind::kCrash;
                   crash.a = static_cast<std::uint32_t>(rng.below(n));
                   crash.at = 900 + static_cast<sim::Time>(rng.below(1500));
                   fault::FaultEvent restart;
                   restart.kind = fault::FaultKind::kRestart;
                   restart.a = crash.a;
                   restart.at =
                       crash.at + 300 + static_cast<sim::Time>(rng.below(2000));
                   fault::FaultPlan plan;
                   plan.events = {crash, restart};
                   return run_chaos_trial(ctx.seed, plan, options, ctx.index);
                 });
  }
  const run::CampaignResult result = campaign.run();
  EXPECT_TRUE(result.all_ok())
      << result.failed << " restart trial(s) violated invariants; first: "
      << result.first_error();
}

}  // namespace
}  // namespace caa
