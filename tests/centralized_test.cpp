// Tests of the centralized resolution strategy (§4.5 alternative).
#include <gtest/gtest.h>

#include "caa/world.h"
#include "resolve/centralized_resolver.h"

namespace caa::resolve {
namespace {

struct CentralWorld {
  World world;
  std::vector<std::unique_ptr<CentralizedParticipant>> objects;
  std::vector<ObjectId> ids;
  ex::ExceptionTree tree{ex::ExceptionTree("root")};

  void build(int n, ex::ExceptionTree t) {
    tree = std::move(t);
    for (int i = 0; i < n; ++i) {
      objects.push_back(std::make_unique<CentralizedParticipant>());
      world.attach(*objects.back(), "Z" + std::to_string(i + 1),
                   world.add_node());
      ids.push_back(objects.back()->id());
    }
    for (auto& o : objects) {
      CentralizedParticipant::Config config;
      config.members = ids;
      config.tree = &tree;
      o->configure(std::move(config));
    }
  }

  std::int64_t messages() const {
    const obs::Metrics& m = world.metrics();
    return m.sent(net::MsgKind::kCentralException) +
           m.sent(net::MsgKind::kCentralFreeze) +
           m.sent(net::MsgKind::kCentralFrozenAck) +
           m.sent(net::MsgKind::kCentralCommit);
  }
};

TEST(Centralized, SingleRaiseResolves) {
  CentralWorld cw;
  cw.build(4, ex::shapes::star(4));
  EXPECT_TRUE(cw.objects[0]->is_manager());
  EXPECT_FALSE(cw.objects[1]->is_manager());
  cw.world.at(1000, [&] { cw.objects[2]->raise(cw.tree.find("s3")); });
  cw.world.run();
  for (auto& o : cw.objects) {
    EXPECT_EQ(o->resolved(), cw.tree.find("s3"));
  }
  // 1 Exception + 3 Freeze + 3 FrozenAck + 3 Commit = 10 = 3(N-1) + P.
  EXPECT_EQ(cw.messages(), 10);
}

TEST(Centralized, ConcurrentRaisesResolveToLca) {
  CentralWorld cw;
  ex::ExceptionTree t;
  const auto parent = t.declare("engine");
  const auto left = t.declare("left", parent);
  const auto right = t.declare("right", parent);
  t.freeze();
  cw.build(3, std::move(t));
  cw.world.at(1000, [&] {
    cw.objects[1]->raise(left);
    cw.objects[2]->raise(right);
  });
  cw.world.run();
  for (auto& o : cw.objects) {
    EXPECT_EQ(o->resolved(), parent);
  }
  // 2 Exceptions + 2(N-1) control + (N-1) commits = 2 + 4 + 2... and the
  // formula 3(N-1)+P = 6+2 = 8.
  EXPECT_EQ(cw.messages(), 8);
}

TEST(Centralized, ManagerItselfCanRaise) {
  CentralWorld cw;
  cw.build(3, ex::shapes::star(3));
  cw.world.at(1000, [&] { cw.objects[0]->raise(cw.tree.find("s1")); });
  cw.world.run();
  for (auto& o : cw.objects) {
    EXPECT_EQ(o->resolved(), cw.tree.find("s1"));
  }
  // Manager raise is local: 0 Exceptions on the wire; 3(N-1) control.
  EXPECT_EQ(cw.messages(), 6);
}

TEST(Centralized, RaiseAfterFreezeIsSuperseded) {
  CentralWorld cw;
  cw.build(3, ex::shapes::star(3));
  cw.world.at(1000, [&] { cw.objects[1]->raise(cw.tree.find("s2")); });
  // Raise at a time when the Freeze (manager at node 0) has certainly
  // arrived at object 2 but the commit may not have: the raise is dropped.
  cw.world.at(1500, [&] { cw.objects[2]->raise(cw.tree.find("s3")); });
  cw.world.run();
  for (auto& o : cw.objects) {
    EXPECT_EQ(o->resolved(), cw.tree.find("s2"));
  }
  EXPECT_EQ(cw.world.metrics().value("central.raise_superseded"), 1);
}

}  // namespace
}  // namespace caa::resolve
