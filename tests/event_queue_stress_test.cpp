// Stress and determinism tests for the arena event queue.
//
// The queue is the engine under every reproduced claim in the repo, so the
// arena redesign gets adversarial coverage: randomized schedule/cancel/pop
// interleavings checked against a reference model, slot-leak accounting,
// small-buffer-callable semantics, and a pinned trace fingerprint of the
// paper's §4.3 Example 1 proving protocol behaviour is byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "caa/world.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace caa::sim {
namespace {

/// Golden FNV-1a digest of the §4.3 Example 1 protocol trace (computed by
/// TraceLog::fingerprint()). See Determinism.Example1TraceFingerprintIsPinned.
constexpr std::uint64_t kExample1Fingerprint = 0xC84D7FC7C975FA47ULL;

TEST(EventFn, InlineSmallCapturesHeapLargeOnes) {
  int hits = 0;
  EventFn small = [&hits] { ++hits; };
  EXPECT_TRUE(small.is_inline());

  struct Big {
    std::byte blob[2 * EventFn::kInlineSize];
  };
  Big big{};
  EventFn large = [&hits, big] {
    (void)big;
    ++hits;
  };
  EXPECT_FALSE(large.is_inline());

  small();
  large();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveTransfersTheCallable) {
  int fired = 0;
  EventFn a = [&fired] { ++fired; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
}

TEST(EventFn, SupportsMoveOnlyCaptures) {
  auto value = std::make_unique<int>(7);
  int seen = 0;
  EventFn fn = [&seen, v = std::move(value)] { seen = *v; };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(EventFn, DestroysCaptureWithoutFiring) {
  auto tracker = std::make_shared<int>(0);
  {
    EventFn fn = [tracker] { (void)tracker; };
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

/// Randomized interleavings against a reference model: a sorted set of
/// (time, seq) plus id bookkeeping. Verifies pop order (time, then
/// scheduling order), cancel semantics, size accounting, and that the
/// arena never leaks slots.
TEST(EventQueueStress, RandomScheduleCancelPopMatchesReferenceModel) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    Rng rng(seed);
    EventQueue q;

    struct ModelEvent {
      Time time;
      std::uint64_t order;  // scheduling order among all events
      EventId id;
    };
    // Reference: live events sorted by (time, order).
    std::set<std::pair<Time, std::uint64_t>> model;
    std::map<std::uint64_t, ModelEvent> by_order;  // live only
    std::vector<EventId> dead_ids;
    std::uint64_t next_order = 0;
    std::uint64_t fired_payload = 0;  // written by event bodies
    std::size_t max_live = 0;

    for (int step = 0; step < 20000; ++step) {
      const std::uint64_t action = rng.below(100);
      if (action < 55) {  // schedule
        const Time at = static_cast<Time>(rng.below(500));
        const std::uint64_t order = next_order++;
        const EventId id = q.schedule(at, [order, &fired_payload] {
          fired_payload = fired_payload * 31 + order;
        });
        EXPECT_TRUE(id.valid());
        model.emplace(at, order);
        by_order.emplace(order, ModelEvent{at, order, id});
      } else if (action < 75) {  // cancel a random live event
        if (by_order.empty()) continue;
        auto it = by_order.begin();
        std::advance(it, static_cast<long>(rng.below(by_order.size())));
        EXPECT_TRUE(q.cancel(it->second.id));
        EXPECT_FALSE(q.cancel(it->second.id)) << "double cancel must fail";
        model.erase({it->second.time, it->second.order});
        dead_ids.push_back(it->second.id);
        by_order.erase(it);
      } else if (action < 95) {  // pop
        if (model.empty()) {
          EXPECT_TRUE(q.empty());
          continue;
        }
        const auto expected = *model.begin();
        auto fired = q.pop();
        EXPECT_EQ(fired.time, expected.first);
        const std::uint64_t before = fired_payload;
        fired.fn();
        EXPECT_EQ(fired_payload, before * 31 + expected.second)
            << "pop order diverged from (time, scheduling order)";
        model.erase(model.begin());
        dead_ids.push_back(fired.id);
        by_order.erase(expected.second);
      } else {  // cancel of an already-dead id must fail
        if (dead_ids.empty()) continue;
        const EventId id = dead_ids[rng.below(dead_ids.size())];
        EXPECT_FALSE(q.cancel(id));
      }
      EXPECT_EQ(q.size(), model.size());
      EXPECT_EQ(q.empty(), model.empty());
      if (!model.empty()) {
        EXPECT_EQ(q.next_time(), model.begin()->first);
      }
      max_live = std::max(max_live, model.size());
    }

    // Drain; order must still match the model.
    while (!model.empty()) {
      const auto expected = *model.begin();
      auto fired = q.pop();
      EXPECT_EQ(fired.time, expected.first);
      model.erase(model.begin());
    }
    EXPECT_TRUE(q.empty());

    // No slot leaks: the arena never outgrows the concurrency high-water
    // mark, regardless of how many events passed through in total.
    EXPECT_LE(q.arena_slots(), max_live);
  }
}

TEST(EventQueueStress, ArenaStaysFlatUnderChurn) {
  EventQueue q;
  int fired = 0;
  // 16 pending events at all times, 50k schedule/pop cycles.
  for (int i = 0; i < 16; ++i) q.schedule(i, [&fired] { ++fired; });
  for (int i = 0; i < 50000; ++i) {
    auto f = q.pop();
    f.fn();
    q.schedule(f.time + 16, [&fired] { ++fired; });
  }
  EXPECT_EQ(fired, 50000);
  EXPECT_EQ(q.size(), 16u);
  EXPECT_LE(q.arena_slots(), 16u) << "slot arena leaked under churn";
}

TEST(EventQueueStress, CancelledEventsFreeTheirSlotsImmediately) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int round = 0; round < 1000; ++round) {
    ids.clear();
    for (int i = 0; i < 32; ++i) {
      ids.push_back(q.schedule(round * 100 + i, [] {}));
    }
    for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
  }
  EXPECT_LE(q.arena_slots(), 32u) << "cancellation accumulated tombstones";
}

TEST(EventQueueStress, StaleIdsNeverCancelRecycledSlots) {
  EventQueue q;
  const EventId first = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(first));
  // The slot is recycled for a new event; the stale id must not kill it.
  const EventId second = q.schedule(20, [] {});
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(second));
  EXPECT_TRUE(q.empty());
}

/// §4.3 Example 1, pinned byte-for-byte. Two participants raise
/// concurrently; the full protocol trace (every send/recv/state record)
/// must hash to the same fingerprint before and after any optimization of
/// the simulator core. If an intentional protocol change lands, update the
/// constant — in its own PR, with the narrative diff reviewed.
TEST(Determinism, Example1TraceFingerprintIsPinned) {
  WorldConfig wc;
  wc.trace = true;
  World w(wc);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  ex::ExceptionTree tree;
  const auto parent = tree.declare("E");
  tree.declare("E1", parent);
  tree.declare("E2", parent);
  const auto& decl = w.actions().declare("A1", std::move(tree));
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance,
                         action::EnterConfig::with(action::uniform_handlers(
                             decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] { o1.raise("E1"); });
  w.at(1000, [&] { o2.raise("E2"); });
  w.run();

  ASSERT_FALSE(w.trace().records().empty());
  EXPECT_EQ(w.trace().fingerprint(), kExample1Fingerprint)
      << "§4.3 Example 1 trace changed — full narrative:\n"
      << w.trace().to_string();
}

}  // namespace
}  // namespace caa::sim
