// Tests of the comparison baselines: the CR (Campbell–Randell 1986)
// algorithm including the §3.3 domino effect, and the Arche-style
// resolution function.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "resolve/arche_resolver.h"
#include "resolve/cr_resolver.h"

namespace caa::resolve {
namespace {

struct CrWorld {
  World world;
  std::vector<std::unique_ptr<CrParticipant>> objects;
  std::vector<ObjectId> ids;
  ex::ExceptionTree tree{ex::ExceptionTree("root")};

  void build(std::size_t n, ex::ExceptionTree t,
             std::function<std::set<ExceptionId>(std::size_t)> handled_for) {
    tree = std::move(t);
    for (std::size_t i = 0; i < n; ++i) {
      objects.push_back(std::make_unique<CrParticipant>());
      const NodeId node = world.add_node();
      world.attach(*objects.back(), "C" + std::to_string(i + 1), node);
      ids.push_back(objects.back()->id());
    }
    for (std::size_t i = 0; i < n; ++i) {
      CrParticipant::Config config;
      config.members = ids;
      config.tree = &tree;
      config.handled = handled_for(i);
      config.handled.insert(tree.root());
      objects[i]->configure(std::move(config));
    }
  }
};

TEST(CrBaseline, SingleRaiseFullHandlers) {
  // With full handler sets the CR algorithm behaves like a broadcast +
  // commit: no re-raising.
  CrWorld cw;
  ex::ExceptionTree tree = ex::shapes::star(3);
  cw.build(3, std::move(tree), [&](std::size_t) {
    std::set<ExceptionId> all;
    for (std::uint32_t i = 0; i < cw.tree.size(); ++i) all.insert(ExceptionId(i));
    return all;
  });
  const ExceptionId s1 = cw.tree.find("s1");
  cw.world.at(1000, [&] { cw.objects[0]->raise(s1); });
  cw.world.run();
  for (auto& o : cw.objects) {
    EXPECT_EQ(o->resolved(), s1);
    EXPECT_EQ(o->handler_ran(), s1);
  }
  EXPECT_EQ(cw.objects[0]->raises_sent(), 1);
}

TEST(CrBaseline, DominoEffectOnChainTree) {
  // §3.3: chain tree e1 -> ... -> e8; O1 handles odd exceptions, O2 handles
  // even ones. O2 raises e8; O1 must raise e7, which makes O2 raise e6, and
  // so on until e1/the root is reached.
  CrWorld cw;
  cw.build(2, ex::shapes::chain(8), [&](std::size_t i) {
    std::set<ExceptionId> handled;
    for (int k = 1; k <= 8; ++k) {
      const bool odd = (k % 2) == 1;
      if ((i == 0 && odd) || (i == 1 && !odd)) {
        handled.insert(cw.tree.find("e" + std::to_string(k)));
      }
    }
    return handled;
  });
  const ExceptionId e8 = cw.tree.find("e8");
  cw.world.at(1000, [&] { cw.objects[1]->raise(e8); });
  cw.world.run();

  // The domino climbed the entire chain: "any exception will always lead to
  // further exceptions until the root of the exception tree is reached"
  // (§3.3). O2 raised e8, e6, e4, e2 and finally the root (5 raises, since
  // it has no handler for e1); O1 raised e7, e5, e3, e1 (4 raises).
  EXPECT_EQ(cw.objects[1]->raises_sent(), 5);
  EXPECT_EQ(cw.objects[0]->raises_sent(), 4);
  EXPECT_EQ(cw.objects[0]->resolved(), cw.tree.root());
  EXPECT_EQ(cw.objects[1]->resolved(), cw.tree.root());
  EXPECT_EQ(cw.objects[0]->handler_ran(), cw.tree.root());
  EXPECT_EQ(cw.objects[1]->handler_ran(), cw.tree.root());
}

TEST(CrBaseline, StaggeredHandlersScaleCubically) {
  // The adversarial configuration used by the E5 bench: N objects, chain of
  // depth N^2, object i handling levels congruent to i mod N. Resolution
  // climbs the chain in ~N rounds of ~N simultaneous re-raises, so each
  // object re-raises O(N) times => O(N^2) raises => O(N^3) messages, versus
  // the new algorithm's O(N^2).
  auto run_for = [](std::size_t n) {
    CrWorld cw;
    const std::size_t depth = n * n;
    cw.build(n, ex::shapes::chain(depth), [&](std::size_t i) {
      std::set<ExceptionId> handled;
      for (std::size_t k = 1; k <= depth; ++k) {
        if (k % n == i) {
          handled.insert(cw.tree.find("e" + std::to_string(k)));
        }
      }
      return handled;
    });
    cw.world.at(1000, [&] {
      for (auto& o : cw.objects) {
        o->raise(cw.tree.find("e" + std::to_string(depth)));
      }
    });
    cw.world.run();
    const obs::Metrics& m = cw.world.metrics();
    return m.sent(net::MsgKind::kCrRaise) + m.sent(net::MsgKind::kCrAck) +
           m.sent(net::MsgKind::kCrCommit);
  };
  const auto m4 = run_for(4);
  const auto m8 = run_for(8);
  // Doubling N should inflate messages by ~8x for a cubic algorithm; allow
  // slack but require clearly super-quadratic growth (> 5x).
  EXPECT_GT(m8, 5 * m4) << "m4=" << m4 << " m8=" << m8;
}

TEST(ArcheBaseline, ConcertedExceptionFromReports) {
  World w;
  ArcheCoordinator coordinator;
  ArcheMember m1, m2, m3;
  ex::ExceptionTree tree;
  const auto parent = tree.declare("engine_loss");
  const auto left = tree.declare("left", parent);
  const auto right = tree.declare("right", parent);
  tree.freeze();

  const NodeId n0 = w.add_node();
  w.attach(coordinator, "coord", n0);
  for (auto* m : {&m1, &m2, &m3}) {
    w.attach(*m, "m" + std::to_string(m == &m1 ? 1 : (m == &m2 ? 2 : 3)),
             w.add_node());
  }
  ArcheCoordinator::Config config;
  config.members = {m1.id(), m2.id(), m3.id()};
  config.tree = &tree;
  coordinator.configure(std::move(config));
  for (auto* m : {&m1, &m2, &m3}) m->configure(coordinator.id());

  w.at(1000, [&] { m1.finish(left); });
  w.at(1100, [&] { m2.finish(right); });
  w.at(1200, [&] { m3.finish(); });  // no exception
  w.run();

  EXPECT_TRUE(coordinator.done());
  EXPECT_EQ(coordinator.concerted(), parent);
  EXPECT_EQ(m1.concerted(), parent);
  EXPECT_EQ(m3.concerted(), parent);
  // 2N messages: N reports + N concerted replies.
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kArcheReport), 3);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kArcheConcerted), 3);
}

}  // namespace
}  // namespace caa::resolve
