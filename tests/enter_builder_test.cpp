// EnterConfig::Builder tests: the fluent surface fills the right fields,
// converts implicitly where an EnterConfig is expected, keeps value
// semantics, and enter() rejects invalid configurations.
#include <gtest/gtest.h>

#include "caa/world.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::uniform_handlers;

ex::ExceptionTree small_tree() {
  ex::ExceptionTree tree;
  tree.declare("e1");
  tree.declare("e2");
  return tree;
}

TEST(EnterBuilder, ChainersFillTheMatchingFields) {
  const ex::ExceptionTree tree = small_tree();
  const ExceptionId e1 = tree.find("e1");
  const ExceptionId e2 = tree.find("e2");
  const EnterConfig config =
      EnterConfig::with(uniform_handlers(tree, ex::HandlerResult::recovered()))
          .abortion([] { return ex::AbortResult::none(7); })
          .body([](std::uint32_t) {})
          .acceptance([] { return true; })
          .checkpoints([] {}, [] {})
          .retries(3, e1)
          .handler_delay(250)
          .on_handler([](ExceptionId) {})
          .on_leave([](action::LeaveOutcome, ExceptionId) {})
          .on_commit([] {})
          .on_abort([] {})
          .committee(2)
          .on_peer_crash(e2)
          .build();

  EXPECT_TRUE(config.handlers.is_complete_for(tree));
  EXPECT_TRUE(static_cast<bool>(config.abortion_handler));
  EXPECT_TRUE(static_cast<bool>(config.body));
  EXPECT_TRUE(static_cast<bool>(config.acceptance));
  EXPECT_TRUE(static_cast<bool>(config.save_checkpoint));
  EXPECT_TRUE(static_cast<bool>(config.restore_checkpoint));
  EXPECT_EQ(config.max_attempts, 3u);
  EXPECT_EQ(config.failure_signal, e1);
  EXPECT_EQ(config.handler_dispatch_delay, 250);
  EXPECT_TRUE(static_cast<bool>(config.on_handler));
  EXPECT_TRUE(static_cast<bool>(config.on_leave));
  EXPECT_TRUE(static_cast<bool>(config.on_commit));
  EXPECT_TRUE(static_cast<bool>(config.on_abort));
  EXPECT_EQ(config.resolver_committee, 2u);
  EXPECT_EQ(config.crash_exception, e2);
}

TEST(EnterBuilder, DefaultsMatchABareConfig) {
  const ex::ExceptionTree tree = small_tree();
  const EnterConfig config = EnterConfig::with(
      uniform_handlers(tree, ex::HandlerResult::recovered()));
  EXPECT_EQ(config.max_attempts, 1u);
  EXPECT_EQ(config.resolver_committee, 1u);
  EXPECT_FALSE(config.failure_signal.valid());
  EXPECT_FALSE(config.crash_exception.valid());
  EXPECT_EQ(config.handler_dispatch_delay, 0);
  EXPECT_FALSE(static_cast<bool>(config.body));
}

TEST(EnterBuilder, ConfigsStayCopyableValues) {
  const ex::ExceptionTree tree = small_tree();
  const EnterConfig original =
      EnterConfig::with(uniform_handlers(tree, ex::HandlerResult::recovered()))
          .retries(4)
          .build();
  EnterConfig copy = original;  // NOLINT(performance-unnecessary-copy...)
  copy.max_attempts = 9;
  EXPECT_EQ(original.max_attempts, 4u);
  EXPECT_EQ(copy.max_attempts, 9u);
  EXPECT_TRUE(copy.handlers.is_complete_for(tree));
}

TEST(EnterBuilder, MutableBuilderSupportsConditionalConfiguration) {
  const ex::ExceptionTree tree = small_tree();
  for (const bool tolerate_crashes : {false, true}) {
    auto builder = EnterConfig::with(
        uniform_handlers(tree, ex::HandlerResult::recovered()));
    if (tolerate_crashes) builder.committee(2);
    const EnterConfig config = std::move(builder).build();
    EXPECT_EQ(config.resolver_committee, tolerate_crashes ? 2u : 1u);
  }
}

TEST(EnterBuilder, BuilderExpressionEntersDirectly) {
  // The common call shape: the builder converts at the enter() boundary.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", small_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  bool handled = false;
  ASSERT_TRUE(o1.enter(
      a1.instance,
      EnterConfig::with(
          uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
          .on_handler([&handled](ExceptionId) { handled = true; })));
  ASSERT_TRUE(o2.enter(
      a1.instance,
      EnterConfig::with(
          uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  w.at(100, [&o1] { o1.raise("e1"); });
  w.run();
  EXPECT_TRUE(handled);
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
}

// ---------------------------------------------------------------------------
// enter() validates the built configuration (§3.3 completeness and the
// numeric invariants) and aborts on contract violations.

TEST(EnterBuilderDeathTest, IncompleteHandlerTableIsRejected) {
  World w;
  auto& o1 = w.add_participant("O1");
  const auto& decl = w.actions().declare("A1", small_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id()});
  ex::HandlerTable empty;  // covers neither e1 nor e2
  EXPECT_DEATH(o1.enter(a1.instance, EnterConfig::with(std::move(empty))),
               "handlers for ALL");
}

TEST(EnterBuilderDeathTest, ZeroAttemptsIsRejected) {
  World w;
  auto& o1 = w.add_participant("O1");
  const auto& decl = w.actions().declare("A1", small_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id()});
  EXPECT_DEATH(
      o1.enter(a1.instance,
               EnterConfig::with(uniform_handlers(
                                     decl.tree(),
                                     ex::HandlerResult::recovered()))
                   .retries(0)),
      "max_attempts");
}

TEST(EnterBuilderDeathTest, EmptyCommitteeIsRejected) {
  World w;
  auto& o1 = w.add_participant("O1");
  const auto& decl = w.actions().declare("A1", small_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id()});
  EXPECT_DEATH(
      o1.enter(a1.instance,
               EnterConfig::with(uniform_handlers(
                                     decl.tree(),
                                     ex::HandlerResult::recovered()))
                   .committee(0)),
      "committee");
}

}  // namespace
}  // namespace caa
