// Unit tests of the discrete-event simulator: ordering, determinism,
// cancellation, quiescence, trace log.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/trace.h"

namespace caa::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // double cancel
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_after(100, [&] { seen = sim.now(); });
  sim.run_to_quiescence();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule_after(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run_to_quiescence();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(10, [&] { ++fired; });
  sim.schedule_after(100, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(i % 7, [&order, i] { order.push_back(i); });
    }
    sim.run_to_quiescence();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(Simulator, CountersAccumulate) {
  Simulator sim;
  const CounterId foo = CounterId::of("sim_test.foo");
  sim.counters().add(foo, 2);
  sim.counters().add(foo, 3);
  EXPECT_EQ(sim.counters().get(foo), 5);
  // Name-based reads (tests/debugging) go through the metrics facade.
  EXPECT_EQ(sim.obs().metrics().value("sim_test.foo"), 5);
}

TEST(TraceLog, DisabledRecordsNothing) {
  TraceLog log;
  log.record(1, "cat", "ev", "subj");
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLog, FilterAndCount) {
  TraceLog log;
  log.enable();
  log.record(1, "resolve", "raise", "O1");
  log.record(2, "net", "send Exception", "O1");
  log.record(3, "resolve", "raise", "O2");
  EXPECT_EQ(log.filter("resolve").size(), 2u);
  EXPECT_EQ(log.count_event("raise"), 2u);
  EXPECT_EQ(log.count_event("send Exception"), 1u);
  EXPECT_NE(log.to_string().find("send Exception"), std::string::npos);
}

}  // namespace
}  // namespace caa::sim
