// Transient network partitions during resolution: with the reliable
// transport, a partition that heals only delays the protocol — the
// retransmission machinery bridges the outage and the resolution completes
// with the same outcome (the §2 fault model's "transient errors of ... the
// communication network").
#include <gtest/gtest.h>

#include "caa/world.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

TEST(CaaPartition, HealedPartitionOnlyDelaysResolution) {
  WorldConfig config;
  config.reliable_transport = true;
  config.reliable.rto = 400;
  World w(config);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A", ex::shapes::star(3));
  const auto& inst =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  const NodeId n1 = w.directory().address_of(o1.id()).node;
  const NodeId n3 = w.directory().address_of(o3.id()).node;

  // Partition O1 <-> O3 just before the raise; heal it 5000 ticks later.
  w.at(900, [&] { w.network().set_partitioned(n1, n3, true); });
  w.at(1000, [&] { o1.raise("s1"); });
  w.at(6000, [&] { w.network().set_partitioned(n1, n3, false); });
  w.run();

  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_EQ(o->handled().size(), 1u) << o->name();
    EXPECT_EQ(o->handled()[0].resolved, decl.tree().find("s1")) << o->name();
    EXPECT_FALSE(o->in_action()) << o->name();
  }
  // The handler at the cut-off object started only after the heal.
  EXPECT_GT(o3.handled()[0].at, static_cast<sim::Time>(6000));
  EXPECT_GT(w.metrics().value("net.reliable.retransmit"), 0);
}

TEST(CaaPartition, PartitionDuringExitBarrierHeals) {
  WorldConfig config;
  config.reliable_transport = true;
  config.reliable.rto = 400;
  World w(config);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A", ex::shapes::star(1));
  const auto& inst = w.actions().create_instance(decl, {o1.id(), o2.id()});
  for (auto* o : {&o1, &o2}) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  const NodeId n1 = w.directory().address_of(o1.id()).node;
  const NodeId n2 = w.directory().address_of(o2.id()).node;
  w.at(500, [&] { w.network().set_partitioned(n1, n2, true); });
  w.at(1000, [&] {
    o1.complete();
    o2.complete();  // Done cannot reach the leader until the heal
  });
  w.at(4000, [&] { w.network().set_partitioned(n1, n2, false); });
  w.run();

  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
}

}  // namespace
}  // namespace caa
