// Trace-narrative tests: the protocol traces of the paper's §4.3 examples,
// asserted message by message against the recorded TraceLog.
#include <gtest/gtest.h>

#include "caa/world.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::uniform_handlers;

/// Collects "<subject> <event> <detail>" lines for net-category records.
std::vector<std::string> net_lines(const World& world,
                                   const sim::TraceLog& log) {
  (void)world;
  std::vector<std::string> out;
  for (const auto& r : log.records()) {
    if (r.category != "net") continue;
    out.push_back(r.subject + " " + r.event + " " + r.detail);
  }
  return out;
}

int count_of(const std::vector<std::string>& lines, const std::string& what) {
  int n = 0;
  for (const auto& l : lines) {
    if (l.find(what) != std::string::npos) ++n;
  }
  return n;
}

TEST(TraceNarrative, Example1FollowsThePaper) {
  // §4.3 Example 1, O1 and O2 raise concurrently. The narrative:
  //  O1: sends Exception to O2,O3; receives ACKs; receives Exception from
  //      O2 and ACKs it; waits for Commit.
  //  O2: sends Exception to O1,O3; receives ACKs; resolves (bigger name);
  //      sends Commit to O1,O3.
  //  O3: receives both Exceptions, ACKs both, receives Commit.
  WorldConfig wc;
  wc.trace = true;
  World w(wc);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  ex::ExceptionTree tree;
  const auto parent = tree.declare("E");
  tree.declare("E1", parent);
  tree.declare("E2", parent);
  const auto& decl = w.actions().declare("A1", std::move(tree));
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(
        a1.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] { o1.raise("E1"); });
  w.at(1000, [&] { o2.raise("E2"); });
  w.run();

  const auto lines = net_lines(w, w.trace());
  // O1's Exception multicast to O2 and O3.
  EXPECT_EQ(count_of(lines, "O1 send Exception to O2"), 1);
  EXPECT_EQ(count_of(lines, "O1 send Exception to O3"), 1);
  // O2's Exception multicast.
  EXPECT_EQ(count_of(lines, "O2 send Exception to O1"), 1);
  EXPECT_EQ(count_of(lines, "O2 send Exception to O3"), 1);
  // Mutual ACKs between the raisers, plus O3's ACKs to both.
  EXPECT_EQ(count_of(lines, "O1 send ACK to O2"), 1);
  EXPECT_EQ(count_of(lines, "O2 send ACK to O1"), 1);
  EXPECT_EQ(count_of(lines, "O3 send ACK to O1"), 1);
  EXPECT_EQ(count_of(lines, "O3 send ACK to O2"), 1);
  // Only O2 commits (name(O2) > name(O1)).
  EXPECT_EQ(count_of(lines, "O2 send Commit to O1"), 1);
  EXPECT_EQ(count_of(lines, "O2 send Commit to O3"), 1);
  EXPECT_EQ(count_of(lines, "O1 send Commit"), 0);
  EXPECT_EQ(count_of(lines, "O3 send Commit"), 0);

  // Ordering: O2's Commit is sent only after O2 received both ACKs.
  std::size_t last_ack_to_o2 = 0, first_commit = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("recv ACK from") != std::string::npos &&
        lines[i].rfind("O2 ", 0) == 0) {
      last_ack_to_o2 = i;
    }
    if (lines[i].find("O2 send Commit") != std::string::npos) {
      first_commit = std::min(first_commit, i);
    }
  }
  EXPECT_LT(last_ack_to_o2, first_commit);
}

TEST(TraceNarrative, Example2HaveNestedPrecedesNestedCompleted) {
  // In the Figure-4 scenario, each nested object sends HaveNested before
  // its NestedCompleted, and O2 sends its NestedCompleted only after its
  // abortion handlers ran.
  WorldConfig wc;
  wc.trace = true;
  World w(wc);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  ex::ExceptionTree t1;
  const auto combo = t1.declare("combo");
  t1.declare("E1", combo);
  t1.declare("E3", combo);
  const auto& d1 = w.actions().declare("A1", std::move(t1));
  ex::ExceptionTree t2;
  t2.declare("E2");
  const auto& d2 = w.actions().declare("A2", std::move(t2));
  const auto& a1 =
      w.actions().create_instance(d1, {o1.id(), o2.id(), o3.id()});
  const auto& a2 =
      w.actions().create_instance(d2, {o2.id(), o3.id()}, a1.instance);

  auto plain = [&](const action::ActionDecl& d) {
    return EnterConfig::with(
               uniform_handlers(d.tree(), ex::HandlerResult::recovered()))
        .build();
  };
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance, plain(d1)));
  }
  const EnterConfig c2 =
      EnterConfig::with(
          uniform_handlers(d2.tree(), ex::HandlerResult::recovered()))
          .abortion([&] {
            return ex::AbortResult::signalling(d1.tree().find("E3"), 100);
          });
  ASSERT_TRUE(o2.enter(a2.instance, c2));
  ASSERT_TRUE(o3.enter(a2.instance, plain(d2)));
  w.at(1000, [&] { o1.raise("E1"); });
  w.run();

  const auto lines = net_lines(w, w.trace());
  auto first_index = [&](const std::string& what) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find(what) != std::string::npos) return i;
    }
    return lines.size();
  };
  // Per-object ordering (O2): HaveNested < NestedCompleted < ACK to O1.
  EXPECT_LT(first_index("O2 send HaveNested"),
            first_index("O2 send NestedCompleted"));
  EXPECT_LT(first_index("O2 send NestedCompleted"),
            first_index("O2 send ACK to O1"));
  // Same for O3.
  EXPECT_LT(first_index("O3 send HaveNested"),
            first_index("O3 send NestedCompleted"));
  // O2 resolves (it signalled E3, making it the biggest raiser).
  EXPECT_EQ(count_of(lines, "O2 send Commit to O1"), 1);
}

}  // namespace
}  // namespace caa
