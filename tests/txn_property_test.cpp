// Property sweep for the transaction substrate: several concurrent clients
// run randomized transfer transactions (with wait-die conflicts and
// retries) over atomic accounts spread across hosts. Invariants: the total
// balance is conserved, every transaction family releases all its locks,
// and the system quiesces.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "txn/atomic_object.h"
#include "txn/txn_manager.h"
#include "util/rng.h"

namespace caa::txn {
namespace {

class TxnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnSweep, ConcurrentTransfersConserveBalance) {
  Rng rng(GetParam() * 7 + 3);
  WorldConfig wc;
  wc.seed = GetParam();
  World w(wc);
  constexpr int kHosts = 2;
  constexpr int kAccounts = 4;  // per host
  constexpr int kClients = 3;
  constexpr std::int64_t kInitial = 1000;

  std::vector<std::unique_ptr<AtomicObjectHost>> hosts;
  for (int h = 0; h < kHosts; ++h) {
    hosts.push_back(std::make_unique<AtomicObjectHost>());
    w.attach(*hosts.back(), "host" + std::to_string(h), w.add_node());
    for (int a = 0; a < kAccounts; ++a) {
      hosts.back()->put_initial("acct" + std::to_string(a), kInitial);
    }
  }
  std::vector<std::unique_ptr<TxnClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<TxnClient>());
    w.attach(*clients.back(), "cli" + std::to_string(c), w.add_node());
  }

  // Each client performs `kOps` transfers; conflicts abort + retry later.
  constexpr int kOps = 6;
  int completed = 0;
  std::function<void(int, int, std::uint64_t)> run_transfer =
      [&](int client, int remaining, std::uint64_t salt) {
    if (remaining == 0) {
      ++completed;
      return;
    }
    Rng local(salt);
    TxnClient& c = *clients[client];
    const int h1 = static_cast<int>(local.below(kHosts));
    const int h2 = static_cast<int>(local.below(kHosts));
    const std::string a1 = "acct" + std::to_string(local.below(kAccounts));
    std::string a2 = "acct" + std::to_string(local.below(kAccounts));
    if (h1 == h2 && a1 == a2) a2 = "acct" + std::to_string((local.below(3)));
    const std::int64_t amount = 1 + static_cast<std::int64_t>(local.below(50));

    const TxnId txn = c.begin();
    auto retry = [&, client, remaining, salt](TxnId dead) {
      clients[client]->abort(dead, [&, client, remaining, salt](Status) {
        w.simulator().schedule_after(
            500 + (salt % 700),
            [&, client, remaining, salt] {
              run_transfer(client, remaining, salt * 6364136223846793005ULL + 1);
            });
      });
    };
    c.add(txn, hosts[h1]->id(), a1, -amount,
          [&, txn, h2, a2, amount, client, remaining, salt, retry](auto r) {
      if (!r.is_ok()) {
        retry(txn);
        return;
      }
      clients[client]->add(txn, hosts[h2]->id(), a2, amount,
                           [&, txn, client, remaining, salt, retry](auto r2) {
        if (!r2.is_ok()) {
          retry(txn);
          return;
        }
        clients[client]->commit(txn, [&, client, remaining, salt](Status s) {
          ASSERT_TRUE(s.is_ok());
          run_transfer(client, remaining - 1,
                       salt * 2862933555777941757ULL + 3037000493ULL);
        });
      });
    });
  };
  for (int c = 0; c < kClients; ++c) {
    const std::uint64_t salt = rng.next();
    w.at(100 + 37 * c, [&, c, salt] { run_transfer(c, kOps, salt); });
  }
  w.run();

  EXPECT_EQ(completed, kClients);
  std::int64_t total = 0;
  for (auto& host : hosts) {
    for (int a = 0; a < kAccounts; ++a) {
      const auto v = host->peek("acct" + std::to_string(a));
      ASSERT_TRUE(v.has_value());
      total += *v;
    }
  }
  EXPECT_EQ(total, kHosts * kAccounts * kInitial)
      << "balance not conserved, seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace caa::txn
