// Nested CA actions: the paper's §4.3 Example 2 (Figure 4), the Figure 3
// structure, abortion ordering, belated participants, abort-chain
// retargeting and exception signalling between nested actions.
#include <gtest/gtest.h>

#include "caa/world.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

/// A1's tree for the Example-2 scenarios: E1 and E3 under a common parent.
ex::ExceptionTree a1_tree() {
  ex::ExceptionTree tree;
  const auto combo = tree.declare("combo_exception");
  tree.declare("E1", combo);
  tree.declare("E3", combo);
  tree.freeze();
  return tree;
}

ex::ExceptionTree small_tree(std::initializer_list<const char*> names) {
  ex::ExceptionTree tree;
  for (const char* n : names) tree.declare(n);
  tree.freeze();
  return tree;
}

EnterConfig plain(const ex::ExceptionTree& tree) {
  return EnterConfig::with(
      uniform_handlers(tree, ex::HandlerResult::recovered()));
}

TEST(CaaNested, Example2Figure4) {
  // Four objects. A1 = {O1,O2,O3,O4}; A2 = {O2,O3,O4} nested in A1;
  // A3 = {O2,O3} nested in A2. O3 is belated for A3. O1 raises E1 in A1
  // while O2 raises E2 in A3. O2's abortion handler for A2 signals E3.
  WorldConfig wc;
  wc.trace = true;
  World w(wc);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  auto& o4 = w.add_participant("O4");

  const auto& d1 = w.actions().declare("A1", a1_tree());
  const auto& d2 = w.actions().declare("A2", small_tree({"A2_fail"}));
  const auto& d3 = w.actions().declare("A3", small_tree({"E2"}));

  const auto& a1 = w.actions().create_instance(
      d1, {o1.id(), o2.id(), o3.id(), o4.id()});
  const auto& a2 = w.actions().create_instance(d2, {o2.id(), o3.id(), o4.id()},
                                               a1.instance);
  const auto& a3 =
      w.actions().create_instance(d3, {o2.id(), o3.id()}, a2.instance);

  // Everyone enters A1, then the A2 members enter A2, then O2 enters A3.
  ASSERT_TRUE(o1.enter(a1.instance, plain(d1.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, plain(d1.tree())));
  ASSERT_TRUE(o3.enter(a1.instance, plain(d1.tree())));
  ASSERT_TRUE(o4.enter(a1.instance, plain(d1.tree())));

  const EnterConfig a2_config_for_o2 =
      EnterConfig::with(
          uniform_handlers(d2.tree(), ex::HandlerResult::recovered()))
          .abortion([&] {
            return ex::AbortResult::signalling(d1.tree().find("E3"),
                                               /*duration=*/20);
          });
  ASSERT_TRUE(o2.enter(a2.instance, a2_config_for_o2));
  ASSERT_TRUE(o3.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o4.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o2.enter(a3.instance, plain(d3.tree())));

  // Concurrent raises: E1 in A1 (by O1) and E2 in A3 (by O2).
  w.at(1000, [&] { o1.raise("E1"); });
  w.at(1000, [&] { o2.raise("E2"); });
  // O3 tries to enter A3 after the resolution already started: belated.
  bool o3_entered_a3 = true;
  w.at(1150, [&] { o3_entered_a3 = o3.enter(a3.instance, plain(d3.tree())); });
  w.run();

  EXPECT_FALSE(o3_entered_a3);

  // Resolution of A1 covers E1 and the signalled E3 => combo_exception.
  const ExceptionId combo = d1.tree().find("combo_exception");
  for (Participant* o : {&o1, &o2, &o3, &o4}) {
    ASSERT_EQ(o->handled().size(), 1u) << o->name();
    EXPECT_EQ(o->handled()[0].resolved, combo) << o->name();
    EXPECT_EQ(o->handled()[0].instance, a1.instance) << o->name();
    EXPECT_FALSE(o->in_action()) << o->name();
  }

  // O2 aborted A3 then A2, innermost first; only A2's abortion signalled.
  ASSERT_EQ(o2.aborts().size(), 2u);
  EXPECT_EQ(o2.aborts()[0].instance, a3.instance);
  EXPECT_EQ(o2.aborts()[1].instance, a2.instance);
  EXPECT_FALSE(o2.aborts()[0].signalled.valid());
  EXPECT_EQ(o2.aborts()[1].signalled, d1.tree().find("E3"));
  // O3 and O4 aborted only A2 (O3 never entered A3).
  ASSERT_EQ(o3.aborts().size(), 1u);
  EXPECT_EQ(o3.aborts()[0].instance, a2.instance);
  ASSERT_EQ(o4.aborts().size(), 1u);
  EXPECT_EQ(o4.aborts()[0].instance, a2.instance);
  // O1 had nothing nested.
  EXPECT_TRUE(o1.aborts().empty());

  // Message accounting, from first principles (N=4):
  //   O1's Exception: 3;   O2's superseded A3 Exception: 1
  //   HaveNested: 3 objects x 3 = 9;   NestedCompleted: 9
  //   ACKs: 3 (for O1's Exception) + 9 (for the NestedCompleteds) = 12
  //   Commit: 3
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kException), 4);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kHaveNested), 9);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kNestedCompleted), 9);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kAck), 12);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kCommit), 3);
  EXPECT_EQ(w.metrics().resolution_messages(), 37);
}

TEST(CaaNested, Figure3AbortionOrdering) {
  // Figure 3: O0..O3 in A1; O2,O3 in A2 and then A3 (both nested); O1 was
  // expected in A2 but never entered (belated). O1 raises an exception in
  // A1; A3 must be aborted before A2 in both O2 and O3, without waiting
  // for O1.
  World w;
  auto& o0 = w.add_participant("O0");
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");

  const auto& d1 = w.actions().declare("A1", small_tree({"boom"}));
  const auto& d2 = w.actions().declare("A2", small_tree({"a2x"}));
  const auto& d3 = w.actions().declare("A3", small_tree({"a3x"}));

  const auto& a1 = w.actions().create_instance(
      d1, {o0.id(), o1.id(), o2.id(), o3.id()});
  // O1 is declared in A2 but never enters it.
  const auto& a2 = w.actions().create_instance(
      d2, {o1.id(), o2.id(), o3.id()}, a1.instance);
  const auto& a3 =
      w.actions().create_instance(d3, {o2.id(), o3.id()}, a2.instance);

  for (Participant* o : {&o0, &o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance, plain(d1.tree())));
  }
  ASSERT_TRUE(o2.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o3.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o2.enter(a3.instance, plain(d3.tree())));
  ASSERT_TRUE(o3.enter(a3.instance, plain(d3.tree())));

  w.at(1000, [&] { o1.raise("boom"); });
  w.run();

  for (Participant* o : {&o2, &o3}) {
    ASSERT_EQ(o->aborts().size(), 2u) << o->name();
    EXPECT_EQ(o->aborts()[0].instance, a3.instance) << o->name();
    EXPECT_EQ(o->aborts()[1].instance, a2.instance) << o->name();
    EXPECT_LE(o->aborts()[0].at, o->aborts()[1].at) << o->name();
  }
  for (Participant* o : {&o0, &o1, &o2, &o3}) {
    ASSERT_EQ(o->handled().size(), 1u) << o->name();
    EXPECT_EQ(o->handled()[0].resolved, d1.tree().find("boom")) << o->name();
    EXPECT_FALSE(o->in_action()) << o->name();
  }
}

TEST(CaaNested, AbortChainRetargetToOuterResolution) {
  // A resolution in A2 starts aborting O1's nested A3; while the abortion
  // handler runs, a resolution in A1 supersedes it (§3.3 point 4): the
  // chain is retargeted and A2 itself is aborted; the A2 resolution dies.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");

  const auto& d1 = w.actions().declare("A1", small_tree({"outer_x"}));
  const auto& d2 = w.actions().declare("A2", small_tree({"mid_x"}));
  const auto& d3 = w.actions().declare("A3", small_tree({"inner_x"}));

  const auto& a1 =
      w.actions().create_instance(d1, {o1.id(), o2.id(), o3.id()});
  const auto& a2 =
      w.actions().create_instance(d2, {o1.id(), o2.id()}, a1.instance);
  const auto& a3 = w.actions().create_instance(d3, {o1.id()}, a2.instance);

  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance, plain(d1.tree())));
  }
  const EnterConfig slow_abort =
      EnterConfig::with(
          uniform_handlers(d3.tree(), ex::HandlerResult::recovered()))
          .abortion([] { return ex::AbortResult::none(/*duration=*/500); });
  ASSERT_TRUE(o1.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o2.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o1.enter(a3.instance, slow_abort));

  // t=1000: O2 raises in A2 -> O1 receives at 1100, starts aborting A3
  // (until 1600). t=1200: O3 raises in A1 -> O1 receives at 1300 and must
  // retarget the abort chain to A1.
  w.at(1000, [&] { o2.raise("mid_x"); });
  w.at(1200, [&] { o3.raise("outer_x"); });
  w.run();

  // O1 aborted A3 then A2 (innermost first), despite the retarget.
  ASSERT_EQ(o1.aborts().size(), 2u);
  EXPECT_EQ(o1.aborts()[0].instance, a3.instance);
  EXPECT_EQ(o1.aborts()[1].instance, a2.instance);
  // O2 aborted A2 as part of the A1 resolution.
  ASSERT_EQ(o2.aborts().size(), 1u);
  EXPECT_EQ(o2.aborts()[0].instance, a2.instance);

  // Everyone handled the A1 resolution (the A2 one was superseded: O2's
  // mid_x never produced a handler run).
  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_EQ(o->handled().size(), 1u) << o->name();
    EXPECT_EQ(o->handled()[0].instance, a1.instance) << o->name();
    EXPECT_EQ(o->handled()[0].resolved, d1.tree().find("outer_x"))
        << o->name();
    EXPECT_FALSE(o->in_action()) << o->name();
  }
}

TEST(CaaNested, NestedSignalRaisesInContainingAction) {
  // A nested action whose handlers cannot recover signals a failure
  // exception to the containing action (§3.1); the containing action then
  // resolves and handles it in ALL its participants.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");

  const auto& d1 = w.actions().declare("A1", small_tree({"nested_failed"}));
  const auto& d2 = w.actions().declare("A2", small_tree({"glitch"}));

  const auto& a1 =
      w.actions().create_instance(d1, {o1.id(), o2.id(), o3.id()});
  const auto& a2 =
      w.actions().create_instance(d2, {o1.id(), o2.id()}, a1.instance);

  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance, plain(d1.tree())));
  }
  const EnterConfig signalling = EnterConfig::with(uniform_handlers(
      d2.tree(),
      ex::HandlerResult::signalling(d1.tree().find("nested_failed"), 10)));
  ASSERT_TRUE(o1.enter(a2.instance, signalling));
  ASSERT_TRUE(o2.enter(a2.instance, signalling));

  w.at(1000, [&] { o2.raise("glitch"); });
  w.run();

  // The A2 resolution handled "glitch" in O1 and O2; both signalled
  // nested_failed; the leader (O1) raised it in A1; A1's resolution handled
  // it in all three objects.
  ASSERT_EQ(o1.handled().size(), 2u);
  ASSERT_EQ(o2.handled().size(), 2u);
  ASSERT_EQ(o3.handled().size(), 1u);
  EXPECT_EQ(o1.handled()[0].instance, a2.instance);
  EXPECT_EQ(o1.handled()[0].resolved, d2.tree().find("glitch"));
  EXPECT_EQ(o1.handled()[1].instance, a1.instance);
  EXPECT_EQ(o1.handled()[1].resolved, d1.tree().find("nested_failed"));
  EXPECT_EQ(o3.handled()[0].resolved, d1.tree().find("nested_failed"));
  for (Participant* o : {&o1, &o2, &o3}) {
    EXPECT_FALSE(o->in_action()) << o->name();
  }
  EXPECT_TRUE(w.failures().empty());  // A1's handlers recovered
}

TEST(CaaNested, NestedCompletesNormallyInvisibleToContainer) {
  // A nested action that completes normally consumes no resolution
  // messages and leaves the containing action undisturbed.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");

  const auto& d1 = w.actions().declare("A1", small_tree({"x1"}));
  const auto& d2 = w.actions().declare("A2", small_tree({"x2"}));
  const auto& a1 =
      w.actions().create_instance(d1, {o1.id(), o2.id(), o3.id()});
  const auto& a2 =
      w.actions().create_instance(d2, {o1.id(), o2.id()}, a1.instance);

  for (Participant* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(a1.instance, plain(d1.tree())));
  }
  ASSERT_TRUE(o1.enter(a2.instance, plain(d2.tree())));
  ASSERT_TRUE(o2.enter(a2.instance, plain(d2.tree())));

  w.at(1000, [&] { o1.complete(); });
  w.at(1100, [&] { o2.complete(); });
  // After the nested action completes, everyone completes A1.
  w.at(5000, [&] { o1.complete(); });
  w.at(5000, [&] { o2.complete(); });
  w.at(5000, [&] { o3.complete(); });
  w.run();

  EXPECT_EQ(w.metrics().resolution_messages(), 0);
  for (Participant* o : {&o1, &o2, &o3}) {
    EXPECT_FALSE(o->in_action()) << o->name();
    EXPECT_TRUE(o->handled().empty()) << o->name();
  }
}

TEST(CaaNested, SingletonNestedActionsAbortCleanly) {
  // §4.4 case 2 shape: one raiser, every other object sits in its own
  // singleton nested action. N=4 => 3N(N-1) = 36 messages.
  World w;
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 4; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  const auto& d1 = w.actions().declare("A1", small_tree({"boom"}));
  const auto& a1 = w.actions().create_instance(d1, ids);
  for (auto* o : objects) {
    ASSERT_TRUE(o->enter(a1.instance, plain(d1.tree())));
  }
  std::vector<const action::InstanceInfo*> nested;
  for (int i = 1; i < 4; ++i) {
    const auto& dn = w.actions().declare("N" + std::to_string(i),
                                         small_tree({"nx"}));
    const auto& an = w.actions().create_instance(dn, {objects[i]->id()},
                                                 a1.instance);
    nested.push_back(&an);
    ASSERT_TRUE(objects[i]->enter(an.instance, plain(dn.tree())));
  }
  w.at(1000, [&] { objects[0]->raise("boom"); });
  w.run();

  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(objects[i]->aborts().size(), 1u);
    EXPECT_EQ(objects[i]->aborts()[0].instance, nested[i - 1]->instance);
  }
  for (auto* o : objects) {
    ASSERT_EQ(o->handled().size(), 1u);
    EXPECT_EQ(o->handled()[0].resolved, d1.tree().find("boom"));
  }
  EXPECT_EQ(w.metrics().resolution_messages(), 3 * 4 * (4 - 1));
}

}  // namespace
}  // namespace caa
