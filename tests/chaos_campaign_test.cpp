// The chaos campaign acceptance gates, pinned in ctest:
//   * the 10k-plan mixed campaign at the default seed finds zero oracle
//     violations (the protocol holes chaos found are fixed and stay fixed);
//   * campaign results are bit-identical at --threads 1 and --threads 8
//     (merged checksum AND merged metrics);
//   * every fault-mix profile runs clean at smoke scale.
#include <gtest/gtest.h>

#include "fault/chaos.h"

namespace caa::fault {
namespace {

TEST(ChaosCampaign, TenThousandMixedPlansZeroViolations) {
  ChaosOptions options;
  options.seed = 42;
  options.plans = 10'000;
  options.threads = 0;  // hardware concurrency
  options.mix = FaultMix::kMixed;
  const ChaosReport report = run_chaos_campaign(options);
  EXPECT_EQ(report.violations, 0u) << report.failure_report();
  EXPECT_GT(report.campaign.total_events, 0);
}

TEST(ChaosCampaign, ResultsAreThreadCountInvariant) {
  auto run_with = [](unsigned threads) {
    ChaosOptions options;
    options.seed = 42;
    options.plans = 200;
    options.threads = threads;
    options.mix = FaultMix::kMixed;
    return run_chaos_campaign(options);
  };
  const ChaosReport serial = run_with(1);
  const ChaosReport parallel = run_with(8);
  ASSERT_EQ(serial.violations, 0u) << serial.failure_report();
  ASSERT_EQ(parallel.violations, 0u) << parallel.failure_report();
  EXPECT_EQ(serial.campaign.merged_checksum,
            parallel.campaign.merged_checksum);
  EXPECT_EQ(serial.campaign.merged_metrics.to_string(),
            parallel.campaign.merged_metrics.to_string());
  EXPECT_EQ(serial.campaign.total_events, parallel.campaign.total_events);
}

class ProfileSmoke : public ::testing::TestWithParam<FaultMix> {};

TEST_P(ProfileSmoke, RunsCleanAtSmokeScale) {
  ChaosOptions options;
  options.seed = 42;
  options.plans = 500;
  options.threads = 0;
  options.mix = GetParam();
  const ChaosReport report = run_chaos_campaign(options);
  EXPECT_EQ(report.violations, 0u)
      << fault_mix_name(GetParam()) << ": " << report.failure_report();
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileSmoke,
    ::testing::Values(FaultMix::kMixed, FaultMix::kCrashHeavy,
                      FaultMix::kNetworkOnly, FaultMix::kResolverHunt),
    [](const ::testing::TestParamInfo<FaultMix>& info) {
      std::string name(fault_mix_name(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace caa::fault
