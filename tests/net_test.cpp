// Unit tests of the network substrate: wire format, FIFO channels, latency,
// fault injection, node crashes, reliable transport, group directory.
#include <gtest/gtest.h>

#include "net/group.h"
#include "net/network.h"
#include "net/reliable_link.h"
#include "net/wire.h"
#include "sim/simulator.h"

namespace caa::net {
namespace {

TEST(Wire, RoundTripsPrimitives) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.boolean(true);
  w.str("hello");
  w.blob(Bytes{std::byte{1}, std::byte{2}});

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_EQ(r.boolean().value(), true);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.blob().value().size(), 2u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, TruncatedReadsFailGracefully) {
  WireWriter w;
  w.u32(7);
  WireReader r(w.bytes());
  EXPECT_TRUE(r.u16().is_ok());
  EXPECT_TRUE(r.u16().is_ok());
  EXPECT_FALSE(r.u8().is_ok());  // exhausted
}

TEST(Wire, BadStringLengthRejected) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  WireReader r(w.bytes());
  EXPECT_FALSE(r.str().is_ok());
}

TEST(Wire, BadBoolRejected) {
  WireWriter w;
  w.u8(7);
  WireReader r(w.bytes());
  EXPECT_FALSE(r.boolean().is_ok());
}

struct NetFixture {
  sim::Simulator sim;
  Network net{sim, 99};
  NodeId n0, n1;
  std::vector<Packet> received0, received1;

  NetFixture() {
    n0 = NodeId(0);
    n1 = NodeId(1);
    net.add_node(n0);
    net.add_node(n1);
    net.set_endpoint(n0, [this](Packet&& p) { received0.push_back(std::move(p)); });
    net.set_endpoint(n1, [this](Packet&& p) { received1.push_back(std::move(p)); });
  }

  Packet make(NodeId from, NodeId to, std::uint8_t tag = 0) {
    Packet p;
    p.src = Address{from, ObjectId(0)};
    p.dst = Address{to, ObjectId(1)};
    p.kind = MsgKind::kAppData;
    p.payload = Bytes{std::byte{tag}};
    return p;
  }
};

TEST(Network, DeliversWithLatency) {
  NetFixture f;
  f.net.set_default_link(LinkParams::ideal());  // base 100, no jitter
  f.net.send(f.make(f.n0, f.n1));
  f.sim.run_to_quiescence();
  ASSERT_EQ(f.received1.size(), 1u);
  EXPECT_EQ(f.sim.now(), 100 + 0);  // base latency only
}

TEST(Network, FifoPerChannelEvenWithJitter) {
  NetFixture f;
  LinkParams jittery;
  jittery.latency_base = 50;
  jittery.latency_jitter = 500;  // huge jitter to provoke reordering
  f.net.set_default_link(jittery);
  for (std::uint8_t i = 0; i < 50; ++i) {
    f.net.send(f.make(f.n0, f.n1, i));
  }
  f.sim.run_to_quiescence();
  ASSERT_EQ(f.received1.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(f.received1[i].payload[0], std::byte{i});  // FIFO preserved
  }
}

TEST(Network, DropProbabilityDropsEverythingAtOne) {
  NetFixture f;
  f.net.set_default_link(LinkParams::lossy(1.0));
  for (int i = 0; i < 10; ++i) f.net.send(f.make(f.n0, f.n1));
  f.sim.run_to_quiescence();
  EXPECT_TRUE(f.received1.empty());
  EXPECT_EQ(f.sim.obs().metrics().value("net.dropped.AppData"), 10);
}

TEST(Network, CrashedNodeNeitherSendsNorReceives) {
  NetFixture f;
  f.net.set_node_up(f.n1, false);
  f.net.send(f.make(f.n0, f.n1));
  f.net.send(f.make(f.n1, f.n0));
  f.sim.run_to_quiescence();
  EXPECT_TRUE(f.received0.empty());
  EXPECT_TRUE(f.received1.empty());
  // Restart: traffic flows again.
  f.net.set_node_up(f.n1, true);
  f.net.send(f.make(f.n0, f.n1));
  f.sim.run_to_quiescence();
  EXPECT_EQ(f.received1.size(), 1u);
}

TEST(Network, PartitionCutsBothDirections) {
  NetFixture f;
  f.net.set_partitioned(f.n0, f.n1, true);
  f.net.send(f.make(f.n0, f.n1));
  f.net.send(f.make(f.n1, f.n0));
  f.sim.run_to_quiescence();
  EXPECT_TRUE(f.received0.empty());
  EXPECT_TRUE(f.received1.empty());
  f.net.set_partitioned(f.n0, f.n1, false);
  f.net.send(f.make(f.n0, f.n1));
  f.sim.run_to_quiescence();
  EXPECT_EQ(f.received1.size(), 1u);
}

TEST(Network, CountsPerKind) {
  NetFixture f;
  Packet p = f.make(f.n0, f.n1);
  p.kind = MsgKind::kException;
  f.net.send(std::move(p));
  f.sim.run_to_quiescence();
  EXPECT_EQ(f.sim.obs().metrics().value("net.sent.Exception"), 1);
  EXPECT_EQ(f.sim.obs().metrics().value("net.delivered.Exception"), 1);
}

TEST(ReliableTransport, DeliversInOrderOverLossyLink) {
  sim::Simulator simulator;
  Network net(simulator, 4242);
  const NodeId a(0), b(1);
  net.add_node(a);
  net.add_node(b);
  net.set_default_link(LinkParams::lossy(0.4));
  ReliableTransport ta(net, a), tb(net, b);
  std::vector<std::uint8_t> got;
  tb.set_handler([&](Packet&& p) {
    got.push_back(static_cast<std::uint8_t>(p.payload[0]));
  });
  ta.set_handler([](Packet&&) {});
  for (std::uint8_t i = 0; i < 30; ++i) {
    Packet p;
    p.src = Address{a, ObjectId(0)};
    p.dst = Address{b, ObjectId(1)};
    p.kind = MsgKind::kAppData;
    p.payload = Bytes{std::byte{i}};
    ta.send(std::move(p));
  }
  simulator.run_to_quiescence();
  ASSERT_EQ(got.size(), 30u);
  for (std::uint8_t i = 0; i < 30; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(simulator.obs().metrics().value("net.reliable.retransmit"), 0);
}

TEST(ReliableTransport, SuppressesDuplicates) {
  sim::Simulator simulator;
  Network net(simulator, 7);
  const NodeId a(0), b(1);
  net.add_node(a);
  net.add_node(b);
  LinkParams dupey = LinkParams::ideal();
  dupey.duplicate_probability = 0.5;
  net.set_default_link(dupey);
  ReliableTransport ta(net, a), tb(net, b);
  int delivered = 0;
  tb.set_handler([&](Packet&&) { ++delivered; });
  ta.set_handler([](Packet&&) {});
  for (int i = 0; i < 40; ++i) {
    Packet p;
    p.src = Address{a, ObjectId(0)};
    p.dst = Address{b, ObjectId(1)};
    p.kind = MsgKind::kAppData;
    ta.send(std::move(p));
  }
  simulator.run_to_quiescence();
  EXPECT_EQ(delivered, 40);  // exactly once despite duplicates
}

TEST(GroupDirectory, CreateQueryDissolve) {
  GroupDirectory groups;
  const GroupId g = groups.create({ObjectId(3), ObjectId(1), ObjectId(2)});
  EXPECT_TRUE(groups.exists(g));
  // Members come back sorted (the §4.1 ordering).
  EXPECT_EQ(groups.members(g),
            (std::vector<ObjectId>{ObjectId(1), ObjectId(2), ObjectId(3)}));
  EXPECT_TRUE(groups.is_member(g, ObjectId(2)));
  EXPECT_FALSE(groups.is_member(g, ObjectId(9)));
  groups.dissolve(g);
  EXPECT_FALSE(groups.exists(g));
}

TEST(MessageKinds, Classification) {
  EXPECT_TRUE(is_resolution_kind(MsgKind::kException));
  EXPECT_TRUE(is_resolution_kind(MsgKind::kCommit));
  EXPECT_FALSE(is_resolution_kind(MsgKind::kActionDone));
  EXPECT_FALSE(is_resolution_kind(MsgKind::kCrRaise));
  EXPECT_TRUE(is_transport_kind(MsgKind::kTransportAck));
  EXPECT_EQ(kind_name(MsgKind::kHaveNested), "HaveNested");
}

}  // namespace
}  // namespace caa::net
