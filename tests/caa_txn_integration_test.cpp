// Integration of CA actions with the transaction substrate (§3.1):
// "a subset of these participating objects may further enter a nested CA
// action, which has all properties of a nested transaction in the terms of
// atomic objects" — nested actions run nested transactions; nested commit
// merges into the parent; abortion of the nested action (by an outer
// resolution) aborts the nested transaction and undoes its writes; forward
// recovery repairs and commits; the whole family is undone if the outer
// action fails.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "txn/atomic_object.h"
#include "txn/txn_manager.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

struct Fixture {
  World world;
  Participant* o1 = nullptr;
  Participant* o2 = nullptr;
  txn::AtomicObjectHost host;
  txn::TxnClient client;

  Fixture() {
    o1 = &world.add_participant("O1");
    o2 = &world.add_participant("O2");
    world.attach(host, "store", world.add_node());
    world.attach(client, "txncli", world.add_node());
    host.put_initial("x", 10);
    host.put_initial("y", 20);
  }
};

TEST(CaaTxn, NestedActionRunsNestedTransaction) {
  // Outer action writes x under the parent transaction; a nested action
  // writes y under a child transaction and completes normally (merge);
  // outer commit publishes both.
  Fixture f;
  const auto& d1 = f.world.actions().declare("Outer", ex::shapes::star(1));
  const auto& d2 = f.world.actions().declare("Inner", ex::shapes::star(1));
  const auto& a1 =
      f.world.actions().create_instance(d1, {f.o1->id(), f.o2->id()});
  const auto& a2 = f.world.actions().create_instance(
      d2, {f.o1->id(), f.o2->id()}, a1.instance);

  TxnId parent, child;

  const EnterConfig outer1 =
      EnterConfig::with(
          uniform_handlers(d1.tree(), ex::HandlerResult::recovered()))
          .on_commit([&] { f.client.commit(parent, [](Status) {}); })
          .on_abort([&] {
            if (f.client.active(parent)) f.client.abort(parent, [](Status) {});
          });
  const EnterConfig outer2 = EnterConfig::with(
      uniform_handlers(d1.tree(), ex::HandlerResult::recovered()));

  ASSERT_TRUE(f.o1->enter(a1.instance, outer1));
  ASSERT_TRUE(f.o2->enter(a1.instance, outer2));

  f.world.at(100, [&] {
    parent = f.client.begin();
    f.client.write(parent, f.host.id(), "x", 11, [](Status) {});
  });

  // Enter the nested action at t=500 with a child transaction.
  const EnterConfig inner1 =
      EnterConfig::with(
          uniform_handlers(d2.tree(), ex::HandlerResult::recovered()))
          .on_commit([&] { f.client.commit(child, [](Status) {}); })
          .on_abort([&] {
            if (f.client.active(child)) f.client.abort(child, [](Status) {});
          });
  const EnterConfig inner2 = EnterConfig::with(
      uniform_handlers(d2.tree(), ex::HandlerResult::recovered()));
  f.world.at(500, [&] {
    ASSERT_TRUE(f.o1->enter(a2.instance, inner1));
    ASSERT_TRUE(f.o2->enter(a2.instance, inner2));
    child = f.client.begin(parent);
    f.client.write(child, f.host.id(), "y", 21, [](Status) {});
  });
  // Nested completes normally; then outer completes.
  f.world.at(2000, [&] {
    f.o1->complete();
    f.o2->complete();
  });
  f.world.at(5000, [&] {
    f.o1->complete();
    f.o2->complete();
  });
  f.world.run();

  EXPECT_EQ(f.host.peek("x"), 11);
  EXPECT_EQ(f.host.peek("y"), 21);
  EXPECT_FALSE(f.o1->in_action());
  EXPECT_EQ(f.client.commits(), 2);  // child merge + parent 2PC
}

TEST(CaaTxn, OuterExceptionAbortsNestedActionAndItsTransaction) {
  // O2 sits in a nested action with a child transaction that has already
  // written y. O1 raises in the outer action: the nested action is aborted
  // (abortion handler aborts the child txn), the outer handler repairs x,
  // and the outer commit publishes only the repaired state.
  Fixture f;
  const auto& d1 = f.world.actions().declare("Outer", ex::shapes::star(1));
  const auto& d2 = f.world.actions().declare("Inner", ex::shapes::star(1));
  const auto& a1 =
      f.world.actions().create_instance(d1, {f.o1->id(), f.o2->id()});
  const auto& a2 =
      f.world.actions().create_instance(d2, {f.o2->id()}, a1.instance);

  TxnId parent, child;
  bool child_began = false;

  ex::HandlerTable outer1_handlers =
      uniform_handlers(d1.tree(), ex::HandlerResult::recovered(2000));
  outer1_handlers.set(d1.tree().find("s1"), [&](ExceptionId) {
    // Forward recovery: repair x under the PARENT transaction.
    f.client.write(parent, f.host.id(), "x", 99, [](Status) {});
    return ex::HandlerResult::recovered(2000);
  });
  const EnterConfig outer1 =
      EnterConfig::with(std::move(outer1_handlers))
          .on_commit([&] { f.client.commit(parent, [](Status) {}); });
  ASSERT_TRUE(f.o1->enter(a1.instance, outer1));

  const EnterConfig outer2 = EnterConfig::with(
      uniform_handlers(d1.tree(), ex::HandlerResult::recovered(2000)));
  ASSERT_TRUE(f.o2->enter(a1.instance, outer2));

  const EnterConfig inner =
      EnterConfig::with(
          uniform_handlers(d2.tree(), ex::HandlerResult::recovered()))
          .abortion([&] {
            // §3.1: abortion handlers are responsible for telling the
            // transaction system to abort the nested operations on atomic
            // objects.
            if (child_began && f.client.active(child)) {
              f.client.abort(child, [](Status) {});
            }
            return ex::AbortResult::none(100);
          });
  f.world.at(100, [&] {
    parent = f.client.begin();
    ASSERT_TRUE(f.o2->enter(a2.instance, inner));
    child = f.client.begin(parent);
    child_began = true;
    f.client.write(child, f.host.id(), "y", 777, [](Status) {});
  });
  // Give the child's write time to land, then raise in the outer action.
  f.world.at(1500, [&] { f.o1->raise("s1"); });
  f.world.run();

  EXPECT_EQ(f.host.peek("x"), 99);  // repaired and committed
  EXPECT_EQ(f.host.peek("y"), 20);  // nested write undone with the child txn
  ASSERT_EQ(f.o2->aborts().size(), 1u);
  EXPECT_EQ(f.o2->aborts()[0].instance, a2.instance);
  EXPECT_FALSE(f.o1->in_action());
  EXPECT_FALSE(f.o2->in_action());
}

TEST(CaaTxn, OuterFailureUndoesWholeTransactionFamily) {
  // The outer action's handlers cannot recover: they signal failure. The
  // whole transaction family (parent + merged child writes) is aborted and
  // the atomic objects return to their initial state.
  Fixture f;
  const auto& d1 = f.world.actions().declare("Outer", ex::shapes::star(1));
  const auto& a1 =
      f.world.actions().create_instance(d1, {f.o1->id(), f.o2->id()});
  TxnId parent;

  auto config = [&](bool leader) {
    auto builder = EnterConfig::with(uniform_handlers(
        d1.tree(), ex::HandlerResult::signalling(d1.tree().root(), 100)));
    if (leader) {
      builder.on_abort([&] {
        if (f.client.active(parent)) f.client.abort(parent, [](Status) {});
      });
    }
    return std::move(builder).build();
  };
  ASSERT_TRUE(f.o1->enter(a1.instance, config(true)));
  ASSERT_TRUE(f.o2->enter(a1.instance, config(false)));

  f.world.at(100, [&] {
    parent = f.client.begin();
    f.client.write(parent, f.host.id(), "x", 555, [](Status) {});
    const TxnId child = f.client.begin(parent);
    f.client.write(child, f.host.id(), "y", 666, [&, child](Status) {
      f.client.commit(child, [](Status) {});  // merged into parent
    });
  });
  f.world.at(2000, [&] { f.o2->raise("s1"); });
  f.world.run();

  // Action failed; parent txn aborted; merged child write also undone.
  ASSERT_EQ(f.world.failures().size(), 1u);
  EXPECT_EQ(f.host.peek("x"), 10);
  EXPECT_EQ(f.host.peek("y"), 20);
  EXPECT_FALSE(f.host.has_locks(parent));
}

}  // namespace
}  // namespace caa
