// Unit tests for the exception model: trees (declaration, covering,
// resolution/LCA), handler tables and nested context stacks.
#include <gtest/gtest.h>

#include "ex/context_stack.h"
#include "ex/exception.h"
#include "ex/exception_tree.h"
#include "ex/handler_table.h"

namespace caa::ex {
namespace {

TEST(ExceptionTree, RootExistsByDefault) {
  ExceptionTree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.name_of(tree.root()), "universal_exception");
  EXPECT_EQ(tree.parent(tree.root()), tree.root());
  EXPECT_EQ(tree.depth(tree.root()), 0u);
}

TEST(ExceptionTree, DeclareBuildsHierarchy) {
  // The paper's §3.2 example, declared "by subtyping".
  ExceptionTree tree;
  const auto emergency = tree.declare("emergency_engine_loss_exception");
  const auto left = tree.declare("left_engine_exception", emergency);
  const auto right = tree.declare("right_engine_exception", emergency);
  tree.freeze();

  EXPECT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree.parent(left), emergency);
  EXPECT_EQ(tree.parent(right), emergency);
  EXPECT_EQ(tree.depth(left), 2u);
  EXPECT_EQ(tree.find("left_engine_exception"), left);
  EXPECT_FALSE(tree.find("unknown").valid());
}

TEST(ExceptionTree, CoversIsReflexiveAndTransitive) {
  ExceptionTree tree;
  const auto a = tree.declare("a");
  const auto b = tree.declare("b", a);
  const auto c = tree.declare("c", b);
  tree.freeze();
  EXPECT_TRUE(tree.covers(a, a));
  EXPECT_TRUE(tree.covers(a, b));
  EXPECT_TRUE(tree.covers(a, c));
  EXPECT_TRUE(tree.covers(tree.root(), c));
  EXPECT_FALSE(tree.covers(c, a));
  EXPECT_FALSE(tree.covers(b, a));
}

TEST(ExceptionTree, SiblingsDoNotCoverEachOther) {
  ExceptionTree tree;
  const auto a = tree.declare("a");
  const auto b = tree.declare("b");
  tree.freeze();
  EXPECT_FALSE(tree.covers(a, b));
  EXPECT_FALSE(tree.covers(b, a));
}

TEST(ExceptionTree, ResolveSingleIsItself) {
  ExceptionTree tree = shapes::chain(5);
  const auto e3 = tree.find("e3");
  const ExceptionId raised[] = {e3};
  EXPECT_EQ(tree.resolve(raised), e3);
}

TEST(ExceptionTree, ResolveIsLowestCommonAncestor) {
  ExceptionTree tree;
  const auto engine = tree.declare("engine");
  const auto left = tree.declare("left", engine);
  const auto right = tree.declare("right", engine);
  const auto fuel = tree.declare("fuel");
  tree.freeze();

  {
    const ExceptionId raised[] = {left, right};
    EXPECT_EQ(tree.resolve(raised), engine);
  }
  {
    const ExceptionId raised[] = {left, fuel};
    EXPECT_EQ(tree.resolve(raised), tree.root());
  }
  {
    const ExceptionId raised[] = {left, engine};
    EXPECT_EQ(tree.resolve(raised), engine);  // ancestor wins
  }
}

TEST(ExceptionTree, ResolveEmptyIsInvalid) {
  ExceptionTree tree;
  tree.freeze();
  EXPECT_FALSE(tree.resolve({}).valid());
}

TEST(ExceptionTree, ResolveOnChainPicksHighest) {
  ExceptionTree tree = shapes::chain(8);
  const ExceptionId raised[] = {tree.find("e8"), tree.find("e3"),
                                tree.find("e5")};
  EXPECT_EQ(tree.resolve(raised), tree.find("e3"));
}

TEST(ExceptionTree, PathToRoot) {
  ExceptionTree tree = shapes::chain(3);
  const auto path = tree.path_to_root(tree.find("e3"));
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], tree.find("e3"));
  EXPECT_EQ(path[1], tree.find("e2"));
  EXPECT_EQ(path[2], tree.find("e1"));
  EXPECT_EQ(path[3], tree.root());
}

TEST(ExceptionTree, ShapesHaveExpectedSizes) {
  EXPECT_EQ(shapes::chain(5).size(), 6u);
  EXPECT_EQ(shapes::star(4).size(), 5u);
  EXPECT_EQ(shapes::balanced_binary(3).size(), 1u + 2 + 4 + 8);
}

TEST(ExceptionTree, BalancedBinaryLcaWorks) {
  ExceptionTree tree = shapes::balanced_binary(3);
  // b1 and b2 are the two children of the root; leaves below b1 resolve
  // within b1's subtree.
  const auto b1 = tree.find("b1");
  const auto b3 = tree.find("b3");  // child of b1
  const auto b4 = tree.find("b4");  // child of b1
  EXPECT_EQ(tree.lca(b3, b4), b1);
  EXPECT_EQ(tree.lca(b3, tree.find("b2")), tree.root());
}


TEST(ExceptionTree, JoinIsMemoizedAndPointerStable) {
  ExceptionTree tree = shapes::balanced_binary(3);
  const auto b3 = tree.find("b3");
  const auto b4 = tree.find("b4");
  const ExceptionTree::JoinEntry& first = tree.join(b3, b4);
  EXPECT_EQ(first.cover, tree.lca(b3, b4));
  EXPECT_EQ(tree.join_misses(), 1u);
  // Either argument order returns the SAME cached entry — pointer identity,
  // not just equal covers.
  EXPECT_EQ(&tree.join(b4, b3), &first);
  EXPECT_EQ(&tree.join(b3, b4), &first);
  EXPECT_EQ(tree.join_misses(), 1u);
  EXPECT_EQ(tree.join_hits(), 2u);
}

TEST(ExceptionTree, UniversalBitMarksShallowSubtrees) {
  // star: the root's subtree has depth 1, so EVERYTHING is universal and
  // every leaf's cover is the root (the outermost universal ancestor).
  ExceptionTree star = shapes::star(4);
  EXPECT_TRUE(star.universal(star.root()));
  EXPECT_TRUE(star.universal(star.find("s2")));
  EXPECT_EQ(star.universal_cover(star.find("s2")), star.root());
  EXPECT_EQ(star.universal_cover(star.root()), star.root());

  // chain: only the last two nodes bound their subtree; the deep interior
  // has NO universal cover, so raising there can never commute.
  ExceptionTree chain = shapes::chain(4);
  EXPECT_FALSE(chain.universal(chain.root()));
  EXPECT_FALSE(chain.universal(chain.find("e1")));
  EXPECT_FALSE(chain.universal(chain.find("e2")));
  EXPECT_TRUE(chain.universal(chain.find("e3")));
  EXPECT_TRUE(chain.universal(chain.find("e4")));
  EXPECT_FALSE(chain.universal_cover(chain.find("e2")).valid());
  EXPECT_EQ(chain.universal_cover(chain.find("e4")), chain.find("e3"));
}

TEST(ExceptionTree, UniversalityIsDownwardClosed) {
  ExceptionTree tree = shapes::balanced_binary(3);
  for (std::uint32_t id = 0; id < tree.size(); ++id) {
    const ExceptionId e{id};
    if (!tree.universal(e)) continue;
    const ExceptionId cover = tree.universal_cover(e);
    ASSERT_TRUE(cover.valid());
    EXPECT_TRUE(tree.universal(cover));
    EXPECT_TRUE(tree.covers(cover, e));
    // Everything below a universal node is universal with the same cover.
    for (std::uint32_t child = 0; child < tree.size(); ++child) {
      const ExceptionId c{child};
      if (tree.parent(c) != e || c == e) continue;
      EXPECT_TRUE(tree.universal(c));
      EXPECT_EQ(tree.universal_cover(c), cover);
    }
  }
}

TEST(ExceptionTree, FingerprintDetectsDrift) {
  ExceptionTree a = shapes::chain(5);
  ExceptionTree b = shapes::chain(5);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ExceptionTree c = shapes::chain(6);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  // Same names, different shape.
  ExceptionTree d;
  d.declare("e1");
  d.declare("e2", d.find("e1"));
  ExceptionTree e;
  e.declare("e1");
  e.declare("e2");
  EXPECT_NE(d.fingerprint(), e.fingerprint());
}

TEST(HandlerTable, SetHasGet) {
  ExceptionTree tree = shapes::star(3);
  HandlerTable table;
  table.set(tree.find("s1"), [](ExceptionId) {
    return HandlerResult::recovered();
  });
  EXPECT_TRUE(table.has(tree.find("s1")));
  EXPECT_FALSE(table.has(tree.find("s2")));
  EXPECT_EQ(table.get(tree.find("s1"))(tree.find("s1")).outcome,
            HandlerOutcome::kRecovered);
}

TEST(HandlerTable, FillDefaultsCompletes) {
  ExceptionTree tree = shapes::star(5);
  HandlerTable table;
  EXPECT_FALSE(table.is_complete_for(tree));
  table.fill_defaults(tree, [](ExceptionId) {
    return HandlerResult::recovered();
  });
  EXPECT_TRUE(table.is_complete_for(tree));
  EXPECT_EQ(table.size(), tree.size());
}

TEST(HandlerTable, FillDefaultsKeepsSpecificHandlers) {
  ExceptionTree tree = shapes::star(2);
  HandlerTable table;
  table.set(tree.find("s1"), [](ExceptionId) {
    return HandlerResult::signalling(ExceptionId(0));
  });
  table.fill_defaults(tree, [](ExceptionId) {
    return HandlerResult::recovered();
  });
  EXPECT_EQ(table.get(tree.find("s1"))(tree.find("s1")).outcome,
            HandlerOutcome::kSignal);
  EXPECT_EQ(table.get(tree.find("s2"))(tree.find("s2")).outcome,
            HandlerOutcome::kRecovered);
}

TEST(HandlerTable, DefaultHandlerCoversWholeTree) {
  ExceptionTree tree = shapes::star(5);
  HandlerTable table;
  table.set_default([](ExceptionId) { return HandlerResult::recovered(); });
  EXPECT_TRUE(table.is_complete_for(tree));
  EXPECT_TRUE(table.has(tree.find("s3")));
  // Only explicit entries count towards size(); the fallback is one callable.
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.get(tree.find("s2"))(tree.find("s2")).outcome,
            HandlerOutcome::kRecovered);
}

TEST(HandlerTable, ExplicitEntryOverridesDefault) {
  ExceptionTree tree = shapes::star(2);
  HandlerTable table;
  table.set_default([](ExceptionId) { return HandlerResult::recovered(); });
  table.set(tree.find("s1"), [](ExceptionId) {
    return HandlerResult::signalling(ExceptionId(0));
  });
  EXPECT_EQ(table.get(tree.find("s1"))(tree.find("s1")).outcome,
            HandlerOutcome::kSignal);
  EXPECT_EQ(table.get(tree.find("s2"))(tree.find("s2")).outcome,
            HandlerOutcome::kRecovered);
}

TEST(HandlerTable, NearestHandledWalksAncestors) {
  ExceptionTree tree = shapes::chain(4);
  HandlerTable table;
  table.set(tree.find("e2"), [](ExceptionId) {
    return HandlerResult::recovered();
  });
  EXPECT_EQ(table.nearest_handled(tree, tree.find("e4")), tree.find("e2"));
  EXPECT_EQ(table.nearest_handled(tree, tree.find("e2")), tree.find("e2"));
  EXPECT_FALSE(table.nearest_handled(tree, tree.find("e1")).valid());
}

TEST(ExceptionValue, DescribeFormats) {
  ExceptionTree tree = shapes::star(2);
  Exception e{tree.find("s1"), ObjectId(3), ActionInstanceId(1), "boom"};
  const std::string d = describe(e, tree);
  EXPECT_NE(d.find("s1"), std::string::npos);
  EXPECT_NE(d.find("O3"), std::string::npos);
  EXPECT_NE(d.find("boom"), std::string::npos);
}

TEST(ContextStack, PushPopActive) {
  ExceptionTree tree = shapes::star(1);
  HandlerTable handlers;
  ContextStack stack;
  EXPECT_TRUE(stack.empty());
  Context c1;
  c1.instance = ActionInstanceId(1);
  c1.tree = &tree;
  c1.handlers = &handlers;
  stack.push(c1);
  Context c2 = c1;
  c2.instance = ActionInstanceId(2);
  stack.push(c2);

  EXPECT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack.active().instance, ActionInstanceId(2));
  EXPECT_EQ(stack.depth_of(ActionInstanceId(1)), 0u);
  EXPECT_EQ(stack.depth_of(ActionInstanceId(2)), 1u);
  EXPECT_FALSE(stack.depth_of(ActionInstanceId(9)).has_value());

  // Nested-below: the active action is deeper than instance 1.
  EXPECT_TRUE(stack.nested_below(ActionInstanceId(1)));
  EXPECT_FALSE(stack.nested_below(ActionInstanceId(2)));

  const Context popped = stack.pop();
  EXPECT_EQ(popped.instance, ActionInstanceId(2));
  EXPECT_EQ(stack.active().instance, ActionInstanceId(1));
}

}  // namespace
}  // namespace caa::ex
