// The resolution protocol over LOSSY links — what §4.5 assumes from the
// environment ("reliable message passing"), here actually built and
// exercised end-to-end. Loss is injected two ways: as a lossy link
// configuration (the transport's own regime) and as declarative FaultPlan
// drop bursts through the chaos engine; either way the protocol outcome
// must match the loss-free runs, with the loss absorbed as transport
// retransmissions, and the full invariant oracle must stay silent.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "fault/chaos.h"
#include "fault/oracle.h"
#include "run/campaign.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

WorldConfig lossy_config(double loss, std::uint64_t seed) {
  WorldConfig config;
  config.link = net::LinkParams::lossy(loss);
  config.reliable_transport = true;
  config.seed = seed;
  return config;
}

TEST(CaaLossy, SingleRaiseResolvesDespiteLoss) {
  World w(lossy_config(0.3, 7));
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A", ex::shapes::star(3));
  const auto& inst =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] { o2.raise("s2"); });
  w.run();

  // The oracle's invariants hold under loss: quiescent, nobody stuck,
  // agreement, and per-kind conservation (drops are declared, not leaks).
  const fault::OracleReport report = fault::check_invariants(w, {});
  EXPECT_TRUE(report.ok()) << report.summary();

  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_EQ(o->handled().size(), 1u);
    EXPECT_EQ(o->handled()[0].resolved, decl.tree().find("s2"));
    EXPECT_FALSE(o->in_action());
  }
  // Loss showed up as retransmissions, not protocol failures.
  EXPECT_GT(w.metrics().value("net.reliable.retransmit"), 0);
  // Protocol-level sends are unchanged: each protocol message is passed to
  // the transport exactly once; the network counters include retransmits,
  // so sent >= the loss-free count per kind.
  EXPECT_GE(w.metrics().sent(net::MsgKind::kException), 2);
  EXPECT_GE(w.metrics().sent(net::MsgKind::kCommit), 2);
}

class LossySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossySweep, NestedScenarioOutcomeMatchesLossFree) {
  // The Figure-4 style scenario from the nested tests, under 25% loss:
  // outcomes (handled exceptions, abortion orders) must match the
  // loss-free protocol exactly, and the oracle must pass either way.
  auto build_and_run = [&](bool lossy, std::uint64_t seed) {
    auto w = std::make_unique<World>(
        lossy ? lossy_config(0.25, seed) : WorldConfig{});
    auto& o1 = w->add_participant("O1");
    auto& o2 = w->add_participant("O2");
    auto& o3 = w->add_participant("O3");
    ex::ExceptionTree t1;
    const auto combo = t1.declare("combo");
    t1.declare("E1", combo);
    t1.declare("E3", combo);
    const auto& d1 = w->actions().declare("A1", std::move(t1));
    ex::ExceptionTree t2;
    t2.declare("E2");
    const auto& d2 = w->actions().declare("A2", std::move(t2));
    const auto& a1 =
        w->actions().create_instance(d1, {o1.id(), o2.id(), o3.id()});
    const auto& a2 =
        w->actions().create_instance(d2, {o2.id(), o3.id()}, a1.instance);

    auto plain1 = [&] {
      return EnterConfig::with(
          uniform_handlers(d1.tree(), ex::HandlerResult::recovered(100)));
    };
    for (auto* o : {&o1, &o2, &o3}) {
      if (!o->enter(a1.instance, plain1())) std::abort();
    }
    const EnterConfig c2 =
        EnterConfig::with(
            uniform_handlers(d2.tree(), ex::HandlerResult::recovered(100)))
            .abortion([&d1] {
              return ex::AbortResult::signalling(d1.tree().find("E3"), 50);
            });
    if (!o2.enter(a2.instance, c2)) std::abort();
    const EnterConfig c3 = EnterConfig::with(
        uniform_handlers(d2.tree(), ex::HandlerResult::recovered(100)));
    if (!o3.enter(a2.instance, c3)) std::abort();

    w->at(1000, [&o1] { o1.raise("E1"); });
    w->run();

    const fault::OracleReport report = fault::check_invariants(*w, {});
    EXPECT_TRUE(report.ok())
        << (lossy ? "lossy" : "loss-free") << " seed " << seed << ": "
        << report.summary();

    std::vector<std::string> outcome;
    for (auto* o : {&o1, &o2, &o3}) {
      for (const auto& h : o->handled()) {
        outcome.push_back(o->name() + ":" +
                          d1.tree().name_of(h.resolved));
      }
      outcome.push_back(o->name() + (o->in_action() ? ":stuck" : ":clear"));
    }
    return outcome;
  };

  const auto loss_free = build_and_run(false, 1);
  const auto lossy = build_and_run(true, GetParam());
  EXPECT_EQ(loss_free, lossy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossySweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// Loss injected the chaos engine's way: drop-burst windows over every
// channel pair of a chaos trial world. The bursts sit well inside the
// reliable transport's give-up horizon, so the oracle must stay silent.
TEST(CaaLossy, DropBurstPlansKeepEveryInvariant) {
  fault::ChaosOptions options;
  options.seed = 7;
  options.shrink = false;
  run::Campaign campaign({.seed = options.seed, .threads = 0});
  for (std::uint64_t i = 0; i < 20; ++i) {
    campaign.add("burst#" + std::to_string(i),
                 [&options](const run::WorldContext& ctx) {
                   const std::uint32_t n =
                       fault::trial_participants(ctx.seed, options);
                   fault::FaultPlan plan;
                   for (std::uint32_t a = 0; a < n; ++a) {
                     for (std::uint32_t b = a + 1; b < n; ++b) {
                       fault::FaultEvent burst;
                       burst.kind = fault::FaultKind::kDropBurst;
                       burst.a = a;
                       burst.b = b;
                       burst.at = 900;
                       burst.until = 2900;
                       burst.permille = 250;
                       plan.events.push_back(burst);
                     }
                   }
                   return run_chaos_trial(ctx.seed, plan, options, ctx.index);
                 });
  }
  const run::CampaignResult result = campaign.run();
  EXPECT_TRUE(result.all_ok())
      << result.failed << " burst trial(s) violated invariants; first: "
      << result.first_error();
}

}  // namespace
}  // namespace caa
