// Systematic-exploration tests: the DPOR explorer over every §4.3 scenario
// at N<=3 under both exit protocols and with/without coordination
// avoidance, plus the planted-bug rediscovery proofs and the schedule
// artifact roundtrip.
//
// Budget notes: exhaustive runs are kept to models the explorer finishes in
// well under a second; the Paxos exit and the exclusion-bug hunt are
// bounded with max_schedules / fail_fast (first violation lands at schedule
// ~27k, far before the cap).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/model.h"

namespace caa::explore {
namespace {

ExploreOptions quiet() {
  ExploreOptions o;
  o.threads = 1;
  return o;
}

std::vector<std::uint64_t> class_keys(const ExploreStats& stats) {
  std::vector<std::uint64_t> keys;
  for (const auto& [checksum, text] : stats.classes) keys.push_back(checksum);
  return keys;
}

/// Runs the model once unmanaged (normal event-driven simulator order) and
/// returns its resolved checksum — the baseline the explorer's schedule
/// classes must agree with on crash-free models.
std::uint64_t unmanaged_checksum(const ModelOptions& model) {
  auto instance = make_model(model, /*managed=*/false);
  instance->world().run();
  EXPECT_TRUE(instance->world().simulator().idle());
  return instance->resolved_checksum();
}

// ---- §4.3 scenarios, exhaustive, single determinism class ----------------

struct ScenarioCase {
  const char* name;
  ModelOptions model;
};

std::vector<ScenarioCase> crash_free_cases() {
  std::vector<ScenarioCase> cases;
  {
    ModelOptions m;
    m.scenario = "example1";
    cases.push_back({"example1", m});
  }
  {
    ModelOptions m;
    m.scenario = "flat";
    m.participants = 3;
    m.raisers = 2;
    cases.push_back({"flat_n3_p2", m});
  }
  {
    ModelOptions m;
    m.scenario = "flat";
    m.participants = 3;
    m.raisers = 1;
    m.nested = 1;
    cases.push_back({"flat_n3_nested1", m});
  }
  {
    ModelOptions m;
    m.scenario = "nested";
    m.participants = 2;
    m.depth = 2;
    cases.push_back({"nested_chain_depth2", m});
  }
  return cases;
}

TEST(ExploreScenarios, ExhaustiveSingleClassUnderBarrierExit) {
  for (const ScenarioCase& c : crash_free_cases()) {
    SCOPED_TRACE(c.name);
    const ExploreStats stats = explore(c.model, quiet());
    EXPECT_TRUE(stats.ok()) << (stats.violations.empty()
                                    ? ""
                                    : stats.violations.front().what);
    EXPECT_FALSE(stats.capped);  // exhaustive, not a bounded smoke
    EXPECT_GE(stats.schedules, 1u);  // a race-free model explores exactly 1
    ASSERT_EQ(stats.classes.size(), 1u)
        << "resolution nondeterminism across schedules";
    EXPECT_EQ(class_keys(stats)[0], unmanaged_checksum(c.model))
        << "explored class disagrees with the normal simulator order";
  }
}

TEST(ExploreScenarios, ExhaustiveSingleClassWithAvoidance) {
  for (const ScenarioCase& c : crash_free_cases()) {
    SCOPED_TRACE(c.name);
    ModelOptions model = c.model;
    model.avoid = true;
    const ExploreStats stats = explore(model, quiet());
    EXPECT_TRUE(stats.ok());
    EXPECT_FALSE(stats.capped);
    ASSERT_EQ(stats.classes.size(), 1u);
    EXPECT_EQ(class_keys(stats)[0], unmanaged_checksum(model));
  }
}

// Nested chain at N=3 (ISSUE acceptance: nested included at N<=3). The
// state space is larger (~32k schedules) so this is its own test case.
TEST(ExploreScenarios, NestedChainAtN3Exhaustive) {
  ModelOptions model;
  model.scenario = "nested";
  model.participants = 3;
  model.depth = 1;
  const ExploreStats stats = explore(model, quiet());
  EXPECT_TRUE(stats.ok());
  EXPECT_FALSE(stats.capped);
  ASSERT_EQ(stats.classes.size(), 1u);
  EXPECT_EQ(class_keys(stats)[0], unmanaged_checksum(model));
}

// Figure 4 (N=4, belated entry + abortion) has a state space beyond the
// ctest budget; a bounded prefix must still be violation-free and
// single-class.
TEST(ExploreScenarios, Figure4BoundedSmokeSingleClass) {
  ModelOptions model;
  model.scenario = "figure4";
  ExploreOptions options = quiet();
  options.max_schedules = 2000;
  const ExploreStats stats = explore(model, options);
  EXPECT_TRUE(stats.ok());
  EXPECT_GE(stats.schedules, 2000u);
  ASSERT_EQ(stats.classes.size(), 1u);
  EXPECT_EQ(class_keys(stats)[0], unmanaged_checksum(model));
}

// ---- Equality gates -------------------------------------------------------

// Barrier and Paxos exits must resolve identically: same resolved-checksum
// class set. Barrier is exhaustive; Paxos (many more message orders) is
// bounded but still must not surface a second class.
TEST(ExploreGates, BarrierVsPaxosSameClasses) {
  ModelOptions barrier;
  barrier.scenario = "flat";
  barrier.participants = 3;
  barrier.raisers = 2;
  barrier.committee = 2;
  barrier.exit = exit::ExitKind::kBarrier;
  ModelOptions paxos = barrier;
  paxos.exit = exit::ExitKind::kPaxos;

  const ExploreStats barrier_stats = explore(barrier, quiet());
  EXPECT_TRUE(barrier_stats.ok());
  EXPECT_FALSE(barrier_stats.capped);

  ExploreOptions bounded = quiet();
  bounded.max_schedules = 20000;
  const ExploreStats paxos_stats = explore(paxos, bounded);
  EXPECT_TRUE(paxos_stats.ok());

  EXPECT_EQ(class_keys(barrier_stats), class_keys(paxos_stats))
      << "exit protocols disagree on what resolved";
}

// Coordination avoidance on/off must resolve identically (both exhaustive).
TEST(ExploreGates, AvoidanceVsEngineSameClasses) {
  ModelOptions engine;
  engine.scenario = "example1";
  engine.avoid = false;
  ModelOptions avoid = engine;
  avoid.avoid = true;

  const ExploreStats engine_stats = explore(engine, quiet());
  const ExploreStats avoid_stats = explore(avoid, quiet());
  EXPECT_TRUE(engine_stats.ok());
  EXPECT_TRUE(avoid_stats.ok());
  EXPECT_FALSE(engine_stats.capped);
  EXPECT_FALSE(avoid_stats.capped);
  EXPECT_EQ(class_keys(engine_stats), class_keys(avoid_stats));
}

// ---- DPOR effectiveness ---------------------------------------------------

// DPOR must cut at least 10x off the naive full-DFS interleaving count.
// Rather than run the (huge) full search to completion, cap it just above
// 10x the DPOR count: reaching the cap proves the naive bound exceeds it.
TEST(ExploreDpor, AtLeastTenfoldReductionOnExample1) {
  ModelOptions model;
  model.scenario = "example1";
  const ExploreStats dpor = explore(model, quiet());
  EXPECT_TRUE(dpor.ok());
  EXPECT_FALSE(dpor.capped);
  ASSERT_GT(dpor.schedules, 0u);

  ExploreOptions full = quiet();
  full.dpor = false;
  full.max_schedules = dpor.schedules * 10 + 1;
  const ExploreStats naive = explore(model, full);
  EXPECT_TRUE(naive.capped) << "naive DFS finished under 10x the DPOR count";
  EXPECT_GT(naive.schedules, dpor.schedules * 10);
  // Both searches agree on the single determinism class.
  EXPECT_EQ(class_keys(dpor), class_keys(naive));
}

// ---- Crash-point exploration ---------------------------------------------

TEST(ExploreCrash, CrashPointsExploreCleanlyWithoutPlantedBugs) {
  ModelOptions model;
  model.scenario = "crash";
  model.participants = 3;
  model.raisers = 2;
  model.committee = 2;
  model.crash_victims = {2};
  model.max_crashes = 1;
  const ExploreStats stats = explore(model, quiet());
  EXPECT_TRUE(stats.ok()) << (stats.violations.empty()
                                  ? ""
                                  : stats.violations.front().what);
  EXPECT_FALSE(stats.capped);
  // Crashing at different points legitimately yields different surviving
  // resolutions — multiple classes are expected, violations are not.
  EXPECT_GE(stats.classes.size(), 2u);
}

// ---- Planted-bug rediscovery ---------------------------------------------

ModelOptions exclusion_bug_model() {
  ModelOptions model;
  model.scenario = "crash";
  model.participants = 3;
  model.raisers = 3;
  model.committee = 2;
  model.crash_victims = {2};
  model.max_crashes = 1;
  model.bugs.exclusion_divergence = true;
  return model;
}

TEST(ExplorePlantedBugs, FindsExclusionDivergenceDeterministically) {
  ExploreOptions options = quiet();
  options.fail_fast = true;
  const ExploreStats first = explore(exclusion_bug_model(), options);
  ASSERT_FALSE(first.ok()) << "planted exclusion bug went undetected";
  EXPECT_NE(first.violations.front().what.find("disagreement"),
            std::string::npos)
      << first.violations.front().what;
  EXPECT_FALSE(first.violations.front().repro.empty());

  // Deterministic rediscovery: a second run finds the same first witness.
  const ExploreStats second = explore(exclusion_bug_model(), options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.violations.front().what, second.violations.front().what);
  EXPECT_EQ(first.violations.front().repro, second.violations.front().repro);
  EXPECT_EQ(first.schedules, second.schedules);
}

TEST(ExplorePlantedBugs, ExclusionModelIsCleanWithoutTheBug) {
  ModelOptions model = exclusion_bug_model();
  model.bugs.exclusion_divergence = false;
  ExploreOptions options = quiet();
  options.max_schedules = 30000;  // > first-violation depth of the bug run
  const ExploreStats stats = explore(model, options);
  EXPECT_TRUE(stats.ok()) << (stats.violations.empty()
                                  ? ""
                                  : stats.violations.front().what);
}

ModelOptions lost_leave_bug_model() {
  ModelOptions model;
  model.scenario = "crash";
  model.participants = 3;
  model.raisers = 1;
  model.committee = 3;
  model.crash_victims = {0};
  model.max_crashes = 1;
  model.bugs.lost_final_leave = true;
  return model;
}

TEST(ExplorePlantedBugs, FindsLostFinalLeaveDeterministically) {
  ExploreOptions options = quiet();
  options.fail_fast = true;
  const ExploreStats first = explore(lost_leave_bug_model(), options);
  ASSERT_FALSE(first.ok()) << "planted lost-leave bug went undetected";
  EXPECT_NE(first.violations.front().what.find("stuck in action"),
            std::string::npos)
      << first.violations.front().what;

  const ExploreStats second = explore(lost_leave_bug_model(), options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.violations.front().repro, second.violations.front().repro);
  EXPECT_EQ(first.schedules, second.schedules);
}

TEST(ExplorePlantedBugs, LostLeaveModelIsCleanWithoutTheBug) {
  ModelOptions model = lost_leave_bug_model();
  model.bugs.lost_final_leave = false;
  const ExploreStats stats = explore(model, quiet());
  EXPECT_TRUE(stats.ok());
  EXPECT_FALSE(stats.capped);  // exhaustive clean proof
}

// ---- Schedule artifact roundtrip -----------------------------------------

TEST(ExploreArtifacts, ViolationReproParsesAndReplaysToSameDiagnosis) {
  ExploreOptions options = quiet();
  options.fail_fast = true;
  const ExploreStats stats = explore(lost_leave_bug_model(), options);
  ASSERT_FALSE(stats.ok());
  const Violation& v = stats.violations.front();

  const auto artifact = parse_schedule(v.repro);
  ASSERT_TRUE(artifact.is_ok()) << artifact.status().message();
  EXPECT_EQ(artifact.value().model.to_text(),
            lost_leave_bug_model().to_text());

  const ReplayOutcome outcome = replay_schedule(artifact.value());
  EXPECT_FALSE(outcome.ok) << "replay did not reproduce the violation";
  EXPECT_NE(outcome.error.find("stuck in action"), std::string::npos)
      << outcome.error;
  EXPECT_EQ(outcome.checksum, v.checksum);
}

TEST(ExploreArtifacts, CleanClassWitnessReplaysOk) {
  ModelOptions model;
  model.scenario = "example1";
  const ExploreStats stats = explore(model, quiet());
  ASSERT_EQ(stats.classes.size(), 1u);
  const auto artifact = parse_schedule(stats.classes.begin()->second);
  ASSERT_TRUE(artifact.is_ok()) << artifact.status().message();
  const ReplayOutcome outcome = replay_schedule(artifact.value());
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.checksum, stats.classes.begin()->first);
}

TEST(ExploreArtifacts, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_schedule("no schedule here").is_ok());
  EXPECT_FALSE(parse_schedule("schedule v1\nnot a model line").is_ok());
  EXPECT_FALSE(
      parse_schedule("schedule v1\nmodel scenario=example1 n=3 raisers=1 "
                     "nested=0 depth=1 committee=1 exit=barrier avoid=0 "
                     "max_crashes=0 victims=- bug=none\nwibble 7\n")
          .is_ok());
}

// ---- Parallel exploration -------------------------------------------------

// Splitting the first branching state across a worker pool must be
// invisible in the results: identical stats and classes for any thread
// count.
TEST(ExploreParallel, ThreadCountInvariantStats) {
  ModelOptions model;
  model.scenario = "example1";
  const ExploreStats serial = explore(model, quiet());
  ExploreOptions parallel = quiet();
  parallel.threads = 4;
  const ExploreStats threaded = explore(model, parallel);
  EXPECT_EQ(serial.schedules, threaded.schedules);
  EXPECT_EQ(serial.sleep_blocked, threaded.sleep_blocked);
  EXPECT_EQ(serial.max_depth, threaded.max_depth);
  EXPECT_EQ(class_keys(serial), class_keys(threaded));
  EXPECT_EQ(serial.class_counts, threaded.class_counts);
  EXPECT_EQ(serial.violations.size(), threaded.violations.size());
}

}  // namespace
}  // namespace caa::explore
