// Integration tests of the CA-action layer and the resolution protocol on
// flat (non-nested) actions, including the paper's §4.3 Example 1 and the
// §4.4 message-count formulas for the no-nesting cases.
#include <gtest/gtest.h>

#include "caa/world.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

ex::ExceptionTree engine_tree() {
  // The paper's §3.2 example hierarchy.
  ex::ExceptionTree tree;
  const auto emergency = tree.declare("emergency_engine_loss_exception");
  tree.declare("left_engine_exception", emergency);
  tree.declare("right_engine_exception", emergency);
  tree.freeze();
  return tree;
}

EnterConfig recovered_config(const ex::ExceptionTree& tree) {
  return EnterConfig::with(
      uniform_handlers(tree, ex::HandlerResult::recovered()));
}

TEST(CaaBasic, SingleRaiseThreeObjects) {
  // §4.4 case 1: one exception, no nested actions, N = 3
  // => 3(N-1) = 6 resolution messages.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});

  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o3.enter(a1.instance, recovered_config(decl.tree())));

  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  w.run();

  // Everyone handled the raised exception itself.
  ASSERT_EQ(o1.handled().size(), 1u);
  ASSERT_EQ(o2.handled().size(), 1u);
  ASSERT_EQ(o3.handled().size(), 1u);
  const ExceptionId left = decl.tree().find("left_engine_exception");
  EXPECT_EQ(o1.handled()[0].resolved, left);
  EXPECT_EQ(o2.handled()[0].resolved, left);
  EXPECT_EQ(o3.handled()[0].resolved, left);

  // Message complexity: (N-1) Exceptions + (N-1) ACKs + (N-1) Commits.
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kException), 2);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kAck), 2);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kCommit), 2);
  EXPECT_EQ(w.metrics().resolution_messages(), 6);

  // Handlers recovered, so the action committed and everyone left it.
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
  EXPECT_FALSE(o3.in_action());
  EXPECT_TRUE(w.failures().empty());
}

TEST(CaaBasic, Example1TwoConcurrentExceptions) {
  // §4.3 Example 1: O1 raises E1 and O2 raises E2 concurrently; O2 (the
  // bigger name among the raisers) resolves and commits; everyone runs the
  // handler for the resolving exception (here: the LCA of E1 and E2).
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});

  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o3.enter(a1.instance, recovered_config(decl.tree())));

  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  w.at(1000, [&] { o2.raise("right_engine_exception"); });
  w.run();

  const ExceptionId cover = decl.tree().find("emergency_engine_loss_exception");
  ASSERT_EQ(o1.handled().size(), 1u);
  ASSERT_EQ(o2.handled().size(), 1u);
  ASSERT_EQ(o3.handled().size(), 1u);
  EXPECT_EQ(o1.handled()[0].resolved, cover);
  EXPECT_EQ(o2.handled()[0].resolved, cover);
  EXPECT_EQ(o3.handled()[0].resolved, cover);

  // §4.4 case 3 with P=2 raisers, Q=0: (N-1)(2P+1) = 2*5 = 10 messages.
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kException), 4);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kAck), 4);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kCommit), 2);
  EXPECT_EQ(w.metrics().resolution_messages(), 10);
}

TEST(CaaBasic, AllRaiseSimultaneously) {
  // §4.4 case 3: all N objects raise => (N-1)(2N+1) messages.
  constexpr int kN = 5;
  World w;
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < kN; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  ex::ExceptionTree tree = ex::shapes::star(kN);
  const auto& decl = w.actions().declare("A1", std::move(tree));
  const auto& a1 = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    ASSERT_TRUE(o->enter(a1.instance, recovered_config(decl.tree())));
  }
  w.at(1000, [&] {
    for (int i = 0; i < kN; ++i) {
      objects[i]->raise("s" + std::to_string(i + 1));
    }
  });
  w.run();

  // All raised distinct leaves under the root => resolves to the root.
  for (auto* o : objects) {
    ASSERT_EQ(o->handled().size(), 1u);
    EXPECT_EQ(o->handled()[0].resolved, decl.tree().root());
  }
  EXPECT_EQ(w.metrics().resolution_messages(), (kN - 1) * (2 * kN + 1));
}

TEST(CaaBasic, NoExceptionNoOverhead) {
  // §4.4: "our algorithm ... will have no overhead if an exception is not
  // raised".
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.at(1000, [&] { o1.complete(); });
  w.at(1200, [&] { o2.complete(); });
  w.run();

  EXPECT_EQ(w.metrics().resolution_messages(), 0);
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
  EXPECT_TRUE(o1.handled().empty());
}

TEST(CaaBasic, HandlerSignalFailsOutermostAction) {
  // Handlers that cannot recover signal a failure exception; for an
  // outermost action that surfaces as a World failure.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});

  auto signalling_config = [&] {
    return EnterConfig::with(uniform_handlers(
        decl.tree(),
        ex::HandlerResult::signalling(decl.tree().root(), /*duration=*/50)));
  };
  ASSERT_TRUE(o1.enter(a1.instance, signalling_config()));
  ASSERT_TRUE(o2.enter(a1.instance, signalling_config()));
  w.at(1000, [&] { o2.raise("right_engine_exception"); });
  w.run();

  ASSERT_EQ(w.failures().size(), 1u);
  EXPECT_EQ(w.failures()[0].instance, a1.instance);
  EXPECT_EQ(w.failures()[0].signal, decl.tree().root());
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
}

TEST(CaaBasic, RaiseAfterSuspensionIsSuperseded) {
  // An object that has learned of a peer's exception is Suspended and can
  // no longer raise; its late raise is superseded, not a second round.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  // Links have a fixed 100-tick latency: at t=1150 O2 has received O1's
  // Exception (t=1100) but the Commit has not arrived yet (t=1300) — O2 is
  // Suspended and its raise must be superseded.
  w.at(1150, [&] { o2.raise("right_engine_exception"); });
  w.run();

  ASSERT_EQ(o2.handled().size(), 1u);
  EXPECT_EQ(o2.handled()[0].resolved, decl.tree().find("left_engine_exception"));
  EXPECT_EQ(w.metrics().value("caa.raise_superseded"), 1);
}

TEST(CaaBasic, BackwardRecoveryRetriesThenSucceeds) {
  // Conversation-style backward recovery (§2.2): acceptance failure rolls
  // every participant back to its checkpoint and runs the next alternate.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});

  int o1_state = 0;
  int o1_checkpoint = -1;
  int restores = 0;
  auto config_for = [&](Participant& p, bool failing_first) {
    return EnterConfig::with(
               uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
        .retries(3)
        .checkpoints([&] { o1_checkpoint = o1_state; },
                     [&] {
                       o1_state = o1_checkpoint;
                       ++restores;
                     })
        .body([&p, failing_first](std::uint32_t attempt) {
          // First attempt fails its acceptance test; the retry passes.
          p.complete(/*acceptance_ok=*/!(failing_first && attempt == 0));
        })
        .build();
  };
  ASSERT_TRUE(o1.enter(a1.instance, config_for(o1, true)));
  ASSERT_TRUE(o2.enter(a1.instance, config_for(o2, false)));
  w.run();

  EXPECT_EQ(restores, 2);  // both participants restored once
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
  EXPECT_TRUE(w.failures().empty());
  // Backward recovery uses no resolution messages at all.
  EXPECT_EQ(w.metrics().resolution_messages(), 0);
}

TEST(CaaBasic, AttemptsExhaustedSignalsFailure) {
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});

  auto config_for = [&](Participant& p) {
    return EnterConfig::with(
               uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
        .retries(2)
        .body([&p](std::uint32_t) { p.complete(/*acceptance_ok=*/false); })
        .build();
  };
  ASSERT_TRUE(o1.enter(a1.instance, config_for(o1)));
  ASSERT_TRUE(o2.enter(a1.instance, config_for(o2)));
  w.run();

  ASSERT_EQ(w.failures().size(), 1u);
  EXPECT_FALSE(w.failures()[0].signal.valid());  // no failure_signal set
  EXPECT_FALSE(o1.in_action());
}

}  // namespace
}  // namespace caa
