// Flight recorder + causal extractor tests: ring wraparound, binary
// round-trip, golden caa-inspect decode, critical paths vs the §4.4
// scenarios, and the zero-drift contract (recorder on/off checksums).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"
#include "obs/causal.h"
#include "obs/flight_recorder.h"
#include "scenario/scenarios.h"

#ifndef CAA_TEST_DATA_DIR
#error "CAA_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace caa {
namespace {

using obs::FlightDump;
using obs::FlightRecord;
using obs::FlightRecorder;
using obs::RecType;

TEST(FlightRecorder, RingWraparound) {
  FlightRecorder rec;
  sim::Time now = 0;
  rec.bind_clock(&now);
  rec.set_capacity(16);
  for (int i = 0; i < 40; ++i) {
    now = i;
    rec.record_send(100, /*src=*/1, /*dst=*/2);
  }
  EXPECT_EQ(rec.size(), 16u);
  EXPECT_EQ(rec.recorded_total(), 40u);
  EXPECT_EQ(rec.overwritten(), 24u);
  const std::vector<FlightRecord> records = rec.snapshot();
  ASSERT_EQ(records.size(), 16u);
  // Oldest retained record first; ids stay monotonic across the wrap.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, 25 + i);
    EXPECT_EQ(records[i].time, static_cast<sim::Time>(24 + i));
  }
}

TEST(FlightRecorder, CapacityFloorAndClear) {
  FlightRecorder rec;
  rec.set_capacity(1);  // clamped to a sane floor
  EXPECT_GE(rec.capacity(), 16u);
  rec.record_send(100, 0, 1);
  EXPECT_EQ(rec.size(), 1u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded_total(), 0u);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder rec;
  rec.set_enabled(false);
  EXPECT_EQ(rec.record_send(100, 0, 1), 0u);
  rec.record_drop(100, 0, 7);
  EXPECT_EQ(rec.record_protocol(RecType::kRaise, 1, 5, 0, 2), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded_total(), 0u);
}

TEST(FlightRecorder, EncodeDecodeRoundTrip) {
  FlightRecorder rec;
  sim::Time now = 1000;
  rec.bind_clock(&now);
  const std::uint64_t send = rec.record_send(100, 3, 7);
  now = 1100;
  const std::uint64_t deliver = rec.record_delivery(100, 7, 3, send);
  rec.set_current_cause(deliver);
  rec.record_protocol(RecType::kResolved, 7, 12, 2, 4);
  rec.record_drop(103, 5, deliver);

  const net::Bytes bytes = rec.encode(0xDEADBEEF, 42);
  const Result<FlightDump> decoded = FlightRecorder::decode(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  const FlightDump& dump = decoded.value();
  EXPECT_EQ(dump.seed, 0xDEADBEEFu);
  EXPECT_EQ(dump.world_index, 42u);
  EXPECT_EQ(dump.recorded_total, 4u);
  EXPECT_EQ(dump.overwritten, 0u);
  ASSERT_EQ(dump.records.size(), 4u);

  EXPECT_EQ(dump.records[0].type, RecType::kSend);
  EXPECT_EQ(dump.records[0].time, 1000);
  EXPECT_EQ(dump.records[0].actor, 3u);
  EXPECT_EQ(dump.records[0].peer, 7u);
  EXPECT_EQ(dump.records[1].type, RecType::kDeliver);
  EXPECT_EQ(dump.records[1].cause, send);
  EXPECT_EQ(dump.records[2].type, RecType::kResolved);
  EXPECT_EQ(dump.records[2].cause, deliver);
  EXPECT_EQ(dump.records[2].scope, 12u);
  EXPECT_EQ(dump.records[2].round, 2u);
  EXPECT_EQ(dump.records[2].code, 4u);
  EXPECT_EQ(dump.records[3].type, RecType::kDrop);
}

TEST(FlightRecorder, DecodeRejectsGarbage) {
  net::Bytes empty;
  EXPECT_FALSE(FlightRecorder::decode(empty).is_ok());

  net::WireWriter w;
  w.str("NOTFR001");
  EXPECT_FALSE(FlightRecorder::decode(w.bytes()).is_ok());

  FlightRecorder rec;
  rec.record_send(100, 0, 1);
  net::Bytes truncated = rec.encode(1, 0);
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(FlightRecorder::decode(truncated).is_ok());

  net::Bytes trailing = rec.encode(1, 0);
  trailing.push_back(std::byte{0});
  EXPECT_FALSE(FlightRecorder::decode(trailing).is_ok());
}

// ---------------------------------------------------------------------------
// Causal chains from real scenario runs
// ---------------------------------------------------------------------------

/// Runs a flat (N, P, Q) scenario and returns its critical paths.
std::vector<obs::CriticalPath> flat_paths(int n, int p, int q) {
  scenario::FlatOptions o;
  o.participants = n;
  o.raisers = p;
  o.nested = q;
  scenario::FlatScenario s(o);
  s.run();
  return obs::critical_paths(s.world().recorder().snapshot());
}

TEST(CausalPaths, Flat310CriticalPathIsThreeHops) {
  const std::vector<obs::CriticalPath> paths = flat_paths(3, 1, 0);
  ASSERT_EQ(paths.size(), 1u);
  const obs::CriticalPath& path = paths[0];
  // §4.4: (3,1,0) sends 6 messages total, but the chain that *completes*
  // the resolution is raise -> Exception -> ACK -> Commit: 3 message hops.
  EXPECT_EQ(path.message_hops, 3);
  EXPECT_FALSE(path.truncated);
  EXPECT_EQ(path.hops.back().type, RecType::kResolved);
  // The chain is causally connected: every hop's cause is its predecessor.
  for (std::size_t i = 1; i < path.hops.size(); ++i) {
    EXPECT_EQ(path.hops[i].cause, path.hops[i - 1].id);
  }
  // It starts at the raise (or the raiser's send, when the raise record
  // predates the chain root) and times are monotone.
  for (std::size_t i = 1; i < path.hops.size(); ++i) {
    EXPECT_GE(path.hops[i].time, path.hops[i - 1].time);
  }
}

TEST(CausalPaths, Flat320CriticalPathStaysThreeHops) {
  // Two simultaneous raisers double the traffic (10 messages total) but the
  // longest dependency chain is still Exception -> ACK -> Commit.
  const std::vector<obs::CriticalPath> paths = flat_paths(3, 2, 0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].message_hops, 3);
  EXPECT_FALSE(paths[0].truncated);
}

TEST(CausalPaths, Flat421NestedAbortDelaysCriticalPath) {
  // One member sits in a nested action. The dependency chain stays
  // Exception -> ACK -> Commit (3 hops) — §4.4's 24 messages are breadth,
  // not depth — but the path runs through the *nested* member, whose ACK
  // cannot leave until its nested action has aborted. A non-zero abort
  // duration therefore stretches the same 3-hop path in time.
  auto run_one = [](sim::Time abort_duration) {
    scenario::FlatOptions o;
    o.participants = 4;
    o.raisers = 2;
    o.nested = 1;
    o.abort_duration = abort_duration;
    scenario::FlatScenario s(o);
    s.run();
    std::vector<obs::CriticalPath> paths =
        obs::critical_paths(s.world().recorder().snapshot());
    EXPECT_EQ(paths.size(), 1u);
    return paths.at(0);
  };
  const obs::CriticalPath instant = run_one(0);
  const obs::CriticalPath delayed = run_one(50);
  EXPECT_EQ(instant.message_hops, 3);
  EXPECT_EQ(delayed.message_hops, 3);
  EXPECT_EQ(delayed.end - delayed.begin, (instant.end - instant.begin) + 50)
      << "nested abort should stretch the critical path by its duration";
  // The stretched hop is the nested member's ACK: it appears on the path
  // as an ACK sent strictly after the Exception delivery that caused it.
  bool saw_delayed_ack = false;
  for (const FlightRecord& hop : delayed.hops) {
    if (hop.type == RecType::kSend &&
        hop.code == static_cast<std::uint32_t>(net::MsgKind::kAck)) {
      for (const FlightRecord& prev : delayed.hops) {
        if (prev.id == hop.cause) {
          saw_delayed_ack = hop.time == prev.time + 50;
        }
      }
    }
  }
  EXPECT_TRUE(saw_delayed_ack);
}

TEST(CausalPaths, ChainToWalksBackwards) {
  scenario::FlatScenario s({});
  s.run();
  const std::vector<FlightRecord> records = s.world().recorder().snapshot();
  // Find the resolved record and ask for its chain explicitly.
  std::uint64_t resolved_id = 0;
  for (const FlightRecord& r : records) {
    if (r.type == RecType::kResolved) resolved_id = r.id;
  }
  ASSERT_NE(resolved_id, 0u);
  bool truncated = true;
  const std::vector<FlightRecord> chain =
      obs::chain_to(records, resolved_id, &truncated);
  ASSERT_FALSE(chain.empty());
  EXPECT_FALSE(truncated);
  EXPECT_EQ(chain.back().id, resolved_id);
  EXPECT_EQ(chain.front().cause, 0u);  // rooted at a spontaneous record
  // Unknown ids yield an empty chain.
  EXPECT_TRUE(obs::chain_to(records, 999999, nullptr).empty());
}

// ---------------------------------------------------------------------------
// Zero drift: the recorder must never change behaviour
// ---------------------------------------------------------------------------

TEST(FlightRecorder, ZeroDriftRecorderOnVsOff) {
  auto run_world = [](bool recorder_on) {
    scenario::FlatOptions o;
    o.participants = 8;
    o.raisers = 2;
    o.nested = 1;
    o.world.link = net::LinkParams::lan();
    o.world.flight_recorder = recorder_on;
    scenario::FlatScenario s(o);
    s.run();
    return std::pair{scenario::world_checksum(s.world(), 0),
                     s.world().metrics().snapshot().to_string()};
  };
  const auto [on_checksum, on_counters] = run_world(true);
  const auto [off_checksum, off_counters] = run_world(false);
  EXPECT_EQ(on_checksum, off_checksum);
  EXPECT_EQ(on_counters, off_counters);
}

TEST(FlightRecorder, ResolveLatencyHistogramRecordedAtRaisers) {
  scenario::FlatOptions o;
  o.participants = 5;
  o.raisers = 2;
  scenario::FlatScenario s(o);
  s.run();
  const obs::MetricsSnapshot snap = s.world().metrics().snapshot();
  const auto it = snap.histograms.find("resolve.latency");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 2);  // one sample per raiser
  EXPECT_GT(it->second.min, 0);
  EXPECT_GE(it->second.quantile_bound(0.99), it->second.min);
}

// ---------------------------------------------------------------------------
// World dump round-trip and the caa-inspect golden
// ---------------------------------------------------------------------------

TEST(FlightRecorder, WorldDumpFileRoundTrip) {
  scenario::FlatScenario s({});
  s.run();
  const std::string path =
      testing::TempDir() + "flight_recorder_world_dump.caafr";
  ASSERT_TRUE(s.world().write_recorder_dump(path, /*world_index=*/9));
  const Result<FlightDump> dump = FlightRecorder::read_dump(path);
  ASSERT_TRUE(dump.is_ok()) << dump.status();
  EXPECT_EQ(dump.value().world_index, 9u);
  EXPECT_EQ(dump.value().seed, 42u);  // default WorldConfig seed
  EXPECT_EQ(dump.value().records.size(), s.world().recorder().size());
  std::remove(path.c_str());
}

/// The golden pins (a) the binary encoding byte-for-byte and (b) the
/// caa-inspect rendering of §4.3 Example 1. Regenerate both with
/// CAA_UPDATE_GOLDEN=1.
TEST(FlightRecorder, GoldenInspectExample1) {
  scenario::Example1Scenario s;
  s.run();
  const net::Bytes bytes = s.world().recorder().encode(/*seed=*/42, 0);
  const Result<FlightDump> decoded = FlightRecorder::decode(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  const std::string report = obs::inspect_report(decoded.value(), {});

  const std::string bin_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/example1_recorder.caafr";
  const std::string txt_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/example1_inspect.txt";
  if (std::getenv("CAA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream bin(bin_path, std::ios::binary);
    ASSERT_TRUE(bin.good()) << "cannot write " << bin_path;
    bin.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::ofstream txt(txt_path, std::ios::binary);
    ASSERT_TRUE(txt.good()) << "cannot write " << txt_path;
    txt << report;
    GTEST_SKIP() << "goldens rewritten: " << bin_path;
  }

  std::ifstream bin(bin_path, std::ios::binary);
  ASSERT_TRUE(bin.good()) << "missing golden " << bin_path
                          << " (run with CAA_UPDATE_GOLDEN=1)";
  std::ostringstream bin_data;
  bin_data << bin.rdbuf();
  const std::string& golden_bytes = bin_data.str();
  ASSERT_EQ(golden_bytes.size(), bytes.size());
  EXPECT_EQ(0, std::memcmp(golden_bytes.data(), bytes.data(), bytes.size()))
      << "recorder encoding drifted from the committed golden";

  std::ifstream txt(txt_path, std::ios::binary);
  ASSERT_TRUE(txt.good()) << "missing golden " << txt_path;
  std::ostringstream txt_data;
  txt_data << txt.rdbuf();
  EXPECT_EQ(report, txt_data.str())
      << "caa-inspect rendering drifted from the committed golden";
}

}  // namespace
}  // namespace caa
