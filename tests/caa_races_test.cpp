// Deterministic race tests: asymmetric per-link latencies steer messages
// into the protocol's subtle windows — the commit that overtakes an
// exception, ACKs owed after a round closed, future-round buffering after
// backward recovery, and multiple resolution rounds in one instance.
#include <gtest/gtest.h>

#include "caa/world.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

ex::ExceptionTree tree3() {
  ex::ExceptionTree t;
  const auto parent = t.declare("both");
  t.declare("ea", parent);
  t.declare("eb", parent);
  t.freeze();
  return t;
}

NodeId node_of(World& w, const Participant& p) {
  return w.directory().address_of(p.id()).node;
}

TEST(CaaRaces, CommitOvertakesSlowExceptionAtSuspendedObject) {
  // O1 and O2 raise concurrently. The link O1 -> O3 is very slow, so O3
  // receives O2's Commit BEFORE O1's Exception. O3 (suspended by O2's
  // exception) must start the handler on Commit, and still ACK O1's
  // late-but-same-round Exception afterwards so O1 can reach Ready and
  // finish the round (the §4.2 "wait until all exception messages are
  // handled" clause, made precise by rounds).
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  // Default links are 100 ticks; O1 -> O3 takes 5000.
  net::LinkParams slow;
  slow.latency_base = 5000;
  w.network().set_link(node_of(w, o1), node_of(w, o3), slow);

  const auto& decl = w.actions().declare("A", tree3());
  const auto& inst =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] {
    o1.raise("ea");
    o2.raise("eb");
  });
  w.run();

  const ExceptionId both = decl.tree().find("both");
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_EQ(o->handled().size(), 1u) << o->name();
    EXPECT_EQ(o->handled()[0].resolved, both) << o->name();
    EXPECT_FALSE(o->in_action()) << o->name();
  }
  // O3 must have ACKed the stale-round Exception after its round closed.
  EXPECT_GE(w.metrics().value("caa.stale_round"), 1);
}

TEST(CaaRaces, RaiserHoldsForeignCommitUntilReady) {
  // Same topology; additionally the O3 -> O1 link is slow, so O1 receives
  // O2's Commit while still waiting for O3's ACK. O1 must hold the commit
  // until Ready instead of finishing with dangling bookkeeping.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");
  net::LinkParams slow;
  slow.latency_base = 4000;
  w.network().set_link(node_of(w, o3), node_of(w, o1), slow);

  const auto& decl = w.actions().declare("A", tree3());
  const auto& inst =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] {
    o1.raise("ea");
    o2.raise("eb");
  });
  w.run();

  for (auto* o : {&o1, &o2, &o3}) {
    ASSERT_EQ(o->handled().size(), 1u) << o->name();
    EXPECT_EQ(o->handled()[0].resolved, decl.tree().find("both"))
        << o->name();
    EXPECT_FALSE(o->in_action()) << o->name();
  }
}

TEST(CaaRaces, SecondRoundAfterRestoreRaisesCleanly) {
  // Attempt 0 fails its acceptance test (backward recovery); attempt 1's
  // body raises an exception: the resolution runs in a *later round* of
  // the same action instance and must not be confused by attempt-0 state.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A", tree3());
  const auto& inst = w.actions().create_instance(decl, {o1.id(), o2.id()});

  auto config_for = [&](Participant& p, bool raiser) {
    return EnterConfig::with(
               uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
        .retries(2)
        .body([&p, raiser](std::uint32_t attempt) {
          if (attempt == 0) {
            p.complete(/*acceptance_ok=*/false);
          } else if (raiser) {
            p.raise("ea", "attempt-1 failure");
          } else {
            p.complete(true);
          }
        })
        .build();
  };
  ASSERT_TRUE(o1.enter(inst.instance, config_for(o1, true)));
  ASSERT_TRUE(o2.enter(inst.instance, config_for(o2, false)));
  w.run();

  ASSERT_EQ(o1.handled().size(), 1u);
  ASSERT_EQ(o2.handled().size(), 1u);
  // The resolution round is >= 1 (round 0 ended with the Restore).
  EXPECT_GE(o1.handled()[0].round, 1u);
  EXPECT_EQ(o1.handled()[0].resolved, decl.tree().find("ea"));
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
  EXPECT_TRUE(w.failures().empty());
}

TEST(CaaRaces, TwoSequentialResolutionsInOneInstance) {
  // Round 0 resolves; backward recovery then gives the bodies another run
  // which raises again: two handled records per participant, with
  // increasing rounds, same instance.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A", tree3());
  const auto& inst = w.actions().create_instance(decl, {o1.id(), o2.id()});

  // Handlers "recover" but the recovered completion fails acceptance on
  // attempt 0, forcing a Restore after the first resolution; the attempt-1
  // body raises the second exception, whose handler completes cleanly.
  int phase = 0;
  auto config_for = [&](Participant& p, bool raiser) {
    ex::HandlerTable handlers;
    handlers.fill_defaults(decl.tree(), [&phase](ExceptionId) {
      ++phase;
      return ex::HandlerResult::recovered();
    });
    return EnterConfig::with(std::move(handlers))
        .retries(2)
        .acceptance([&p] { return p.attempt_of(p.active_instance()) > 0; })
        .body([&p, raiser](std::uint32_t attempt) {
          if (raiser) {
            p.raise(attempt == 0 ? "ea" : "eb");
          }
          // Non-raisers simply wait; the handler completes for them.
        })
        .build();
  };
  ASSERT_TRUE(o1.enter(inst.instance, config_for(o1, true)));
  ASSERT_TRUE(o2.enter(inst.instance, config_for(o2, false)));
  w.run();

  ASSERT_EQ(o1.handled().size(), 2u);
  ASSERT_EQ(o2.handled().size(), 2u);
  EXPECT_EQ(o1.handled()[0].resolved, decl.tree().find("ea"));
  EXPECT_EQ(o1.handled()[1].resolved, decl.tree().find("eb"));
  EXPECT_LT(o1.handled()[0].round, o1.handled()[1].round);
  EXPECT_EQ(o1.handled()[0].instance, o1.handled()[1].instance);
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
}

TEST(CaaRaces, SlowHaveNestedStillBlocksResolver) {
  // O2 is nested; its HaveNested to the raiser O1 is fast but its
  // NestedCompleted is delayed by a slow abortion handler. O1 must not
  // commit before the NestedCompleted arrives.
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& d1 = w.actions().declare("A1", tree3());
  const auto& d2 = w.actions().declare("A2", ex::shapes::star(1));
  const auto& a1 = w.actions().create_instance(d1, {o1.id(), o2.id()});
  const auto& a2 =
      w.actions().create_instance(d2, {o2.id()}, a1.instance);

  const EnterConfig c1 = EnterConfig::with(
      uniform_handlers(d1.tree(), ex::HandlerResult::recovered()));
  ASSERT_TRUE(o1.enter(a1.instance, c1));
  const EnterConfig c2 = c1;  // configs stay copyable values
  ASSERT_TRUE(o2.enter(a1.instance, c2));
  const EnterConfig c3 =
      EnterConfig::with(
          uniform_handlers(d2.tree(), ex::HandlerResult::recovered()))
          .abortion([] { return ex::AbortResult::none(3000); });
  ASSERT_TRUE(o2.enter(a2.instance, c3));

  w.at(1000, [&] { o1.raise("ea"); });
  w.run();

  ASSERT_EQ(o1.handled().size(), 1u);
  // Timeline: Exception (100) + abortion (3000) + NestedCompleted+ACK
  // (100) + Commit... the handler cannot have started before ~4200.
  EXPECT_GT(o1.handled()[0].at, static_cast<sim::Time>(4000));
  ASSERT_EQ(o2.aborts().size(), 1u);
  EXPECT_FALSE(o1.in_action());
  EXPECT_FALSE(o2.in_action());
}

}  // namespace
}  // namespace caa
