#include <gtest/gtest.h>

#include "util/stats.h"

namespace caa {
namespace {

TEST(Samples, MeanStddevMinMax) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Samples, PercentileSingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 42.0);
}

TEST(Samples, AddAfterPercentileResorts) {
  Samples s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5.0);
}

TEST(Samples, ClearResets) {
  Samples s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
}

}  // namespace
}  // namespace caa
