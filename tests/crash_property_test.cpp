// Property sweep for the crash-tolerance extension, expressed through the
// chaos engine: every trial is a declarative FaultPlan armed against a
// deterministically generated world, and every invariant — quiescence, no
// stuck survivor, survivor agreement on the resolved exception,
// per-kind packet conservation — is the reusable oracle's, not ad-hoc
// assertions (fault/oracle.h).
//
// Each seed is an independent world; the 80-seed sweep runs as one
// campaign across every core, collecting violations as strings instead of
// one TEST_P per seed.
#include <gtest/gtest.h>

#include "fault/chaos.h"
#include "fault/plan.h"
#include "run/campaign.h"
#include "util/rng.h"

namespace caa {
namespace {

fault::ChaosOptions sweep_options() {
  fault::ChaosOptions options;
  options.seed = 42;
  options.committee = 2;
  options.shrink = false;  // tests fail loudly; no need for repro recipes
  return options;
}

// A single random crash around the resolution window — the original
// crash sweep's fault, now a one-event plan checked by the full oracle.
run::WorldResult single_crash_trial(const run::WorldContext& ctx,
                                    const fault::ChaosOptions& options) {
  const std::uint32_t n = fault::trial_participants(ctx.seed, options);
  Rng rng(ctx.seed ^ 0x8badf00dULL);
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.a = static_cast<std::uint32_t>(rng.below(n));
  crash.at = 900 + static_cast<sim::Time>(rng.below(1200));
  fault::FaultPlan plan;
  plan.events.push_back(crash);
  return run_chaos_trial(ctx.seed, plan, options, ctx.index);
}

TEST(CrashSweep, RandomCrashDuringResolution) {
  const fault::ChaosOptions options = sweep_options();
  run::Campaign campaign({.seed = options.seed, .threads = 0});
  for (std::uint64_t i = 0; i < 80; ++i) {
    campaign.add("crash#" + std::to_string(i),
                 [&options](const run::WorldContext& ctx) {
                   return single_crash_trial(ctx, options);
                 });
  }
  const run::CampaignResult result = campaign.run();
  EXPECT_TRUE(result.all_ok())
      << result.failed << " seed(s) violated invariants; first: "
      << result.first_error();
  EXPECT_GT(result.total_events, 0);
}

TEST(CrashSweep, SweepIsThreadCountInvariant) {
  auto sweep_with = [](unsigned threads) {
    fault::ChaosOptions options = sweep_options();
    options.mix = fault::FaultMix::kCrashHeavy;
    options.plans = 20;
    options.threads = threads;
    return run_chaos_campaign(options);
  };
  const fault::ChaosReport serial = sweep_with(1);
  const fault::ChaosReport parallel = sweep_with(8);
  ASSERT_TRUE(serial.ok()) << serial.campaign.first_error();
  ASSERT_TRUE(parallel.ok()) << parallel.campaign.first_error();
  EXPECT_EQ(serial.campaign.merged_checksum,
            parallel.campaign.merged_checksum);
  EXPECT_EQ(serial.campaign.merged_metrics.to_string(),
            parallel.campaign.merged_metrics.to_string());
}

// The resolver-hunt profile always crashes the first raiser — the object
// most likely to be the designated resolver. Whatever the committee size,
// the survivors must still finish the action and agree.
class CommitteeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CommitteeSweep, ResolverDeathToleratedAtAnyCommitteeSize) {
  fault::ChaosOptions options = sweep_options();
  options.mix = fault::FaultMix::kResolverHunt;
  options.committee = GetParam();
  options.plans = 30;
  options.threads = 0;
  const fault::ChaosReport report = run_chaos_campaign(options);
  EXPECT_TRUE(report.ok())
      << report.violations << " violation(s) at committee "
      << GetParam() << "; first: " << report.campaign.first_error();
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommitteeSweep, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace caa
